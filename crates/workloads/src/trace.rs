//! On-disk trace format: record and replay workloads from files.
//!
//! Every synthetic generator in this crate produces a
//! [`WorkloadTrace`]; this module gives that interface a file format, so
//! the simulator can also be driven by traces captured outside the repo
//! (instrumented applications, other simulators, hand-written pathologies).
//!
//! # Record grammar (`htmtrace v1`)
//!
//! A trace is a line-oriented UTF-8 file. The canonical form — what
//! [`write_to`] emits and what round-trips byte-exactly — is:
//!
//! ```text
//! htmtrace v1
//! procs 2
//! workload toy
//! fingerprint 90b8385f9f7e1aa2
//! thread 0 txs 1
//! tx 16384 pre 12 ops 3
//! r 640
//! c 3
//! w 640
//! end
//! thread 1 txs 0
//! eof
//! ```
//!
//! Header: four fixed lines (version, processor count, workload name,
//! FNV-1a fingerprint as 16 hex digits). Body: one `thread T txs N`
//! section per processor in order, each holding `N` transactions; a
//! transaction is `tx ID pre P ops N`, `N` operation lines, then `end`.
//! Operations are `r ADDR` (transactional load), `w ADDR` (transactional
//! store), `c CYCLES` (non-memory compute), and `m ADDR` — reader-side
//! sugar for a read-modify-write that expands to `r ADDR` + `w ADDR` and
//! counts as **two** toward the declared `ops` count. The recorder never
//! emits `m` (the in-memory [`Op`] has no RMW variant), which is what
//! keeps record → read → record byte-identical. The file ends with `eof`;
//! blank lines and `#` comments are tolerated anywhere after the version
//! line but never written.
//!
//! # Fingerprint rule
//!
//! The header fingerprint is exactly [`WorkloadTrace::fingerprint`] — the
//! order-sensitive FNV-1a hash the checkpoint layer already stores next to
//! machine state. Because every count (`procs`, `txs`, `ops`) is declared
//! before its content, the reader folds the hash *while streaming* and
//! compares it against the header after the final `eof`: a flipped
//! address, a dropped op or an edited name is caught without a second
//! pass, and a trace loaded from disk carries the same identity the
//! checkpoint layer would compute for the equivalent synthetic workload —
//! so resume-against-the-wrong-trace is refused by the existing machinery.
//!
//! # Bounded-memory reader
//!
//! [`read_from`] parses from any [`BufRead`] through a single reused line
//! buffer: the file text is never materialized, and transient state is one
//! line plus one transaction's operations. The decoded [`WorkloadTrace`]
//! is the same compact structure the generators build (~16 bytes per
//! operation). [`validate_from`] drops each transaction after hashing it,
//! so pre-flight checks over multi-million-reference traces run in O(1)
//! memory no matter the file size.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use htm_sim::checkpoint::Fnv64;
use htm_tcc::txn::{Op, ThreadTrace, Transaction, WorkloadTrace};

/// Format version this reader understands and the writer emits.
pub const TRACE_VERSION: u32 = 1;

/// Everything that can go wrong reading a trace file. Each failure mode
/// the binaries must pre-flight (truncation, fingerprint mismatch, future
/// version, over-declared processor count) gets its own variant so the
/// CLI can exit 2 with a precise message instead of panicking.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that does not match the record grammar.
    Parse {
        /// 1-based line number in the file.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The file ended before the declared structure was complete.
    Truncated {
        /// 1-based line number where input ran out.
        line: usize,
        /// What the reader was still expecting.
        expected: String,
    },
    /// The body hashed to a different fingerprint than the header declares.
    FingerprintMismatch {
        /// Fingerprint declared in the header.
        declared: u64,
        /// Fingerprint computed from the body.
        computed: u64,
    },
    /// The file declares a format version newer than this reader.
    UnsupportedVersion {
        /// Version token found in the file (e.g. `"v2"`).
        found: String,
    },
    /// The header declares more (or fewer) processors than the body holds.
    ThreadCountMismatch {
        /// `procs` value from the header.
        declared: usize,
        /// Thread sections actually present.
        found: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            TraceError::Truncated { line, expected } => write!(
                f,
                "trace truncated at line {line}: expected {expected} \
                 (file ends inside the declared structure)"
            ),
            TraceError::FingerprintMismatch { declared, computed } => write!(
                f,
                "trace fingerprint mismatch: header declares {declared:016x} \
                 but the body hashes to {computed:016x} (file edited or corrupted)"
            ),
            TraceError::UnsupportedVersion { found } => write!(
                f,
                "unsupported trace format version `{found}` \
                 (this build reads htmtrace v{TRACE_VERSION})"
            ),
            TraceError::ThreadCountMismatch { declared, found } => write!(
                f,
                "trace declares procs {declared} but contains {found} thread \
                 section(s)"
            ),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A trace loaded from disk: the decoded workload plus the verified
/// fingerprint, ready to hand to `SimulationBuilder::workload`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedTrace {
    /// The decoded workload; `workload.name` is the recorded name.
    pub workload: WorkloadTrace,
    /// The verified FNV-1a fingerprint (equal to `workload.fingerprint()`).
    pub fingerprint: u64,
}

impl LoadedTrace {
    /// Stable name for this trace on the sweep/experiment workload axis:
    /// `trace-{name}-{fp8}` where `fp8` is the first 8 hex digits of the
    /// fingerprint. Two different files never share an axis name unless
    /// they hold the same workload, so resuming a checkpointed run against
    /// an edited trace re-keys every cell and is rejected up front.
    #[must_use]
    pub fn axis_name(&self) -> String {
        let sanitized: String = self
            .workload
            .name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        format!("trace-{}-{:08x}", sanitized, self.fingerprint >> 32)
    }
}

/// Streaming statistics from a validation pass (no workload is built).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Recorded workload name.
    pub name: String,
    /// Processor count from the header.
    pub procs: usize,
    /// Total transactions across all threads.
    pub transactions: usize,
    /// Total operations (reads + writes + computes) across all threads.
    pub ops: usize,
    /// Total memory references (reads + writes) across all threads.
    pub memory_refs: usize,
    /// Verified fingerprint.
    pub fingerprint: u64,
}

/// Serialize a workload in canonical `htmtrace v1` form.
///
/// # Errors
/// Propagates writer failures.
pub fn write_to<W: Write>(w: &mut W, workload: &WorkloadTrace) -> io::Result<()> {
    writeln!(w, "htmtrace v{TRACE_VERSION}")?;
    writeln!(w, "procs {}", workload.num_threads())?;
    writeln!(w, "workload {}", workload.name)?;
    writeln!(w, "fingerprint {:016x}", workload.fingerprint())?;
    for (idx, thread) in workload.threads.iter().enumerate() {
        writeln!(w, "thread {idx} txs {}", thread.transactions.len())?;
        for tx in &thread.transactions {
            writeln!(
                w,
                "tx {} pre {} ops {}",
                tx.tx_id,
                tx.pre_compute,
                tx.ops.len()
            )?;
            for op in &tx.ops {
                match op {
                    Op::Read(a) => writeln!(w, "r {a}")?,
                    Op::Write(a) => writeln!(w, "w {a}")?,
                    Op::Compute(c) => writeln!(w, "c {c}")?,
                }
            }
            writeln!(w, "end")?;
        }
    }
    writeln!(w, "eof")
}

/// The canonical trace text for a workload (see [`write_to`]).
#[must_use]
pub fn render(workload: &WorkloadTrace) -> String {
    let mut out = Vec::new();
    write_to(&mut out, workload).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("trace text is ASCII")
}

/// Record a workload to `path` in canonical form.
///
/// # Errors
/// Propagates file-creation and write failures.
pub fn record_to_path(path: impl AsRef<Path>, workload: &WorkloadTrace) -> Result<(), TraceError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_to(&mut w, workload)?;
    w.flush()?;
    Ok(())
}

/// Read and verify a trace, materializing the workload.
///
/// # Errors
/// Any [`TraceError`]: I/O, grammar, truncation, fingerprint mismatch,
/// unsupported version, or a processor-count mismatch.
pub fn read_from<R: BufRead>(reader: R) -> Result<LoadedTrace, TraceError> {
    let mut threads: Vec<ThreadTrace> = Vec::new();
    let (header, fingerprint) = stream(reader, |thread, tx| {
        while threads.len() <= thread {
            threads.push(ThreadTrace::default());
        }
        threads[thread].transactions.push(tx);
    })?;
    while threads.len() < header.procs {
        threads.push(ThreadTrace::default());
    }
    Ok(LoadedTrace {
        workload: WorkloadTrace::new(header.name, threads),
        fingerprint,
    })
}

/// Read and verify a trace file, materializing the workload.
///
/// # Errors
/// See [`read_from`].
pub fn read_from_path(path: impl AsRef<Path>) -> Result<LoadedTrace, TraceError> {
    read_from(BufReader::new(File::open(path)?))
}

/// Stream a trace for verification only: the full structure is parsed and
/// the fingerprint checked, but every transaction is dropped after
/// hashing, so memory use is O(largest transaction) regardless of file
/// size.
///
/// # Errors
/// See [`read_from`].
pub fn validate_from<R: BufRead>(reader: R) -> Result<TraceSummary, TraceError> {
    let mut transactions = 0usize;
    let mut ops = 0usize;
    let mut memory_refs = 0usize;
    let (header, fingerprint) = stream(reader, |_, tx| {
        transactions += 1;
        ops += tx.ops.len();
        memory_refs += tx.memory_ops();
    })?;
    Ok(TraceSummary {
        name: header.name,
        procs: header.procs,
        transactions,
        ops,
        memory_refs,
        fingerprint,
    })
}

/// Validate a trace file without materializing the workload.
///
/// # Errors
/// See [`read_from`].
pub fn validate_path(path: impl AsRef<Path>) -> Result<TraceSummary, TraceError> {
    validate_from(BufReader::new(File::open(path)?))
}

struct Header {
    procs: usize,
    name: String,
    fingerprint: u64,
}

/// Line source that skips blanks/comments and tracks 1-based line numbers.
struct Lines<R> {
    inner: R,
    buf: String,
    line: usize,
}

impl<R: BufRead> Lines<R> {
    fn new(inner: R) -> Self {
        Self {
            inner,
            buf: String::new(),
            line: 0,
        }
    }

    /// Advance to the next non-blank, non-comment line; the content is in
    /// `self.buf` (trailing newline stripped). Returns `false` at EOF.
    fn advance(&mut self) -> Result<bool, TraceError> {
        loop {
            self.buf.clear();
            if self.inner.read_line(&mut self.buf)? == 0 {
                return Ok(false);
            }
            self.line += 1;
            while self.buf.ends_with('\n') || self.buf.ends_with('\r') {
                self.buf.pop();
            }
            let trimmed = self.buf.trim_start();
            if !trimmed.is_empty() && !trimmed.starts_with('#') {
                return Ok(true);
            }
        }
    }

    fn expect(&mut self, expected: &str) -> Result<(), TraceError> {
        if self.advance()? {
            Ok(())
        } else {
            Err(TraceError::Truncated {
                line: self.line + 1,
                expected: expected.to_string(),
            })
        }
    }

    fn parse_err(&self, message: impl Into<String>) -> TraceError {
        TraceError::Parse {
            line: self.line,
            message: message.into(),
        }
    }
}

fn parse_u64<R: BufRead>(lines: &Lines<R>, token: &str, what: &str) -> Result<u64, TraceError> {
    token
        .parse::<u64>()
        .map_err(|_| lines.parse_err(format!("invalid {what} `{token}`")))
}

/// Parse + verify a trace, handing each transaction to `sink(thread, tx)`
/// as it completes. The FNV fingerprint is folded incrementally in exactly
/// the order of `htm_tcc::txn::fingerprint_parts` and checked against the
/// header after `eof`.
fn stream<R: BufRead, F: FnMut(usize, Transaction)>(
    reader: R,
    mut sink: F,
) -> Result<(Header, u64), TraceError> {
    let mut lines = Lines::new(reader);
    let header = read_header(&mut lines)?;

    let mut hash = Fnv64::new();
    hash.write_u64(header.name.len() as u64);
    hash.write(header.name.as_bytes());
    hash.write_u64(header.procs as u64);

    for thread_idx in 0..header.procs {
        if !lines.advance()? || lines.buf.trim() == "eof" {
            // Header promised more processors than the body delivers: the
            // dedicated over-declared-procs pre-flight, not a generic
            // truncation.
            return Err(TraceError::ThreadCountMismatch {
                declared: header.procs,
                found: thread_idx,
            });
        }
        let txs = parse_thread_line(&lines, thread_idx)?;
        hash.write_u64(txs as u64);
        for _ in 0..txs {
            let tx = read_tx(&mut lines, &mut hash)?;
            sink(thread_idx, tx);
        }
    }

    lines.expect("`eof` trailer")?;
    if lines.buf.trim() != "eof" {
        if lines.buf.trim().starts_with("thread ") {
            // More thread sections than the header declared.
            let extra = count_extra_threads(&mut lines)?;
            return Err(TraceError::ThreadCountMismatch {
                declared: header.procs,
                found: header.procs + 1 + extra,
            });
        }
        return Err(lines.parse_err(format!("expected `eof`, found `{}`", lines.buf.trim())));
    }
    if lines.advance()? {
        return Err(lines.parse_err("trailing content after `eof`"));
    }

    let computed = hash.finish();
    if computed != header.fingerprint {
        return Err(TraceError::FingerprintMismatch {
            declared: header.fingerprint,
            computed,
        });
    }
    Ok((header, computed))
}

fn count_extra_threads<R: BufRead>(lines: &mut Lines<R>) -> Result<usize, TraceError> {
    let mut extra = 0;
    while lines.advance()? {
        if lines.buf.trim().starts_with("thread ") {
            extra += 1;
        }
    }
    Ok(extra)
}

fn read_header<R: BufRead>(lines: &mut Lines<R>) -> Result<Header, TraceError> {
    lines.expect("`htmtrace v1` header")?;
    let version = lines
        .buf
        .trim()
        .strip_prefix("htmtrace ")
        .ok_or_else(|| lines.parse_err("not an htmtrace file (missing `htmtrace v1` header)"))?
        .to_string();
    if version != format!("v{TRACE_VERSION}") {
        return Err(TraceError::UnsupportedVersion { found: version });
    }

    lines.expect("`procs N` header line")?;
    let procs = {
        let token = lines
            .buf
            .trim()
            .strip_prefix("procs ")
            .ok_or_else(|| lines.parse_err("expected `procs N`"))?
            .trim()
            .to_string();
        let n = parse_u64(lines, &token, "processor count")? as usize;
        if n == 0 {
            return Err(lines.parse_err("processor count must be at least 1"));
        }
        n
    };

    lines.expect("`workload NAME` header line")?;
    let name = lines
        .buf
        .trim()
        .strip_prefix("workload ")
        .ok_or_else(|| lines.parse_err("expected `workload NAME`"))?
        .trim()
        .to_string();
    if name.is_empty() {
        return Err(lines.parse_err("workload name must not be empty"));
    }

    lines.expect("`fingerprint HEX16` header line")?;
    let fingerprint = {
        let token = lines
            .buf
            .trim()
            .strip_prefix("fingerprint ")
            .ok_or_else(|| lines.parse_err("expected `fingerprint HEX16`"))?
            .trim()
            .to_string();
        u64::from_str_radix(&token, 16)
            .map_err(|_| lines.parse_err(format!("invalid fingerprint `{token}`")))?
    };

    Ok(Header {
        procs,
        name,
        fingerprint,
    })
}

fn parse_thread_line<R: BufRead>(
    lines: &Lines<R>,
    expected_idx: usize,
) -> Result<usize, TraceError> {
    let mut parts = lines.buf.trim().split_ascii_whitespace();
    let (kw, idx, txs_kw, txs) = (parts.next(), parts.next(), parts.next(), parts.next());
    match (kw, idx, txs_kw, txs, parts.next()) {
        (Some("thread"), Some(idx), Some("txs"), Some(txs), None) => {
            let idx = parse_u64(lines, idx, "thread index")? as usize;
            if idx != expected_idx {
                return Err(lines.parse_err(format!(
                    "thread sections must be sequential: expected thread {expected_idx}, \
                     found thread {idx}"
                )));
            }
            Ok(parse_u64(lines, txs, "transaction count")? as usize)
        }
        _ => Err(lines.parse_err(format!(
            "expected `thread {expected_idx} txs N`, found `{}`",
            lines.buf.trim()
        ))),
    }
}

fn read_tx<R: BufRead>(lines: &mut Lines<R>, hash: &mut Fnv64) -> Result<Transaction, TraceError> {
    lines.expect("`tx ID pre P ops N` line")?;
    let (tx_id, pre_compute, declared_ops) = {
        let mut parts = lines.buf.trim().split_ascii_whitespace();
        match (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) {
            (Some("tx"), Some(id), Some("pre"), Some(pre), Some("ops"), Some(n), None) => (
                parse_u64(lines, id, "tx id")?,
                parse_u64(lines, pre, "pre-compute cycle count")?,
                parse_u64(lines, n, "op count")? as usize,
            ),
            _ => {
                return Err(lines.parse_err(format!(
                    "expected `tx ID pre P ops N`, found `{}`",
                    lines.buf.trim()
                )))
            }
        }
    };

    hash.write_u64(tx_id);
    hash.write_u64(pre_compute);
    hash.write_u64(declared_ops as u64);

    let mut ops = Vec::with_capacity(declared_ops);
    while ops.len() < declared_ops {
        lines.expect(&format!(
            "operation line ({} of {} in current tx)",
            ops.len() + 1,
            declared_ops
        ))?;
        let (kind, value) = {
            let mut parts = lines.buf.trim().split_ascii_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(kind), Some(value), None) => (kind.to_string(), value.to_string()),
                _ => {
                    return Err(lines.parse_err(format!(
                        "expected `r|w|c|m VALUE`, found `{}`",
                        lines.buf.trim()
                    )))
                }
            }
        };
        let value = parse_u64(lines, &value, "operand")?;
        match kind.as_str() {
            "r" => ops.push(Op::Read(value)),
            "w" => ops.push(Op::Write(value)),
            "c" => ops.push(Op::Compute(value)),
            "m" => {
                // Read-modify-write sugar: two ops toward the declared count.
                if ops.len() + 2 > declared_ops {
                    return Err(lines.parse_err(
                        "`m` expands to a read + a write and needs 2 remaining \
                         declared ops",
                    ));
                }
                ops.push(Op::Read(value));
                ops.push(Op::Write(value));
            }
            other => return Err(lines.parse_err(format!("unknown op kind `{other}`"))),
        }
    }

    lines.expect("`end` after the declared ops")?;
    if lines.buf.trim() != "end" {
        return Err(lines.parse_err(format!(
            "expected `end` after {declared_ops} ops, found `{}`",
            lines.buf.trim()
        )));
    }

    for op in &ops {
        match op {
            Op::Read(a) => {
                hash.write_u64(0);
                hash.write_u64(*a);
            }
            Op::Write(a) => {
                hash.write_u64(1);
                hash.write_u64(*a);
            }
            Op::Compute(c) => {
                hash.write_u64(2);
                hash.write_u64(*c);
            }
        }
    }

    Ok(Transaction {
        tx_id,
        pre_compute,
        ops,
    })
}

/// Convenience: a reader that counts raw bytes as they stream through,
/// used by tests to show the file is consumed incrementally.
pub struct CountingReader<R> {
    inner: R,
    bytes: u64,
}

impl<R> CountingReader<R> {
    /// Wrap a reader.
    pub fn new(inner: R) -> Self {
        Self { inner, bytes: 0 }
    }

    /// Bytes pulled through so far.
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.bytes
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadScale;

    fn toy() -> WorkloadTrace {
        crate::by_name("intruder", 3, WorkloadScale::Test, 42).unwrap()
    }

    #[test]
    fn round_trip_is_byte_exact() {
        let w = toy();
        let text = render(&w);
        let loaded = read_from(text.as_bytes()).unwrap();
        assert_eq!(loaded.workload, w);
        assert_eq!(loaded.fingerprint, w.fingerprint());
        assert_eq!(render(&loaded.workload), text);
    }

    #[test]
    fn validate_matches_read() {
        let w = toy();
        let text = render(&w);
        let summary = validate_from(text.as_bytes()).unwrap();
        assert_eq!(summary.name, "intruder");
        assert_eq!(summary.procs, 3);
        assert_eq!(summary.transactions, w.total_transactions());
        assert_eq!(summary.fingerprint, w.fingerprint());
        let refs: usize = w
            .threads
            .iter()
            .flat_map(|t| t.transactions.iter())
            .map(Transaction::memory_ops)
            .sum();
        assert_eq!(summary.memory_refs, refs);
    }

    #[test]
    fn comments_and_blank_lines_are_tolerated() {
        let w = toy();
        let mut text = String::from("# recorded by a human\n\n");
        for line in render(&w).lines() {
            text.push_str(line);
            text.push_str("\n# note\n\n");
        }
        let loaded = read_from(text.as_bytes()).unwrap();
        assert_eq!(loaded.workload, w);
    }

    #[test]
    fn rmw_sugar_expands_to_read_plus_write() {
        let text = "htmtrace v1\n\
                    procs 1\n\
                    workload rmwtoy\n\
                    fingerprint 0\n\
                    thread 0 txs 1\n\
                    tx 7 pre 0 ops 2\n\
                    m 640\n\
                    end\n\
                    eof\n";
        // Fingerprint is wrong on purpose; grab the computed one from the error.
        let err = read_from(text.as_bytes()).unwrap_err();
        let computed = match err {
            TraceError::FingerprintMismatch { computed, .. } => computed,
            other => panic!("expected fingerprint mismatch, got {other}"),
        };
        let fixed = text.replace("fingerprint 0", &format!("fingerprint {computed:016x}"));
        let loaded = read_from(fixed.as_bytes()).unwrap();
        let ops = &loaded.workload.threads[0].transactions[0].ops;
        assert_eq!(ops, &vec![Op::Read(640), Op::Write(640)]);
        // The expansion is hashed as r + w, i.e. identical to the explicit form.
        let explicit = fixed.replace("m 640", "r 640\nw 640");
        assert_eq!(
            read_from(explicit.as_bytes()).unwrap().workload,
            loaded.workload
        );
    }

    #[test]
    fn rmw_overflowing_declared_ops_is_a_parse_error() {
        let text = "htmtrace v1\nprocs 1\nworkload t\nfingerprint 0\n\
                    thread 0 txs 1\ntx 1 pre 0 ops 1\nm 64\nend\neof\n";
        match read_from(text.as_bytes()).unwrap_err() {
            TraceError::Parse { line, .. } => assert_eq!(line, 7),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn truncated_body_is_reported_with_line_number() {
        let w = toy();
        let text = render(&w);
        let cut = text.len() / 2;
        let cut = text[..cut].rfind('\n').unwrap() + 1;
        match read_from(&text.as_bytes()[..cut]).unwrap_err() {
            TraceError::Truncated { line, .. } => assert!(line > 4),
            other => panic!("expected truncation error, got {other}"),
        }
    }

    #[test]
    fn missing_eof_is_truncation() {
        let w = toy();
        let text = render(&w);
        let no_eof = text.strip_suffix("eof\n").unwrap();
        match read_from(no_eof.as_bytes()).unwrap_err() {
            TraceError::Truncated { expected, .. } => assert!(expected.contains("eof")),
            other => panic!("expected truncation error, got {other}"),
        }
    }

    #[test]
    fn edited_body_fails_the_fingerprint_check() {
        let w = toy();
        let text = render(&w);
        // Rewrite the first read's address; structure stays valid, hash changes.
        let line = text
            .lines()
            .find(|l| l.starts_with("r "))
            .unwrap()
            .to_string();
        let edited = text.replacen(&line, "r 1234567", 1);
        match read_from(edited.as_bytes()).unwrap_err() {
            TraceError::FingerprintMismatch { declared, computed } => {
                assert_eq!(declared, w.fingerprint());
                assert_ne!(computed, declared);
            }
            other => panic!("expected fingerprint mismatch, got {other}"),
        }
    }

    #[test]
    fn future_version_is_refused_up_front() {
        let text = "htmtrace v2\nprocs 1\nworkload t\nfingerprint 0\neof\n";
        match read_from(text.as_bytes()).unwrap_err() {
            TraceError::UnsupportedVersion { found } => assert_eq!(found, "v2"),
            other => panic!("expected version error, got {other}"),
        }
    }

    #[test]
    fn over_declared_procs_is_a_dedicated_error() {
        let w = toy();
        let text = render(&w).replace("procs 3", "procs 64");
        match read_from(text.as_bytes()).unwrap_err() {
            TraceError::ThreadCountMismatch { declared, found } => {
                assert_eq!(declared, 64);
                assert_eq!(found, 3);
            }
            other => panic!("expected thread-count mismatch, got {other}"),
        }
    }

    #[test]
    fn under_declared_procs_is_also_refused() {
        let w = toy();
        let text = render(&w).replace("procs 3", "procs 2");
        match read_from(text.as_bytes()).unwrap_err() {
            TraceError::ThreadCountMismatch { declared, found } => {
                assert_eq!(declared, 2);
                assert!(found > 2);
            }
            other => panic!("expected thread-count mismatch, got {other}"),
        }
    }

    #[test]
    fn non_sequential_thread_sections_are_rejected() {
        let text = "htmtrace v1\nprocs 2\nworkload t\nfingerprint 0\n\
                    thread 1 txs 0\nthread 0 txs 0\neof\n";
        match read_from(text.as_bytes()).unwrap_err() {
            TraceError::Parse { line, message } => {
                assert_eq!(line, 5);
                assert!(message.contains("sequential"));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn trailing_content_after_eof_is_rejected() {
        let w = toy();
        let text = render(&w) + "r 640\n";
        match read_from(text.as_bytes()).unwrap_err() {
            TraceError::Parse { message, .. } => assert!(message.contains("trailing")),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn not_a_trace_file_is_a_parse_error_on_line_1() {
        match read_from("{\"json\": true}\n".as_bytes()).unwrap_err() {
            TraceError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn axis_name_is_stable_and_sanitized() {
        let w = toy();
        let loaded = read_from(render(&w).as_bytes()).unwrap();
        let expected = format!("trace-intruder-{:08x}", w.fingerprint() >> 32);
        assert_eq!(loaded.axis_name(), expected);
        let odd = LoadedTrace {
            workload: WorkloadTrace::new("My Trace.v2", vec![]),
            fingerprint: 0xabcd_ef01_2345_6789,
        };
        assert_eq!(odd.axis_name(), "trace-my-trace-v2-abcdef01");
    }

    #[test]
    fn file_round_trip_through_disk() {
        let dir = std::env::temp_dir().join("htm-trace-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.trace");
        let w = toy();
        record_to_path(&path, &w).unwrap();
        let loaded = read_from_path(&path).unwrap();
        assert_eq!(loaded.workload, w);
        let summary = validate_path(&path).unwrap();
        assert_eq!(summary.fingerprint, w.fingerprint());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        match read_from_path("/nonexistent/trace/file.trace").unwrap_err() {
            TraceError::Io(_) => {}
            other => panic!("expected io error, got {other}"),
        }
    }
}
