//! Extension workloads beyond the paper's three applications.
//!
//! The conclusion of the paper plans to evaluate "a larger suite of
//! applications"; these generators model the transactional shape of the
//! remaining commonly used STAMP applications so the harness (and downstream
//! users) can explore the proposal beyond the published evaluation:
//!
//! * **vacation** — travel-reservation system: moderate transactions over a
//!   large database, low contention,
//! * **kmeans** — clustering: tiny transactions updating shared centroids,
//!   low-to-moderate contention, heavy per-item compute outside transactions,
//! * **ssca2** — graph kernel: very short transactions inserting edges,
//!   negligible contention,
//! * **labyrinth** — maze routing: very long transactions copying a large
//!   grid privately and writing the chosen path back, very high contention,
//! * **bayes** — Bayesian network structure learning: medium-to-long
//!   transactions mutating a shared dependency graph and its score cache,
//!   high contention with widely varying transaction lengths.

use htm_tcc::txn::WorkloadTrace;

use crate::spec::{Range, SyntheticSpec, WorkloadScale};

/// Synthetic specification for STAMP's `vacation`.
#[must_use]
pub fn vacation_spec(seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        name: "vacation".into(),
        seed,
        hot_lines: 8,
        cold_lines: 1024,
        private_lines: 64,
        txs_per_thread: 48,
        static_txs: 3,
        reads_per_tx: Range::new(6, 14),
        writes_per_tx: Range::new(2, 4),
        hot_read_prob: 0.04,
        hot_write_prob: 0.05,
        shared_cold_prob: 0.85,
        compute_between_ops: Range::new(1, 4),
        pre_compute: Range::new(10, 30),
        site_rmw_prob: 0.05,
        tx_id_base: 0x4_0000,
    }
}

/// Synthetic specification for STAMP's `kmeans`.
#[must_use]
pub fn kmeans_spec(seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        name: "kmeans".into(),
        seed,
        // The shared centroid accumulators.
        hot_lines: 16,
        cold_lines: 64,
        private_lines: 128,
        txs_per_thread: 80,
        static_txs: 1,
        reads_per_tx: Range::new(1, 3),
        writes_per_tx: Range::new(1, 2),
        hot_read_prob: 0.35,
        hot_write_prob: 0.35,
        shared_cold_prob: 0.20,
        compute_between_ops: Range::new(1, 3),
        // The distance computation happens outside the transaction.
        pre_compute: Range::new(40, 120),
        site_rmw_prob: 0.45,
        tx_id_base: 0x5_0000,
    }
}

/// Synthetic specification for STAMP's `ssca2`.
#[must_use]
pub fn ssca2_spec(seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        name: "ssca2".into(),
        seed,
        hot_lines: 4,
        cold_lines: 2048,
        private_lines: 64,
        txs_per_thread: 100,
        static_txs: 2,
        reads_per_tx: Range::new(1, 3),
        writes_per_tx: Range::new(1, 2),
        hot_read_prob: 0.01,
        hot_write_prob: 0.02,
        shared_cold_prob: 0.90,
        compute_between_ops: Range::new(1, 2),
        pre_compute: Range::new(5, 15),
        site_rmw_prob: 0.02,
        tx_id_base: 0x6_0000,
    }
}

/// Synthetic specification for STAMP's `labyrinth`.
#[must_use]
pub fn labyrinth_spec(seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        name: "labyrinth".into(),
        seed,
        // The maze grid region the concurrently routed paths fight over.
        hot_lines: 48,
        cold_lines: 512,
        private_lines: 256,
        txs_per_thread: 12,
        static_txs: 1,
        reads_per_tx: Range::new(30, 60),
        writes_per_tx: Range::new(10, 25),
        hot_read_prob: 0.30,
        hot_write_prob: 0.35,
        shared_cold_prob: 0.70,
        compute_between_ops: Range::new(1, 4),
        pre_compute: Range::new(50, 150),
        site_rmw_prob: 0.70,
        tx_id_base: 0x7_0000,
    }
}

/// Synthetic specification for STAMP's `bayes`.
#[must_use]
pub fn bayes_spec(seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        name: "bayes".into(),
        seed,
        // The learned dependency graph's adjacency + score structures.
        hot_lines: 12,
        cold_lines: 768,
        private_lines: 128,
        txs_per_thread: 36,
        static_txs: 4,
        reads_per_tx: Range::new(8, 22),
        writes_per_tx: Range::new(2, 6),
        hot_read_prob: 0.20,
        hot_write_prob: 0.25,
        shared_cold_prob: 0.75,
        compute_between_ops: Range::new(2, 6),
        // Scoring a candidate edge is compute-heavy and non-transactional.
        pre_compute: Range::new(30, 90),
        site_rmw_prob: 0.40,
        tx_id_base: 0x20_0000,
    }
}

/// Generate `vacation` for `threads` threads.
#[must_use]
pub fn vacation(threads: usize, scale: WorkloadScale, seed: u64) -> WorkloadTrace {
    vacation_spec(seed).generate(threads, scale)
}

/// Generate `kmeans` for `threads` threads.
#[must_use]
pub fn kmeans(threads: usize, scale: WorkloadScale, seed: u64) -> WorkloadTrace {
    kmeans_spec(seed).generate(threads, scale)
}

/// Generate `ssca2` for `threads` threads.
#[must_use]
pub fn ssca2(threads: usize, scale: WorkloadScale, seed: u64) -> WorkloadTrace {
    ssca2_spec(seed).generate(threads, scale)
}

/// Generate `labyrinth` for `threads` threads.
#[must_use]
pub fn labyrinth(threads: usize, scale: WorkloadScale, seed: u64) -> WorkloadTrace {
    labyrinth_spec(seed).generate(threads, scale)
}

/// Generate `bayes` for `threads` threads.
#[must_use]
pub fn bayes(threads: usize, scale: WorkloadScale, seed: u64) -> WorkloadTrace {
    bayes_spec(seed).generate(threads, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_ops(w: &WorkloadTrace) -> f64 {
        let txs: Vec<_> = w
            .threads
            .iter()
            .flat_map(|t| t.transactions.iter())
            .collect();
        txs.iter().map(|t| t.memory_ops() as f64).sum::<f64>() / txs.len() as f64
    }

    #[test]
    fn labyrinth_has_the_longest_transactions() {
        let lab = mean_ops(&labyrinth(4, WorkloadScale::Full, 1));
        let vac = mean_ops(&vacation(4, WorkloadScale::Full, 1));
        let km = mean_ops(&kmeans(4, WorkloadScale::Full, 1));
        let ss = mean_ops(&ssca2(4, WorkloadScale::Full, 1));
        assert!(lab > vac && lab > km && lab > ss);
    }

    #[test]
    fn ssca2_and_kmeans_are_tiny() {
        assert!(mean_ops(&ssca2(4, WorkloadScale::Full, 1)) <= 5.0);
        assert!(mean_ops(&kmeans(4, WorkloadScale::Full, 1)) <= 5.0);
    }

    #[test]
    fn all_extensions_generate_for_16_threads() {
        for gen in [vacation, kmeans, ssca2, labyrinth, bayes] {
            let w = gen(16, WorkloadScale::Test, 1);
            assert_eq!(w.num_threads(), 16);
            assert!(w.total_transactions() > 0);
        }
    }

    #[test]
    fn bayes_sits_between_vacation_and_labyrinth() {
        let bay = mean_ops(&bayes(4, WorkloadScale::Full, 1));
        let vac = mean_ops(&vacation(4, WorkloadScale::Full, 1));
        let lab = mean_ops(&labyrinth(4, WorkloadScale::Full, 1));
        assert!(vac < bay && bay < lab);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<String> = [
            vacation(1, WorkloadScale::Test, 1).name,
            kmeans(1, WorkloadScale::Test, 1).name,
            ssca2(1, WorkloadScale::Test, 1).name,
            labyrinth(1, WorkloadScale::Test, 1).name,
            bayes(1, WorkloadScale::Test, 1).name,
        ]
        .into_iter()
        .collect();
        assert_eq!(names.len(), 5);
    }
}
