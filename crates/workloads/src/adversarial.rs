//! Adversarial microbenchmark generators.
//!
//! The STAMP-style workloads model real applications; these four model the
//! *pathologies* the transactional-memory literature reasons about — the
//! access patterns where contention management (and hence clock-gate-on-
//! abort) is stressed hardest:
//!
//! * **hotspot** — every transaction read-modify-writes one shared counter
//!   line: the worst case for eager retry, the best case for gating,
//! * **zipfian** — accesses drawn from a Zipf popularity distribution over
//!   a shared pool, so a few lines absorb most of the conflicts while the
//!   tail stays quiet,
//! * **ring** — a producer/consumer ring: producers fight over the head
//!   index, consumers over the tail, and both touch the slot lines,
//! * **longshort** — long read-only scans racing short writers through the
//!   same region: the classic starvation shape (writers keep killing
//!   readers that are almost done).
//!
//! All four are deterministic in (threads, scale, seed) like every other
//! generator in this crate.

use htm_sim::rng::DeterministicRng;
use htm_tcc::txn::{Op, ThreadTrace, Transaction, WorkloadTrace};

use crate::layout::AddressLayout;
use crate::spec::WorkloadScale;

/// `tx_id` bases keep the adversarial suite's static transactions disjoint
/// from every other workload's (like distinct code addresses).
const HOTSPOT_TX_BASE: u64 = 0x21_0000;
const ZIPFIAN_TX_BASE: u64 = 0x22_0000;
const RING_TX_BASE: u64 = 0x23_0000;
const LONGSHORT_TX_BASE: u64 = 0x24_0000;

/// Lines in the zipfian shared pool.
const ZIPF_POOL_LINES: u64 = 192;

/// Lines scanned by `longshort` readers and peppered by its writers.
const LONGSHORT_DATA_LINES: u64 = 64;

fn rng_for(seed: u64, thread: usize) -> DeterministicRng {
    DeterministicRng::new(seed).derive(thread as u64 + 1)
}

/// `hotspot`: every transaction increments the same shared counter line.
///
/// One hot line, read first and written last by every transaction on every
/// thread, with a little private work in between — maximal true
/// contention, so commit throughput is serialized and aborted work is pure
/// waste for the gating policies to reclaim.
#[must_use]
pub fn hotspot(threads: usize, scale: WorkloadScale, seed: u64) -> WorkloadTrace {
    let layout = AddressLayout::new(1, 0, 16, threads as u64);
    let counter = layout.hot(0);
    let txs = scale.txs_per_thread(96);
    let traces = (0..threads)
        .map(|thread| {
            let mut rng = rng_for(seed, thread);
            let transactions = (0..txs)
                .map(|_| {
                    let mut ops = vec![Op::Read(counter), Op::Compute(1 + rng.gen_range(3))];
                    // A touch of private work widens the conflict window.
                    if rng.gen_bool(0.5) {
                        ops.push(Op::Read(
                            layout.private(thread as u64, rng.gen_range(layout.private_lines)),
                        ));
                    }
                    ops.push(Op::Write(counter));
                    Transaction::with_pre_compute(HOTSPOT_TX_BASE, 2 + rng.gen_range(6), ops)
                })
                .collect();
            ThreadTrace::new(transactions)
        })
        .collect();
    WorkloadTrace::new("hotspot", traces)
}

/// Zipf(1) cumulative distribution over `n` items, built with IEEE
/// divisions and additions only (bit-identical on every platform).
fn zipf_cdf(n: u64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n as usize);
    let mut total = 0.0f64;
    for i in 0..n {
        total += 1.0 / (i + 1) as f64;
        cdf.push(total);
    }
    let norm = total;
    for c in &mut cdf {
        *c /= norm;
    }
    cdf
}

fn zipf_sample(cdf: &[f64], rng: &mut DeterministicRng) -> u64 {
    let u = rng.gen_f64();
    cdf.partition_point(|&c| c <= u) as u64
}

/// `zipfian`: reads and writes drawn from a Zipf popularity distribution
/// over a shared pool, so the head of the distribution is a conflict
/// hotspot while the tail commits freely — the skew that separates
/// adaptive policies from fixed windows.
#[must_use]
pub fn zipfian(threads: usize, scale: WorkloadScale, seed: u64) -> WorkloadTrace {
    let layout = AddressLayout::new(ZIPF_POOL_LINES, 0, 16, threads as u64);
    let cdf = zipf_cdf(ZIPF_POOL_LINES);
    let txs = scale.txs_per_thread(64);
    let traces = (0..threads)
        .map(|thread| {
            let mut rng = rng_for(seed, thread);
            let transactions = (0..txs)
                .map(|iteration| {
                    let site = iteration % 3;
                    let reads = 4 + rng.gen_range(5);
                    let writes = 1 + rng.gen_range(3);
                    let mut ops = Vec::with_capacity((reads + writes) as usize * 2);
                    for _ in 0..reads {
                        ops.push(Op::Read(layout.hot(zipf_sample(&cdf, &mut rng))));
                        ops.push(Op::Compute(1 + rng.gen_range(3)));
                    }
                    for _ in 0..writes {
                        ops.push(Op::Write(layout.hot(zipf_sample(&cdf, &mut rng))));
                    }
                    Transaction::with_pre_compute(
                        ZIPFIAN_TX_BASE + site as u64 * 0x40,
                        4 + rng.gen_range(8),
                        ops,
                    )
                })
                .collect();
            ThreadTrace::new(transactions)
        })
        .collect();
    WorkloadTrace::new("zipfian", traces)
}

/// `ring`: a producer/consumer ring buffer.
///
/// Even threads produce (read-modify-write the head index, then write a
/// slot), odd threads consume (read-modify-write the tail index, then read
/// a slot). Producers conflict with producers, consumers with consumers,
/// and everyone meets on the slot lines — two disjoint hotspots plus a
/// shared data plane.
#[must_use]
pub fn ring(threads: usize, scale: WorkloadScale, seed: u64) -> WorkloadTrace {
    let slots = (2 * threads.max(1)) as u64;
    // Hot region: head (0), tail (1), then the slot lines.
    let layout = AddressLayout::new(2 + slots, 0, 8, threads as u64);
    let head = layout.hot(0);
    let tail = layout.hot(1);
    let txs = scale.txs_per_thread(80);
    let traces = (0..threads)
        .map(|thread| {
            let mut rng = rng_for(seed, thread);
            let producer = thread % 2 == 0;
            let (index_line, tx_id) = if producer {
                (head, RING_TX_BASE)
            } else {
                (tail, RING_TX_BASE + 0x40)
            };
            let transactions = (0..txs)
                .map(|_| {
                    let slot = layout.hot(2 + rng.gen_range(slots));
                    let mut ops = vec![Op::Read(index_line), Op::Compute(1 + rng.gen_range(2))];
                    if producer {
                        ops.push(Op::Write(slot));
                    } else {
                        ops.push(Op::Read(slot));
                        ops.push(Op::Compute(2 + rng.gen_range(4)));
                    }
                    ops.push(Op::Write(index_line));
                    Transaction::with_pre_compute(tx_id, 3 + rng.gen_range(5), ops)
                })
                .collect();
            ThreadTrace::new(transactions)
        })
        .collect();
    WorkloadTrace::new("ring", traces)
}

/// `longshort`: long read-only scans vs. short writers.
///
/// The first half of the threads run a few long transactions reading a
/// large slice of the shared region; the other half run many short
/// transactions each writing one or two lines of it. Writers repeatedly
/// invalidate readers' large read sets — the starvation pathology where
/// backoff-style policies shine or embarrass themselves.
#[must_use]
pub fn longshort(threads: usize, scale: WorkloadScale, seed: u64) -> WorkloadTrace {
    let layout = AddressLayout::new(LONGSHORT_DATA_LINES, 0, 16, threads as u64);
    let readers = threads.div_ceil(2);
    let long_txs = scale.txs_per_thread(10);
    let short_txs = scale.txs_per_thread(120);
    let traces = (0..threads)
        .map(|thread| {
            let mut rng = rng_for(seed, thread);
            let transactions = if thread < readers {
                (0..long_txs)
                    .map(|_| {
                        let span = 24 + rng.gen_range(25);
                        let start = rng.gen_range(LONGSHORT_DATA_LINES);
                        let mut ops = Vec::with_capacity(span as usize * 2);
                        for i in 0..span {
                            ops.push(Op::Read(layout.hot((start + i) % LONGSHORT_DATA_LINES)));
                            if i % 4 == 0 {
                                ops.push(Op::Compute(1 + rng.gen_range(2)));
                            }
                        }
                        Transaction::with_pre_compute(
                            LONGSHORT_TX_BASE,
                            10 + rng.gen_range(20),
                            ops,
                        )
                    })
                    .collect()
            } else {
                (0..short_txs)
                    .map(|_| {
                        let mut ops =
                            vec![Op::Write(layout.hot(rng.gen_range(LONGSHORT_DATA_LINES)))];
                        if rng.gen_bool(0.4) {
                            ops.push(Op::Write(layout.hot(rng.gen_range(LONGSHORT_DATA_LINES))));
                        }
                        Transaction::with_pre_compute(
                            LONGSHORT_TX_BASE + 0x40,
                            2 + rng.gen_range(5),
                            ops,
                        )
                    })
                    .collect()
            };
            ThreadTrace::new(transactions)
        })
        .collect();
    WorkloadTrace::new("longshort", traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_are_deterministic() {
        for gen in [hotspot, zipfian, ring, longshort] {
            let a = gen(4, WorkloadScale::Test, 42);
            let b = gen(4, WorkloadScale::Test, 42);
            assert_eq!(a, b);
            assert_ne!(a, gen(4, WorkloadScale::Test, 43));
        }
    }

    #[test]
    fn all_four_generate_for_any_thread_count() {
        for gen in [hotspot, zipfian, ring, longshort] {
            for threads in [1, 2, 3, 16] {
                let w = gen(threads, WorkloadScale::Test, 1);
                assert_eq!(w.num_threads(), threads);
                assert!(w.total_transactions() > 0);
            }
        }
    }

    #[test]
    fn hotspot_every_tx_rmws_the_counter() {
        let w = hotspot(4, WorkloadScale::Test, 7);
        for tx in w.threads.iter().flat_map(|t| t.transactions.iter()) {
            assert_eq!(tx.ops.first(), Some(&Op::Read(0)));
            assert_eq!(tx.ops.last(), Some(&Op::Write(0)));
        }
    }

    #[test]
    fn zipfian_head_is_hotter_than_the_tail() {
        let w = zipfian(4, WorkloadScale::Full, 7);
        let mut counts = vec![0usize; ZIPF_POOL_LINES as usize];
        for tx in w.threads.iter().flat_map(|t| t.transactions.iter()) {
            for op in &tx.ops {
                if let Op::Read(a) | Op::Write(a) = op {
                    counts[(a / crate::layout::LINE_BYTES) as usize] += 1;
                }
            }
        }
        let head = counts[0];
        let tail: usize = counts[counts.len() / 2..].iter().sum();
        assert!(
            head > counts[counts.len() / 2] * 10,
            "line 0 ({head}) must dwarf the median line"
        );
        assert!(
            head * 2 > tail,
            "the head rivals the whole upper tail ({tail})"
        );
    }

    #[test]
    fn ring_separates_producer_and_consumer_roles() {
        let w = ring(4, WorkloadScale::Test, 7);
        let head = 0u64;
        let tail = crate::layout::LINE_BYTES;
        for (thread, t) in w.threads.iter().enumerate() {
            for tx in &t.transactions {
                let index = if thread % 2 == 0 { head } else { tail };
                assert_eq!(tx.ops.first(), Some(&Op::Read(index)));
                assert_eq!(tx.ops.last(), Some(&Op::Write(index)));
            }
        }
    }

    #[test]
    fn longshort_readers_scan_and_writers_poke() {
        let w = longshort(4, WorkloadScale::Test, 7);
        let reader_mean: f64 = w.threads[0]
            .transactions
            .iter()
            .map(|t| t.memory_ops() as f64)
            .sum::<f64>()
            / w.threads[0].transactions.len() as f64;
        let writer_mean: f64 = w.threads[3]
            .transactions
            .iter()
            .map(|t| t.memory_ops() as f64)
            .sum::<f64>()
            / w.threads[3].transactions.len() as f64;
        assert!(reader_mean > 20.0);
        assert!(writer_mean < 3.0);
        assert!(w.threads[3].transactions.len() > w.threads[0].transactions.len());
        // Readers never write the shared region; writers never read it.
        for tx in &w.threads[0].transactions {
            assert!(tx.write_addrs().is_empty());
        }
        for tx in &w.threads[3].transactions {
            assert!(tx.read_addrs().is_empty());
        }
    }

    #[test]
    fn footprints_stay_within_layout() {
        for gen in [hotspot, zipfian, ring, longshort] {
            let w = gen(8, WorkloadScale::Full, 3);
            assert!(w.max_addr().unwrap() < 4 * 1024 * 1024);
        }
    }
}
