//! # htm-workloads — STAMP-like synthetic transactional workloads
//!
//! The paper evaluates its proposal with three applications from the STAMP
//! benchmark suite — **genome**, **yada** and **intruder** — running on the
//! M5 full-system simulator. We cannot execute the original C benchmarks on
//! our trace-driven substrate, so this crate generates synthetic
//! transactional traces whose *shape* follows the published STAMP
//! characterization (transaction length, read/write-set size, contention
//! level and the loop structure in which the transactions are executed):
//!
//! | workload | tx length | r/w sets | contention | notes |
//! |----------|-----------|----------|------------|-------|
//! | genome   | moderate  | moderate | low–moderate | hash-set insertions, phases with little sharing |
//! | yada     | long      | large    | moderate–high | mesh refinement; long transactions repeated in loops |
//! | intruder | short     | small    | high       | shared work queue + dictionary |
//!
//! Extension workloads (vacation, kmeans, ssca2, labyrinth, bayes) are
//! included for the "larger suite of applications" the paper's conclusion
//! plans to explore; they follow the same construction. The `clustered`
//! workload targets the 64–1024-processor sharded machines: threads form
//! conflict-isolated eight-thread clusters, each confined to its own 32 KiB
//! address window, so the shard-parallel engine can simulate the clusters on
//! parallel host threads (see [`clustered`] and `docs/SCALING.md`). The
//! [`adversarial`] module adds four worst-case microbenchmarks (hotspot,
//! zipfian, ring, longshort) that stress contention management directly.
//!
//! Beyond the generators, [`trace`] gives the workload interface a file
//! format: any workload can be recorded to a compact line-oriented
//! `htmtrace v1` file and read back — byte-exactly — through a streaming,
//! bounded-memory reader, so the simulator can also be driven by traces
//! captured outside this repo.
//!
//! All generators are deterministic: the same parameters and seed produce an
//! identical [`htm_tcc::WorkloadTrace`] on every platform, which the
//! experiment harness relies on for reproducibility.
//!
//! ```
//! use htm_workloads::{by_name, workload_names, WorkloadScale};
//!
//! let trace = by_name("intruder", 4, WorkloadScale::Test, 42).unwrap();
//! assert_eq!(trace.num_threads(), 4);
//! assert!(trace.total_transactions() > 0);
//! // Same name + parameters + seed => identical trace.
//! assert_eq!(trace, by_name("intruder", 4, WorkloadScale::Test, 42).unwrap());
//! assert_eq!(workload_names().len(), 13);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversarial;
pub mod clustered;
pub mod extensions;
pub mod genome;
pub mod intruder;
pub mod layout;
pub mod registry;
pub mod spec;
pub mod trace;
pub mod yada;

pub use layout::AddressLayout;
pub use registry::{by_name, stamp_trio, workload_names, CORPUS_WORKLOADS};
pub use spec::{SyntheticSpec, WorkloadScale};
pub use trace::{LoadedTrace, TraceError, TraceSummary};
