//! `intruder` — network intrusion detection (STAMP).
//!
//! STAMP's intruder emulates a signature-based network intrusion detection
//! system: threads repeatedly dequeue packet fragments from a shared work
//! queue, reassemble them in a shared dictionary and run detection on
//! complete flows. The characterization the paper relies on: **short
//! transactions, small read/write sets and a high contention / abort rate**
//! (the work queue head and the dictionary buckets are touched by everyone).
//! This is the "highly-conflicting application" of Section VIII where clock
//! gating saves the most energy.

use htm_tcc::txn::WorkloadTrace;

use crate::spec::{Range, SyntheticSpec, WorkloadScale};

/// Default number of transactions per thread at full scale.
pub const DEFAULT_TXS_PER_THREAD: usize = 80;

/// The synthetic specification modelling intruder's transactional behaviour.
#[must_use]
pub fn spec(seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        name: "intruder".into(),
        seed,
        // The shared queue head + a handful of hot dictionary buckets.
        hot_lines: 6,
        // Fragment map / flow table: shared but large.
        cold_lines: 128,
        private_lines: 32,
        txs_per_thread: DEFAULT_TXS_PER_THREAD,
        // capture / reassembly / detection loop bodies.
        static_txs: 3,
        reads_per_tx: Range::new(2, 5),
        writes_per_tx: Range::new(1, 3),
        hot_read_prob: 0.50,
        hot_write_prob: 0.70,
        shared_cold_prob: 0.60,
        compute_between_ops: Range::new(3, 8),
        pre_compute: Range::new(5, 20),
        site_rmw_prob: 0.85,
        tx_id_base: 0x1_0000,
    }
}

/// Generate the intruder workload for `threads` threads.
#[must_use]
pub fn generate(threads: usize, scale: WorkloadScale, seed: u64) -> WorkloadTrace {
    spec(seed).generate(threads, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transactions_are_short() {
        let w = generate(4, WorkloadScale::Full, 1);
        for tx in w.threads.iter().flat_map(|t| t.transactions.iter()) {
            // 2-5 reads + 1-3 writes + the queue-head read-modify-write pair.
            assert!(
                tx.memory_ops() <= 10,
                "intruder transactions are short: {}",
                tx.memory_ops()
            );
            assert!(
                !tx.write_addrs().is_empty(),
                "every transaction updates shared state"
            );
        }
    }

    #[test]
    fn hot_region_is_heavily_used() {
        let w = generate(8, WorkloadScale::Full, 1);
        let hot_limit = 8 * 64;
        let (mut hot, mut total) = (0usize, 0usize);
        for tx in w.threads.iter().flat_map(|t| t.transactions.iter()) {
            for addr in tx.write_addrs() {
                total += 1;
                if addr < hot_limit {
                    hot += 1;
                }
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(
            frac > 0.4,
            "most intruder writes hit the contended structures: {frac:.2}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate(4, WorkloadScale::Small, 3),
            generate(4, WorkloadScale::Small, 3)
        );
        assert_ne!(
            generate(4, WorkloadScale::Small, 3),
            generate(4, WorkloadScale::Small, 4)
        );
    }
}
