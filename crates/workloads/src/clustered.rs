//! `clustered` — communication-clustered workload for large machines.
//!
//! The STAMP-like generators share one global hot region, so at any machine
//! size every processor conflicts (transitively) with every other one. That
//! is the right model for the paper's 4–16-processor bus machines, but a
//! 64–1024-processor machine running a server-consolidation or
//! partitioned-data workload looks different: threads form small groups that
//! share intensely *within* the group and not at all across groups.
//!
//! This generator models exactly that. Threads are grouped into clusters of
//! [`CLUSTER_THREADS`]; each cluster gets its own intruder-like shared
//! region (hot queue head + dictionary, cold table, private lines), confined
//! to a dedicated [`CLUSTER_STRIDE_BYTES`]-aligned address window. With the
//! default 4 KiB directory segments a cluster covers eight consecutive
//! segments, so on a machine with one directory per processor each cluster's
//! data is homed at directories no other cluster touches — the clusters are
//! *conflict-isolated islands*, which is what the shard-parallel engine
//! (`clockgate-htm`'s `islands` module) exploits to simulate them on
//! parallel host threads.

use htm_mem::Addr;
use htm_tcc::txn::{Op, WorkloadTrace};

use crate::spec::{Range, SyntheticSpec, WorkloadScale};

/// Threads per cluster.
pub const CLUSTER_THREADS: usize = 8;

/// Byte stride between cluster address windows (32 KiB = eight 4 KiB
/// directory segments). Each cluster's footprint fits inside its window.
pub const CLUSTER_STRIDE_BYTES: u64 = 32 * 1024;

/// Default number of transactions per thread at full scale.
pub const DEFAULT_TXS_PER_THREAD: usize = 64;

/// The per-cluster synthetic specification: intruder-like contention (short
/// transactions, hot queue head, high abort rate) confined to the cluster.
#[must_use]
pub fn cluster_spec(seed: u64, cluster: usize) -> SyntheticSpec {
    SyntheticSpec {
        name: "clustered".into(),
        // Every cluster draws from its own deterministic stream.
        seed: seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(cluster as u64 + 1)),
        // A queue head plus a few hot buckets, per cluster.
        hot_lines: 6,
        cold_lines: 128,
        private_lines: 32,
        txs_per_thread: DEFAULT_TXS_PER_THREAD,
        static_txs: 3,
        reads_per_tx: Range::new(2, 5),
        writes_per_tx: Range::new(1, 3),
        hot_read_prob: 0.50,
        hot_write_prob: 0.70,
        shared_cold_prob: 0.60,
        compute_between_ops: Range::new(3, 8),
        pre_compute: Range::new(5, 20),
        site_rmw_prob: 0.85,
        // Distinct static-transaction ids per cluster (like distinct code
        // copies), purely for report readability.
        tx_id_base: 0x8_0000 + cluster as u64 * 0x1000,
    }
}

/// Generate the clustered workload for `threads` threads.
///
/// Threads `[0, 8)` form cluster 0 confined to bytes `[0, 32 KiB)`, threads
/// `[8, 16)` form cluster 1 confined to `[32 KiB, 64 KiB)`, and so on; a
/// trailing partial cluster gets fewer threads but its own full window. The
/// per-cluster footprint always fits the 32 KiB window (checked by a test),
/// so clusters never share a cache line, a directory segment or — with at
/// least eight directories per cluster — a directory.
#[must_use]
pub fn generate(threads: usize, scale: WorkloadScale, seed: u64) -> WorkloadTrace {
    let mut all_threads = Vec::with_capacity(threads);
    let clusters = threads.div_ceil(CLUSTER_THREADS);
    for cluster in 0..clusters {
        let members = (threads - cluster * CLUSTER_THREADS).min(CLUSTER_THREADS);
        let spec = cluster_spec(seed, cluster);
        debug_assert!(
            spec.layout(members).footprint_bytes() <= CLUSTER_STRIDE_BYTES,
            "cluster footprint must fit its address window"
        );
        let base = cluster as u64 * CLUSTER_STRIDE_BYTES;
        let local = spec.generate(members, scale);
        for mut thread in local.threads {
            for tx in &mut thread.transactions {
                for op in &mut tx.ops {
                    match op {
                        Op::Read(a) | Op::Write(a) => *a += base as Addr,
                        Op::Compute(_) => {}
                    }
                }
            }
            all_threads.push(thread);
        }
    }
    WorkloadTrace::new("clustered", all_threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_footprint_fits_the_window() {
        for members in 1..=CLUSTER_THREADS {
            let spec = cluster_spec(1, 0);
            assert!(
                spec.layout(members).footprint_bytes() <= CLUSTER_STRIDE_BYTES,
                "{members}-thread cluster overflows its 32 KiB window"
            );
        }
    }

    #[test]
    fn clusters_stay_inside_their_windows() {
        let w = generate(24, WorkloadScale::Full, 7);
        assert_eq!(w.num_threads(), 24);
        for (i, thread) in w.threads.iter().enumerate() {
            let cluster = (i / CLUSTER_THREADS) as u64;
            let lo = cluster * CLUSTER_STRIDE_BYTES;
            let hi = lo + CLUSTER_STRIDE_BYTES;
            for tx in &thread.transactions {
                for op in &tx.ops {
                    if let Op::Read(a) | Op::Write(a) = op {
                        assert!(
                            (lo..hi).contains(a),
                            "thread {i} touches {a:#x} outside [{lo:#x}, {hi:#x})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partial_trailing_cluster_is_generated() {
        let w = generate(12, WorkloadScale::Test, 3);
        assert_eq!(w.num_threads(), 12);
        assert!(w.threads.iter().all(|t| !t.transactions.is_empty()));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate(16, WorkloadScale::Small, 3),
            generate(16, WorkloadScale::Small, 3)
        );
        assert_ne!(
            generate(16, WorkloadScale::Small, 3),
            generate(16, WorkloadScale::Small, 4)
        );
    }

    #[test]
    fn clusters_use_distinct_streams() {
        let w = generate(16, WorkloadScale::Small, 3);
        // Thread 0 (cluster 0) and thread 8 (cluster 1) must not be shifted
        // copies of each other.
        let strip = |t: &htm_tcc::txn::ThreadTrace| -> Vec<Op> {
            t.transactions
                .iter()
                .flat_map(|tx| tx.ops.iter())
                .map(|op| match *op {
                    Op::Read(a) => Op::Read(a % CLUSTER_STRIDE_BYTES),
                    Op::Write(a) => Op::Write(a % CLUSTER_STRIDE_BYTES),
                    Op::Compute(c) => Op::Compute(c),
                })
                .collect()
        };
        assert_ne!(strip(&w.threads[0]), strip(&w.threads[8]));
    }
}
