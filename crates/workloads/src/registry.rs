//! Name-based lookup of all available workloads.
//!
//! The experiment harness, the examples and the `reproduce` binary refer to
//! workloads by name; this module is the single place that maps names to
//! generators.

use htm_tcc::txn::WorkloadTrace;

use crate::spec::WorkloadScale;
use crate::{adversarial, clustered, extensions, genome, intruder, yada};

/// Names of the three applications evaluated in the paper (Section VIII).
pub const PAPER_WORKLOADS: [&str; 3] = ["genome", "yada", "intruder"];

/// Names of every workload this crate can generate.
pub const ALL_WORKLOADS: [&str; 13] = [
    "genome",
    "yada",
    "intruder",
    "vacation",
    "kmeans",
    "ssca2",
    "labyrinth",
    "clustered",
    "bayes",
    "hotspot",
    "zipfian",
    "ring",
    "longshort",
];

/// The scenario corpus beyond the paper's trio: the five remaining
/// STAMP-style kernels plus the four adversarial microbenchmarks. This is
/// the workload axis of the `corpus` sweep preset and the palette the
/// divergence fuzzer samples from.
pub const CORPUS_WORKLOADS: [&str; 9] = [
    "vacation",
    "kmeans",
    "ssca2",
    "labyrinth",
    "bayes",
    "hotspot",
    "zipfian",
    "ring",
    "longshort",
];

/// All available workload names.
#[must_use]
pub fn workload_names() -> Vec<&'static str> {
    ALL_WORKLOADS.to_vec()
}

/// Generate a workload by name. Returns `None` for unknown names.
#[must_use]
pub fn by_name(
    name: &str,
    threads: usize,
    scale: WorkloadScale,
    seed: u64,
) -> Option<WorkloadTrace> {
    match name {
        "genome" => Some(genome::generate(threads, scale, seed)),
        "yada" => Some(yada::generate(threads, scale, seed)),
        "intruder" => Some(intruder::generate(threads, scale, seed)),
        "vacation" => Some(extensions::vacation(threads, scale, seed)),
        "kmeans" => Some(extensions::kmeans(threads, scale, seed)),
        "ssca2" => Some(extensions::ssca2(threads, scale, seed)),
        "labyrinth" => Some(extensions::labyrinth(threads, scale, seed)),
        "clustered" => Some(clustered::generate(threads, scale, seed)),
        "bayes" => Some(extensions::bayes(threads, scale, seed)),
        "hotspot" => Some(adversarial::hotspot(threads, scale, seed)),
        "zipfian" => Some(adversarial::zipfian(threads, scale, seed)),
        "ring" => Some(adversarial::ring(threads, scale, seed)),
        "longshort" => Some(adversarial::longshort(threads, scale, seed)),
        _ => None,
    }
}

/// The paper's three applications, generated for `threads` threads.
#[must_use]
pub fn stamp_trio(threads: usize, scale: WorkloadScale, seed: u64) -> Vec<WorkloadTrace> {
    PAPER_WORKLOADS
        .iter()
        .map(|name| by_name(name, threads, scale, seed).expect("paper workloads always exist"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_workload_is_constructible() {
        for name in workload_names() {
            let w = by_name(name, 4, WorkloadScale::Test, 1).unwrap();
            assert_eq!(w.name, name);
            assert_eq!(w.num_threads(), 4);
        }
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(by_name("doesnotexist", 4, WorkloadScale::Test, 1).is_none());
    }

    #[test]
    fn stamp_trio_matches_paper_order() {
        let trio = stamp_trio(2, WorkloadScale::Test, 1);
        let names: Vec<_> = trio.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, vec!["genome", "yada", "intruder"]);
    }

    #[test]
    fn paper_workloads_are_a_subset_of_all() {
        for p in PAPER_WORKLOADS {
            assert!(ALL_WORKLOADS.contains(&p));
        }
    }

    #[test]
    fn corpus_workloads_are_registered_and_disjoint_from_the_trio() {
        for c in CORPUS_WORKLOADS {
            assert!(ALL_WORKLOADS.contains(&c));
            assert!(!PAPER_WORKLOADS.contains(&c));
            assert!(by_name(c, 2, WorkloadScale::Test, 1).is_some());
        }
    }

    #[test]
    fn tx_id_bases_do_not_collide_across_workloads() {
        use std::collections::HashMap;
        let mut owner: HashMap<u64, &str> = HashMap::new();
        for name in ALL_WORKLOADS {
            let w = by_name(name, 4, WorkloadScale::Test, 1).unwrap();
            for tx in w.threads.iter().flat_map(|t| t.transactions.iter()) {
                let prev = owner.insert(tx.tx_id, name);
                assert!(
                    prev.is_none() || prev == Some(name),
                    "tx_id {:#x} shared by {} and {}",
                    tx.tx_id,
                    prev.unwrap(),
                    name
                );
            }
        }
    }
}
