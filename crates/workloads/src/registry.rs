//! Name-based lookup of all available workloads.
//!
//! The experiment harness, the examples and the `reproduce` binary refer to
//! workloads by name; this module is the single place that maps names to
//! generators.

use htm_tcc::txn::WorkloadTrace;

use crate::spec::WorkloadScale;
use crate::{clustered, extensions, genome, intruder, yada};

/// Names of the three applications evaluated in the paper (Section VIII).
pub const PAPER_WORKLOADS: [&str; 3] = ["genome", "yada", "intruder"];

/// Names of every workload this crate can generate.
pub const ALL_WORKLOADS: [&str; 8] = [
    "genome",
    "yada",
    "intruder",
    "vacation",
    "kmeans",
    "ssca2",
    "labyrinth",
    "clustered",
];

/// All available workload names.
#[must_use]
pub fn workload_names() -> Vec<&'static str> {
    ALL_WORKLOADS.to_vec()
}

/// Generate a workload by name. Returns `None` for unknown names.
#[must_use]
pub fn by_name(
    name: &str,
    threads: usize,
    scale: WorkloadScale,
    seed: u64,
) -> Option<WorkloadTrace> {
    match name {
        "genome" => Some(genome::generate(threads, scale, seed)),
        "yada" => Some(yada::generate(threads, scale, seed)),
        "intruder" => Some(intruder::generate(threads, scale, seed)),
        "vacation" => Some(extensions::vacation(threads, scale, seed)),
        "kmeans" => Some(extensions::kmeans(threads, scale, seed)),
        "ssca2" => Some(extensions::ssca2(threads, scale, seed)),
        "labyrinth" => Some(extensions::labyrinth(threads, scale, seed)),
        "clustered" => Some(clustered::generate(threads, scale, seed)),
        _ => None,
    }
}

/// The paper's three applications, generated for `threads` threads.
#[must_use]
pub fn stamp_trio(threads: usize, scale: WorkloadScale, seed: u64) -> Vec<WorkloadTrace> {
    PAPER_WORKLOADS
        .iter()
        .map(|name| by_name(name, threads, scale, seed).expect("paper workloads always exist"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_workload_is_constructible() {
        for name in workload_names() {
            let w = by_name(name, 4, WorkloadScale::Test, 1).unwrap();
            assert_eq!(w.name, name);
            assert_eq!(w.num_threads(), 4);
        }
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(by_name("doesnotexist", 4, WorkloadScale::Test, 1).is_none());
    }

    #[test]
    fn stamp_trio_matches_paper_order() {
        let trio = stamp_trio(2, WorkloadScale::Test, 1);
        let names: Vec<_> = trio.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, vec!["genome", "yada", "intruder"]);
    }

    #[test]
    fn paper_workloads_are_a_subset_of_all() {
        for p in PAPER_WORKLOADS {
            assert!(ALL_WORKLOADS.contains(&p));
        }
    }
}
