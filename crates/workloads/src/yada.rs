//! `yada` — Delaunay mesh refinement (STAMP).
//!
//! STAMP's yada (Yet Another Delaunay Application) refines a triangular mesh:
//! each transaction grabs a "bad" triangle from a shared work queue, builds
//! its cavity by walking neighbouring triangles and re-triangulates it. Its
//! characterization: **long transactions with large read/write sets and
//! moderate-to-high contention** — cavities of concurrently processed
//! triangles frequently overlap, and the same refinement loop body is
//! re-executed over and over. The paper points out that for such workloads
//! the *renew* counter (rather than the abort counter) grows, which also
//! produces a large gating window and significant energy savings.

use htm_tcc::txn::WorkloadTrace;

use crate::spec::{Range, SyntheticSpec, WorkloadScale};

/// Default number of transactions per thread at full scale.
pub const DEFAULT_TXS_PER_THREAD: usize = 36;

/// The synthetic specification modelling yada's transactional behaviour.
#[must_use]
pub fn spec(seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        name: "yada".into(),
        seed,
        // Work-queue head + the currently "interesting" mesh region.
        hot_lines: 16,
        // The mesh itself.
        cold_lines: 160,
        private_lines: 48,
        txs_per_thread: DEFAULT_TXS_PER_THREAD,
        // The refinement loop re-executes the same two atomic blocks.
        static_txs: 2,
        reads_per_tx: Range::new(10, 24),
        writes_per_tx: Range::new(4, 10),
        hot_read_prob: 0.25,
        hot_write_prob: 0.30,
        shared_cold_prob: 0.75,
        compute_between_ops: Range::new(6, 14),
        pre_compute: Range::new(5, 20),
        site_rmw_prob: 0.55,
        tx_id_base: 0x3_0000,
    }
}

/// Generate the yada workload for `threads` threads.
#[must_use]
pub fn generate(threads: usize, scale: WorkloadScale, seed: u64) -> WorkloadTrace {
    spec(seed).generate(threads, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{genome, intruder};

    fn mean_ops(w: &WorkloadTrace) -> f64 {
        let txs: Vec<_> = w
            .threads
            .iter()
            .flat_map(|t| t.transactions.iter())
            .collect();
        txs.iter().map(|t| t.memory_ops() as f64).sum::<f64>() / txs.len() as f64
    }

    #[test]
    fn transactions_are_long() {
        let w = generate(4, WorkloadScale::Full, 1);
        assert!(
            mean_ops(&w) >= 15.0,
            "yada transactions are long: {:.1}",
            mean_ops(&w)
        );
    }

    #[test]
    fn longest_transactions_of_the_trio() {
        let y = mean_ops(&generate(4, WorkloadScale::Full, 1));
        let g = mean_ops(&genome::generate(4, WorkloadScale::Full, 1));
        let i = mean_ops(&intruder::generate(4, WorkloadScale::Full, 1));
        assert!(y > g && y > i, "yada={y:.1} genome={g:.1} intruder={i:.1}");
    }

    #[test]
    fn write_sets_are_large() {
        let w = generate(4, WorkloadScale::Full, 1);
        let mean_writes: f64 = {
            let txs: Vec<_> = w
                .threads
                .iter()
                .flat_map(|t| t.transactions.iter())
                .collect();
            txs.iter()
                .map(|t| t.write_addrs().len() as f64)
                .sum::<f64>()
                / txs.len() as f64
        };
        assert!(mean_writes >= 4.0, "mean writes {mean_writes:.1}");
    }

    #[test]
    fn only_two_static_transactions() {
        let w = generate(1, WorkloadScale::Full, 1);
        let distinct: std::collections::HashSet<u64> =
            w.threads[0].transactions.iter().map(|t| t.tx_id).collect();
        assert_eq!(distinct.len(), 2);
    }
}
