//! `genome` — gene sequencing (STAMP).
//!
//! STAMP's genome reconstructs a gene sequence from segments: a first phase
//! deduplicates segments by inserting them into a shared hash set, a second
//! phase string-matches and links them. Its characterization: **moderate
//! transaction length, moderate read/write sets and low-to-moderate
//! contention** — most insertions land in different buckets of a large hash
//! table, so conflicts are comparatively rare. In the paper's results genome
//! shows the smallest (but still positive) energy savings, and it is the one
//! configuration (8 threads) where gating produced a slowdown.

use htm_tcc::txn::WorkloadTrace;

use crate::spec::{Range, SyntheticSpec, WorkloadScale};

/// Default number of transactions per thread at full scale.
pub const DEFAULT_TXS_PER_THREAD: usize = 60;

/// The synthetic specification modelling genome's transactional behaviour.
#[must_use]
pub fn spec(seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        name: "genome".into(),
        seed,
        // A few hot lines: the hash-table metadata / segment counters.
        hot_lines: 16,
        // The segment hash table itself: large, sparsely conflicting.
        cold_lines: 192,
        private_lines: 48,
        txs_per_thread: DEFAULT_TXS_PER_THREAD,
        // dedup-insert / hash-probe / match / link loop bodies.
        static_txs: 4,
        reads_per_tx: Range::new(4, 10),
        writes_per_tx: Range::new(1, 3),
        hot_read_prob: 0.08,
        hot_write_prob: 0.10,
        shared_cold_prob: 0.70,
        compute_between_ops: Range::new(6, 16),
        pre_compute: Range::new(10, 40),
        site_rmw_prob: 0.08,
        tx_id_base: 0x2_0000,
    }
}

/// Generate the genome workload for `threads` threads.
#[must_use]
pub fn generate(threads: usize, scale: WorkloadScale, seed: u64) -> WorkloadTrace {
    spec(seed).generate(threads, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intruder;

    #[test]
    fn transactions_are_moderate_length() {
        let w = generate(4, WorkloadScale::Full, 1);
        let mean_ops: f64 = {
            let txs: Vec<_> = w
                .threads
                .iter()
                .flat_map(|t| t.transactions.iter())
                .collect();
            txs.iter().map(|t| t.memory_ops() as f64).sum::<f64>() / txs.len() as f64
        };
        assert!((5.0..=14.0).contains(&mean_ops), "mean ops {mean_ops:.1}");
    }

    #[test]
    fn less_contended_than_intruder() {
        // Compare the fraction of writes that hit each workload's hot region.
        let hot_frac = |w: &WorkloadTrace, hot_lines: u64| {
            let hot_limit = hot_lines * 64;
            let (mut hot, mut total) = (0usize, 0usize);
            for tx in w.threads.iter().flat_map(|t| t.transactions.iter()) {
                for addr in tx.write_addrs() {
                    total += 1;
                    if addr < hot_limit {
                        hot += 1;
                    }
                }
            }
            hot as f64 / total.max(1) as f64
        };
        let g = generate(8, WorkloadScale::Full, 1);
        let i = intruder::generate(8, WorkloadScale::Full, 1);
        assert!(
            hot_frac(&g, 16) < hot_frac(&i, 8),
            "genome must be visibly less contended than intruder"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate(2, WorkloadScale::Test, 9),
            generate(2, WorkloadScale::Test, 9)
        );
    }
}
