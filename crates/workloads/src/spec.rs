//! Parameterized synthetic-workload generator.
//!
//! Every concrete workload (genome, yada, intruder, the extensions and any
//! user-defined scenario) is an instance of [`SyntheticSpec`]: a set of
//! distributions describing how long transactions are, how many lines they
//! read and write, how much of that traffic lands in the contended hot
//! region, and how the static transactions are arranged in loops. The
//! generator turns a spec into a deterministic [`WorkloadTrace`].

use serde::{Deserialize, Serialize};

use htm_sim::rng::DeterministicRng;
use htm_tcc::txn::{Op, ThreadTrace, Transaction, WorkloadTrace};

use crate::layout::AddressLayout;

/// How large a run of the workload to generate. The paper's evaluation runs
/// the STAMP inputs to completion; our traces scale the number of
/// transactions per thread instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadScale {
    /// Tiny runs for unit tests (a handful of transactions per thread).
    Test,
    /// Small runs for quick examples and Criterion benchmarks.
    Small,
    /// The default evaluation size used by the figure-reproduction harness.
    Full,
}

impl WorkloadScale {
    /// Transactions per thread for this scale, given the workload's baseline.
    #[must_use]
    pub fn txs_per_thread(self, baseline: usize) -> usize {
        match self {
            WorkloadScale::Test => baseline.div_ceil(8).max(2),
            WorkloadScale::Small => baseline.div_ceil(2).max(4),
            WorkloadScale::Full => baseline,
        }
    }

    /// Lower-case label used in artifact names and sweep cell keys.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WorkloadScale::Test => "test",
            WorkloadScale::Small => "small",
            WorkloadScale::Full => "full",
        }
    }
}

/// A range `[min, max]` from which the generator draws uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Range {
    /// Inclusive lower bound.
    pub min: u64,
    /// Inclusive upper bound.
    pub max: u64,
}

impl Range {
    /// Construct a range (clamping `max` up to `min` if needed).
    #[must_use]
    pub fn new(min: u64, max: u64) -> Self {
        Self {
            min,
            max: max.max(min),
        }
    }

    /// Sample the range uniformly.
    pub fn sample(&self, rng: &mut DeterministicRng) -> u64 {
        self.min + rng.gen_range(self.max - self.min + 1)
    }
}

/// Full description of a synthetic transactional workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Workload name (used in reports and figures).
    pub name: String,
    /// Base random seed; combined with the thread id so each thread gets an
    /// independent but reproducible stream.
    pub seed: u64,
    /// Number of cache lines in the hot (contended) shared region.
    pub hot_lines: u64,
    /// Number of cache lines in the cold shared region.
    pub cold_lines: u64,
    /// Number of private cache lines per thread.
    pub private_lines: u64,
    /// Baseline number of transactions each thread executes at
    /// [`WorkloadScale::Full`].
    pub txs_per_thread: usize,
    /// Number of distinct static transactions (loop bodies); the generator
    /// cycles through them, so `tx_id` values repeat across iterations
    /// exactly like a transaction inside a loop re-executes the same PC.
    pub static_txs: usize,
    /// Reads per transaction.
    pub reads_per_tx: Range,
    /// Writes per transaction.
    pub writes_per_tx: Range,
    /// Probability that a read targets the hot region (otherwise cold/private).
    pub hot_read_prob: f64,
    /// Probability that a write targets the hot region.
    pub hot_write_prob: f64,
    /// Probability that a non-hot access targets the cold shared region
    /// (otherwise it goes to the thread's private region).
    pub shared_cold_prob: f64,
    /// Compute cycles inserted between consecutive memory operations.
    pub compute_between_ops: Range,
    /// Non-transactional compute cycles before each transaction.
    pub pre_compute: Range,
    /// Probability that a transaction performs the read-modify-write of its
    /// static site's dedicated hot line (e.g. popping the shared work-queue
    /// head in intruder, grabbing the next bad triangle in yada). This is
    /// what makes retries of the same transaction conflict *deterministically*
    /// with whoever wins, driving the per-directory abort counters (and hence
    /// the Eq. 8 gating windows) up on contended workloads.
    pub site_rmw_prob: f64,
    /// Base value for generated `tx_id`s (keeps different workloads' static
    /// transaction ids disjoint, like different code addresses).
    pub tx_id_base: u64,
}

impl SyntheticSpec {
    /// The address-space layout implied by this spec for `threads` threads.
    #[must_use]
    pub fn layout(&self, threads: usize) -> AddressLayout {
        AddressLayout::new(
            self.hot_lines,
            self.cold_lines,
            self.private_lines,
            threads as u64,
        )
    }

    /// Generate the trace for one thread.
    #[must_use]
    pub fn generate_thread(
        &self,
        thread: usize,
        threads: usize,
        scale: WorkloadScale,
    ) -> ThreadTrace {
        let layout = self.layout(threads);
        let mut rng = DeterministicRng::new(self.seed).derive(thread as u64 + 1);
        let txs = scale.txs_per_thread(self.txs_per_thread);
        let mut transactions = Vec::with_capacity(txs);
        for iteration in 0..txs {
            let static_site = iteration % self.static_txs.max(1);
            let tx_id = self.tx_id_base + static_site as u64 * 0x40;
            transactions.push(self.generate_tx(tx_id, thread as u64, &layout, &mut rng));
        }
        ThreadTrace::new(transactions)
    }

    fn pick_addr(
        &self,
        rng: &mut DeterministicRng,
        thread: u64,
        layout: &AddressLayout,
        hot_prob: f64,
    ) -> u64 {
        if layout.hot_lines > 0 && rng.gen_bool(hot_prob) {
            layout.hot(rng.gen_range(layout.hot_lines))
        } else if layout.cold_lines > 0 && rng.gen_bool(self.shared_cold_prob) {
            layout.cold(rng.gen_range(layout.cold_lines))
        } else {
            layout.private(thread, rng.gen_range(layout.private_lines.max(1)))
        }
    }

    fn generate_tx(
        &self,
        tx_id: u64,
        thread: u64,
        layout: &AddressLayout,
        rng: &mut DeterministicRng,
    ) -> Transaction {
        let reads = self.reads_per_tx.sample(rng);
        let writes = self.writes_per_tx.sample(rng);
        let pre = self.pre_compute.sample(rng);
        let mut ops = Vec::with_capacity((reads + writes) as usize * 2 + 2);
        // The shared structure owned by this static transaction (work-queue
        // head, tree root, ...): read it first, update it last.
        let site_line = if self.hot_lines > 0 {
            Some(layout.hot((tx_id / 0x40) % self.hot_lines))
        } else {
            None
        };
        let site_rmw = site_line.is_some() && rng.gen_bool(self.site_rmw_prob);
        if let (true, Some(site)) = (site_rmw, site_line) {
            ops.push(Op::Read(site));
            ops.push(Op::Compute(self.compute_between_ops.sample(rng)));
        }
        // Interleave reads and writes the way typical STAMP transactions do:
        // reads first (lookups / traversal), writes towards the end (updates),
        // with compute in between.
        for _ in 0..reads {
            ops.push(Op::Read(self.pick_addr(
                rng,
                thread,
                layout,
                self.hot_read_prob,
            )));
            let c = self.compute_between_ops.sample(rng);
            if c > 0 {
                ops.push(Op::Compute(c));
            }
        }
        for _ in 0..writes {
            ops.push(Op::Write(self.pick_addr(
                rng,
                thread,
                layout,
                self.hot_write_prob,
            )));
            let c = self.compute_between_ops.sample(rng);
            if c > 0 {
                ops.push(Op::Compute(c));
            }
        }
        if let (true, Some(site)) = (site_rmw, site_line) {
            ops.push(Op::Write(site));
        }
        Transaction::with_pre_compute(tx_id, pre, ops)
    }

    /// Generate the complete workload for `threads` threads at `scale`.
    #[must_use]
    pub fn generate(&self, threads: usize, scale: WorkloadScale) -> WorkloadTrace {
        let traces = (0..threads)
            .map(|t| self.generate_thread(t, threads, scale))
            .collect::<Vec<_>>();
        WorkloadTrace::new(self.name.clone(), traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec() -> SyntheticSpec {
        SyntheticSpec {
            name: "toy".into(),
            seed: 7,
            hot_lines: 4,
            cold_lines: 64,
            private_lines: 32,
            txs_per_thread: 16,
            static_txs: 2,
            reads_per_tx: Range::new(2, 4),
            writes_per_tx: Range::new(1, 2),
            hot_read_prob: 0.3,
            hot_write_prob: 0.3,
            shared_cold_prob: 0.5,
            compute_between_ops: Range::new(1, 5),
            pre_compute: Range::new(0, 10),
            site_rmw_prob: 0.5,
            tx_id_base: 0x1000,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = toy_spec();
        let a = spec.generate(4, WorkloadScale::Full);
        let b = spec.generate(4, WorkloadScale::Full);
        assert_eq!(a, b);
    }

    #[test]
    fn different_threads_get_different_traces() {
        let w = toy_spec().generate(2, WorkloadScale::Full);
        assert_ne!(w.threads[0], w.threads[1]);
    }

    #[test]
    fn scale_controls_transaction_count() {
        let spec = toy_spec();
        let test = spec.generate(2, WorkloadScale::Test).total_transactions();
        let small = spec.generate(2, WorkloadScale::Small).total_transactions();
        let full = spec.generate(2, WorkloadScale::Full).total_transactions();
        assert!(test < small && small < full);
        assert_eq!(full, 32);
    }

    #[test]
    fn static_tx_ids_repeat_like_loops() {
        let w = toy_spec().generate(1, WorkloadScale::Full);
        let ids: Vec<u64> = w.threads[0].transactions.iter().map(|t| t.tx_id).collect();
        let distinct: std::collections::HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            2,
            "two static transactions cycle through the loop"
        );
        assert_eq!(ids[0], ids[2]);
        assert_eq!(ids[1], ids[3]);
    }

    #[test]
    fn ops_respect_configured_ranges() {
        let spec = toy_spec();
        let w = spec.generate(2, WorkloadScale::Full);
        for tx in w.threads.iter().flat_map(|t| t.transactions.iter()) {
            let reads = tx.read_addrs().len() as u64;
            let writes = tx.write_addrs().len() as u64;
            // Dedup can only shrink the counts; the static site's
            // read-modify-write adds at most one read and one write.
            assert!(reads <= spec.reads_per_tx.max + 1);
            assert!(writes <= spec.writes_per_tx.max + 1);
            assert!(writes >= 1, "every toy transaction writes something");
            assert!(tx.pre_compute <= spec.pre_compute.max);
        }
    }

    #[test]
    fn addresses_stay_within_footprint() {
        let spec = toy_spec();
        let w = spec.generate(4, WorkloadScale::Full);
        let max = w.max_addr().unwrap();
        assert!(max < spec.layout(4).footprint_bytes());
    }

    #[test]
    fn range_sampling_is_inclusive() {
        let r = Range::new(3, 5);
        let mut rng = DeterministicRng::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = r.sample(&mut rng);
            assert!((3..=5).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn degenerate_range_is_constant() {
        let r = Range::new(7, 7);
        let mut rng = DeterministicRng::new(2);
        assert!((0..100).all(|_| r.sample(&mut rng) == 7));
    }
}
