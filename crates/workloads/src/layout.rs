//! Address-space layout used by the synthetic workload generators.
//!
//! Every workload partitions its address space into three regions:
//!
//! * a small **hot** shared region — the heavily contended structures (queue
//!   heads, tree roots, frequently re-balanced buckets) that cause most
//!   conflicts,
//! * a large **cold** shared region — shared data that is touched by many
//!   threads but rarely by two transactions at once (big hash tables, mesh
//!   node pools),
//! * a **private** region per thread — thread-local working memory that can
//!   never conflict.
//!
//! Addresses are cache-line aligned so that one logical "object" maps to one
//! line; false sharing is not part of the model (the paper's applications are
//! dominated by true conflicts on shared structures).

use serde::{Deserialize, Serialize};

use htm_mem::Addr;

/// Cache-line size used when laying out workload objects.
pub const LINE_BYTES: u64 = 64;

/// Address-space layout of a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressLayout {
    /// Number of cache lines in the hot shared region.
    pub hot_lines: u64,
    /// Number of cache lines in the cold shared region.
    pub cold_lines: u64,
    /// Number of private cache lines per thread.
    pub private_lines: u64,
    /// Number of threads.
    pub threads: u64,
}

impl AddressLayout {
    /// Create a layout.
    #[must_use]
    pub fn new(hot_lines: u64, cold_lines: u64, private_lines: u64, threads: u64) -> Self {
        Self {
            hot_lines,
            cold_lines,
            private_lines,
            threads,
        }
    }

    /// Byte address of the `i`-th hot line (`i < hot_lines`).
    #[must_use]
    pub fn hot(&self, i: u64) -> Addr {
        debug_assert!(i < self.hot_lines);
        i * LINE_BYTES
    }

    /// Byte address of the `i`-th cold shared line (`i < cold_lines`).
    #[must_use]
    pub fn cold(&self, i: u64) -> Addr {
        debug_assert!(i < self.cold_lines);
        (self.hot_lines + i) * LINE_BYTES
    }

    /// Byte address of the `i`-th private line of `thread`.
    #[must_use]
    pub fn private(&self, thread: u64, i: u64) -> Addr {
        debug_assert!(thread < self.threads);
        debug_assert!(i < self.private_lines);
        (self.hot_lines + self.cold_lines + thread * self.private_lines + i) * LINE_BYTES
    }

    /// Total footprint in bytes.
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        (self.hot_lines + self.cold_lines + self.threads * self.private_lines) * LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> AddressLayout {
        AddressLayout::new(8, 100, 16, 4)
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = layout();
        let hot_end = l.hot(7);
        let cold_start = l.cold(0);
        let cold_end = l.cold(99);
        let priv_start = l.private(0, 0);
        assert!(hot_end < cold_start);
        assert!(cold_end < priv_start);
    }

    #[test]
    fn private_regions_are_disjoint_between_threads() {
        let l = layout();
        let t0_last = l.private(0, 15);
        let t1_first = l.private(1, 0);
        assert!(t0_last < t1_first);
    }

    #[test]
    fn addresses_are_line_aligned() {
        let l = layout();
        assert_eq!(l.hot(3) % LINE_BYTES, 0);
        assert_eq!(l.cold(42) % LINE_BYTES, 0);
        assert_eq!(l.private(2, 5) % LINE_BYTES, 0);
    }

    #[test]
    fn footprint_covers_all_regions() {
        let l = layout();
        assert_eq!(l.footprint_bytes(), (8 + 100 + 4 * 16) * LINE_BYTES);
        let max = l.private(3, 15);
        assert!(max < l.footprint_bytes());
    }
}
