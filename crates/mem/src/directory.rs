//! Full-bit-vector directory state (sharers and owner per line).
//!
//! Each directory is home to the cache lines that interleave onto it (see
//! [`crate::addr::AddressMap`]). For every line it tracks which processors
//! have speculatively read the line during their *current* transaction (the
//! sharer bit vector of Table II) and which processor, if any, last committed
//! it (the owner, Fig. 2(b)).
//!
//! Sharer bits are *conservative*: they are cleared only when the sharing
//! processor commits or aborts its transaction, never on silent L1 evictions.
//! This matches TCC semantics (a speculative reader must be invalidated even
//! if the line has fallen out of its L1) and keeps the simulated protocol
//! correct without modelling eviction notifications.

use serde::{Deserialize, Serialize};

use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};
use htm_sim::fxhash::{FxHashMap, FxHashSet};
use htm_sim::{ProcId, ProcSet};

use crate::addr::LineAddr;

/// Per-line directory state.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct LineEntry {
    /// Bit vector of processors that speculatively read this line.
    sharers: ProcSet,
    /// Processor that last committed (owns) this line.
    owner: Option<ProcId>,
}

/// Event counters for one directory.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectoryStats {
    /// Sharer registrations (speculative loads serviced).
    pub sharer_adds: u64,
    /// Lines committed through this directory.
    pub lines_committed: u64,
    /// Invalidation messages this directory generated.
    pub invalidations_sent: u64,
}

/// Sharer / owner tracking for the lines homed at one directory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Directory {
    /// Directory identifier (for diagnostics only).
    id: usize,
    /// Maximum number of processors (bounds the bit vector).
    num_procs: usize,
    lines: FxHashMap<LineAddr, LineEntry>,
    /// For fast clearing on commit/abort: the set of lines each processor is
    /// currently registered as sharing here.
    reader_sets: Vec<FxHashSet<LineAddr>>,
    stats: DirectoryStats,
}

impl Directory {
    /// Create directory `id` for a system of `num_procs` processors.
    ///
    /// # Panics
    /// Panics if `num_procs` exceeds [`htm_sim::MAX_PROCS`] (the width of
    /// the fixed-size full-bit sharer vector).
    #[must_use]
    pub fn new(id: usize, num_procs: usize) -> Self {
        assert!(
            num_procs <= htm_sim::MAX_PROCS,
            "full-bit vector limited to {} processors",
            htm_sim::MAX_PROCS
        );
        Self {
            id,
            num_procs,
            lines: FxHashMap::default(),
            reader_sets: vec![FxHashSet::default(); num_procs],
            stats: DirectoryStats::default(),
        }
    }

    /// This directory's identifier.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> DirectoryStats {
        self.stats
    }

    /// Record that `proc` has speculatively read `line`.
    pub fn add_sharer(&mut self, line: LineAddr, proc: ProcId) {
        assert!(proc < self.num_procs);
        let entry = self.lines.entry(line).or_default();
        if !entry.sharers.contains(proc) {
            entry.sharers.insert(proc);
            self.reader_sets[proc].insert(line);
            self.stats.sharer_adds += 1;
        }
    }

    /// Processors currently registered as sharers of `line`, as a bit-vector
    /// set (allocation-free; iterate it directly on the hot path).
    #[must_use]
    pub fn sharers(&self, line: LineAddr) -> ProcSet {
        self.lines
            .get(&line)
            .map_or(ProcSet::empty(), |e| e.sharers)
    }

    /// Owner of `line`, if it has been committed before.
    #[must_use]
    pub fn owner(&self, line: LineAddr) -> Option<ProcId> {
        self.lines.get(&line).and_then(|e| e.owner)
    }

    /// Number of lines this processor currently shares here.
    #[must_use]
    pub fn shared_line_count(&self, proc: ProcId) -> usize {
        self.reader_sets[proc].len()
    }

    /// Commit `line` on behalf of `committer`: the committer becomes owner and
    /// every *other* sharer must be invalidated (and, if the line is in its
    /// speculative read set, aborted). Returns the processors to invalidate
    /// as a bit-vector set so the hot path never allocates per line.
    pub fn commit_line(&mut self, line: LineAddr, committer: ProcId) -> ProcSet {
        assert!(committer < self.num_procs);
        let entry = self.lines.entry(line).or_default();
        let victims = entry.sharers.without(committer);
        entry.owner = Some(committer);
        // All sharer registrations for this line are consumed: the victims
        // are about to abort (which clears their registrations anyway) and
        // the committer's own registration ends with its transaction.
        let old_sharers = std::mem::take(&mut entry.sharers);
        for proc in old_sharers {
            self.reader_sets[proc].remove(&line);
        }
        self.stats.lines_committed += 1;
        self.stats.invalidations_sent += victims.len() as u64;
        victims
    }

    /// Clear every sharer registration belonging to `proc` (called when that
    /// processor commits or aborts its transaction).
    pub fn clear_proc(&mut self, proc: ProcId) {
        assert!(proc < self.num_procs);
        let lines: Vec<LineAddr> = self.reader_sets[proc].drain().collect();
        for line in lines {
            if let Some(entry) = self.lines.get_mut(&line) {
                entry.sharers.remove(proc);
            }
        }
    }

    /// Total number of lines with any directory state.
    #[must_use]
    pub fn tracked_lines(&self) -> usize {
        self.lines.len()
    }

    /// Serialize the directory state into a checkpoint payload. Hash-map
    /// contents are written in sorted line order: every operation on the maps
    /// is order-commutative, so the sorted rebuild is behaviourally identical
    /// to the original insertion order.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_usize(self.id);
        w.put_usize(self.num_procs);
        let mut lines: Vec<(&LineAddr, &LineEntry)> = self.lines.iter().collect();
        lines.sort_by_key(|(line, _)| line.0);
        w.put_usize(lines.len());
        for (line, entry) in lines {
            w.put_u64(line.0);
            entry.sharers.save_ckpt(w);
            w.put_opt_usize(entry.owner);
        }
        for set in &self.reader_sets {
            let mut members: Vec<u64> = set.iter().map(|l| l.0).collect();
            members.sort_unstable();
            w.put_u64_slice(&members);
        }
        w.put_u64(self.stats.sharer_adds);
        w.put_u64(self.stats.lines_committed);
        w.put_u64(self.stats.invalidations_sent);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        let id = r.get_usize()?;
        let num_procs = r.get_usize()?;
        if num_procs > htm_sim::MAX_PROCS {
            return Err(CkptError::Corrupt(format!(
                "directory with {num_procs} processors exceeds the bit-vector width"
            )));
        }
        let n = r.get_usize()?;
        let mut lines = FxHashMap::default();
        for _ in 0..n {
            let line = LineAddr(r.get_u64()?);
            let sharers = ProcSet::load_ckpt(r)?;
            let owner = r.get_opt_usize()?;
            lines.insert(line, LineEntry { sharers, owner });
        }
        let mut reader_sets = Vec::with_capacity(num_procs);
        for _ in 0..num_procs {
            let members = r.get_u64_vec()?;
            reader_sets.push(members.into_iter().map(LineAddr).collect::<FxHashSet<_>>());
        }
        Ok(Self {
            id,
            num_procs,
            lines,
            reader_sets,
            stats: DirectoryStats {
                sharer_adds: r.get_u64()?,
                lines_committed: r.get_u64()?,
                invalidations_sent: r.get_u64()?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sharer_and_query() {
        let mut d = Directory::new(0, 4);
        d.add_sharer(LineAddr(10), 1);
        d.add_sharer(LineAddr(10), 3);
        assert_eq!(
            d.sharers(LineAddr(10)).iter().collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert!(d.sharers(LineAddr(11)).is_empty());
        assert_eq!(d.stats().sharer_adds, 2);
    }

    #[test]
    fn duplicate_sharer_not_double_counted() {
        let mut d = Directory::new(0, 4);
        d.add_sharer(LineAddr(10), 1);
        d.add_sharer(LineAddr(10), 1);
        assert_eq!(d.sharers(LineAddr(10)).iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(d.stats().sharer_adds, 1);
        assert_eq!(d.shared_line_count(1), 1);
    }

    #[test]
    fn commit_invalidates_other_sharers_only() {
        let mut d = Directory::new(0, 4);
        d.add_sharer(LineAddr(5), 0);
        d.add_sharer(LineAddr(5), 1);
        d.add_sharer(LineAddr(5), 2);
        let victims = d.commit_line(LineAddr(5), 1);
        assert_eq!(victims.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(d.owner(LineAddr(5)), Some(1));
        // Sharer state consumed by the commit.
        assert!(d.sharers(LineAddr(5)).is_empty());
        assert_eq!(d.stats().invalidations_sent, 2);
        assert_eq!(d.stats().lines_committed, 1);
    }

    #[test]
    fn commit_of_unshared_line_invalidates_nobody() {
        let mut d = Directory::new(0, 4);
        let victims = d.commit_line(LineAddr(99), 2);
        assert!(victims.is_empty());
        assert_eq!(d.owner(LineAddr(99)), Some(2));
    }

    #[test]
    fn clear_proc_removes_all_registrations() {
        let mut d = Directory::new(0, 4);
        d.add_sharer(LineAddr(1), 0);
        d.add_sharer(LineAddr(2), 0);
        d.add_sharer(LineAddr(2), 1);
        d.clear_proc(0);
        assert!(d.sharers(LineAddr(1)).is_empty());
        assert_eq!(d.sharers(LineAddr(2)).iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(d.shared_line_count(0), 0);
        // Subsequent commits do not invalidate the cleared processor.
        assert!(d.commit_line(LineAddr(1), 2).is_empty());
    }

    #[test]
    fn owner_survives_sharer_clearing() {
        let mut d = Directory::new(0, 4);
        d.add_sharer(LineAddr(7), 3);
        d.commit_line(LineAddr(7), 3);
        d.clear_proc(3);
        assert_eq!(d.owner(LineAddr(7)), Some(3));
    }

    #[test]
    fn sharers_conservative_across_commits() {
        // A processor's registration persists until clear_proc, modelling the
        // conservative clearing described in the module docs.
        let mut d = Directory::new(0, 2);
        d.add_sharer(LineAddr(3), 0);
        let victims = d.commit_line(LineAddr(3), 1);
        assert_eq!(victims.iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "1024 processors")]
    fn rejects_too_many_procs() {
        let _ = Directory::new(0, htm_sim::MAX_PROCS + 1);
    }

    #[test]
    fn wide_machine_sharers_work_beyond_64_procs() {
        let mut d = Directory::new(0, 1024);
        d.add_sharer(LineAddr(5), 70);
        d.add_sharer(LineAddr(5), 1000);
        let victims = d.commit_line(LineAddr(5), 1000);
        assert_eq!(victims.iter().collect::<Vec<_>>(), vec![70]);
        assert_eq!(d.owner(LineAddr(5)), Some(1000));
    }

    #[test]
    fn tracked_lines_counts_entries() {
        let mut d = Directory::new(0, 4);
        d.add_sharer(LineAddr(1), 0);
        d.add_sharer(LineAddr(2), 0);
        d.commit_line(LineAddr(3), 1);
        assert_eq!(d.tracked_lines(), 3);
    }
}
