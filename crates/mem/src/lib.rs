//! # htm-mem — memory hierarchy substrate
//!
//! This crate models the memory system the Scalable-TCC protocol of the
//! paper runs on:
//!
//! * [`addr`] — byte addresses, cache-line addresses and the line-interleaved
//!   mapping of lines to home directories (the paper's distributed shared
//!   memory where "multiple directories map different segments of the
//!   physical memory"),
//! * [`cache`] — the private L1 data cache with per-line speculative
//!   read/modify bits (the "RW bits" whose power cost Section VII and Fig. 3
//!   quantify),
//! * [`directory`] — full-bit-vector sharer and owner tracking per line
//!   (Table II: "Full-bit vector sharer"),
//! * [`memory`] — the single-ported, 100-cycle main memory.
//!
//! Everything here is policy-free: the TCC commit/abort protocol and the
//! clock-gating mechanism are layered on top by the `htm-tcc` and
//! `clockgate-htm` crates.
//!
//! ```
//! use htm_mem::{AccessOutcome, LineAddr, SpecCache};
//!
//! // A 64-set 2-way L1 with speculative RW bits: miss, fill, then hit.
//! let mut cache = SpecCache::new(64, 2);
//! assert_eq!(cache.load(LineAddr(7), true), AccessOutcome::Miss);
//! cache.fill(LineAddr(7), true, false);
//! assert_eq!(cache.load(LineAddr(7), true), AccessOutcome::Hit);
//! assert!(cache.is_spec_read(LineAddr(7)));
//! cache.commit_speculative();
//! assert!(!cache.is_spec_read(LineAddr(7)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod cache;
pub mod directory;
pub mod memory;

pub use addr::{Addr, AddressMap, LineAddr};
pub use cache::{AccessOutcome, CacheStats, SpecCache};
pub use directory::{Directory, DirectoryStats};
pub use memory::MainMemory;
