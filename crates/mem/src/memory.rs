//! Main memory model (Table II: 1 GB, 100-cycle latency, single R/W port).

use serde::{Deserialize, Serialize};

use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};
use htm_sim::port::{PortStats, SinglePortResource};
use htm_sim::Cycle;

use crate::addr::Addr;

/// The single-ported main memory behind a directory (one bank per home node).
///
/// Only timing is modelled (data values never matter to the protocol or the
/// energy model); the capacity is used to validate workload address ranges.
/// The single read/write port limits *issue bandwidth* (one new access can
/// start every `port_occupancy` cycles) while each access still takes the
/// full `latency` before its data is available — i.e. the DRAM bank is
/// pipelined, it is not blocked for the whole 100-cycle latency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MainMemory {
    capacity_bytes: u64,
    latency: u64,
    port: SinglePortResource,
}

/// Default number of cycles the single R/W port is tied up per access
/// (the bandwidth limit of the port, as opposed to the access latency).
pub const DEFAULT_PORT_OCCUPANCY: u64 = 8;

impl MainMemory {
    /// Create a memory of `capacity_bytes` with the given access latency and
    /// per-access port occupancy.
    #[must_use]
    pub fn new(capacity_bytes: u64, latency: u64, port_occupancy: u64) -> Self {
        Self {
            capacity_bytes,
            latency,
            port: SinglePortResource::new(port_occupancy),
        }
    }

    /// Build from a [`htm_sim::config::SimConfig`].
    #[must_use]
    pub fn from_config(cfg: &htm_sim::config::SimConfig) -> Self {
        Self::new(
            cfg.memory_bytes,
            cfg.memory_latency,
            cfg.memory_port_occupancy,
        )
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Access latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Whether `addr` falls inside the installed memory.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        addr < self.capacity_bytes
    }

    /// Issue an access at `now`; returns the cycle at which the data is
    /// available (port issue queueing + access latency).
    pub fn access(&mut self, now: Cycle) -> Cycle {
        // `SinglePortResource::access` returns when the port frees up; the
        // data itself arrives a full access latency after the access started.
        let port_free = self.port.access(now);
        let started = port_free - self.port.latency();
        started + self.latency
    }

    /// Serialize the bank state into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_u64(self.capacity_bytes);
        w.put_u64(self.latency);
        self.port.save_ckpt(w);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            capacity_bytes: r.get_u64()?,
            latency: r.get_u64()?,
            port: SinglePortResource::load_ckpt(r)?,
        })
    }

    /// Port statistics (accesses, busy cycles, queueing).
    #[must_use]
    pub fn stats(&self) -> PortStats {
        self.port.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::config::SimConfig;

    #[test]
    fn from_config_uses_table2_values() {
        let mem = MainMemory::from_config(&SimConfig::table2(4));
        assert_eq!(mem.capacity_bytes(), 1 << 30);
        assert_eq!(mem.latency(), 100);
        let mut m = mem;
        assert_eq!(m.access(0), 100);
        // The port is busy for 16 cycles per access (pipelined bank).
        assert_eq!(m.access(0), 116);
    }

    #[test]
    fn port_limits_issue_bandwidth_not_latency() {
        let mut m = MainMemory::new(1 << 20, 100, 8);
        // Back-to-back accesses are pipelined: the second starts 8 cycles
        // after the first, and each takes 100 cycles end to end.
        assert_eq!(m.access(0), 100);
        assert_eq!(m.access(0), 108);
        assert_eq!(m.access(0), 116);
        assert_eq!(m.stats().accesses, 3);
    }

    #[test]
    fn idle_bank_services_at_full_latency() {
        let mut m = MainMemory::new(1 << 20, 100, 8);
        m.access(0);
        assert_eq!(m.access(1000), 1100);
    }

    #[test]
    fn contains_checks_capacity() {
        let m = MainMemory::new(1024, 10, 4);
        assert!(m.contains(0));
        assert!(m.contains(1023));
        assert!(!m.contains(1024));
    }
}
