//! Byte addresses, line addresses and the line-to-directory home mapping.

use serde::{Deserialize, Serialize};

use htm_sim::DirId;

/// A byte address in the simulated physical address space.
pub type Addr = u64;

/// A cache-line address: the byte address divided by the line size.
///
/// Using the line index (rather than a masked byte address) makes the
/// interleaving and set-index arithmetic explicit and keeps the type distinct
/// from [`Addr`] so the two cannot be confused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The raw line index.
    #[must_use]
    pub fn index(self) -> u64 {
        self.0
    }

    /// First byte address covered by this line, given the line size.
    #[must_use]
    pub fn base_addr(self, line_bytes: usize) -> Addr {
        self.0 * line_bytes as u64
    }
}

/// Mapping from byte addresses to cache lines and from lines to their home
/// directory.
///
/// The paper's Scalable-TCC baseline distributes the physical memory over
/// multiple directories, each of which "maps different segments of the
/// physical memory". We therefore interleave at *segment* granularity
/// (default 4 KiB): consecutive segments are homed at consecutive
/// directories. This is what gives the protocol its characteristic
/// behaviour — a shared data structure lives in one (or a few) directories,
/// committers to it serialize there, younger transactions spin at their
/// commit instruction behind older ones, and the Fig. 2(e) renewal check can
/// find the aborter still present in the directory where the abort happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    line_bytes: usize,
    segment_bytes: usize,
    num_dirs: usize,
}

impl AddressMap {
    /// Create a mapping for `num_dirs` directories, `line_bytes`-byte cache
    /// lines and `segment_bytes`-byte directory segments.
    ///
    /// # Panics
    /// Panics if either size is not a power of two, if the segment is smaller
    /// than a line, or if `num_dirs` is zero.
    #[must_use]
    pub fn new(line_bytes: usize, segment_bytes: usize, num_dirs: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            segment_bytes.is_power_of_two(),
            "segment size must be a power of two"
        );
        assert!(
            segment_bytes >= line_bytes,
            "a segment must hold at least one line"
        );
        assert!(num_dirs > 0, "need at least one directory");
        Self {
            line_bytes,
            segment_bytes,
            num_dirs,
        }
    }

    /// Cache line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Directory segment size in bytes.
    #[must_use]
    pub fn segment_bytes(&self) -> usize {
        self.segment_bytes
    }

    /// Number of directories.
    #[must_use]
    pub fn num_dirs(&self) -> usize {
        self.num_dirs
    }

    /// Line containing the byte address `addr`.
    #[must_use]
    pub fn line_of(&self, addr: Addr) -> LineAddr {
        LineAddr(addr / self.line_bytes as u64)
    }

    /// Home directory of a line (segment-interleaved).
    #[must_use]
    pub fn home_of(&self, line: LineAddr) -> DirId {
        let lines_per_segment = (self.segment_bytes / self.line_bytes) as u64;
        ((line.0 / lines_per_segment) % self.num_dirs as u64) as DirId
    }

    /// Home directory of the line containing `addr`.
    #[must_use]
    pub fn home_of_addr(&self, addr: Addr) -> DirId {
        self.home_of(self.line_of(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_divides_by_line_size() {
        let m = AddressMap::new(64, 4096, 4);
        assert_eq!(m.line_of(0), LineAddr(0));
        assert_eq!(m.line_of(63), LineAddr(0));
        assert_eq!(m.line_of(64), LineAddr(1));
        assert_eq!(m.line_of(6400), LineAddr(100));
    }

    #[test]
    fn same_line_same_home() {
        let m = AddressMap::new(64, 4096, 4);
        assert_eq!(m.home_of_addr(128), m.home_of_addr(128 + 63));
    }

    #[test]
    fn lines_within_a_segment_share_a_home() {
        let m = AddressMap::new(64, 4096, 4);
        // 4096/64 = 64 lines per segment.
        assert!((0..64).all(|i| m.home_of(LineAddr(i)) == 0));
        assert!((64..128).all(|i| m.home_of(LineAddr(i)) == 1));
    }

    #[test]
    fn segments_interleave_round_robin() {
        let m = AddressMap::new(64, 4096, 4);
        let homes: Vec<_> = (0..8).map(|s| m.home_of(LineAddr(s * 64))).collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn single_directory_maps_everything_to_zero() {
        let m = AddressMap::new(64, 4096, 1);
        assert!((0..10_000).all(|i| m.home_of(LineAddr(i)) == 0));
    }

    #[test]
    fn base_addr_roundtrip() {
        let m = AddressMap::new(64, 4096, 4);
        let line = m.line_of(777);
        assert_eq!(line.base_addr(64), 768);
        assert_eq!(m.line_of(line.base_addr(64)), line);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_line() {
        let _ = AddressMap::new(48, 4096, 4);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn rejects_segment_smaller_than_line() {
        let _ = AddressMap::new(64, 32, 4);
    }

    #[test]
    #[should_panic(expected = "at least one directory")]
    fn rejects_zero_dirs() {
        let _ = AddressMap::new(64, 4096, 0);
    }
}
