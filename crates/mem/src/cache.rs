//! Private L1 data cache with speculative read/modify tracking.
//!
//! Under TCC every load inside a transaction sets a *speculatively-read* (SR)
//! bit on the line and every store sets a *speculatively-modified* (SM) bit;
//! stores are buffered locally and only become globally visible when the
//! transaction commits. On an abort, SM lines carry wrong data and must be
//! invalidated, while SR bits are simply cleared.
//!
//! The cache here is a timing model: it decides hit/miss, tracks evictions
//! and counts speculative-capacity overflows. Architectural correctness of
//! the read/write sets is maintained exactly by the processor model in
//! `htm-tcc` (see DESIGN.md, "Speculative-set overflow"), mirroring how the
//! paper's evaluation never exercises overflow.

use serde::{Deserialize, Serialize};

use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};

use crate::addr::LineAddr;

/// Outcome of a load/store lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// The line was present in the cache.
    Hit,
    /// The line was absent; the caller must fetch it from its home directory
    /// and then call [`SpecCache::fill`].
    Miss,
}

/// Per-cache event counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Load hits.
    pub load_hits: u64,
    /// Load misses.
    pub load_misses: u64,
    /// Store hits.
    pub store_hits: u64,
    /// Store misses.
    pub store_misses: u64,
    /// Lines evicted to make room for a fill.
    pub evictions: u64,
    /// Evictions that had to displace a speculatively read or modified line
    /// (a speculative-capacity overflow in a real TCC machine).
    pub speculative_evictions: u64,
    /// Lines invalidated by directory invalidations.
    pub external_invalidations: u64,
}

impl CacheStats {
    /// Serialize the counters into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_u64(self.load_hits);
        w.put_u64(self.load_misses);
        w.put_u64(self.store_hits);
        w.put_u64(self.store_misses);
        w.put_u64(self.evictions);
        w.put_u64(self.speculative_evictions);
        w.put_u64(self.external_invalidations);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            load_hits: r.get_u64()?,
            load_misses: r.get_u64()?,
            store_hits: r.get_u64()?,
            store_misses: r.get_u64()?,
            evictions: r.get_u64()?,
            speculative_evictions: r.get_u64()?,
            external_invalidations: r.get_u64()?,
        })
    }
}

/// State of one cache line (one way of one set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Way {
    line: LineAddr,
    valid: bool,
    /// Speculatively read during the current transaction.
    spec_read: bool,
    /// Speculatively modified (store buffered) during the current transaction.
    spec_mod: bool,
    /// Last-touch timestamp for LRU replacement.
    last_touch: u64,
}

impl Way {
    fn empty() -> Self {
        Self {
            line: LineAddr(0),
            valid: false,
            spec_read: false,
            spec_mod: false,
            last_touch: 0,
        }
    }

    fn is_speculative(&self) -> bool {
        self.valid && (self.spec_read || self.spec_mod)
    }
}

/// A set-associative L1 data cache with speculative read/modify bits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpecCache {
    sets: usize,
    assoc: usize,
    ways: Vec<Way>,
    touch_clock: u64,
    /// Indices of ways whose SR/SM bits may be set, so commit/abort clear
    /// only the touched ways instead of sweeping the whole array (the sweep
    /// dominated commit-heavy runs). May contain stale or duplicate entries;
    /// clearing is idempotent, and the list is drained on commit/abort.
    spec_ways: Vec<usize>,
    stats: CacheStats,
}

impl SpecCache {
    /// Create a cache with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two or `assoc` is zero.
    #[must_use]
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(assoc > 0, "associativity must be at least 1");
        Self {
            sets,
            assoc,
            ways: vec![Way::empty(); sets * assoc],
            touch_clock: 0,
            spec_ways: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Build the cache described by a [`htm_sim::config::SimConfig`].
    #[must_use]
    pub fn from_config(cfg: &htm_sim::config::SimConfig) -> Self {
        Self::new(cfg.l1_sets(), cfg.l1_assoc)
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    #[must_use]
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.sets - 1)
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let s = self.set_index(line);
        s * self.assoc..(s + 1) * self.assoc
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        self.set_range(line)
            .find(|&i| self.ways[i].valid && self.ways[i].line == line)
    }

    fn touch(&mut self, idx: usize) {
        self.touch_clock += 1;
        self.ways[idx].last_touch = self.touch_clock;
    }

    /// Whether the line is currently present (no state change, no stats).
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Whether the line is present and speculatively modified.
    #[must_use]
    pub fn is_spec_modified(&self, line: LineAddr) -> bool {
        self.find(line).is_some_and(|i| self.ways[i].spec_mod)
    }

    /// Whether the line is present and speculatively read.
    #[must_use]
    pub fn is_spec_read(&self, line: LineAddr) -> bool {
        self.find(line).is_some_and(|i| self.ways[i].spec_read)
    }

    /// Perform a transactional load lookup. On a hit the SR bit is set and
    /// LRU state updated; on a miss the caller fetches the line and calls
    /// [`Self::fill`].
    pub fn load(&mut self, line: LineAddr, transactional: bool) -> AccessOutcome {
        match self.find(line) {
            Some(idx) => {
                if transactional {
                    if !self.ways[idx].is_speculative() {
                        self.spec_ways.push(idx);
                    }
                    self.ways[idx].spec_read = true;
                }
                self.touch(idx);
                self.stats.load_hits += 1;
                AccessOutcome::Hit
            }
            None => {
                self.stats.load_misses += 1;
                AccessOutcome::Miss
            }
        }
    }

    /// Perform a transactional store lookup. On a hit the SM bit is set.
    pub fn store(&mut self, line: LineAddr, transactional: bool) -> AccessOutcome {
        match self.find(line) {
            Some(idx) => {
                if transactional {
                    if !self.ways[idx].is_speculative() {
                        self.spec_ways.push(idx);
                    }
                    self.ways[idx].spec_mod = true;
                }
                self.touch(idx);
                self.stats.store_hits += 1;
                AccessOutcome::Hit
            }
            None => {
                self.stats.store_misses += 1;
                AccessOutcome::Miss
            }
        }
    }

    /// Insert a line after a miss fill. `spec_read` / `spec_mod` describe the
    /// access that caused the fill. Returns the evicted line, if a valid line
    /// had to be displaced.
    pub fn fill(&mut self, line: LineAddr, spec_read: bool, spec_mod: bool) -> Option<LineAddr> {
        if let Some(idx) = self.find(line) {
            // Already present (e.g. a racing fill); just merge the bits.
            if (spec_read || spec_mod) && !self.ways[idx].is_speculative() {
                self.spec_ways.push(idx);
            }
            self.ways[idx].spec_read |= spec_read;
            self.ways[idx].spec_mod |= spec_mod;
            self.touch(idx);
            return None;
        }
        let range = self.set_range(line);
        // Victim preference: invalid way, else non-speculative LRU, else
        // speculative LRU (counted as an overflow).
        let victim = range
            .clone()
            .find(|&i| !self.ways[i].valid)
            .or_else(|| {
                range
                    .clone()
                    .filter(|&i| !self.ways[i].is_speculative())
                    .min_by_key(|&i| self.ways[i].last_touch)
            })
            .or_else(|| range.clone().min_by_key(|&i| self.ways[i].last_touch))
            .expect("a set always has at least one way");

        let evicted = if self.ways[victim].valid {
            self.stats.evictions += 1;
            if self.ways[victim].is_speculative() {
                self.stats.speculative_evictions += 1;
            }
            Some(self.ways[victim].line)
        } else {
            None
        };

        if spec_read || spec_mod {
            // The victim index may already be tracked (speculative
            // eviction); the duplicate is harmless because clearing is
            // idempotent.
            self.spec_ways.push(victim);
        }
        self.ways[victim] = Way {
            line,
            valid: true,
            spec_read,
            spec_mod,
            last_touch: 0,
        };
        self.touch(victim);
        evicted
    }

    /// Invalidate a line in response to a directory invalidation. Returns
    /// `true` if the line was present.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        if let Some(idx) = self.find(line) {
            self.ways[idx].valid = false;
            self.ways[idx].spec_read = false;
            self.ways[idx].spec_mod = false;
            self.stats.external_invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Commit the running transaction: speculative bits are cleared and
    /// speculatively modified lines remain valid (their data has just been
    /// flushed to the directories and this processor is now the owner).
    pub fn commit_speculative(&mut self) {
        while let Some(idx) = self.spec_ways.pop() {
            self.ways[idx].spec_read = false;
            self.ways[idx].spec_mod = false;
        }
    }

    /// Abort the running transaction: speculatively modified lines are
    /// invalidated (their data never became architectural) and SR bits are
    /// cleared.
    pub fn abort_speculative(&mut self) {
        while let Some(idx) = self.spec_ways.pop() {
            let way = &mut self.ways[idx];
            if way.spec_mod {
                way.valid = false;
                way.spec_mod = false;
            }
            way.spec_read = false;
        }
    }

    /// Serialize the full cache state — geometry, every way (LRU timestamps
    /// included) and the speculative-way stack verbatim, so replacement
    /// decisions after a restore are identical to the uninterrupted run.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_usize(self.sets);
        w.put_usize(self.assoc);
        for way in &self.ways {
            w.put_u64(way.line.0);
            w.put_bool(way.valid);
            w.put_bool(way.spec_read);
            w.put_bool(way.spec_mod);
            w.put_u64(way.last_touch);
        }
        w.put_u64(self.touch_clock);
        w.put_usize(self.spec_ways.len());
        for &idx in &self.spec_ways {
            w.put_usize(idx);
        }
        self.stats.save_ckpt(w);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        let sets = r.get_usize()?;
        let assoc = r.get_usize()?;
        if !sets.is_power_of_two() || assoc == 0 || sets.saturating_mul(assoc) > (1 << 30) {
            return Err(CkptError::Corrupt(format!(
                "implausible cache geometry {sets}x{assoc}"
            )));
        }
        let mut ways = Vec::with_capacity(sets * assoc);
        for _ in 0..sets * assoc {
            ways.push(Way {
                line: LineAddr(r.get_u64()?),
                valid: r.get_bool()?,
                spec_read: r.get_bool()?,
                spec_mod: r.get_bool()?,
                last_touch: r.get_u64()?,
            });
        }
        let touch_clock = r.get_u64()?;
        let n = r.get_usize()?;
        let mut spec_ways = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let idx = r.get_usize()?;
            if idx >= ways.len() {
                return Err(CkptError::Corrupt(format!(
                    "speculative way index {idx} out of range"
                )));
            }
            spec_ways.push(idx);
        }
        Ok(Self {
            sets,
            assoc,
            ways,
            touch_clock,
            spec_ways,
            stats: CacheStats::load_ckpt(r)?,
        })
    }

    /// Number of valid lines currently speculative (read or modified).
    #[must_use]
    pub fn speculative_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.is_speculative()).count()
    }

    /// Number of valid lines.
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SpecCache {
        SpecCache::new(4, 2)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache();
        assert_eq!(c.load(LineAddr(5), true), AccessOutcome::Miss);
        assert_eq!(c.fill(LineAddr(5), true, false), None);
        assert_eq!(c.load(LineAddr(5), true), AccessOutcome::Hit);
        assert!(c.is_spec_read(LineAddr(5)));
        let s = c.stats();
        assert_eq!(s.load_misses, 1);
        assert_eq!(s.load_hits, 1);
    }

    #[test]
    fn store_sets_spec_mod() {
        let mut c = small_cache();
        c.fill(LineAddr(7), false, false);
        assert_eq!(c.store(LineAddr(7), true), AccessOutcome::Hit);
        assert!(c.is_spec_modified(LineAddr(7)));
    }

    #[test]
    fn non_transactional_access_sets_no_spec_bits() {
        let mut c = small_cache();
        c.fill(LineAddr(3), false, false);
        c.load(LineAddr(3), false);
        c.store(LineAddr(3), false);
        assert!(!c.is_spec_read(LineAddr(3)));
        assert!(!c.is_spec_modified(LineAddr(3)));
    }

    #[test]
    fn lru_eviction_prefers_oldest_nonspeculative() {
        let mut c = SpecCache::new(1, 2);
        c.fill(LineAddr(1), false, false);
        c.fill(LineAddr(2), false, false);
        // Touch line 1 so line 2 is LRU.
        c.load(LineAddr(1), false);
        let evicted = c.fill(LineAddr(3), false, false);
        assert_eq!(evicted, Some(LineAddr(2)));
        assert!(c.contains(LineAddr(1)));
        assert!(c.contains(LineAddr(3)));
    }

    #[test]
    fn speculative_lines_evicted_last() {
        let mut c = SpecCache::new(1, 2);
        c.fill(LineAddr(1), true, false); // speculative
        c.fill(LineAddr(2), false, false); // normal, more recent
        let evicted = c.fill(LineAddr(3), false, false);
        // Even though line 1 is older, line 2 is evicted because 1 is speculative.
        assert_eq!(evicted, Some(LineAddr(2)));
        assert_eq!(c.stats().speculative_evictions, 0);
    }

    #[test]
    fn speculative_overflow_is_counted() {
        let mut c = SpecCache::new(1, 2);
        c.fill(LineAddr(1), true, false);
        c.fill(LineAddr(2), true, false);
        c.fill(LineAddr(3), true, false);
        assert_eq!(c.stats().speculative_evictions, 1);
    }

    #[test]
    fn commit_clears_spec_bits_keeps_data() {
        let mut c = small_cache();
        c.fill(LineAddr(1), true, true);
        c.commit_speculative();
        assert!(c.contains(LineAddr(1)));
        assert!(!c.is_spec_read(LineAddr(1)));
        assert!(!c.is_spec_modified(LineAddr(1)));
    }

    #[test]
    fn abort_drops_modified_lines_keeps_read_lines() {
        let mut c = small_cache();
        c.fill(LineAddr(1), true, false); // read only
        c.fill(LineAddr(2), false, true); // modified
        c.abort_speculative();
        assert!(c.contains(LineAddr(1)));
        assert!(!c.is_spec_read(LineAddr(1)));
        assert!(!c.contains(LineAddr(2)));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache();
        c.fill(LineAddr(9), true, false);
        assert!(c.invalidate(LineAddr(9)));
        assert!(!c.contains(LineAddr(9)));
        assert!(!c.invalidate(LineAddr(9)));
        assert_eq!(c.stats().external_invalidations, 1);
    }

    #[test]
    fn fill_of_present_line_merges_bits() {
        let mut c = small_cache();
        c.fill(LineAddr(4), true, false);
        assert_eq!(c.fill(LineAddr(4), false, true), None);
        assert!(c.is_spec_read(LineAddr(4)));
        assert!(c.is_spec_modified(LineAddr(4)));
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn lines_mapping_to_different_sets_do_not_conflict() {
        let mut c = SpecCache::new(4, 1);
        for i in 0..4 {
            c.fill(LineAddr(i), false, false);
        }
        assert_eq!(c.valid_lines(), 4);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn from_config_matches_geometry() {
        let cfg = htm_sim::config::SimConfig::table2(4);
        let c = SpecCache::from_config(&cfg);
        assert_eq!(c.sets(), 512);
        assert_eq!(c.assoc(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = SpecCache::new(3, 2);
    }
}
