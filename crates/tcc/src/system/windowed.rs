//! Time-windowed conservative PDES stepping ([`EngineKind::Windowed`]).
//!
//! The island-parallel engine can only fan out runs whose conflict graph
//! splits into disconnected components — a single contended workload is one
//! island and stays serial. This engine parallelizes *inside* one island by
//! exploiting the physical structure of a sharded interconnect instead of
//! the logical structure of the workload:
//!
//! 1. **Lookahead.** Every cross-processor interaction travels through the
//!    fabric, and [`Topology::min_notify_latency`] is a provable floor on
//!    its delivery latency: a message entered at cycle `t` arrives no
//!    earlier than `t + W`. A window `[T, T_end)` with `T_end <= T + W`
//!    therefore has the property that every message *created* inside it is
//!    *delivered* at or beyond the barrier — within the window, processors
//!    only interact through directory/bank state.
//! 2. **Grouping.** At each window boundary a planner partitions the
//!    machine by home bank: a union-find over processors and bank channels
//!    links everything that can touch the same bank state before `T_end`
//!    (pending deliveries, phase completions, a conservative walk of the
//!    operations a processor can reach inside the window, and the gating
//!    hook's declared couplings — see [`GatingHook::windowed_couplings`]).
//!    Disjoint groups cannot observe each other inside the window.
//! 3. **Group advance.** Each group is advanced from `T` to `T_end` with
//!    the ordinary fast-forward machinery, scoped to the group: the event
//!    heap, spin mask and population counters are seeded from the group's
//!    members, hook ticks run scoped to the group's directories
//!    ([`GatingHook::on_tick_scoped`]), and every outbound message is
//!    staged instead of delivered. With more than one pool worker the
//!    groups run **concurrently**: each is split off into a disjoint
//!    *lane* — an owned `TccSystem` assembled by `mem::swap`-ing the
//!    group's processors, directories and memory banks into a cached
//!    full-size shell ([`LaneShell`]), cloning the interconnect (its
//!    foreign banks stay frozen; only the lane's own banks are copied
//!    back) and sharing the gating hook behind a mutex ([`LaneHook`]) —
//!    and the lanes are fanned onto the persistent worker pool. A pool of
//!    one worker takes the sequential in-place path instead; both paths
//!    are byte-identical.
//! 4. **Barrier.** Lanes are disassembled (components swapped back, bank
//!    channels copied back, counter deltas — vendor-link stats, issued
//!    TIDs, done counts — folded in), staged messages are sorted into the
//!    exact order a serial run would have pushed them (so every inbox's
//!    FIFO sequence numbers match), the per-group interval logs plus a
//!    constant baseline for the parked processors are summed cycle-wise
//!    into the global tracker, and the clock jumps to `T_end`.
//!
//! Exactness is the same argument as the fast-forward engine's
//! jump-splitting plus one new ingredient: within a window, state is
//! partitioned — each group's serial advance touches only its own
//! processors, its own banks' channels and directories, and hook state
//! covered by the declared couplings; everything else is additive
//! (statistics) or commutative (min-merged deadlines), so advancing the
//! groups one after another from the same start cycle reproduces the
//! interleaved serial execution bit for bit. The lane fan-out adds a
//! determinism argument on top, so that *thread schedule* cannot matter
//! either:
//!
//! - A lane's execution depends only on lane-owned state. The one shared
//!   mutable resource — the hook — is serialized by a mutex, and the
//!   couplings contract guarantees cross-lane callbacks touch disjoint
//!   hook state (so their interleaving commutes); shared *reads* that do
//!   vary with timing (the hook's `next_deadline`, frozen foreign-bank
//!   deadlines) feed only the jump-split horizon, and jump splitting is
//!   exact: a spurious wake cycle executes nothing and its interval
//!   records coalesce away in the RLE log.
//! - All cross-lane effects are staged: messages carry serial-order sort
//!   keys `(cycle, phase, emitter)` and are delivered at the barrier in
//!   exactly the serial push order, and every merged counter is a sum or
//!   a max, independent of lane completion order.
//!
//! The differential suite runs the same cells under pool sizes {1, 2, 8}
//! and across all four engines to enforce this bit-for-bit.
//!
//! See `docs/SCALING.md` for the full derivation and `DESIGN.md` for the
//! lane-borrow contract and how this composes with checkpointing (windows
//! clamp at due cycles, so checkpoint/replay cadence is unchanged).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::mem;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use htm_mem::{MainMemory, SpecCache};
use htm_sim::bus::BusTraffic;
use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};
use htm_sim::config::SimConfig;
use htm_sim::interval::{zip_sum_segments, IntervalSeg, IntervalTracker};
use htm_sim::pool::WorkerPool;
use htm_sim::topology::{Node, Route, Topology};
use htm_sim::{Cycle, DirId, ProcId, ProcSet};

use crate::dirctrl::DirCtrl;
use crate::hooks::{AbortAction, GateCommand, GatingHook, ScopedCmdKey, SystemView};
use crate::processor::{Phase, ProcEvent, Processor, RetryAfter};
use crate::stats::PowerState;
use crate::txn::{Op, ThreadTrace, TxId};

use super::{StepPlan, TccSystem};

/// Staged-message ordering class: hook-emitted messages sort before
/// processor-emitted ones within a cycle, because the serial engine applies
/// hook commands before stepping processors.
pub(super) const STAGE_PHASE_HOOK: u8 = 0;
/// Staged-message ordering class for processor-emitted messages (see
/// [`STAGE_PHASE_HOOK`]); their key leads with the emitting processor id,
/// matching the ascending-id order of the serial per-cycle loop.
pub(super) const STAGE_PHASE_PROC: u8 = 1;

/// Counters accumulated by the windowed engine, for scaling diagnostics
/// (`timing.json` artifacts and the `pdes_scaling` bench). Deliberately not
/// checkpointed: a resumed run counts only its own remainder, and keeping
/// them out of the payload keeps checkpoint bytes engine-independent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowedStats {
    /// Lookahead windows executed (quiescent fast-forward jumps between
    /// windows are not counted).
    pub windows: u64,
    /// Windows whose planner produced two or more independent groups — the
    /// windows the island engine could not have split.
    pub multi_group_windows: u64,
    /// Largest number of independent groups observed in one window.
    pub max_groups_in_window: usize,
    /// Total group advances (sum of group counts over all windows).
    pub group_advances: u64,
    /// Largest number of bank shards with at least one active processor
    /// observed in one window.
    pub max_banks_active: usize,
    /// Cross-group messages staged at window barriers.
    pub staged_messages: u64,
    /// Histogram of group counts per executed window, with buckets for
    /// 1, 2, 3, 4, 5–8, 9–16 and 17+ groups (see
    /// [`Self::GROUP_HIST_BUCKETS`]). Deterministic.
    pub group_count_hist: [u64; 7],
    /// Windows whose groups were fanned onto the worker pool as concurrent
    /// lanes (multi-group windows advanced with a pool of one worker take
    /// the sequential path and are not counted here).
    pub parallel_windows: u64,
    /// Deterministic high-water mark of lanes eligible to run at once:
    /// `min(groups in window, pool workers)`, maximized over parallel
    /// windows. (A measured occupancy high-water would depend on thread
    /// timing; this bound is what CI can gate on.)
    pub max_concurrent_lanes: usize,
    /// Wall-clock nanoseconds spent inside lane advances, summed across all
    /// lanes of all parallel windows — concurrency makes this exceed the
    /// lanes' share of [`Self::window_wall_nanos`], and the ratio is the
    /// realized overlap. Nondeterministic: surfaced in `--timing` artifacts
    /// only, never in reports or checkpoints.
    pub lane_busy_nanos: u64,
    /// Wall-clock nanoseconds spent in parallel windows end to end (lane
    /// assembly, concurrent advance, barrier merge); the busy/wall gap is
    /// the serialization cost of the barrier. Nondeterministic, like
    /// [`Self::lane_busy_nanos`].
    pub window_wall_nanos: u64,
}

impl WindowedStats {
    /// Human-readable labels of the [`Self::group_count_hist`] buckets.
    pub const GROUP_HIST_BUCKETS: [&'static str; 7] = ["1", "2", "3", "4", "5-8", "9-16", "17+"];

    /// Count one executed window with `n` groups into the histogram.
    fn record_window_groups(&mut self, n: usize) {
        let bucket = match n {
            0 | 1 => 0,
            2 => 1,
            3 => 2,
            4 => 3,
            5..=8 => 4,
            9..=16 => 5,
            _ => 6,
        };
        self.group_count_hist[bucket] += 1;
    }
}

/// Scope of one group advance: the directories whose state the group owns
/// for the duration of the window. While installed on the system it
/// restricts view refreshes and hook ticks to these directories and diverts
/// all outbound inbox pushes into the staging buffer.
pub(super) struct WindowFocus {
    /// The group's directories, ascending.
    pub(super) dir_list: Vec<DirId>,
    /// Same set as a dense mask (indexed by directory id), handed to
    /// [`GatingHook::on_tick_scoped`].
    pub(super) dirs_mask: Vec<bool>,
}

/// A message produced inside a window, held back until the barrier. The
/// `(cycle, phase, key)` triple reconstructs the serial push order across
/// groups; `seq` assignment happens at the barrier push, so per-inbox FIFO
/// numbering matches a serial run exactly.
pub(super) struct StagedMsg {
    /// Cycle at which the serial engine would have pushed this message.
    pub(super) cycle: Cycle,
    /// [`STAGE_PHASE_HOOK`] or [`STAGE_PHASE_PROC`].
    pub(super) phase: u8,
    /// Emission order within `(cycle, phase)`: the emitting processor id
    /// for processor messages, the hook's [`crate::hooks::ScopedCmdKey`]
    /// for hook commands.
    pub(super) key: (u64, u64, u64),
    /// Receiving processor.
    pub(super) target: ProcId,
    /// Delivery cycle (computed on the owning bank channel at emission
    /// time; provably `>= T_end`).
    pub(super) deliver_at: Cycle,
    /// The message itself.
    pub(super) ev: ProcEvent,
}

/// One bank-disjoint group of a window plan.
struct WindowGroup {
    /// Active processors, ascending.
    procs: Vec<ProcId>,
    /// Same set as a bitset (seeds `view_dirty`).
    proc_set: ProcSet,
    /// Power-state population counts over the group's processors.
    counts: (usize, usize, usize, usize),
    /// Directories owned by the group (every directory whose bank channel
    /// is in the group's component), ascending.
    dir_list: Vec<DirId>,
    /// `dir_list` as a dense mask.
    dirs_mask: Vec<bool>,
    /// The distinct bank channels owned by the group, ascending. The lane
    /// barrier copies exactly these channels back into the master
    /// interconnect.
    bank_list: Vec<usize>,
    /// Number of distinct bank channels backing `dir_list`.
    banks: usize,
}

/// Output of the window planner: the groups plus the constant power-state
/// baseline of every parked (provably inert) processor.
struct WindowPlan {
    groups: Vec<WindowGroup>,
    parked: (usize, usize, usize, usize),
    active_banks: usize,
}

/// Union-find over `processors ++ bank channels`, with
/// smallest-root-wins unions so component ids are deterministic.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..u32::try_from(n).expect("node count fits u32")).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let grandparent = self.parent[self.parent[x] as usize];
            self.parent[x] = grandparent;
            x = grandparent as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = u32::try_from(lo).expect("root fits u32");
        }
    }
}

/// Cached skeleton of one lane: full-size component vectors filled with
/// cheap placeholders (empty-thread processors that are born `Done`,
/// zero-processor directories, fresh memory ports). Building a lane swaps
/// the group's *real* components into the matching slots — O(group size)
/// pointer swaps — and moves the vectors into an owned [`TccSystem`];
/// disassembly reverses both moves, so the allocations are reused every
/// window. Placeholder slots are never touched during the window: the
/// planner proves foreign processors cannot act and anchors every
/// directory/bank the group can reach, and fresh placeholders report no
/// deadlines, so they are invisible to the lane's plan/step machinery.
pub(super) struct LaneShell {
    procs: Vec<Processor>,
    dirs: Vec<DirCtrl>,
    memory_banks: Vec<MainMemory>,
    view: SystemView,
    acct_until: Vec<Cycle>,
    /// Per-lane interval sink (the lane-local analogue of the dummy tracker
    /// the sequential path swaps in): absorbs the double-counted records and
    /// is discarded, while the authoritative per-cycle data lives in the
    /// lane's RLE log. Fixed-size, so reuse across windows cannot grow it.
    intervals: IntervalTracker,
    deadlines: BinaryHeap<Reverse<(Cycle, ProcId)>>,
    dir_scratch: Vec<DirId>,
    wstage: Vec<StagedMsg>,
    wscratch: Vec<(ScopedCmdKey, GateCommand)>,
    log_buf: Vec<IntervalSeg>,
}

impl LaneShell {
    fn new(cfg: &SimConfig) -> Self {
        Self {
            procs: (0..cfg.num_procs)
                .map(|i| Processor::new(i, ThreadTrace::default(), SpecCache::new(1, 1)))
                .collect(),
            dirs: (0..cfg.num_dirs)
                .map(|d| DirCtrl::new(d, 0, cfg.directory_latency))
                .collect(),
            memory_banks: (0..cfg.num_dirs)
                .map(|_| MainMemory::from_config(cfg))
                .collect(),
            view: SystemView::default(),
            acct_until: Vec::new(),
            intervals: IntervalTracker::new(cfg.num_procs),
            deadlines: BinaryHeap::new(),
            dir_scratch: Vec::new(),
            wstage: Vec::new(),
            wscratch: Vec::new(),
            log_buf: Vec::new(),
        }
    }
}

/// Hook adapter installed in every lane: forwards every [`GatingHook`]
/// callback to the master's hook behind a mutex, so all lanes observe one
/// shared controller exactly as the sequential engine does. Serialization
/// is for memory safety; *determinism* comes from the couplings contract
/// (callbacks from different lanes touch disjoint hook state, so their
/// interleaving commutes) and from jump-split exactness (timing-dependent
/// `next_deadline` reads only split jumps, see the module docs).
pub(super) struct LaneHook<'a, H> {
    shared: &'a Mutex<&'a mut H>,
}

impl<H: GatingHook> LaneHook<'_, H> {
    fn with<R>(&self, f: impl FnOnce(&mut H) -> R) -> R {
        // A poisoned mutex means a sibling lane panicked mid-callback; the
        // scope will re-raise that panic at the barrier. Ignoring the poison
        // here avoids cascading a second, less informative panic.
        let mut guard = self.shared.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut **guard)
    }
}

impl<H: GatingHook> GatingHook for LaneHook<'_, H> {
    fn on_abort(
        &mut self,
        dir: DirId,
        victim: ProcId,
        aborter: ProcId,
        aborter_tx: TxId,
        now: Cycle,
        view: &SystemView,
    ) -> AbortAction {
        self.with(|h| h.on_abort(dir, victim, aborter, aborter_tx, now, view))
    }

    fn on_tick(&mut self, now: Cycle, view: &SystemView, out: &mut Vec<GateCommand>) {
        self.with(|h| h.on_tick(now, view, out));
    }

    fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
        self.with(|h| h.next_deadline(now))
    }

    fn on_commit(&mut self, proc: ProcId, now: Cycle) {
        self.with(|h| h.on_commit(proc, now));
    }

    fn on_wake(&mut self, proc: ProcId, now: Cycle) {
        self.with(|h| h.on_wake(proc, now));
    }

    fn on_proc_activity(&mut self, proc: ProcId, dir: DirId, now: Cycle) {
        self.with(|h| h.on_proc_activity(proc, dir, now));
    }

    fn windowed_couplings(&self, out: &mut Vec<(DirId, ProcId)>) -> bool {
        self.with(|h| h.windowed_couplings(out))
    }

    fn on_tick_scoped(
        &mut self,
        now: Cycle,
        view: &SystemView,
        focus: &[bool],
        out: &mut Vec<(ScopedCmdKey, GateCommand)>,
    ) {
        self.with(|h| h.on_tick_scoped(now, view, focus, out));
    }

    fn snapshot(&self, w: &mut CkptWriter) {
        self.with(|h| h.snapshot(w));
    }

    fn restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.with(|h| h.restore(r))
    }
}

impl<H: GatingHook> TccSystem<H> {
    /// The windowed engine's provable conservative lookahead, or `None`
    /// when the topology gives it no cross-shard structure to exploit (the
    /// shared bus, or a sharded fabric collapsed to a single bank channel)
    /// — in which case the caller behaves exactly like fast-forward.
    #[must_use]
    pub fn windowed_lookahead(&self) -> Option<Cycle> {
        if self.cfg.topology.effective_banks(self.dirs.len()) < 2 {
            return None;
        }
        Some(self.net.min_notify_latency().max(1))
    }

    /// Counters accumulated by the windowed engine so far (all zero under
    /// every other engine).
    #[must_use]
    pub fn windowed_stats(&self) -> WindowedStats {
        self.wstats
    }

    /// Advance through exactly one lookahead window (clamped at `clamp`),
    /// or through one quiescent stretch if nothing is due. Bit-for-bit
    /// equivalent to `advance_until(min(now + lookahead, clamp))`; always
    /// makes progress when `now < clamp`.
    pub(super) fn advance_window(&mut self, clamp: Cycle) {
        let Some(lookahead) = self.windowed_lookahead() else {
            self.advance_until(clamp);
            return;
        };
        // Fast-forward any quiescent prefix with the ordinary plan, so
        // windows always start on a cycle where something is due.
        loop {
            if self.done_count >= self.procs.len() || self.now >= clamp {
                return;
            }
            match self.plan_step() {
                StepPlan::Quiescent => {
                    self.fast_forward(clamp - self.now);
                    return;
                }
                StepPlan::Jump(n) => self.fast_forward(n.min(clamp - self.now)),
                StepPlan::Cycle { .. } => break,
            }
        }
        // The probe above may have popped due event-queue entries without
        // processing them; every path below reseeds (groups build their own
        // heaps, the single-group path forces a rebuild).
        let t0 = self.now;
        let t_end = (t0 + lookahead).min(clamp);
        self.wstats.windows += 1;

        let mut couplings: Vec<(DirId, ProcId)> = Vec::new();
        let plan = if self.hook.windowed_couplings(&mut couplings) {
            Some(self.plan_window_groups(t_end, &couplings))
        } else {
            // The hook cannot scope its state: the whole machine is one
            // group and the window degenerates to a serial advance.
            None
        };
        match plan {
            Some(plan) if plan.groups.len() > 1 => self.advance_window_groups(plan, t0, t_end),
            plan => {
                if let Some(plan) = plan {
                    self.wstats.max_banks_active =
                        self.wstats.max_banks_active.max(plan.active_banks);
                    self.wstats.max_groups_in_window =
                        self.wstats.max_groups_in_window.max(plan.groups.len());
                }
                self.wstats.record_window_groups(1);
                self.fast_state_stale = true;
                self.advance_until(t_end);
                self.wstats.group_advances += 1;
            }
        }
    }

    /// Partition the machine for the window `[now, t_end)`: union-find over
    /// processors and bank channels, linking everything that can observe or
    /// mutate shared state before `t_end`. Over-approximation (merging two
    /// groups that would not actually have interacted) only costs
    /// parallelism, never correctness; the converse direction is what every
    /// edge below is for.
    fn plan_window_groups(&self, t_end: Cycle, couplings: &[(DirId, ProcId)]) -> WindowPlan {
        let np = self.procs.len();
        let nd = self.dirs.len();
        let nb = self.cfg.topology.effective_banks(nd);
        let mut dsu = Dsu::new(np + nb);
        let mut active = vec![false; np];
        let mut bank_hook_active = vec![false; nb];
        let now = self.now;

        for (i, active_i) in active.iter_mut().enumerate() {
            let proc = &self.procs[i];
            let acct = self.acct_until[i];

            // (1) Deliverable inbox events. Delivery runs the abort/wake
            // protocol: hook state at the sending directory, release of
            // every touched directory, then a restart that can issue
            // operations — and the hook consults the aborter's view entry,
            // so an *acting* aborter must share the group (a parked
            // aborter's entry is constant and safe to read across groups).
            let mut acts = false;
            for (at, ev) in proc.inbox.iter() {
                if at.max(now) >= t_end {
                    continue;
                }
                acts = true;
                match *ev {
                    ProcEvent::Invalidation { dir, aborter, .. } => {
                        dsu.union(i, np + self.cfg.topology.bank_of(dir, nd));
                        dsu.union(i, aborter);
                    }
                    ProcEvent::TurnOn { dir } => {
                        dsu.union(i, np + self.cfg.topology.bank_of(dir, nd));
                    }
                }
            }
            if acts {
                *active_i = true;
                for &d in &proc.dirs_touched {
                    dsu.union(i, np + self.cfg.topology.bank_of(d, nd));
                }
                let mut anchor = |d: DirId| dsu.union(i, np + self.cfg.topology.bank_of(d, nd));
                // Restart after an abort or wake: attempt state is cleared
                // and the prologue is not re-executed. Walking from the
                // window start overestimates how far it gets — safe.
                self.walk_anchors(i, proc.tx_idx, 0, now, t_end, false, false, &mut anchor);
            }

            // (2) Phase machinery. `r` is the earliest cycle the phase
            // itself acts (relative countdowns are measured from the lazy
            // accounting watermark, exactly like `Processor::next_deadline`).
            let resume = match proc.phase {
                Phase::Done | Phase::Gated => None,
                Phase::PreCompute { remaining } => Some(acct + remaining.saturating_sub(1)),
                Phase::Executing { remaining, .. } => Some(acct + remaining),
                Phase::SpinCommit { .. } => Some(now),
                Phase::WaitMiss { until, .. }
                | Phase::WaitToken { until }
                | Phase::Committing { until, .. }
                | Phase::Aborting { until, .. }
                | Phase::Backoff { until }
                | Phase::Throttled { until }
                | Phase::GateDraining { until }
                | Phase::WakeRestart { until } => Some(until.max(acct)),
            };
            let Some(r) = resume else { continue };
            if r >= t_end {
                // Provably inert all window (its inbox was handled above):
                // parked. Its power state, view entry and lazy accounting
                // watermark stay untouched, exactly as a serial run would
                // leave them while it never acts.
                continue;
            }
            *active_i = true;
            let mut anchor = |d: DirId| dsu.union(i, np + self.cfg.topology.bank_of(d, nd));
            match proc.phase {
                Phase::Done | Phase::Gated | Phase::GateDraining { .. } => {
                    // Gate drain completes locally (power state flips to
                    // Gated); no shared state is touched.
                }
                Phase::PreCompute { .. } => {
                    self.walk_anchors(i, proc.tx_idx, 0, r + 1, t_end, false, true, &mut anchor);
                }
                Phase::Executing { op_idx, .. } => {
                    self.walk_anchors(i, proc.tx_idx, op_idx, r, t_end, false, true, &mut anchor);
                }
                Phase::WaitMiss { op_idx, .. } => {
                    // The fill itself touches only the local cache; the
                    // miss's home is already in `dirs_touched` and gets
                    // anchored if a commit is reachable.
                    self.walk_anchors(
                        i,
                        proc.tx_idx,
                        op_idx,
                        r + 1,
                        t_end,
                        false,
                        true,
                        &mut anchor,
                    );
                }
                Phase::WaitToken { .. } | Phase::SpinCommit { .. } | Phase::Committing { .. } => {
                    // Marking, spinning and flushing touch every planned
                    // directory; finishing releases everything touched.
                    // Conservatively assume the commit can complete inside
                    // the window and the next transaction starts. A commit
                    // finishing at cycle `r` issues the next transaction's
                    // first operation at `r + 1 + pre_compute`, and the walk
                    // charges the prologue itself, so it must start at
                    // `r + 1` to keep every modeled cycle a lower bound.
                    for step in &proc.commit_plan {
                        anchor(step.dir);
                    }
                    for &d in &proc.dirs_touched {
                        anchor(d);
                    }
                    self.walk_anchors(
                        i,
                        proc.tx_idx + 1,
                        0,
                        r + 1,
                        t_end,
                        true,
                        false,
                        &mut anchor,
                    );
                }
                Phase::Aborting { then, .. } => {
                    let start = match then {
                        RetryAfter::Immediately => r + 1,
                        RetryAfter::Backoff(b) => r + b + 1,
                        RetryAfter::Throttle(d) => r + d + 1,
                    };
                    self.walk_anchors(i, proc.tx_idx, 0, start, t_end, false, false, &mut anchor);
                }
                Phase::Backoff { .. } | Phase::Throttled { .. } | Phase::WakeRestart { .. } => {
                    self.walk_anchors(i, proc.tx_idx, 0, r + 1, t_end, false, false, &mut anchor);
                }
            }
        }

        // (3) Hook couplings: a scoped action at directory `d` may read or
        // write state tied to processor `p`, so `d`'s bank and `p` must
        // share a group. If the hook can fire inside this window at all,
        // every coupled bank must belong to *some* group so the due entries
        // are processed (a group can consist of banks alone).
        let hook_due_in_window = self.hook.next_deadline(now).is_some_and(|d| d < t_end);
        for &(d, p) in couplings {
            let b = self.cfg.topology.bank_of(d, nd);
            dsu.union(np + b, p);
            if hook_due_in_window {
                bank_hook_active[b] = true;
            }
        }

        // Assemble groups from the components that contain activity.
        let mut groups: Vec<WindowGroup> = Vec::new();
        let mut root_slot = vec![usize::MAX; np + nb];
        let mut claim = |root: usize, groups: &mut Vec<WindowGroup>| {
            if root_slot[root] == usize::MAX {
                root_slot[root] = groups.len();
                groups.push(WindowGroup {
                    procs: Vec::new(),
                    proc_set: ProcSet::empty(),
                    counts: (0, 0, 0, 0),
                    dir_list: Vec::new(),
                    dirs_mask: vec![false; nd],
                    bank_list: Vec::new(),
                    banks: 0,
                });
            }
            root_slot[root]
        };
        for (i, &is_active) in active.iter().enumerate() {
            if is_active {
                let g = claim(dsu.find(i), &mut groups);
                groups[g].procs.push(i);
                groups[g].proc_set.insert(i);
                match self.procs[i].phase.power_state() {
                    PowerState::Gated => groups[g].counts.0 += 1,
                    PowerState::Miss => groups[g].counts.1 += 1,
                    PowerState::Commit => groups[g].counts.2 += 1,
                    PowerState::Throttled => groups[g].counts.3 += 1,
                    PowerState::Run => {}
                }
            }
        }
        for (b, &hook_active) in bank_hook_active.iter().enumerate() {
            if hook_active {
                claim(dsu.find(np + b), &mut groups);
            }
        }
        let mut bank_group = vec![usize::MAX; nb];
        let mut active_banks = 0usize;
        for (b, slot) in bank_group.iter_mut().enumerate() {
            let g = root_slot[dsu.find(np + b)];
            *slot = g;
            if g != usize::MAX {
                groups[g].banks += 1;
                groups[g].bank_list.push(b);
                if !groups[g].procs.is_empty() {
                    active_banks += 1;
                }
            }
        }
        for d in 0..nd {
            let g = bank_group[self.cfg.topology.bank_of(d, nd)];
            if g != usize::MAX {
                groups[g].dir_list.push(d);
                groups[g].dirs_mask[d] = true;
            }
        }

        // The parked baseline: global population counts minus every group's
        // share (the global counts are current — the caller just ran
        // `plan_step`, which rebuilds them when stale).
        let mut parked = self.state_counts;
        for g in &groups {
            parked.0 -= g.counts.0;
            parked.1 -= g.counts.1;
            parked.2 -= g.counts.2;
            parked.3 -= g.counts.3;
        }
        WindowPlan {
            groups,
            parked,
            active_banks,
        }
    }

    /// Conservative cost-model walk of the operations processor `i` can
    /// reach before `t_end`, anchoring the home directory of every memory
    /// operation on the way (plus, at a reachable commit point, everything
    /// the live attempt would release). Every cost is a lower bound — a
    /// compute op takes at least its trace cycles, a memory op at least one
    /// cycle, a commit at least one — so the walk never stops short of what
    /// the simulation could actually execute.
    #[allow(clippy::too_many_arguments)]
    fn walk_anchors(
        &self,
        i: ProcId,
        mut tx_idx: usize,
        mut op_idx: usize,
        mut t: Cycle,
        t_end: Cycle,
        mut include_prologue: bool,
        mut carry_attempt: bool,
        anchor: &mut impl FnMut(DirId),
    ) {
        let proc = &self.procs[i];
        while t < t_end {
            let Some(tx) = proc.thread.transactions.get(tx_idx) else {
                return;
            };
            if include_prologue {
                // (Re-set at the bottom of the loop: every transaction after
                // the first always pays its prologue.)
                t += tx.pre_compute;
                if t >= t_end {
                    return;
                }
            }
            while op_idx < tx.ops.len() {
                if t >= t_end {
                    return;
                }
                match tx.ops[op_idx] {
                    Op::Compute(c) => t += c.max(1),
                    Op::Read(addr) | Op::Write(addr) => {
                        anchor(self.map.home_of(self.map.line_of(addr)));
                        t += 1;
                    }
                }
                op_idx += 1;
            }
            if t >= t_end {
                return;
            }
            // Commit point reached inside the window. The walked attempt's
            // reads and writes were anchored op by op; a live resumed
            // attempt also releases what it accumulated before the window.
            if carry_attempt {
                for &d in &proc.dirs_touched {
                    anchor(d);
                }
                for &line in &proc.write_set {
                    anchor(self.map.home_of(line));
                }
                carry_attempt = false;
            }
            t += 1;
            tx_idx += 1;
            op_idx = 0;
            include_prologue = true;
        }
    }

    /// Advance the clock of one lane (or of the master, on the sequential
    /// path) from its current cycle to `t_end` with the scoped fast-forward
    /// machinery. Callers install the window focus and seed the fast-engine
    /// structures first.
    fn advance_lane_window(&mut self, t_end: Cycle) {
        while self.now < t_end {
            match self.plan_step() {
                StepPlan::Jump(n) => self.fast_forward(n.min(t_end - self.now)),
                StepPlan::Cycle { active, hook_due } => self.step_cycle(active, hook_due),
                StepPlan::Quiescent => self.fast_forward(t_end - self.now),
            }
        }
    }

    /// Advance every group of `plan` from `t0` to `t_end` with the scoped
    /// fast-forward machinery, then merge at the barrier. With more than
    /// one pool worker the groups run concurrently as disjoint lanes;
    /// otherwise they run sequentially in place. Both paths are
    /// byte-identical.
    fn advance_window_groups(&mut self, plan: WindowPlan, t0: Cycle, t_end: Cycle) {
        self.wstats.multi_group_windows += 1;
        self.wstats.max_groups_in_window = self.wstats.max_groups_in_window.max(plan.groups.len());
        self.wstats.group_advances += plan.groups.len() as u64;
        self.wstats.max_banks_active = self.wstats.max_banks_active.max(plan.active_banks);
        self.wstats.record_window_groups(plan.groups.len());
        debug_assert!(self.wstage.is_empty());

        // Settle the hook-visible snapshot before any group reads it. The
        // lazy dirty set may still hold updates from the previous window
        // (e.g. a commit on its last executed cycle) for processors that
        // are parked — and therefore never refreshed — in this one, yet
        // whose entries a group's abort protocol consults across the
        // group boundary. A parked processor's entry is constant for the
        // whole window, so refreshing everything here is exact; group
        // procs keep refreshing per executed cycle via the lane seeding.
        self.view_dirty = ProcSet::empty();
        self.refresh_view();

        let pool_override = self.lane_pool.clone();
        let pool: &WorkerPool = match &pool_override {
            Some(p) => p,
            None => WorkerPool::global(),
        };
        if pool.workers() > 1 {
            self.advance_window_groups_parallel(plan, t0, t_end, pool);
        } else {
            self.advance_window_groups_sequential(plan, t0, t_end);
        }
    }

    /// The in-place sequential group loop (pool of one worker): groups are
    /// advanced one after another on the caller's thread, re-using the
    /// master's own engine structures.
    fn advance_window_groups_sequential(&mut self, plan: WindowPlan, t0: Cycle, t_end: Cycle) {
        let total = t_end - t0;

        // Swap the interval sinks out: each group records into its own RLE
        // log (summed at the barrier); the dummy tracker absorbs the
        // double-counted records and is discarded.
        let saved_intervals = mem::replace(
            &mut self.intervals,
            IntervalTracker::new(self.cfg.num_procs),
        );
        let saved_log = self.interval_log.take();
        let mut group_logs: Vec<Vec<IntervalSeg>> = Vec::with_capacity(plan.groups.len());

        for group in plan.groups {
            self.now = t0;
            self.interval_log = Some(Vec::new());
            // Seed the engine structures from the group exactly the way
            // `rebuild_fast_state` seeds them from the whole machine.
            self.deadlines.clear();
            self.spin_mask = ProcSet::empty();
            self.state_counts = group.counts;
            self.view_dirty = group.proc_set;
            self.fast_state_stale = false;
            for &i in &group.procs {
                let proc = &self.procs[i];
                if matches!(proc.phase, Phase::SpinCommit { .. }) {
                    self.spin_mask.insert(i);
                    if let Some(d) = proc.inbox.next_delivery() {
                        self.deadlines.push(Reverse((d, i)));
                    }
                } else if let Some(d) = proc.next_deadline(self.acct_until[i]) {
                    self.deadlines.push(Reverse((d, i)));
                }
            }
            self.wfocus = Some(WindowFocus {
                dir_list: group.dir_list,
                dirs_mask: group.dirs_mask,
            });
            self.advance_lane_window(t_end);
            self.wfocus = None;
            let log = self.interval_log.take().unwrap_or_default();
            debug_assert_eq!(log.iter().map(|s| s.cycles).sum::<u64>(), total);
            group_logs.push(log);
        }

        self.intervals = saved_intervals;
        self.interval_log = saved_log;
        self.window_barrier(&group_logs, plan.parked, t0, t_end);
    }

    /// The parallel group loop: split every group off into an owned lane
    /// (components `mem::swap`-ed into a cached [`LaneShell`], interconnect
    /// cloned, hook shared behind a mutex), fan the lanes onto `pool`, then
    /// disassemble and merge. Byte-identical to the sequential path — see
    /// the module docs for the determinism argument.
    fn advance_window_groups_parallel(
        &mut self,
        plan: WindowPlan,
        t0: Cycle,
        t_end: Cycle,
        pool: &WorkerPool,
    ) {
        let window_start = Instant::now();
        let total = t_end - t0;
        let ngroups = plan.groups.len();
        self.wstats.parallel_windows += 1;
        self.wstats.max_concurrent_lanes = self
            .wstats
            .max_concurrent_lanes
            .max(ngroups.min(pool.workers()));

        let mut shells = mem::take(&mut self.lane_shells);
        while shells.len() < ngroups {
            shells.push(LaneShell::new(&self.cfg));
        }

        // Lane-start baselines: every lane begins from the master's counter
        // values, so its end-of-window counter minus the baseline is the
        // lane's own in-window delta.
        let base_done = self.done_count;
        let base_issued = self.token.issued();

        /// What the barrier needs to know about a lane beyond the lane
        /// system itself (the group's proc/bank lists; the dir list rides
        /// along inside the lane's `wfocus`).
        struct LaneMeta {
            procs: Vec<ProcId>,
            bank_list: Vec<usize>,
        }

        let mut metas: Vec<LaneMeta> = Vec::with_capacity(ngroups);
        let mut group_logs: Vec<Vec<IntervalSeg>> = Vec::with_capacity(ngroups);
        let mut lane_busy: Vec<u64> = vec![0; ngroups];
        let mut done_total = base_done;

        // Everything between here and the end of this block holds a mutable
        // borrow of `self.hook` inside `hook_cell`, so only *disjoint field
        // accesses* on `self` are allowed (no `&mut self` method calls).
        {
            let hook_cell = Mutex::new(&mut self.hook);
            let mut lanes: Vec<TccSystem<LaneHook<'_, H>>> = Vec::with_capacity(ngroups);
            for group in plan.groups {
                let shell = &mut shells[lanes.len()];
                // Swap the group's real components into the shell's
                // placeholder slots, then move the full-size vectors into
                // the lane.
                for &i in &group.procs {
                    mem::swap(&mut self.procs[i], &mut shell.procs[i]);
                }
                for &d in &group.dir_list {
                    mem::swap(&mut self.dirs[d], &mut shell.dirs[d]);
                    mem::swap(&mut self.memory_banks[d], &mut shell.memory_banks[d]);
                }
                shell.view.clone_from(&self.view);
                shell.acct_until.clone_from(&self.acct_until);
                // The lane's interconnect is a full clone: its own banks are
                // live (and copied back at the barrier), foreign banks are
                // frozen pre-window state whose only influence is the
                // jump-split horizon, and the vendor ledger starts zeroed so
                // the barrier can fold the delta back.
                let mut net = self.net.clone();
                net.reset_vendor_stats();
                let mut lane = TccSystem {
                    cfg: self.cfg.clone(),
                    map: self.map,
                    procs: mem::take(&mut shell.procs),
                    dirs: mem::take(&mut shell.dirs),
                    token: self.token.clone(),
                    net,
                    memory_banks: mem::take(&mut shell.memory_banks),
                    hook: LaneHook { shared: &hook_cell },
                    view: mem::take(&mut shell.view),
                    intervals: mem::replace(&mut shell.intervals, IntervalTracker::new(0)),
                    now: t0,
                    workload_name: String::new(),
                    last_commit_end: self.last_commit_end,
                    tick_scratch: Vec::new(),
                    dir_scratch: mem::take(&mut shell.dir_scratch),
                    view_dirty: group.proc_set,
                    acct_until: mem::take(&mut shell.acct_until),
                    deadlines: mem::take(&mut shell.deadlines),
                    spin_mask: ProcSet::empty(),
                    state_counts: group.counts,
                    done_count: base_done,
                    fast_state_stale: false,
                    perturb_accounting: self.perturb_accounting,
                    interval_log: Some(mem::take(&mut shell.log_buf)),
                    wfocus: Some(WindowFocus {
                        dir_list: group.dir_list,
                        dirs_mask: group.dirs_mask,
                    }),
                    wstage: mem::take(&mut shell.wstage),
                    wscratch: mem::take(&mut shell.wscratch),
                    last_done_cycle: self.last_done_cycle,
                    wstats: WindowedStats::default(),
                    lane_pool: None,
                    lane_shells: Vec::new(),
                };
                // Seed the lane's event heap and spin mask from the group,
                // exactly like the sequential path.
                for &i in &group.procs {
                    let proc = &lane.procs[i];
                    if matches!(proc.phase, Phase::SpinCommit { .. }) {
                        lane.spin_mask.insert(i);
                        if let Some(d) = proc.inbox.next_delivery() {
                            lane.deadlines.push(Reverse((d, i)));
                        }
                    } else if let Some(d) = proc.next_deadline(lane.acct_until[i]) {
                        lane.deadlines.push(Reverse((d, i)));
                    }
                }
                metas.push(LaneMeta {
                    procs: group.procs,
                    bank_list: group.bank_list,
                });
                lanes.push(lane);
            }

            pool.scope(|scope| {
                for (k, (lane, busy)) in lanes.iter_mut().zip(lane_busy.iter_mut()).enumerate() {
                    scope.spawn_labeled(&format!("windowed lane {k}"), move || {
                        let start = Instant::now();
                        lane.advance_lane_window(t_end);
                        *busy = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    });
                }
            });

            // Disassemble the lanes in group order (so staged-message
            // appends mirror the sequential path's append order — the
            // barrier sort is stable) and fold every delta back.
            for (lane, meta) in lanes.into_iter().zip(&metas) {
                let shell = &mut shells[group_logs.len()];
                let TccSystem {
                    procs,
                    dirs,
                    memory_banks,
                    token,
                    net,
                    view,
                    mut deadlines,
                    dir_scratch,
                    acct_until,
                    intervals,
                    done_count,
                    last_commit_end,
                    interval_log,
                    wfocus,
                    mut wstage,
                    wscratch,
                    last_done_cycle,
                    ..
                } = lane;
                let focus = wfocus.expect("a lane never clears its window focus");

                // Return the full-size vectors to the shell, then swap the
                // group's (now advanced) components back into the master.
                shell.procs = procs;
                shell.dirs = dirs;
                shell.memory_banks = memory_banks;
                shell.view = view;
                shell.acct_until = acct_until;
                shell.intervals = intervals;
                deadlines.clear();
                shell.deadlines = deadlines;
                shell.dir_scratch = dir_scratch;
                shell.wscratch = wscratch;
                for &i in &meta.procs {
                    mem::swap(&mut self.procs[i], &mut shell.procs[i]);
                    self.view.proc_tx[i] = shell.view.proc_tx[i];
                    self.view.proc_gated[i] = shell.view.proc_gated[i];
                    self.acct_until[i] = shell.acct_until[i];
                }
                for &d in &focus.dir_list {
                    mem::swap(&mut self.dirs[d], &mut shell.dirs[d]);
                    mem::swap(&mut self.memory_banks[d], &mut shell.memory_banks[d]);
                    self.view.dir_marked[d] = shell.view.dir_marked[d];
                }
                for &b in &meta.bank_list {
                    self.net.copy_bank_from(&net, b);
                }
                self.net.absorb_vendor_stats(&net);
                self.token.absorb_issued(token.issued() - base_issued);
                done_total += done_count - base_done;
                self.last_commit_end = self.last_commit_end.max(last_commit_end);
                self.last_done_cycle = self.last_done_cycle.max(last_done_cycle);
                self.wstage.append(&mut wstage);
                shell.wstage = wstage;

                let log = interval_log.unwrap_or_default();
                debug_assert_eq!(log.iter().map(|s| s.cycles).sum::<u64>(), total);
                group_logs.push(log);
            }
        }

        self.done_count = done_total;
        self.wstats.lane_busy_nanos += lane_busy.iter().sum::<u64>();
        self.window_barrier(&group_logs, plan.parked, t0, t_end);

        // Hand the RLE log buffers back to their shells for reuse.
        for (shell, mut log) in shells.iter_mut().zip(group_logs) {
            log.clear();
            shell.log_buf = log;
        }
        self.lane_shells = shells;
        self.wstats.window_wall_nanos +=
            u64::try_from(window_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }

    /// The engine-state half of the window barrier, shared by the
    /// sequential and parallel paths: pick the exact end cycle, merge the
    /// per-group interval logs with the parked baseline into the real
    /// tracker, deliver the staged messages in serial push order, and jump
    /// the clock.
    fn window_barrier(
        &mut self,
        group_logs: &[Vec<IntervalSeg>],
        parked: (usize, usize, usize, usize),
        t0: Cycle,
        t_end: Cycle,
    ) {
        self.now = t0;

        // If the run completed inside this window, stop where the serial
        // engines' run loops would have stopped: the cycle right after the
        // last processor finished (every group past that point provably
        // executed nothing).
        let end = if self.done_count >= self.procs.len() {
            debug_assert!(self.last_done_cycle > t0 && self.last_done_cycle <= t_end);
            self.last_done_cycle
        } else {
            t_end
        };

        // Merge the per-group interval logs plus the parked baseline into
        // the real tracker, cycle-wise (truncated at `end`; group logs
        // always cover the full window).
        let base = IntervalSeg {
            cycles: 0,
            gated: parked.0,
            missing: parked.1,
            committing: parked.2,
            throttled: parked.3,
        };
        let mut merged: Vec<IntervalSeg> = Vec::new();
        zip_sum_segments(group_logs, base, end - t0, |seg| merged.push(seg));
        for seg in merged {
            self.intervals.record_with_throttle(
                seg.cycles,
                seg.gated,
                seg.missing,
                seg.committing,
                seg.throttled,
            );
            self.mirror_log(
                seg.cycles,
                seg.gated,
                seg.missing,
                seg.committing,
                seg.throttled,
            );
        }

        // Deliver the staged messages in the exact order a serial run would
        // have pushed them: by cycle, hook commands before processor
        // messages, then by emitter. Each emitter's messages were appended
        // in its own program order and the sort is stable, so per-inbox
        // sequence numbers come out identical to the serial run's.
        let mut stage = mem::take(&mut self.wstage);
        stage.sort_by_key(|m| (m.cycle, m.phase, m.key));
        self.wstats.staged_messages += stage.len() as u64;
        for msg in stage.drain(..) {
            debug_assert!(
                msg.deliver_at >= t_end,
                "lookahead violation: staged message delivers inside its own window"
            );
            self.procs[msg.target].inbox.push(msg.deliver_at, msg.ev);
        }
        self.wstage = stage;

        self.now = end;
        self.state_counts = (0, 0, 0, 0);
        self.fast_state_stale = true;
    }

    /// Scoped replacement for `apply_hook_commands` during a group advance:
    /// the tick sees only the group's directories, and the resulting "on"
    /// messages are routed (paying for their channel slot now, on the
    /// group's own banks) but staged for delivery at the barrier.
    pub(super) fn apply_hook_commands_scoped(&mut self) {
        let mut keyed = mem::take(&mut self.wscratch);
        keyed.clear();
        {
            let focus = self
                .wfocus
                .as_ref()
                .expect("scoped hook tick requires a window focus");
            self.hook
                .on_tick_scoped(self.now, &self.view, &focus.dirs_mask, &mut keyed);
        }
        for &(key, cmd) in &keyed {
            match cmd {
                GateCommand::UngateProcessor { proc, dir } => {
                    let route = Route {
                        src: Node::Dir(dir),
                        dst: Node::Proc(proc),
                    };
                    let arrive = self.net.request(self.now, route, BusTraffic::Control);
                    self.wstage.push(StagedMsg {
                        cycle: self.now,
                        phase: STAGE_PHASE_HOOK,
                        key: (key.0, key.1, key.2),
                        target: proc,
                        deliver_at: arrive,
                        ev: ProcEvent::TurnOn { dir },
                    });
                }
            }
        }
        self.wscratch = keyed;
    }
}
