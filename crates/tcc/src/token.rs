//! Centralized token vendor.
//!
//! In Scalable TCC "a centralized token vendor generates a token id when a
//! processor reaches the commit stage. This token id (TID) acts as a
//! timestamp for the transaction commit" — conflicting commits to the same
//! directory serialize on it, older (lower) TIDs first.

use serde::{Deserialize, Serialize};

use htm_sim::port::SinglePortResource;
use htm_sim::Cycle;

/// A commit timestamp. Lower values are older and win commit arbitration.
pub type Tid = u64;

/// The centralized TID generator.
///
/// Requests are serviced one at a time (the vendor is a single shared
/// resource); each request takes the configured vendor latency on top of the
/// interconnect time paid by the caller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenVendor {
    next_tid: Tid,
    port: SinglePortResource,
    issued: u64,
}

impl TokenVendor {
    /// Create a vendor with the given per-request service latency.
    #[must_use]
    pub fn new(latency: u64) -> Self {
        Self {
            next_tid: 1,
            port: SinglePortResource::new(latency),
            issued: 0,
        }
    }

    /// Request a TID at cycle `now`. Returns the assigned TID and the cycle at
    /// which the reply is ready to leave the vendor.
    pub fn request(&mut self, now: Cycle) -> (Tid, Cycle) {
        let ready = self.port.access(now);
        let tid = self.next_tid;
        self.next_tid += 1;
        self.issued += 1;
        (tid, ready)
    }

    /// Number of TIDs issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The TID that will be handed out next.
    #[must_use]
    pub fn peek_next(&self) -> Tid {
        self.next_tid
    }

    /// Next cycle (strictly after `now`) at which the vendor's state can
    /// change on its own — the in-flight TID reply leaving the vendor — or
    /// `None` when idle. Feeds the fast-forward engine's event horizon.
    #[must_use]
    pub fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
        self.port.next_deadline(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_are_monotonically_increasing() {
        let mut v = TokenVendor::new(5);
        let (a, _) = v.request(0);
        let (b, _) = v.request(0);
        let (c, _) = v.request(100);
        assert!(a < b && b < c);
        assert_eq!(v.issued(), 3);
    }

    #[test]
    fn concurrent_requests_serialize() {
        let mut v = TokenVendor::new(10);
        let (_, r1) = v.request(0);
        let (_, r2) = v.request(0);
        assert_eq!(r1, 10);
        assert_eq!(r2, 20);
    }

    #[test]
    fn earlier_requester_gets_lower_tid() {
        let mut v = TokenVendor::new(5);
        let (first, _) = v.request(0);
        let (second, _) = v.request(1);
        assert!(first < second);
    }

    #[test]
    fn peek_does_not_consume() {
        let v = TokenVendor::new(5);
        assert_eq!(v.peek_next(), 1);
        assert_eq!(v.issued(), 0);
    }
}
