//! Centralized token vendor.
//!
//! In Scalable TCC "a centralized token vendor generates a token id when a
//! processor reaches the commit stage. This token id (TID) acts as a
//! timestamp for the transaction commit" — conflicting commits to the same
//! directory serialize on it, older (lower) TIDs first.
//!
//! The vendor has two service models:
//!
//! * **Serial** (the bus machine): requests occupy a single port one at a
//!   time, and TIDs are a simple issue counter. Faithful to a small
//!   centralized unit, but it couples every committer in the machine.
//! * **Pipelined** (sharded topologies): the vendor accepts one request per
//!   cycle and stamps each with a Lamport-style TID derived from its arrival
//!   cycle and the requesting processor id. Age order is preserved (earlier
//!   arrival ⇒ lower TID; ties broken by processor id), replies take the
//!   same fixed latency, and — crucially for shard-parallel simulation —
//!   the TID handed to a processor depends only on *that processor's own*
//!   request, never on traffic from unrelated processors.

use serde::{Deserialize, Serialize};

use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};
use htm_sim::port::SinglePortResource;
use htm_sim::{Cycle, ProcId};

/// A commit timestamp. Lower values are older and win commit arbitration.
pub type Tid = u64;

/// Bits reserved for the processor id in pipelined (Lamport) TIDs; matches
/// [`htm_sim::MAX_PROCS`].
const TID_PROC_BITS: u32 = 10;

/// The centralized TID generator.
///
/// Requests are serviced one at a time in serial mode (the vendor is a
/// single shared resource) or accepted every cycle in pipelined mode; each
/// request takes the configured vendor latency on top of the interconnect
/// time paid by the caller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenVendor {
    next_tid: Tid,
    port: SinglePortResource,
    issued: u64,
    pipelined: bool,
    latency: u64,
}

impl TokenVendor {
    /// Create a serial vendor with the given per-request service latency.
    #[must_use]
    pub fn new(latency: u64) -> Self {
        Self {
            next_tid: 1,
            port: SinglePortResource::new(latency),
            issued: 0,
            pipelined: false,
            latency,
        }
    }

    /// Create a pipelined vendor (sharded topologies): fixed reply latency,
    /// no queuing, Lamport TIDs of the form `arrival_cycle · 1024 + proc`.
    #[must_use]
    pub fn pipelined(latency: u64) -> Self {
        Self {
            pipelined: true,
            ..Self::new(latency)
        }
    }

    /// Whether this vendor runs in the pipelined (sharded) service model.
    #[must_use]
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// Request a TID for `proc` at cycle `now`. Returns the assigned TID and
    /// the cycle at which the reply is ready to leave the vendor.
    pub fn request(&mut self, now: Cycle, proc: ProcId) -> (Tid, Cycle) {
        self.issued += 1;
        if self.pipelined {
            let tid = (now << TID_PROC_BITS) | proc as Tid;
            (tid, now + self.latency)
        } else {
            let ready = self.port.access(now);
            let tid = self.next_tid;
            self.next_tid += 1;
            (tid, ready)
        }
    }

    /// Number of TIDs issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Fold `delta` additional issued TIDs into the counter. Used by the
    /// windowed engine's lane barrier: each lane clones the (pipelined)
    /// vendor, and the master absorbs each lane's in-window issue count.
    /// Only meaningful for a pipelined vendor, whose TIDs are derived from
    /// the request cycle and never from `issued`; a serial vendor is never
    /// lane-split (the windowed engine requires a sharded machine, which
    /// always builds a pipelined vendor).
    pub(crate) fn absorb_issued(&mut self, delta: u64) {
        debug_assert!(self.pipelined || delta == 0);
        self.issued += delta;
    }

    /// The TID a serial vendor will hand out next (pipelined TIDs depend on
    /// the arrival cycle, so this is only meaningful in serial mode).
    #[must_use]
    pub fn peek_next(&self) -> Tid {
        self.next_tid
    }

    /// Next cycle (strictly after `now`) at which the vendor's state can
    /// change on its own — the in-flight TID reply leaving the serial port —
    /// or `None` when idle. A pipelined vendor holds no shared state, so it
    /// never produces a deadline. Feeds the fast-forward engine's event
    /// horizon.
    #[must_use]
    pub fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
        if self.pipelined {
            None
        } else {
            self.port.next_deadline(now)
        }
    }

    /// Serialize the vendor state into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_u64(self.next_tid);
        self.port.save_ckpt(w);
        w.put_u64(self.issued);
        w.put_bool(self.pipelined);
        w.put_u64(self.latency);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            next_tid: r.get_u64()?,
            port: SinglePortResource::load_ckpt(r)?,
            issued: r.get_u64()?,
            pipelined: r.get_bool()?,
            latency: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_are_monotonically_increasing() {
        let mut v = TokenVendor::new(5);
        let (a, _) = v.request(0, 0);
        let (b, _) = v.request(0, 1);
        let (c, _) = v.request(100, 0);
        assert!(a < b && b < c);
        assert_eq!(v.issued(), 3);
    }

    #[test]
    fn concurrent_requests_serialize() {
        let mut v = TokenVendor::new(10);
        let (_, r1) = v.request(0, 0);
        let (_, r2) = v.request(0, 1);
        assert_eq!(r1, 10);
        assert_eq!(r2, 20);
    }

    #[test]
    fn earlier_requester_gets_lower_tid() {
        let mut v = TokenVendor::new(5);
        let (first, _) = v.request(0, 1);
        let (second, _) = v.request(1, 0);
        assert!(first < second);
    }

    #[test]
    fn peek_does_not_consume() {
        let v = TokenVendor::new(5);
        assert_eq!(v.peek_next(), 1);
        assert_eq!(v.issued(), 0);
    }

    #[test]
    fn pipelined_vendor_never_queues() {
        let mut v = TokenVendor::pipelined(5);
        let (_, r1) = v.request(0, 0);
        let (_, r2) = v.request(0, 1);
        assert_eq!(r1, 5);
        assert_eq!(r2, 5, "same-cycle requests are not serialized");
        assert_eq!(v.next_deadline(0), None);
        assert_eq!(v.issued(), 2);
    }

    #[test]
    fn pipelined_tids_preserve_age_order() {
        let mut v = TokenVendor::pipelined(5);
        let (t0a, _) = v.request(0, 3);
        let (t0b, _) = v.request(0, 7);
        let (t1, _) = v.request(1, 0);
        assert!(t0a < t0b, "same cycle: lower proc id is older");
        assert!(t0b < t1, "earlier cycle always beats later cycle");
    }

    #[test]
    fn pipelined_tids_depend_only_on_own_request() {
        // The TID proc 5 receives at cycle 40 is identical whether or not
        // other processors requested earlier — the island-parallel engine
        // relies on this.
        let mut busy = TokenVendor::pipelined(5);
        busy.request(0, 0);
        busy.request(10, 1);
        let (busy_tid, busy_ready) = busy.request(40, 5);
        let mut quiet = TokenVendor::pipelined(5);
        let (quiet_tid, quiet_ready) = quiet.request(40, 5);
        assert_eq!(busy_tid, quiet_tid);
        assert_eq!(busy_ready, quiet_ready);
    }
}
