//! Execution statistics produced by a simulation run.
//!
//! The energy model of the paper (Section IV) needs, for every processor, the
//! number of cycles spent in each of four power-relevant states — full-speed
//! execution, cache-miss stall, commit flush and clock-gated standby — plus
//! the interval decomposition (`Xi`, `αi`, `βi`). [`RunOutcome`] carries all
//! of that, together with protocol-level counters (commits, aborts,
//! renewals) used by the experiment reports.

use serde::{Deserialize, Serialize};

use htm_sim::bus::BusStats;
use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};
use htm_sim::interval::IntervalTracker;
use htm_sim::stats::Histogram;
use htm_sim::Cycle;

use crate::dirctrl::DirCtrlStats;

/// The power-relevant processor states: the four of the paper's model
/// (Table I) plus the DVFS-style throttled state the `throttle` contention
/// policy introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// Executing instructions, spinning at the commit instruction, executing
    /// non-transactional code or spinning at a synchronization point — full
    /// run-mode power (factor 1.0).
    Run,
    /// Stalled waiting for an L1 miss to be serviced (factor 0.32).
    Miss,
    /// Flushing the write set into a directory during commit (factor 0.44).
    Commit,
    /// Clock-gated standby (factor 0.20 — leakage plus the always-on PLL).
    Gated,
    /// DVFS-style reduced-power wait: the clocks keep running at a reduced
    /// rate instead of stopping entirely (the `throttle` contention policy's
    /// intermediate state between Run and Gated; not part of Table I).
    Throttled,
}

/// Cycles a single processor spent in each power state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateCycles {
    /// Cycles at full run-mode power.
    pub run: u64,
    /// Cycles stalled on cache misses.
    pub miss: u64,
    /// Cycles spent flushing commits.
    pub commit: u64,
    /// Cycles spent clock-gated.
    pub gated: u64,
    /// Cycles spent in the DVFS-style throttled state.
    pub throttled: u64,
}

impl StateCycles {
    /// Total cycles accounted for this processor.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.run + self.miss + self.commit + self.gated + self.throttled
    }

    /// Add one cycle in the given state.
    pub fn add(&mut self, state: PowerState, cycles: u64) {
        match state {
            PowerState::Run => self.run += cycles,
            PowerState::Miss => self.miss += cycles,
            PowerState::Commit => self.commit += cycles,
            PowerState::Gated => self.gated += cycles,
            PowerState::Throttled => self.throttled += cycles,
        }
    }

    /// Serialize into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_u64(self.run);
        w.put_u64(self.miss);
        w.put_u64(self.commit);
        w.put_u64(self.gated);
        w.put_u64(self.throttled);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            run: r.get_u64()?,
            miss: r.get_u64()?,
            commit: r.get_u64()?,
            gated: r.get_u64()?,
            throttled: r.get_u64()?,
        })
    }
}

/// Protocol-level counters for a single processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcStats {
    /// Transactions committed.
    pub commits: u64,
    /// Transaction executions that were aborted (every one of these is a
    /// "futile abort" in the paper's terminology: the work is discarded).
    pub aborts: u64,
    /// Times this processor was clock-gated.
    pub gatings: u64,
    /// Cycles spent in contention-management back-off spin (ungated CMs).
    pub backoff_cycles: u64,
    /// Cycles of work thrown away by aborts (cycles spent in execution
    /// attempts that did not commit).
    pub wasted_cycles: u64,
    /// Cycles of work that was part of a committed attempt.
    pub useful_cycles: u64,
    /// Distribution of aborts suffered per transaction before it finally
    /// committed (bucketed 0..=15, last bucket saturating).
    pub aborts_per_tx: Histogram,
}

impl ProcStats {
    /// Create zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        Self {
            commits: 0,
            aborts: 0,
            gatings: 0,
            backoff_cycles: 0,
            wasted_cycles: 0,
            useful_cycles: 0,
            aborts_per_tx: Histogram::new(16),
        }
    }

    /// Serialize into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_u64(self.commits);
        w.put_u64(self.aborts);
        w.put_u64(self.gatings);
        w.put_u64(self.backoff_cycles);
        w.put_u64(self.wasted_cycles);
        w.put_u64(self.useful_cycles);
        self.aborts_per_tx.save_ckpt(w);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            commits: r.get_u64()?,
            aborts: r.get_u64()?,
            gatings: r.get_u64()?,
            backoff_cycles: r.get_u64()?,
            wasted_cycles: r.get_u64()?,
            useful_cycles: r.get_u64()?,
            aborts_per_tx: Histogram::load_ckpt(r)?,
        })
    }
}

impl Default for ProcStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Complete outcome of one simulation run.
///
/// `PartialEq` is derived on purpose: the engine-differential tests assert
/// that the fast-forward and naive stepping engines produce outcomes that
/// are equal field for field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Name of the workload that was executed.
    pub workload: String,
    /// Number of processors simulated.
    pub num_procs: usize,
    /// Total length of the parallel section in cycles (the paper's `N1` for
    /// ungated runs / `N2` for gated runs).
    pub total_cycles: Cycle,
    /// Cycle at which the first transaction started.
    pub first_tx_start: Cycle,
    /// Cycle at which the last transaction committed.
    pub last_commit_end: Cycle,
    /// Per-processor power-state cycle breakdown.
    pub state_cycles: Vec<StateCycles>,
    /// Per-processor protocol counters.
    pub proc_stats: Vec<ProcStats>,
    /// Interval decomposition (`Xi`, `αi`, `βi` of Eqs. 2–4).
    pub intervals: IntervalTracker,
    /// Aggregate interconnect statistics (all banks plus the vendor link on
    /// sharded topologies; the single channel on the bus).
    pub bus: BusStats,
    /// Per-bank channel statistics on sharded topologies, in bank order;
    /// empty for the monolithic bus. The energy ledger uses these to resolve
    /// uncore interconnect charges per shard.
    pub shard_bus: Vec<BusStats>,
    /// Per-directory controller statistics (SRAM lookups, marks, grants,
    /// abort-time `TxInfoReq` round-trips), in directory order. The uncore
    /// side of the energy ledger is charged from these tallies.
    pub dir_stats: Vec<DirCtrlStats>,
    /// Total commits across all processors.
    pub total_commits: u64,
    /// Total aborts across all processors.
    pub total_aborts: u64,
    /// Total times any processor was clock-gated.
    pub total_gatings: u64,
}

impl RunOutcome {
    /// Abort rate: aborts per committed transaction.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        if self.total_commits == 0 {
            0.0
        } else {
            self.total_aborts as f64 / self.total_commits as f64
        }
    }

    /// Total cycles spent clock-gated, summed over processors.
    #[must_use]
    pub fn total_gated_cycles(&self) -> u64 {
        self.state_cycles.iter().map(|s| s.gated).sum()
    }

    /// Total cycles spent in the DVFS-style throttled state, summed over
    /// processors.
    #[must_use]
    pub fn total_throttled_cycles(&self) -> u64 {
        self.state_cycles.iter().map(|s| s.throttled).sum()
    }

    /// Total cycles spent stalled on misses, summed over processors.
    #[must_use]
    pub fn total_miss_cycles(&self) -> u64 {
        self.state_cycles.iter().map(|s| s.miss).sum()
    }

    /// Total cycles spent committing, summed over processors.
    #[must_use]
    pub fn total_commit_cycles(&self) -> u64 {
        self.state_cycles.iter().map(|s| s.commit).sum()
    }

    /// Total directory SRAM lookups (miss services + marks + grants), summed
    /// over directories.
    #[must_use]
    pub fn total_dir_lookups(&self) -> u64 {
        self.dir_stats.iter().map(DirCtrlStats::sram_lookups).sum()
    }

    /// Total abort-time `TxInfoReq` round-trips, summed over directories.
    #[must_use]
    pub fn total_txinfo_roundtrips(&self) -> u64 {
        self.dir_stats.iter().map(|s| s.txinfo_roundtrips).sum()
    }

    /// Number of directories in the simulated machine.
    #[must_use]
    pub fn num_dirs(&self) -> usize {
        self.dir_stats.len()
    }

    /// Check the internal consistency of the per-processor accounting: every
    /// processor must account exactly `total_cycles` cycles, and the interval
    /// tracker must have recorded the same total.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (i, sc) in self.state_cycles.iter().enumerate() {
            if sc.total() != self.total_cycles {
                return Err(format!(
                    "processor {i} accounts {} cycles but the run took {}",
                    sc.total(),
                    self.total_cycles
                ));
            }
        }
        if self.intervals.total_cycles() != self.total_cycles {
            return Err(format!(
                "interval tracker recorded {} cycles but the run took {}",
                self.intervals.total_cycles(),
                self.total_cycles
            ));
        }
        let per_proc_gated: u64 = self.state_cycles.iter().map(|s| s.gated).sum();
        if per_proc_gated != self.intervals.total_gated_proc_cycles() {
            return Err("gated processor-cycles disagree between accountings".into());
        }
        let per_proc_miss: u64 = self.state_cycles.iter().map(|s| s.miss).sum();
        if per_proc_miss != self.intervals.total_miss_proc_cycles() {
            return Err("miss processor-cycles disagree between accountings".into());
        }
        let per_proc_commit: u64 = self.state_cycles.iter().map(|s| s.commit).sum();
        if per_proc_commit != self.intervals.total_commit_proc_cycles() {
            return Err("commit processor-cycles disagree between accountings".into());
        }
        let per_proc_throttled: u64 = self.state_cycles.iter().map(|s| s.throttled).sum();
        if per_proc_throttled != self.intervals.total_throttled_proc_cycles() {
            return Err("throttled processor-cycles disagree between accountings".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_cycles_add_and_total() {
        let mut sc = StateCycles::default();
        sc.add(PowerState::Run, 10);
        sc.add(PowerState::Miss, 3);
        sc.add(PowerState::Commit, 2);
        sc.add(PowerState::Gated, 5);
        assert_eq!(sc.run, 10);
        assert_eq!(sc.total(), 20);
    }

    fn dummy_outcome() -> RunOutcome {
        let mut intervals = IntervalTracker::new(2);
        intervals.record(10, 0, 0, 0);
        RunOutcome {
            workload: "toy".into(),
            num_procs: 2,
            total_cycles: 10,
            first_tx_start: 0,
            last_commit_end: 10,
            state_cycles: vec![
                StateCycles {
                    run: 10,
                    ..Default::default()
                };
                2
            ],
            proc_stats: vec![ProcStats::new(), ProcStats::new()],
            intervals,
            bus: BusStats::default(),
            shard_bus: Vec::new(),
            dir_stats: vec![DirCtrlStats::default(); 2],
            total_commits: 4,
            total_aborts: 2,
            total_gatings: 0,
        }
    }

    #[test]
    fn abort_rate_is_aborts_per_commit() {
        let o = dummy_outcome();
        assert!((o.abort_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn consistency_check_accepts_valid_outcome() {
        assert!(dummy_outcome().check_consistency().is_ok());
    }

    #[test]
    fn consistency_check_rejects_mismatched_totals() {
        let mut o = dummy_outcome();
        o.state_cycles[0].run = 7;
        assert!(o.check_consistency().is_err());
    }

    #[test]
    fn consistency_check_rejects_interval_mismatch() {
        let mut o = dummy_outcome();
        o.total_cycles = 11;
        o.state_cycles.iter_mut().for_each(|s| s.run = 11);
        assert!(o.check_consistency().is_err());
    }

    #[test]
    fn zero_commits_zero_abort_rate() {
        let mut o = dummy_outcome();
        o.total_commits = 0;
        assert_eq!(o.abort_rate(), 0.0);
    }
}
