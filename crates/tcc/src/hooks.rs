//! The gating-hook interface between the TCC substrate and the paper's
//! clock-gate-on-abort mechanism.
//!
//! The baseline Scalable-TCC system knows nothing about clock gating; it
//! simply reports protocol events (aborts, commits, processor activity) to a
//! [`GatingHook`] and applies the commands the hook returns. The paper's
//! mechanism — the per-directory gating table of Fig. 1, the Stop-Clock /
//! TxInfoReq / renew / on protocol of Section V and the contention manager of
//! Section VI — is implemented as a `GatingHook` in the `clockgate-htm`
//! crate. [`NoGating`] is the ungated baseline used for the "without
//! clock-gating" bars of Figs. 4–6.

use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};
use htm_sim::{Cycle, DirId, ProcId, ProcSet};

use crate::txn::TxId;

/// What the substrate should do with a processor whose transaction has just
/// been aborted by an invalidation from directory `dir`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortAction {
    /// Roll back immediately and retry after spinning for `backoff` cycles at
    /// full run power. `backoff = 0` is the plain TCC baseline; a non-zero
    /// value models a conventional (non-gating) contention manager such as
    /// exponential polite back-off.
    Retry {
        /// Cycles to spin (at run power) before restarting the transaction.
        backoff: Cycle,
    },
    /// Stop the processor's clocks ("Stop Clock", Fig. 2(c)). The hook owns
    /// the gating timer and must later issue
    /// [`GateCommand::UngateProcessor`] to wake the victim, which then
    /// self-aborts and retries.
    Gate,
    /// Roll back, then wait out `duration` cycles in the DVFS-style
    /// throttled state (clocks at a reduced rate) before retrying. Unlike
    /// [`AbortAction::Gate`] the victim needs no wake-up protocol — the
    /// window is a processor-local countdown, but each cycle of it costs the
    /// throttled power factor instead of the gated one.
    Throttle {
        /// Length of the throttled window in cycles.
        duration: Cycle,
    },
}

/// Decision taken by a hook when one of its gating timers expires.
///
/// This mirrors the control circuit of Fig. 2(e): either the victim is woken
/// ("on" command) or its gating period is renewed because the aborting
/// transaction is still trying to commit in that directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UngateDecision {
    /// Wake the processor.
    Ungate,
    /// Keep the processor gated for another `new_timer` cycles.
    Renew {
        /// Fresh value loaded into the gating-timer field (the paper's `W't`).
        new_timer: Cycle,
    },
}

/// A command from the hook to the substrate, applied at the next cycle
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateCommand {
    /// Deliver the "on" signal to `proc` on behalf of directory `dir`. The
    /// processor wakes, performs a self-abort of the frozen transaction and
    /// retries it.
    UngateProcessor {
        /// Processor to wake.
        proc: ProcId,
        /// Directory issuing the command (for statistics / reconciliation).
        dir: DirId,
    },
}

/// Ordering key attached to every command a hook emits from a *scoped* tick
/// ([`GatingHook::on_tick_scoped`]).
///
/// The windowed engine advances bank-disjoint groups of the machine
/// independently within one lookahead window, so commands emitted for the
/// same cycle by different groups are staged and merged at the window
/// barrier. The merge sorts by `(key.0, key.1, key.2)` ascending, and the
/// hook must choose keys so that this order reproduces the emission order of
/// one serial `on_tick` call at that cycle (the clock-gating controller uses
/// `(dir, proc, 0)` — its serial tick scans tables in directory-then-
/// processor order; the oracle uses its pending-queue FIFO stamps). Keys
/// only ever compare against keys from the same hook at the same cycle.
pub type ScopedCmdKey = (u64, u64, u64);

/// Read-only snapshot of the system state exposed to hooks.
///
/// The snapshot is refreshed by the substrate once per cycle *before* hook
/// callbacks run, so hooks observe a consistent view: which transaction every
/// processor is executing (`None` while it is clock-gated or outside any
/// transaction — the paper's "null" reply to `TxInfoReq`), whether it is
/// gated, and which processors are marked as intending to commit in each
/// directory (the inputs of the Fig. 2(e) circuit).
#[derive(Debug, Clone, Default)]
pub struct SystemView {
    /// Per-processor: the transaction it is currently executing or trying to
    /// commit, or `None` if it is clock-gated / between transactions / done.
    pub proc_tx: Vec<Option<TxId>>,
    /// Per-processor: whether its clocks are currently gated (including the
    /// drain and wake transition states).
    pub proc_gated: Vec<bool>,
    /// Per-directory: bit vector of processors whose "Marked" bit is set
    /// (they have expressed the intention to commit in that directory and
    /// have not finished doing so).
    pub dir_marked: Vec<ProcSet>,
}

impl SystemView {
    /// Create an empty view for `num_procs` processors and `num_dirs`
    /// directories.
    #[must_use]
    pub fn new(num_procs: usize, num_dirs: usize) -> Self {
        Self {
            proc_tx: vec![None; num_procs],
            proc_gated: vec![false; num_procs],
            dir_marked: vec![ProcSet::empty(); num_dirs],
        }
    }

    /// Transaction currently executed by `proc` (the reply to a `TxInfoReq`),
    /// or `None` if the processor is gated or idle.
    #[must_use]
    pub fn current_tx(&self, proc: ProcId) -> Option<TxId> {
        if self.proc_gated[proc] {
            None
        } else {
            self.proc_tx[proc]
        }
    }

    /// Whether `proc` is currently clock-gated.
    #[must_use]
    pub fn is_gated(&self, proc: ProcId) -> bool {
        self.proc_gated[proc]
    }

    /// Whether `proc` has its "Marked" (intent-to-commit) bit set in `dir`.
    #[must_use]
    pub fn is_marked(&self, dir: DirId, proc: ProcId) -> bool {
        self.dir_marked[dir].contains(proc)
    }

    /// Bit vector of processors marked in `dir` (the input of the bitwise-OR
    /// stage of the Fig. 2(e) circuit).
    #[must_use]
    pub fn marked_bits(&self, dir: DirId) -> ProcSet {
        self.dir_marked[dir]
    }
}

/// Observer/controller interface for the clock-gating mechanism.
///
/// All methods have sensible no-op defaults except [`GatingHook::on_abort`],
/// which every implementation must decide.
///
/// The trait requires `Send` because the windowed engine advances
/// bank-disjoint groups on worker-pool threads, sharing one hook behind a
/// mutex (see `system/windowed.rs`). Hooks are plain data — tables, counters
/// and timers — so the bound is free in practice. The *semantic* obligation
/// that parallelism adds is documented on [`GatingHook::windowed_couplings`]:
/// callbacks for processors/directories in different groups must commute,
/// which the couplings contract guarantees by construction (any state shared
/// between an action's readers and writers forces its parties into one
/// group).
pub trait GatingHook: Send {
    /// A committing processor (`aborter`, executing static transaction
    /// `aborter_tx`) has invalidated a line speculatively read by `victim`;
    /// the invalidation was generated by directory `dir`. Decide what the
    /// victim should do.
    fn on_abort(
        &mut self,
        dir: DirId,
        victim: ProcId,
        aborter: ProcId,
        aborter_tx: TxId,
        now: Cycle,
        view: &SystemView,
    ) -> AbortAction;

    /// Called once per simulated cycle after the view snapshot has been
    /// refreshed; the hook pushes any gating commands that became due
    /// (typically because a gating timer expired and the Fig. 2(e) check
    /// decided to wake the victim) into `out`.
    ///
    /// `out` is a scratch buffer owned by the substrate and cleared before
    /// every call, so steady-state ticks never allocate.
    fn on_tick(&mut self, _now: Cycle, _view: &SystemView, _out: &mut Vec<GateCommand>) {}

    /// Earliest cycle `d >= now` at which this hook may act on its own —
    /// `on_tick(t, ..)` is guaranteed to push no commands and have no
    /// observable side effects for every cycle `t < d`, so `on_tick` need
    /// not even be *called* before `d`. `None` means the hook never acts
    /// spontaneously (it only reacts to `on_abort` / `on_commit` / …
    /// callbacks).
    ///
    /// The fast-forward engine uses this to skip quiescent cycles in one
    /// jump, so a hook that reports a too-late deadline breaks cycle
    /// exactness. The default of `Some(now)` is maximally conservative:
    /// it declares that `on_tick` may act *this very cycle*, so the engine
    /// never skips a tick (and never jumps) on a custom hook's account.
    /// Hooks with explicit timers (the clock-gating controller) override
    /// this with their earliest timer expiry; hooks that never issue
    /// commands return `None`.
    fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    /// `proc` committed a transaction at `now` (resets the per-processor
    /// abort counters, per Section III).
    fn on_commit(&mut self, _proc: ProcId, _now: Cycle) {}

    /// A previously gated `proc` has woken up and finished its self-abort.
    fn on_wake(&mut self, _proc: ProcId, _now: Cycle) {}

    /// `proc` issued a load/store request to `dir`; used to reconcile stale
    /// per-directory OFF bits (Section V: "if any load/store request comes
    /// from a processor which is marked as off, the directory assumes that it
    /// has been turned on by some other directory").
    fn on_proc_activity(&mut self, _proc: ProcId, _dir: DirId, _now: Cycle) {}

    /// Declare the hook's cross-shard couplings for the windowed engine's
    /// conservative grouping, returning `true` if the hook supports scoped
    /// ticking at all.
    ///
    /// A pair `(d, p)` pushed into `out` means: a spontaneous hook action
    /// scoped to directory `d` (see [`GatingHook::on_tick_scoped`]) may read
    /// or write state associated with processor `p` this window (for the
    /// clock-gating controller: the aborter recorded in an OFF gating-table
    /// entry, whose marked bit and `TxInfoReq` reply the Fig. 2(e) renewal
    /// check consults). The windowed engine then places `d`'s home bank and
    /// `p` in the same group. Pairs may be conservative (extra pairs only
    /// coarsen the grouping); *missing* pairs break engine equivalence.
    ///
    /// The default returns `false`: the hook makes no promises, and the
    /// windowed engine falls back to advancing each window as a single
    /// group (exact, but with no intra-window parallelism). Hooks that never
    /// act spontaneously ([`NoGating`], back-off, throttling) return `true`
    /// with no pairs.
    ///
    /// **Lane contract.** Since the lane fan-out, groups of one window may
    /// run on different threads, so the declared pairs also serve as a
    /// commutativity certificate: every hook callback triggered from group
    /// *A* must leave any state that a concurrently running group *B* could
    /// read or write untouched. That holds automatically when the pairs are
    /// complete — state linking `(d, p)` puts `d`'s bank and `p` in one
    /// group, so cross-group callbacks only touch disjoint table entries —
    /// and cross-group *reads* of shared aggregates (a global cycle counter,
    /// say) are safe only if no in-window callback writes them.
    fn windowed_couplings(&self, _out: &mut Vec<(DirId, ProcId)>) -> bool {
        false
    }

    /// Scoped variant of [`GatingHook::on_tick`] used by the windowed engine
    /// while advancing one bank-disjoint group: the hook must act *only* on
    /// state belonging to directories with `focus[dir] == true`, and must
    /// leave every decision it would have taken for out-of-focus directories
    /// untouched (their groups run their own scoped ticks for the same
    /// cycles). Each emitted command carries a [`ScopedCmdKey`] so the
    /// barrier merge can restore the serial emission order.
    ///
    /// Only called on hooks whose [`GatingHook::windowed_couplings`]
    /// returned `true`; the default is therefore unreachable and panics in
    /// debug builds.
    fn on_tick_scoped(
        &mut self,
        _now: Cycle,
        _view: &SystemView,
        _focus: &[bool],
        _out: &mut Vec<(ScopedCmdKey, GateCommand)>,
    ) {
        debug_assert!(
            false,
            "on_tick_scoped requires windowed_couplings() support"
        );
    }

    /// Serialize the hook's mutable state into a checkpoint payload. The
    /// default writes nothing — correct for stateless hooks ([`NoGating`]);
    /// every stateful hook must override this *and* [`GatingHook::restore`]
    /// symmetrically, or a resumed run diverges from the uninterrupted one.
    fn snapshot(&self, _w: &mut CkptWriter) {}

    /// Inverse of [`GatingHook::snapshot`]: overwrite the mutable state of a
    /// freshly constructed hook with the checkpointed values. Configuration
    /// (window constants, policy parameters) comes from construction, not
    /// from the checkpoint.
    fn restore(&mut self, _r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        Ok(())
    }
}

/// The ungated baseline: every abort is an immediate retry, nothing is ever
/// gated.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoGating;

impl GatingHook for NoGating {
    fn on_abort(
        &mut self,
        _dir: DirId,
        _victim: ProcId,
        _aborter: ProcId,
        _aborter_tx: TxId,
        _now: Cycle,
        _view: &SystemView,
    ) -> AbortAction {
        AbortAction::Retry { backoff: 0 }
    }

    fn next_deadline(&self, _now: Cycle) -> Option<Cycle> {
        // Never issues commands, so it never constrains the fast-forward
        // horizon.
        None
    }

    fn windowed_couplings(&self, _out: &mut Vec<(DirId, ProcId)>) -> bool {
        // Stateless: nothing couples shards through this hook.
        true
    }

    fn on_tick_scoped(
        &mut self,
        _now: Cycle,
        _view: &SystemView,
        _focus: &[bool],
        _out: &mut Vec<(ScopedCmdKey, GateCommand)>,
    ) {
    }
}

/// A conventional exponential polite back-off contention manager (no clock
/// gating): after the `n`-th consecutive abort of the same processor the
/// victim spins for `base * 2^min(n, cap)` cycles at full run power before
/// retrying. Included as the comparison point the paper dismisses for
/// "highly contentious applications" and used by the ablation benchmarks.
#[derive(Debug, Clone)]
pub struct ExponentialBackoff {
    base: Cycle,
    cap: u32,
    consecutive_aborts: Vec<u32>,
}

impl ExponentialBackoff {
    /// Create a back-off manager for `num_procs` processors with the given
    /// base window and exponent cap.
    #[must_use]
    pub fn new(num_procs: usize, base: Cycle, cap: u32) -> Self {
        Self {
            base,
            cap,
            consecutive_aborts: vec![0; num_procs],
        }
    }
}

impl GatingHook for ExponentialBackoff {
    fn on_abort(
        &mut self,
        _dir: DirId,
        victim: ProcId,
        _aborter: ProcId,
        _aborter_tx: TxId,
        _now: Cycle,
        _view: &SystemView,
    ) -> AbortAction {
        let n = self.consecutive_aborts[victim].min(self.cap);
        self.consecutive_aborts[victim] = self.consecutive_aborts[victim].saturating_add(1);
        AbortAction::Retry {
            backoff: self.base.saturating_mul(1 << n),
        }
    }

    fn on_commit(&mut self, proc: ProcId, _now: Cycle) {
        self.consecutive_aborts[proc] = 0;
    }

    fn next_deadline(&self, _now: Cycle) -> Option<Cycle> {
        // The back-off spin happens inside the processor (`Phase::Backoff`);
        // the hook itself never issues commands.
        None
    }

    fn windowed_couplings(&self, _out: &mut Vec<(DirId, ProcId)>) -> bool {
        // Per-victim counters only, touched by the victim's own abort/commit
        // callbacks: no cross-shard hook state.
        true
    }

    fn on_tick_scoped(
        &mut self,
        _now: Cycle,
        _view: &SystemView,
        _focus: &[bool],
        _out: &mut Vec<(ScopedCmdKey, GateCommand)>,
    ) {
    }

    fn snapshot(&self, w: &mut CkptWriter) {
        w.put_usize(self.consecutive_aborts.len());
        for &n in &self.consecutive_aborts {
            w.put_u32(n);
        }
    }

    fn restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.get_usize()?;
        if n != self.consecutive_aborts.len() {
            return Err(CkptError::Corrupt(format!(
                "backoff state for {n} processors restored into a machine with {}",
                self.consecutive_aborts.len()
            )));
        }
        for slot in &mut self.consecutive_aborts {
            *slot = r.get_u32()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_reports_marked_bits() {
        let mut v = SystemView::new(4, 2);
        v.dir_marked[1] = ProcSet::from_bits(0b1010);
        assert!(v.is_marked(1, 1));
        assert!(v.is_marked(1, 3));
        assert!(!v.is_marked(1, 0));
        assert!(!v.is_marked(0, 1));
        assert_eq!(v.marked_bits(1), ProcSet::from_bits(0b1010));
    }

    #[test]
    fn gated_processor_reports_null_tx() {
        let mut v = SystemView::new(2, 1);
        v.proc_tx[0] = Some(0x400);
        v.proc_gated[0] = true;
        v.proc_tx[1] = Some(0x500);
        assert_eq!(
            v.current_tx(0),
            None,
            "TxInfoReq to a gated processor replies null"
        );
        assert_eq!(v.current_tx(1), Some(0x500));
        assert!(v.is_gated(0));
        assert!(!v.is_gated(1));
    }

    #[test]
    fn no_gating_always_retries_immediately() {
        let mut h = NoGating;
        let v = SystemView::new(2, 1);
        assert_eq!(
            h.on_abort(0, 1, 0, 7, 100, &v),
            AbortAction::Retry { backoff: 0 }
        );
        let mut out = Vec::new();
        h.on_tick(0, &v, &mut out);
        assert!(out.is_empty());
        assert_eq!(h.next_deadline(0), None);
    }

    /// A hook relying on every default implementation must report the
    /// current cycle as its deadline: the engine then calls `on_tick` every
    /// cycle and never jumps, which is the only safe assumption for an
    /// arbitrary custom hook.
    #[test]
    fn default_next_deadline_is_conservative() {
        struct Custom;
        impl GatingHook for Custom {
            fn on_abort(
                &mut self,
                _dir: DirId,
                _victim: ProcId,
                _aborter: ProcId,
                _aborter_tx: TxId,
                _now: Cycle,
                _view: &SystemView,
            ) -> AbortAction {
                AbortAction::Gate
            }
        }
        assert_eq!(Custom.next_deadline(10), Some(10));
        assert_eq!(Custom.next_deadline(Cycle::MAX), Some(Cycle::MAX));
    }

    #[test]
    fn exponential_backoff_doubles_and_resets() {
        let mut h = ExponentialBackoff::new(2, 10, 6);
        let v = SystemView::new(2, 1);
        let windows: Vec<Cycle> = (0..4)
            .map(|_| match h.on_abort(0, 0, 1, 7, 0, &v) {
                AbortAction::Retry { backoff } => backoff,
                other => panic!("backoff never gates or throttles: {other:?}"),
            })
            .collect();
        assert_eq!(windows, vec![10, 20, 40, 80]);
        h.on_commit(0, 0);
        match h.on_abort(0, 0, 1, 7, 0, &v) {
            AbortAction::Retry { backoff } => assert_eq!(backoff, 10),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exponential_backoff_respects_cap() {
        let mut h = ExponentialBackoff::new(1, 1, 3);
        let v = SystemView::new(1, 1);
        let mut last = 0;
        for _ in 0..10 {
            if let AbortAction::Retry { backoff } = h.on_abort(0, 0, 0, 1, 0, &v) {
                last = backoff;
            }
        }
        assert_eq!(last, 8, "window saturates at base * 2^cap");
    }
}
