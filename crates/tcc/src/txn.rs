//! Transactional workload representation.
//!
//! The paper drives its evaluation with STAMP applications running on M5; we
//! drive the protocol with *traces*: every thread is a list of transactions,
//! and every transaction is a list of operations (`Read`, `Write`,
//! `Compute`). A transaction that aborts is re-executed from its first
//! operation, exactly like a processor rolling back to its check-pointed
//! state and retrying.
//!
//! A transaction is identified by a [`TxId`], standing in for "the program
//! counter value of the instruction which started the transaction" that the
//! paper stores in the directory's *Aborter Tx Id* field: retries of the same
//! static transaction carry the same `TxId`, different static transactions
//! carry different ones.

use serde::{Deserialize, Serialize};

use htm_mem::Addr;
use htm_sim::checkpoint::Fnv64;

/// Identifier of a *static* transaction (the paper uses the PC of the
/// instruction that started the transaction; 64 bits, per Section III).
pub type TxId = u64;

/// One operation inside a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Transactional load from a byte address.
    Read(Addr),
    /// Transactional store to a byte address.
    Write(Addr),
    /// `n` cycles of computation that touch no shared memory.
    Compute(u64),
}

/// A single (static) transaction: an identifier plus the operations executed
/// inside the atomic region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Static identity of this transaction (see [`TxId`]).
    pub tx_id: TxId,
    /// Non-transactional work executed *before* entering the atomic region
    /// (cannot be aborted, consumes run power).
    pub pre_compute: u64,
    /// Operations inside the atomic region.
    pub ops: Vec<Op>,
}

impl Transaction {
    /// Create a transaction with no pre-transactional work.
    #[must_use]
    pub fn new(tx_id: TxId, ops: Vec<Op>) -> Self {
        Self {
            tx_id,
            pre_compute: 0,
            ops,
        }
    }

    /// Create a transaction with `pre_compute` cycles of non-transactional
    /// work before the atomic region.
    #[must_use]
    pub fn with_pre_compute(tx_id: TxId, pre_compute: u64, ops: Vec<Op>) -> Self {
        Self {
            tx_id,
            pre_compute,
            ops,
        }
    }

    /// Number of memory operations (reads + writes).
    #[must_use]
    pub fn memory_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Read(_) | Op::Write(_)))
            .count()
    }

    /// Number of distinct addresses written.
    #[must_use]
    pub fn write_addrs(&self) -> Vec<Addr> {
        let mut addrs: Vec<Addr> = self
            .ops
            .iter()
            .filter_map(|op| {
                if let Op::Write(a) = op {
                    Some(*a)
                } else {
                    None
                }
            })
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs
    }

    /// Number of distinct addresses read.
    #[must_use]
    pub fn read_addrs(&self) -> Vec<Addr> {
        let mut addrs: Vec<Addr> = self
            .ops
            .iter()
            .filter_map(|op| if let Op::Read(a) = op { Some(*a) } else { None })
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs
    }

    /// Total `Compute` cycles inside the transaction.
    #[must_use]
    pub fn compute_cycles(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| if let Op::Compute(c) = op { *c } else { 0 })
            .sum()
    }
}

/// The work assigned to one hardware thread (processor): a sequence of
/// transactions executed in order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadTrace {
    /// Transactions to execute, in program order.
    pub transactions: Vec<Transaction>,
}

impl ThreadTrace {
    /// Create a trace from a list of transactions.
    #[must_use]
    pub fn new(transactions: Vec<Transaction>) -> Self {
        Self { transactions }
    }

    /// Number of transactions in this thread.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the thread has no transactions at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }
}

/// A complete multi-threaded workload: one [`ThreadTrace`] per processor.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    /// Human-readable workload name (e.g. `"intruder"`), used in reports.
    pub name: String,
    /// One trace per processor; `threads.len()` must equal the simulated
    /// processor count.
    pub threads: Vec<ThreadTrace>,
}

impl WorkloadTrace {
    /// Create a named workload from per-thread traces.
    #[must_use]
    pub fn new(name: impl Into<String>, threads: Vec<ThreadTrace>) -> Self {
        Self {
            name: name.into(),
            threads,
        }
    }

    /// Number of threads (processors) this workload expects.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total number of transactions across all threads.
    #[must_use]
    pub fn total_transactions(&self) -> usize {
        self.threads.iter().map(ThreadTrace::len).sum()
    }

    /// Total number of memory references (reads + writes, excluding compute
    /// delays) across all threads.
    #[must_use]
    pub fn total_memory_refs(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| t.transactions.iter())
            .flat_map(|tx| tx.ops.iter())
            .filter(|op| matches!(op, Op::Read(_) | Op::Write(_)))
            .count()
    }

    /// Order-sensitive FNV-1a fingerprint of the full trace (name, thread
    /// structure, every operation). The checkpoint layer stores this next to
    /// the machine state and refuses to resume against a workload whose
    /// fingerprint differs: a resumed run replays the *same* trace or none.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fingerprint_parts(&self.name, self.threads.iter())
    }

    /// The same workload with every thread's transaction sequence repeated
    /// `n` times back to back — the trace-recorder's way of "running the
    /// benchmark loop longer" without inventing new access patterns. `n == 0`
    /// yields empty threads; `n == 1` is a plain clone.
    #[must_use]
    pub fn tiled(&self, n: usize) -> WorkloadTrace {
        let threads = self
            .threads
            .iter()
            .map(|t| {
                let mut transactions = Vec::with_capacity(t.transactions.len() * n);
                for _ in 0..n {
                    transactions.extend(t.transactions.iter().cloned());
                }
                ThreadTrace::new(transactions)
            })
            .collect();
        WorkloadTrace::new(self.name.clone(), threads)
    }

    /// Largest byte address referenced anywhere in the workload, if any
    /// memory operation exists. Used to validate against the memory capacity.
    #[must_use]
    pub fn max_addr(&self) -> Option<Addr> {
        self.threads
            .iter()
            .flat_map(|t| t.transactions.iter())
            .flat_map(|tx| tx.ops.iter())
            .filter_map(|op| match op {
                Op::Read(a) | Op::Write(a) => Some(*a),
                Op::Compute(_) => None,
            })
            .max()
    }
}

/// [`WorkloadTrace::fingerprint`] over loose parts: the system holds the
/// per-thread traces inside its processors after construction, so the
/// checkpoint writer hashes them through this shared helper instead of
/// reassembling a `WorkloadTrace`.
#[must_use]
pub fn fingerprint_parts<'a>(
    name: &str,
    threads: impl ExactSizeIterator<Item = &'a ThreadTrace>,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(name.len() as u64);
    h.write(name.as_bytes());
    h.write_u64(threads.len() as u64);
    for thread in threads {
        h.write_u64(thread.transactions.len() as u64);
        for tx in &thread.transactions {
            h.write_u64(tx.tx_id);
            h.write_u64(tx.pre_compute);
            h.write_u64(tx.ops.len() as u64);
            for op in &tx.ops {
                match op {
                    Op::Read(a) => {
                        h.write_u64(0);
                        h.write_u64(*a);
                    }
                    Op::Write(a) => {
                        h.write_u64(1);
                        h.write_u64(*a);
                    }
                    Op::Compute(c) => {
                        h.write_u64(2);
                        h.write_u64(*c);
                    }
                }
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tx() -> Transaction {
        Transaction::new(
            0x4000,
            vec![
                Op::Read(64),
                Op::Compute(10),
                Op::Write(64),
                Op::Write(128),
                Op::Read(192),
            ],
        )
    }

    #[test]
    fn memory_ops_counts_reads_and_writes() {
        assert_eq!(sample_tx().memory_ops(), 4);
    }

    #[test]
    fn write_and_read_addrs_dedup_and_sort() {
        let tx = Transaction::new(
            1,
            vec![Op::Write(128), Op::Write(64), Op::Write(128), Op::Read(64)],
        );
        assert_eq!(tx.write_addrs(), vec![64, 128]);
        assert_eq!(tx.read_addrs(), vec![64]);
    }

    #[test]
    fn compute_cycles_sums() {
        let tx = Transaction::new(1, vec![Op::Compute(5), Op::Read(0), Op::Compute(7)]);
        assert_eq!(tx.compute_cycles(), 12);
    }

    #[test]
    fn with_pre_compute_stores_prologue() {
        let tx = Transaction::with_pre_compute(9, 100, vec![]);
        assert_eq!(tx.pre_compute, 100);
        assert_eq!(tx.tx_id, 9);
    }

    #[test]
    fn thread_trace_len() {
        let t = ThreadTrace::new(vec![sample_tx(), sample_tx()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(ThreadTrace::default().is_empty());
    }

    #[test]
    fn workload_totals() {
        let w = WorkloadTrace::new(
            "toy",
            vec![
                ThreadTrace::new(vec![sample_tx()]),
                ThreadTrace::new(vec![sample_tx(), sample_tx()]),
            ],
        );
        assert_eq!(w.num_threads(), 2);
        assert_eq!(w.total_transactions(), 3);
        assert_eq!(w.name, "toy");
    }

    #[test]
    fn fingerprint_distinguishes_traces() {
        let base = WorkloadTrace::new("toy", vec![ThreadTrace::new(vec![sample_tx()])]);
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
        let renamed = WorkloadTrace::new("toy2", vec![ThreadTrace::new(vec![sample_tx()])]);
        assert_ne!(base.fingerprint(), renamed.fingerprint());
        let mut mutated = base.clone();
        mutated.threads[0].transactions[0].ops[0] = Op::Read(65);
        assert_ne!(base.fingerprint(), mutated.fingerprint());
        let mut retagged = base.clone();
        retagged.threads[0].transactions[0].ops[0] = Op::Write(64);
        assert_ne!(
            base.fingerprint(),
            retagged.fingerprint(),
            "op kind is part of the identity even at the same address"
        );
    }

    #[test]
    fn tiled_repeats_every_thread_in_order() {
        let w = WorkloadTrace::new(
            "toy",
            vec![
                ThreadTrace::new(vec![sample_tx()]),
                ThreadTrace::new(vec![sample_tx(), sample_tx()]),
            ],
        );
        let tiled = w.tiled(3);
        assert_eq!(tiled.name, "toy");
        assert_eq!(tiled.threads[0].len(), 3);
        assert_eq!(tiled.threads[1].len(), 6);
        assert_eq!(tiled.threads[1].transactions[4], sample_tx());
        assert_eq!(w.tiled(1), w);
        assert_eq!(w.tiled(0).total_transactions(), 0);
        assert_ne!(w.fingerprint(), tiled.fingerprint());
    }

    #[test]
    fn max_addr_finds_largest_reference() {
        let w = WorkloadTrace::new(
            "toy",
            vec![ThreadTrace::new(vec![Transaction::new(
                1,
                vec![Op::Read(10), Op::Write(99_999)],
            )])],
        );
        assert_eq!(w.max_addr(), Some(99_999));
        let empty = WorkloadTrace::new("empty", vec![ThreadTrace::default()]);
        assert_eq!(empty.max_addr(), None);
    }
}
