//! Per-core execution state machine.
//!
//! Each simulated processor executes the transactions of one [`ThreadTrace`]
//! in order. The phases follow the life of a TCC transaction as described in
//! Sections II, III and V of the paper:
//!
//! * non-transactional prologue → transactional execution (loads set SR bits,
//!   stores are buffered with SM bits),
//! * miss stalls while the distributed directory + memory service a line,
//! * at the end of the atomic region: TID acquisition from the token vendor,
//!   then spinning at the commit instruction until each write-set directory
//!   grants access in TID order,
//! * the actual commit flush (during which other speculative readers of the
//!   committed lines are invalidated and abort),
//! * abort roll-back and retry — either immediately / after a back-off spin
//!   (ungated baseline) or through the clock-gated standby of the paper's
//!   proposal, which ends with a "Self Abort" when the "on" signal arrives.
//!
//! The heavy lifting (interaction with the bus, directories, token vendor and
//! the gating hook) lives in [`crate::system::TccSystem`]; this module owns
//! only per-processor state so it can be unit-tested in isolation.

use serde::{Deserialize, Serialize};

use htm_mem::{LineAddr, SpecCache};
use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};
use htm_sim::fxhash::FxHashSet;
use htm_sim::queue::TimedQueue;
use htm_sim::{Cycle, DirId, ProcId};

use crate::stats::{PowerState, ProcStats, StateCycles};
use crate::txn::{ThreadTrace, Transaction, TxId};

/// An event delivered to a processor through the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcEvent {
    /// A directory committed a line this processor had speculatively read;
    /// the processor must abort its current transaction (and, under the
    /// paper's proposal, is clock-gated).
    Invalidation {
        /// The committed line.
        line: LineAddr,
        /// Directory that generated the invalidation.
        dir: DirId,
        /// The committing (aborting) processor.
        aborter: ProcId,
        /// Static transaction the aborter was committing.
        aborter_tx: TxId,
    },
    /// The "on" command from a directory: wake up, self-abort, retry.
    TurnOn {
        /// Directory that issued the command.
        dir: DirId,
    },
}

impl ProcEvent {
    /// Serialize into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        match *self {
            ProcEvent::Invalidation {
                line,
                dir,
                aborter,
                aborter_tx,
            } => {
                w.put_u8(0);
                w.put_u64(line.0);
                w.put_usize(dir);
                w.put_usize(aborter);
                w.put_u64(aborter_tx);
            }
            ProcEvent::TurnOn { dir } => {
                w.put_u8(1);
                w.put_usize(dir);
            }
        }
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        match r.get_u8()? {
            0 => Ok(ProcEvent::Invalidation {
                line: LineAddr(r.get_u64()?),
                dir: r.get_usize()?,
                aborter: r.get_usize()?,
                aborter_tx: r.get_u64()?,
            }),
            1 => Ok(ProcEvent::TurnOn {
                dir: r.get_usize()?,
            }),
            t => Err(CkptError::Corrupt(format!("unknown ProcEvent tag {t}"))),
        }
    }
}

/// One step of a commit plan: a directory and the write-set lines homed there.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitStep {
    /// Target directory.
    pub dir: DirId,
    /// Write-set lines homed at that directory.
    pub lines: Vec<LineAddr>,
}

impl CommitStep {
    /// Serialize into a checkpoint payload (line order preserved verbatim —
    /// the flush replays the lines in exactly this order).
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_usize(self.dir);
        w.put_usize(self.lines.len());
        for line in &self.lines {
            w.put_u64(line.0);
        }
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        let dir = r.get_usize()?;
        let n = r.get_usize()?;
        let mut lines = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            lines.push(LineAddr(r.get_u64()?));
        }
        Ok(Self { dir, lines })
    }
}

/// What a processor does once its abort roll-back completes, decided by the
/// contention-management hook's [`crate::hooks::AbortAction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryAfter {
    /// Restart the transaction immediately (plain TCC).
    Immediately,
    /// Spin at full run power for the given back-off window first.
    Backoff(Cycle),
    /// Wait out the given window in the DVFS-reduced [`Phase::Throttled`]
    /// state first.
    Throttle(Cycle),
}

impl RetryAfter {
    /// Serialize into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        match *self {
            RetryAfter::Immediately => w.put_u8(0),
            RetryAfter::Backoff(c) => {
                w.put_u8(1);
                w.put_u64(c);
            }
            RetryAfter::Throttle(c) => {
                w.put_u8(2);
                w.put_u64(c);
            }
        }
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        match r.get_u8()? {
            0 => Ok(RetryAfter::Immediately),
            1 => Ok(RetryAfter::Backoff(r.get_cycle()?)),
            2 => Ok(RetryAfter::Throttle(r.get_cycle()?)),
            t => Err(CkptError::Corrupt(format!("unknown RetryAfter tag {t}"))),
        }
    }
}

/// Execution phase of a processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Phase {
    /// Executing the non-transactional prologue of the next transaction.
    PreCompute {
        /// Cycles of prologue remaining.
        remaining: u64,
    },
    /// Executing operations inside the atomic region.
    Executing {
        /// Index of the next operation to issue.
        op_idx: usize,
        /// Remaining cycles of the operation currently in flight (compute
        /// cycles or the L1 hit latency).
        remaining: u64,
    },
    /// Stalled waiting for a miss fill.
    WaitMiss {
        /// Operation index to resume at (the memory op that missed has
        /// already been charged; execution resumes at `op_idx`).
        op_idx: usize,
        /// Cycle at which the fill completes.
        until: Cycle,
        /// The missing line (filled into the cache on completion).
        line: LineAddr,
        /// Whether the access was a store (sets the SM bit on fill).
        is_store: bool,
    },
    /// Waiting for the token vendor to return a TID.
    WaitToken {
        /// Cycle at which the TID reply arrives.
        until: Cycle,
    },
    /// Spinning at the commit instruction, waiting for the current target
    /// directory to grant access (full run power — the "futile spin" the
    /// paper's contention manager tries to eliminate).
    SpinCommit {
        /// Index into the commit plan of the directory being waited on.
        step_idx: usize,
    },
    /// Granted a directory; flushing the write-set lines homed there.
    Committing {
        /// Index into the commit plan of the directory being flushed.
        step_idx: usize,
        /// Cycle at which the flush completes.
        until: Cycle,
    },
    /// Rolling back after an abort (check-point restore).
    Aborting {
        /// Cycle at which the roll-back completes.
        until: Cycle,
        /// What to do once the roll-back completes (restart immediately,
        /// spin out a back-off window, or wait throttled).
        then: RetryAfter,
    },
    /// Spinning in a contention-management back-off window (run power).
    Backoff {
        /// Cycle at which the back-off expires.
        until: Cycle,
    },
    /// Waiting out a contention-management window at DVFS-reduced power (the
    /// `throttle` policy's intermediate state: clocks keep running at a
    /// reduced rate, so the wait costs more than gating but the processor
    /// needs no wake-up protocol and restarts itself when the window ends).
    Throttled {
        /// Cycle at which the throttled window expires.
        until: Cycle,
    },
    /// Received "Stop Clock"; draining the in-flight instruction.
    GateDraining {
        /// Cycle at which the drain completes and the clocks stop.
        until: Cycle,
    },
    /// Clocks gated: consuming only leakage + PLL power.
    Gated,
    /// Received "on"; waking up and performing the self-abort.
    WakeRestart {
        /// Cycle at which the processor is ready to re-execute.
        until: Cycle,
    },
    /// All transactions committed; spinning at the final synchronization
    /// point (run power) until the whole parallel section ends.
    Done,
}

impl Phase {
    /// The power-model state corresponding to this phase.
    #[must_use]
    pub fn power_state(&self) -> PowerState {
        match self {
            Phase::WaitMiss { .. } => PowerState::Miss,
            Phase::Committing { .. } => PowerState::Commit,
            Phase::Gated => PowerState::Gated,
            Phase::Throttled { .. } => PowerState::Throttled,
            // Everything else burns full run power: execution, commit spin,
            // back-off spin, roll-back, drain, wake-up and the final barrier.
            _ => PowerState::Run,
        }
    }

    /// Whether the processor currently counts as clock-gated from the point
    /// of view of the hook's `SystemView` (the drain and wake transitions are
    /// included: the processor is not executing instructions).
    #[must_use]
    pub fn is_gated_like(&self) -> bool {
        matches!(
            self,
            Phase::Gated | Phase::GateDraining { .. } | Phase::WakeRestart { .. }
        )
    }

    /// Whether a transaction execution attempt is currently in progress (used
    /// to decide if an incoming invalidation aborts anything).
    #[must_use]
    pub fn in_transaction(&self) -> bool {
        matches!(
            self,
            Phase::Executing { .. }
                | Phase::WaitMiss { .. }
                | Phase::WaitToken { .. }
                | Phase::SpinCommit { .. }
        )
    }

    /// Serialize into a checkpoint payload (one tag byte per variant plus the
    /// variant's payload fields in declaration order).
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        match *self {
            Phase::PreCompute { remaining } => {
                w.put_u8(0);
                w.put_u64(remaining);
            }
            Phase::Executing { op_idx, remaining } => {
                w.put_u8(1);
                w.put_usize(op_idx);
                w.put_u64(remaining);
            }
            Phase::WaitMiss {
                op_idx,
                until,
                line,
                is_store,
            } => {
                w.put_u8(2);
                w.put_usize(op_idx);
                w.put_u64(until);
                w.put_u64(line.0);
                w.put_bool(is_store);
            }
            Phase::WaitToken { until } => {
                w.put_u8(3);
                w.put_u64(until);
            }
            Phase::SpinCommit { step_idx } => {
                w.put_u8(4);
                w.put_usize(step_idx);
            }
            Phase::Committing { step_idx, until } => {
                w.put_u8(5);
                w.put_usize(step_idx);
                w.put_u64(until);
            }
            Phase::Aborting { until, then } => {
                w.put_u8(6);
                w.put_u64(until);
                then.save_ckpt(w);
            }
            Phase::Backoff { until } => {
                w.put_u8(7);
                w.put_u64(until);
            }
            Phase::Throttled { until } => {
                w.put_u8(8);
                w.put_u64(until);
            }
            Phase::GateDraining { until } => {
                w.put_u8(9);
                w.put_u64(until);
            }
            Phase::Gated => w.put_u8(10),
            Phase::WakeRestart { until } => {
                w.put_u8(11);
                w.put_u64(until);
            }
            Phase::Done => w.put_u8(12),
        }
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(match r.get_u8()? {
            0 => Phase::PreCompute {
                remaining: r.get_u64()?,
            },
            1 => Phase::Executing {
                op_idx: r.get_usize()?,
                remaining: r.get_u64()?,
            },
            2 => Phase::WaitMiss {
                op_idx: r.get_usize()?,
                until: r.get_cycle()?,
                line: LineAddr(r.get_u64()?),
                is_store: r.get_bool()?,
            },
            3 => Phase::WaitToken {
                until: r.get_cycle()?,
            },
            4 => Phase::SpinCommit {
                step_idx: r.get_usize()?,
            },
            5 => Phase::Committing {
                step_idx: r.get_usize()?,
                until: r.get_cycle()?,
            },
            6 => Phase::Aborting {
                until: r.get_cycle()?,
                then: RetryAfter::load_ckpt(r)?,
            },
            7 => Phase::Backoff {
                until: r.get_cycle()?,
            },
            8 => Phase::Throttled {
                until: r.get_cycle()?,
            },
            9 => Phase::GateDraining {
                until: r.get_cycle()?,
            },
            10 => Phase::Gated,
            11 => Phase::WakeRestart {
                until: r.get_cycle()?,
            },
            12 => Phase::Done,
            t => return Err(CkptError::Corrupt(format!("unknown Phase tag {t}"))),
        })
    }
}

/// A simulated processor core.
#[derive(Debug)]
pub struct Processor {
    /// This processor's identifier.
    pub id: ProcId,
    /// The thread of transactions it executes.
    pub thread: ThreadTrace,
    /// Index of the transaction currently being executed (or about to be).
    pub tx_idx: usize,
    /// Current execution phase.
    pub phase: Phase,
    /// Private L1 data cache (timing model).
    pub cache: SpecCache,
    /// Exact speculative read set of the current transaction attempt.
    pub read_set: FxHashSet<LineAddr>,
    /// Exact speculative write set of the current transaction attempt.
    pub write_set: FxHashSet<LineAddr>,
    /// Directories touched (read or written) by the current attempt; used to
    /// clear sharer registrations on commit/abort.
    pub dirs_touched: FxHashSet<DirId>,
    /// Commit plan (one step per write-set directory), built when the
    /// transaction reaches its commit point.
    pub commit_plan: Vec<CommitStep>,
    /// TID held for the current commit attempt.
    pub tid: Option<u64>,
    /// Aborts suffered by the current transaction so far.
    pub aborts_this_tx: u64,
    /// Cycles spent in the current execution attempt (discarded on abort).
    pub attempt_cycles: u64,
    /// Inbox of protocol events addressed to this processor.
    pub inbox: TimedQueue<ProcEvent>,
    /// Protocol counters.
    pub stats: ProcStats,
    /// Power-state cycle accounting.
    pub state_cycles: StateCycles,
    /// Cycle at which this processor started its first transaction.
    pub first_tx_start: Option<Cycle>,
}

impl Processor {
    /// Create a processor executing `thread`, with an L1 built from `cache`.
    #[must_use]
    pub fn new(id: ProcId, thread: ThreadTrace, cache: SpecCache) -> Self {
        let phase = Self::entry_phase_for(&thread, 0);
        Self {
            id,
            thread,
            tx_idx: 0,
            phase,
            cache,
            read_set: FxHashSet::default(),
            write_set: FxHashSet::default(),
            dirs_touched: FxHashSet::default(),
            commit_plan: Vec::new(),
            tid: None,
            aborts_this_tx: 0,
            attempt_cycles: 0,
            inbox: TimedQueue::new(),
            stats: ProcStats::new(),
            state_cycles: StateCycles::default(),
            first_tx_start: None,
        }
    }

    fn entry_phase_for(thread: &ThreadTrace, tx_idx: usize) -> Phase {
        match thread.transactions.get(tx_idx) {
            None => Phase::Done,
            Some(tx) if tx.pre_compute > 0 => Phase::PreCompute {
                remaining: tx.pre_compute,
            },
            Some(_) => Phase::Executing {
                op_idx: 0,
                remaining: 0,
            },
        }
    }

    /// The transaction currently being executed (or retried), if any.
    #[must_use]
    pub fn current_tx(&self) -> Option<&Transaction> {
        self.thread.transactions.get(self.tx_idx)
    }

    /// Static id of the current transaction, if the processor is inside (or
    /// about to commit) one.
    #[must_use]
    pub fn current_tx_id(&self) -> Option<TxId> {
        if matches!(self.phase, Phase::Done) {
            None
        } else {
            self.current_tx().map(|t| t.tx_id)
        }
    }

    /// Whether this processor has executed everything assigned to it.
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// Reset all per-attempt speculative state (read/write sets, commit plan,
    /// TID). The cache and directory bookkeeping is handled by the caller.
    pub fn clear_attempt_state(&mut self) {
        self.read_set.clear();
        self.write_set.clear();
        self.commit_plan.clear();
        self.tid = None;
        self.attempt_cycles = 0;
    }

    /// Move to the beginning of the atomic region of the current transaction
    /// (used when retrying after an abort; the prologue is not re-executed).
    pub fn restart_transaction(&mut self) {
        self.phase = Phase::Executing {
            op_idx: 0,
            remaining: 0,
        };
    }

    /// Advance to the next transaction after a commit. Returns `true` if
    /// there is another transaction to run.
    pub fn advance_to_next_tx(&mut self) -> bool {
        self.tx_idx += 1;
        self.aborts_this_tx = 0;
        self.phase = Self::entry_phase_for(&self.thread, self.tx_idx);
        !self.is_done()
    }

    /// Earliest future cycle at which this processor does anything beyond a
    /// pure countdown: the completion of the phase it is waiting in, or the
    /// arrival of the earliest inbox message, whichever comes first.
    ///
    /// `Some(now)` means the *current* cycle needs full per-cycle processing
    /// (an operation issues, a wait expires, a message is ready, or the phase
    /// — like the commit spin — polls shared state every cycle and must be
    /// refined by the system, which owns the directories). `None` means the
    /// processor is fully passive (`Done`, or `Gated` with an empty inbox)
    /// and only an external event can make it act again.
    ///
    /// This is the processor's contribution to the fast-forward engine's
    /// event horizon; see `DESIGN.md` ("event-horizon computation") for the
    /// exactness argument.
    #[must_use]
    pub fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
        let phase_deadline = match self.phase {
            Phase::Done | Phase::Gated => None,
            // Transitions to `Executing` on the cycle where `remaining <= 1`.
            Phase::PreCompute { remaining } => Some(now + remaining.saturating_sub(1)),
            // Issues the next operation on the cycle where `remaining == 0`.
            Phase::Executing { remaining, .. } => Some(now + remaining),
            // The commit spin polls the target directory every cycle; the
            // system refines this with the directory's grant state.
            Phase::SpinCommit { .. } => Some(now),
            Phase::WaitMiss { until, .. }
            | Phase::WaitToken { until }
            | Phase::Committing { until, .. }
            | Phase::Aborting { until, .. }
            | Phase::Backoff { until }
            | Phase::Throttled { until }
            | Phase::GateDraining { until }
            | Phase::WakeRestart { until } => Some(until.max(now)),
        };
        let inbox_deadline = self.inbox.next_delivery().map(|d| d.max(now));
        match (phase_deadline, inbox_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (d, None) | (None, d) => d,
        }
    }

    /// Serialize everything except the thread trace itself (the trace is
    /// immutable and is re-supplied by the caller on restore; a trace
    /// fingerprint stored at the system level guards against mismatches).
    ///
    /// The speculative read/write/directory sets are written in sorted order:
    /// their iteration order is never observable (the commit plan sorts the
    /// write set before use, and per-directory cleanup operations commute),
    /// so a canonical encoding keeps checkpoint bytes stable without
    /// perturbing the simulation.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_usize(self.id);
        w.put_usize(self.tx_idx);
        self.phase.save_ckpt(w);
        self.cache.save_ckpt(w);
        let mut sorted_lines: Vec<u64> = self.read_set.iter().map(|l| l.0).collect();
        sorted_lines.sort_unstable();
        w.put_u64_slice(&sorted_lines);
        sorted_lines = self.write_set.iter().map(|l| l.0).collect();
        sorted_lines.sort_unstable();
        w.put_u64_slice(&sorted_lines);
        let mut sorted_dirs: Vec<DirId> = self.dirs_touched.iter().copied().collect();
        sorted_dirs.sort_unstable();
        w.put_usize(sorted_dirs.len());
        for d in sorted_dirs {
            w.put_usize(d);
        }
        w.put_usize(self.commit_plan.len());
        for step in &self.commit_plan {
            step.save_ckpt(w);
        }
        w.put_opt_u64(self.tid);
        w.put_u64(self.aborts_this_tx);
        w.put_u64(self.attempt_cycles);
        self.inbox.save_ckpt(w, |w, ev| ev.save_ckpt(w));
        self.stats.save_ckpt(w);
        self.state_cycles.save_ckpt(w);
        w.put_opt_u64(self.first_tx_start);
    }

    /// Restore the checkpointed state onto `self` (a freshly constructed
    /// processor already holding the correct thread trace). Everything except
    /// `id` and `thread` is overwritten.
    pub fn restore_ckpt(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let id = r.get_usize()?;
        if id != self.id {
            return Err(CkptError::Corrupt(format!(
                "processor record {id} restored into slot {}",
                self.id
            )));
        }
        let tx_idx = r.get_usize()?;
        if tx_idx > self.thread.transactions.len() {
            return Err(CkptError::Corrupt(format!(
                "processor {id} at transaction {tx_idx} but its thread has only {}",
                self.thread.transactions.len()
            )));
        }
        self.tx_idx = tx_idx;
        self.phase = Phase::load_ckpt(r)?;
        self.cache = SpecCache::load_ckpt(r)?;
        self.read_set = r.get_u64_vec()?.into_iter().map(LineAddr).collect();
        self.write_set = r.get_u64_vec()?.into_iter().map(LineAddr).collect();
        let n_dirs = r.get_usize()?;
        self.dirs_touched.clear();
        for _ in 0..n_dirs {
            self.dirs_touched.insert(r.get_usize()?);
        }
        let n_steps = r.get_usize()?;
        self.commit_plan.clear();
        for _ in 0..n_steps {
            self.commit_plan.push(CommitStep::load_ckpt(r)?);
        }
        self.tid = r.get_opt_u64()?;
        self.aborts_this_tx = r.get_u64()?;
        self.attempt_cycles = r.get_u64()?;
        self.inbox = TimedQueue::load_ckpt(r, ProcEvent::load_ckpt)?;
        self.stats = ProcStats::load_ckpt(r)?;
        self.state_cycles = StateCycles::load_ckpt(r)?;
        self.first_tx_start = r.get_opt_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::{Op, Transaction};

    fn cache() -> SpecCache {
        SpecCache::new(16, 2)
    }

    fn thread() -> ThreadTrace {
        ThreadTrace::new(vec![
            Transaction::with_pre_compute(0x100, 5, vec![Op::Read(0), Op::Compute(3)]),
            Transaction::new(0x200, vec![Op::Write(64)]),
        ])
    }

    #[test]
    fn starts_in_precompute_when_prologue_exists() {
        let p = Processor::new(0, thread(), cache());
        assert_eq!(p.phase, Phase::PreCompute { remaining: 5 });
        assert_eq!(p.current_tx_id(), Some(0x100));
        assert!(!p.is_done());
    }

    #[test]
    fn empty_thread_is_immediately_done() {
        let p = Processor::new(0, ThreadTrace::default(), cache());
        assert!(p.is_done());
        assert_eq!(p.current_tx_id(), None);
    }

    #[test]
    fn advance_moves_through_transactions() {
        let mut p = Processor::new(0, thread(), cache());
        assert!(p.advance_to_next_tx());
        assert_eq!(p.current_tx_id(), Some(0x200));
        // Second transaction has no prologue.
        assert_eq!(
            p.phase,
            Phase::Executing {
                op_idx: 0,
                remaining: 0
            }
        );
        assert!(!p.advance_to_next_tx());
        assert!(p.is_done());
    }

    #[test]
    fn clear_attempt_state_resets_speculative_bookkeeping() {
        let mut p = Processor::new(0, thread(), cache());
        p.read_set.insert(LineAddr(1));
        p.write_set.insert(LineAddr(2));
        p.tid = Some(7);
        p.attempt_cycles = 99;
        p.commit_plan.push(CommitStep {
            dir: 0,
            lines: vec![LineAddr(2)],
        });
        p.clear_attempt_state();
        assert!(p.read_set.is_empty());
        assert!(p.write_set.is_empty());
        assert!(p.commit_plan.is_empty());
        assert_eq!(p.tid, None);
        assert_eq!(p.attempt_cycles, 0);
    }

    #[test]
    fn restart_goes_back_to_first_op_without_prologue() {
        let mut p = Processor::new(0, thread(), cache());
        p.phase = Phase::SpinCommit { step_idx: 0 };
        p.restart_transaction();
        assert_eq!(
            p.phase,
            Phase::Executing {
                op_idx: 0,
                remaining: 0
            }
        );
    }

    #[test]
    fn phase_power_state_mapping_follows_table1_semantics() {
        assert_eq!(
            Phase::Executing {
                op_idx: 0,
                remaining: 0
            }
            .power_state(),
            PowerState::Run
        );
        assert_eq!(
            Phase::SpinCommit { step_idx: 0 }.power_state(),
            PowerState::Run
        );
        assert_eq!(Phase::Backoff { until: 10 }.power_state(), PowerState::Run);
        assert_eq!(Phase::Done.power_state(), PowerState::Run);
        assert_eq!(
            Phase::WaitMiss {
                op_idx: 0,
                until: 5,
                line: LineAddr(0),
                is_store: false
            }
            .power_state(),
            PowerState::Miss
        );
        assert_eq!(
            Phase::Committing {
                step_idx: 0,
                until: 9
            }
            .power_state(),
            PowerState::Commit
        );
        assert_eq!(Phase::Gated.power_state(), PowerState::Gated);
    }

    #[test]
    fn gated_like_covers_transitions() {
        assert!(Phase::Gated.is_gated_like());
        assert!(Phase::GateDraining { until: 1 }.is_gated_like());
        assert!(Phase::WakeRestart { until: 1 }.is_gated_like());
        assert!(!Phase::Executing {
            op_idx: 0,
            remaining: 0
        }
        .is_gated_like());
    }

    #[test]
    fn next_deadline_tracks_the_waiting_phase() {
        let mut p = Processor::new(0, thread(), cache());
        // PreCompute with 5 cycles remaining transitions at now + 4.
        assert_eq!(p.phase, Phase::PreCompute { remaining: 5 });
        assert_eq!(p.next_deadline(100), Some(104));
        p.phase = Phase::Executing {
            op_idx: 1,
            remaining: 7,
        };
        assert_eq!(p.next_deadline(100), Some(107));
        p.phase = Phase::WaitMiss {
            op_idx: 1,
            until: 230,
            line: LineAddr(0),
            is_store: false,
        };
        assert_eq!(p.next_deadline(100), Some(230));
        // A stale `until` in the past clamps to `now` (process this cycle).
        assert_eq!(p.next_deadline(500), Some(500));
        p.phase = Phase::SpinCommit { step_idx: 0 };
        assert_eq!(
            p.next_deadline(100),
            Some(100),
            "commit spins poll every cycle until refined by the system"
        );
        p.phase = Phase::Gated;
        assert_eq!(p.next_deadline(100), None);
        p.phase = Phase::Done;
        assert_eq!(p.next_deadline(100), None);
    }

    #[test]
    fn next_deadline_includes_inbox_arrivals() {
        let mut p = Processor::new(0, thread(), cache());
        p.phase = Phase::Gated;
        p.inbox.push(140, ProcEvent::TurnOn { dir: 0 });
        assert_eq!(p.next_deadline(100), Some(140));
        // The earlier of inbox and phase deadline wins.
        p.phase = Phase::Backoff { until: 120 };
        assert_eq!(p.next_deadline(100), Some(120));
        p.phase = Phase::Backoff { until: 200 };
        assert_eq!(p.next_deadline(100), Some(140));
    }

    #[test]
    fn in_transaction_excludes_done_and_gated() {
        assert!(Phase::Executing {
            op_idx: 0,
            remaining: 0
        }
        .in_transaction());
        assert!(Phase::SpinCommit { step_idx: 0 }.in_transaction());
        assert!(!Phase::Gated.in_transaction());
        assert!(!Phase::Done.in_transaction());
        assert!(!Phase::PreCompute { remaining: 3 }.in_transaction());
    }
}
