//! Per-directory commit arbitration.
//!
//! Each directory owns the sharer/owner state of the lines homed at it (from
//! `htm-mem`) plus the commit-time machinery of Scalable TCC:
//!
//! * the **Marked** bits — processors that have obtained a TID and announced
//!   that they will commit lines homed here (the paper's Fig. 2(e) circuit
//!   OR-reduces exactly these bits),
//! * the **grant** logic — commits are serviced one at a time per directory,
//!   oldest TID first, which is what makes a younger committer "spin at the
//!   commit instruction" while an older one occupies the directory,
//! * the **service port** used to model the 10-cycle directory occupancy of
//!   miss requests.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use htm_mem::{Directory, LineAddr};
use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};
use htm_sim::port::SinglePortResource;
use htm_sim::{Cycle, ProcId, ProcSet};

use crate::token::Tid;

/// Commit-related event counters for one directory.
///
/// Every counter is a deterministic function of the protocol transitions, so
/// the tallies are identical under both stepping engines and feed the
/// per-component energy ledger (directory SRAM lookups, gating-table
/// `TxInfoReq` traffic) without perturbing the simulation itself.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirCtrlStats {
    /// Commit requests marked at this directory.
    pub marks: u64,
    /// Commit grants issued.
    pub grants: u64,
    /// Total cycles the directory spent busy flushing commits.
    pub commit_busy_cycles: u64,
    /// Miss requests serviced by the directory SRAM (one lookup each).
    pub miss_lookups: u64,
    /// `TxInfoReq` round-trips issued by this directory at abort time
    /// (Fig. 2(d)): the directory queries the committing processor for the
    /// transaction id it stores next to the victim's abort counter. The
    /// renewal-time `TxInfoReq`s of Fig. 2(e) are counted by the gating
    /// controller (they only exist in clock-gating modes).
    pub txinfo_roundtrips: u64,
}

impl DirCtrlStats {
    /// Total directory SRAM lookups: miss services, mark writes and commit
    /// grants all read or write the sharer/state arrays once.
    #[must_use]
    pub fn sram_lookups(&self) -> u64 {
        self.miss_lookups + self.marks + self.grants
    }

    /// Fold another directory's tallies into this one (fieldwise sums, so
    /// the operation is order-independent). The island-parallel runner uses
    /// this to merge per-lane directory statistics — each directory is only
    /// ever touched by one island, so the merge is exact.
    pub fn absorb(&mut self, other: &DirCtrlStats) {
        self.marks += other.marks;
        self.grants += other.grants;
        self.commit_busy_cycles += other.commit_busy_cycles;
        self.miss_lookups += other.miss_lookups;
        self.txinfo_roundtrips += other.txinfo_roundtrips;
    }

    /// Serialize into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_u64(self.marks);
        w.put_u64(self.grants);
        w.put_u64(self.commit_busy_cycles);
        w.put_u64(self.miss_lookups);
        w.put_u64(self.txinfo_roundtrips);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            marks: r.get_u64()?,
            grants: r.get_u64()?,
            commit_busy_cycles: r.get_u64()?,
            miss_lookups: r.get_u64()?,
            txinfo_roundtrips: r.get_u64()?,
        })
    }
}

/// One directory of the distributed shared memory, with commit arbitration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DirCtrl {
    /// Sharer / owner tracking (substrate).
    pub directory: Directory,
    /// Occupancy model for miss servicing.
    port: SinglePortResource,
    /// Processors that intend to commit here, keyed by TID (oldest first).
    marked: BTreeMap<Tid, ProcId>,
    /// Cached OR of the marked processors' bits, maintained on every
    /// mark/unmark. The per-cycle view refresh reads this constantly, so it
    /// must not re-fold the map each time.
    marked_bits: ProcSet,
    /// The processor currently granted the directory for commit, and the
    /// cycle at which it will release it.
    busy: Option<(ProcId, Cycle)>,
    stats: DirCtrlStats,
}

impl DirCtrl {
    /// Create directory `id` for `num_procs` processors with the given
    /// service latency (Table II: 10 cycles).
    #[must_use]
    pub fn new(id: usize, num_procs: usize, service_latency: u64) -> Self {
        Self {
            directory: Directory::new(id, num_procs),
            port: SinglePortResource::new(service_latency),
            marked: BTreeMap::new(),
            marked_bits: ProcSet::empty(),
            busy: None,
            stats: DirCtrlStats::default(),
        }
    }

    /// Directory identifier.
    #[must_use]
    pub fn id(&self) -> usize {
        self.directory.id()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> DirCtrlStats {
        self.stats
    }

    /// Service a miss request arriving at `now`; returns the cycle at which
    /// the directory lookup completes (before main memory is consulted).
    pub fn service_miss(&mut self, now: Cycle) -> Cycle {
        self.stats.miss_lookups += 1;
        self.port.access(now)
    }

    /// Record one abort-time `TxInfoReq` round-trip issued by this directory
    /// (Fig. 2(d); called by the system when an abort is handled by gating).
    pub fn record_txinfo_roundtrip(&mut self) {
        self.stats.txinfo_roundtrips += 1;
    }

    /// Mark `proc` (with commit timestamp `tid`) as intending to commit here.
    pub fn mark(&mut self, tid: Tid, proc: ProcId) {
        self.marked.insert(tid, proc);
        self.marked_bits.insert(proc);
        self.stats.marks += 1;
    }

    /// Remove `proc`'s mark (after it finished committing here or aborted
    /// before committing).
    pub fn unmark(&mut self, proc: ProcId) {
        if !self.marked_bits.contains(proc) {
            return;
        }
        self.marked.retain(|_, &mut p| p != proc);
        self.marked_bits.remove(proc);
    }

    /// Whether `proc` currently has its Marked bit set here.
    #[must_use]
    pub fn is_marked(&self, proc: ProcId) -> bool {
        self.marked_bits.contains(proc)
    }

    /// Bit vector of marked processors (for the [`crate::hooks::SystemView`]).
    #[must_use]
    pub fn marked_bits(&self) -> ProcSet {
        self.marked_bits
    }

    /// The oldest (lowest-TID) marked processor, if any.
    #[must_use]
    pub fn oldest_marked(&self) -> Option<(Tid, ProcId)> {
        self.marked.iter().next().map(|(&tid, &proc)| (tid, proc))
    }

    /// Whether the directory is currently occupied by a committing processor
    /// at cycle `now`. Frees the directory automatically once the occupant's
    /// release cycle has passed.
    pub fn is_busy(&mut self, now: Cycle) -> bool {
        if let Some((_, until)) = self.busy {
            if now >= until {
                self.busy = None;
            }
        }
        self.busy.is_some()
    }

    /// Whether `proc` (holding `tid`) would be granted the directory at `now`:
    /// the directory must be idle and `proc` must be the oldest-TID processor
    /// currently marked here. Does not reserve anything.
    pub fn can_grant(&mut self, proc: ProcId, tid: Tid, now: Cycle) -> bool {
        // Lazily free an expired occupancy, then answer like `would_grant`.
        let _ = self.is_busy(now);
        self.would_grant(proc, tid, now)
    }

    /// Side-effect-free version of [`Self::can_grant`]: same answer, but the
    /// expired-occupancy cleanup is deferred. Used by the fast-forward
    /// engine's horizon computation, which must not mutate state.
    #[must_use]
    pub fn would_grant(&self, proc: ProcId, tid: Tid, now: Cycle) -> bool {
        if matches!(self.busy, Some((_, until)) if until > now) {
            return false;
        }
        matches!(self.oldest_marked(), Some((t, p)) if p == proc && t == tid)
    }

    /// Cycle at which the current commit occupancy releases the directory, if
    /// it is still held after `now`.
    #[must_use]
    pub fn busy_release(&self, now: Cycle) -> Option<Cycle> {
        self.busy
            .and_then(|(_, until)| (until > now).then_some(until))
    }

    /// Next cycle (strictly after `now`) at which this directory's state can
    /// change on its own: the commit occupancy releasing or the miss-service
    /// port draining. `None` when fully idle (the directory is demand
    /// driven). Feeds the fast-forward engine's event horizon.
    #[must_use]
    pub fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
        match (self.busy_release(now), self.port.next_deadline(now)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (d, None) | (None, d) => d,
        }
    }

    /// Reserve the directory for `proc` until `release_at` (the caller has
    /// already checked [`Self::can_grant`] and computed the flush time).
    pub fn occupy(&mut self, proc: ProcId, now: Cycle, release_at: Cycle) {
        self.busy = Some((proc, release_at));
        self.stats.grants += 1;
        self.stats.commit_busy_cycles += release_at.saturating_sub(now);
    }

    /// Attempt to grant the directory to `proc` (holding `tid`) at `now`.
    ///
    /// The grant succeeds iff the directory is idle and `proc` is the
    /// oldest-TID processor currently marked here. On success the directory
    /// is reserved until `release_at`.
    pub fn try_grant(&mut self, proc: ProcId, tid: Tid, now: Cycle, release_at: Cycle) -> bool {
        if self.can_grant(proc, tid, now) {
            self.occupy(proc, now, release_at);
            true
        } else {
            false
        }
    }

    /// The processor currently granted the directory, if any (ignores expiry;
    /// callers use [`Self::is_busy`] for timing decisions).
    #[must_use]
    pub fn current_committer(&self) -> Option<ProcId> {
        self.busy.map(|(p, _)| p)
    }

    /// Serialize the full controller state (directory substrate, miss port,
    /// marked table, commit occupancy, stats) into a checkpoint payload.
    /// The marked table is written in `BTreeMap` order (ascending TID), which
    /// is already canonical; `marked_bits` is recomputed on load from the
    /// entries, so the cached OR can never drift from the table.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        self.directory.save_ckpt(w);
        self.port.save_ckpt(w);
        w.put_usize(self.marked.len());
        for (&tid, &proc) in &self.marked {
            w.put_u64(tid);
            w.put_usize(proc);
        }
        match self.busy {
            Some((proc, until)) => {
                w.put_bool(true);
                w.put_usize(proc);
                w.put_u64(until);
            }
            None => w.put_bool(false),
        }
        self.stats.save_ckpt(w);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        let directory = Directory::load_ckpt(r)?;
        let port = SinglePortResource::load_ckpt(r)?;
        let n = r.get_usize()?;
        let mut marked = BTreeMap::new();
        let mut marked_bits = ProcSet::empty();
        for _ in 0..n {
            let tid = r.get_u64()?;
            let proc = r.get_usize()?;
            if proc >= htm_sim::MAX_PROCS {
                return Err(CkptError::Corrupt(format!(
                    "marked processor id {proc} out of range"
                )));
            }
            if marked.insert(tid, proc).is_some() {
                return Err(CkptError::Corrupt(format!("duplicate marked TID {tid}")));
            }
            marked_bits.insert(proc);
        }
        let busy = if r.get_bool()? {
            let proc = r.get_usize()?;
            let until = r.get_cycle()?;
            Some((proc, until))
        } else {
            None
        };
        Ok(Self {
            directory,
            port,
            marked,
            marked_bits,
            busy,
            stats: DirCtrlStats::load_ckpt(r)?,
        })
    }

    /// Commit a batch of lines on behalf of `committer`; returns, per line,
    /// the processors that must be invalidated.
    pub fn commit_lines(
        &mut self,
        lines: &[LineAddr],
        committer: ProcId,
    ) -> Vec<(LineAddr, ProcSet)> {
        lines
            .iter()
            .map(|&l| (l, self.directory.commit_line(l, committer)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_oldest_tid_only() {
        let mut d = DirCtrl::new(0, 4, 10);
        d.mark(5, 2);
        d.mark(3, 1);
        assert!(!d.try_grant(2, 5, 0, 100), "younger TID must wait");
        assert!(d.try_grant(1, 3, 0, 100), "oldest TID gets the directory");
        assert_eq!(d.current_committer(), Some(1));
    }

    #[test]
    fn busy_directory_rejects_grants_until_release() {
        let mut d = DirCtrl::new(0, 4, 10);
        d.mark(1, 0);
        d.mark(2, 1);
        assert!(d.try_grant(0, 1, 0, 50));
        d.unmark(0);
        assert!(!d.try_grant(1, 2, 10, 60), "still busy");
        assert!(d.try_grant(1, 2, 50, 90), "released at cycle 50");
    }

    #[test]
    fn unmark_removes_processor() {
        let mut d = DirCtrl::new(0, 4, 10);
        d.mark(7, 3);
        assert!(d.is_marked(3));
        d.unmark(3);
        assert!(!d.is_marked(3));
        assert_eq!(d.oldest_marked(), None);
    }

    #[test]
    fn marked_bits_reflect_all_marked_procs() {
        let mut d = DirCtrl::new(0, 8, 10);
        d.mark(4, 2);
        d.mark(9, 5);
        assert_eq!(d.marked_bits(), [2usize, 5].into_iter().collect());
    }

    #[test]
    fn service_miss_uses_port_occupancy() {
        let mut d = DirCtrl::new(0, 4, 10);
        assert_eq!(d.service_miss(0), 10);
        assert_eq!(d.service_miss(0), 20);
    }

    #[test]
    fn commit_lines_reports_victims_per_line() {
        let mut d = DirCtrl::new(0, 4, 10);
        d.directory.add_sharer(LineAddr(4), 1);
        d.directory.add_sharer(LineAddr(8), 1);
        d.directory.add_sharer(LineAddr(8), 2);
        let result = d.commit_lines(&[LineAddr(4), LineAddr(8)], 3);
        assert_eq!(result[0], (LineAddr(4), ProcSet::from_bits(1 << 1)));
        assert_eq!(
            result[1],
            (LineAddr(8), ProcSet::from_bits((1 << 1) | (1 << 2)))
        );
    }

    #[test]
    fn would_grant_matches_can_grant_without_mutation() {
        let mut d = DirCtrl::new(0, 4, 10);
        d.mark(3, 1);
        d.mark(5, 2);
        assert!(d.would_grant(1, 3, 0));
        assert!(!d.would_grant(2, 5, 0), "younger TID must wait");
        assert!(d.try_grant(1, 3, 0, 50));
        assert!(!d.would_grant(2, 5, 10), "directory busy until 50");
        d.unmark(1);
        assert!(
            d.would_grant(2, 5, 50),
            "occupancy expired exactly at its release cycle"
        );
        assert!(d.can_grant(2, 5, 50), "can_grant agrees after cleanup");
    }

    #[test]
    fn next_deadline_reports_busy_release_and_port_drain() {
        let mut d = DirCtrl::new(0, 4, 10);
        assert_eq!(d.next_deadline(0), None, "idle directory has no deadline");
        d.mark(1, 0);
        assert!(d.try_grant(0, 1, 0, 40));
        assert_eq!(d.next_deadline(0), Some(40));
        assert_eq!(d.busy_release(0), Some(40));
        assert_eq!(d.next_deadline(40), None, "released at cycle 40");
        let done = d.service_miss(50);
        assert_eq!(d.next_deadline(50), Some(done));
    }

    #[test]
    fn grant_requires_matching_tid() {
        let mut d = DirCtrl::new(0, 4, 10);
        d.mark(3, 1);
        // Same processor but stale TID is refused.
        assert!(!d.try_grant(1, 4, 0, 10));
        assert!(d.try_grant(1, 3, 0, 10));
    }

    #[test]
    fn stats_count_marks_and_grants() {
        let mut d = DirCtrl::new(0, 4, 10);
        d.mark(1, 0);
        d.mark(2, 1);
        let _ = d.try_grant(0, 1, 0, 30);
        let s = d.stats();
        assert_eq!(s.marks, 2);
        assert_eq!(s.grants, 1);
        assert_eq!(s.commit_busy_cycles, 30);
    }

    #[test]
    fn stats_count_lookups_and_txinfo_roundtrips() {
        let mut d = DirCtrl::new(0, 4, 10);
        d.service_miss(0);
        d.service_miss(5);
        d.mark(1, 0);
        let _ = d.try_grant(0, 1, 0, 30);
        d.record_txinfo_roundtrip();
        let s = d.stats();
        assert_eq!(s.miss_lookups, 2);
        assert_eq!(s.txinfo_roundtrips, 1);
        assert_eq!(s.sram_lookups(), 2 + 1 + 1, "misses + marks + grants");
    }
}
