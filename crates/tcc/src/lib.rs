//! # htm-tcc — Scalable-TCC hardware transactional memory substrate
//!
//! This crate implements the baseline system of the paper: a lazy-versioning,
//! lazy-conflict-detection hardware transactional memory in the style of
//! Scalable TCC (Chafi et al., HPCA 2007), running on the distributed
//! directory / split-transaction-bus machine described in Table II.
//!
//! The moving parts:
//!
//! * [`txn`] — transactional workloads as per-thread traces of transactions,
//!   each a sequence of `Read` / `Write` / `Compute` operations,
//! * [`token`] — the centralized token vendor that issues commit timestamps
//!   (TIDs),
//! * [`dirctrl`] — per-directory commit arbitration (the "Marked" bits and
//!   TID-ordered grants) layered over the sharer-tracking directory of
//!   `htm-mem`,
//! * [`processor`] — the per-core execution state machine (transaction
//!   execution, miss stalls, commit spin, commit flush, abort roll-back,
//!   clock-gated standby),
//! * [`hooks`] — the [`hooks::GatingHook`] trait through which the paper's
//!   clock-gate-on-abort mechanism (implemented in the `clockgate-htm` crate)
//!   observes aborts and drives gating/ungating, plus the no-op baseline,
//! * [`system`] — the cycle-driven top level that wires processors,
//!   directories, token vendor, bus and memory together and produces a
//!   [`stats::RunOutcome`],
//! * [`stats`] — counters and per-state cycle accounting consumed by the
//!   energy model in `htm-power`.
//!
//! The substrate is deliberately policy-free with respect to energy: it only
//! *measures* how many cycles each processor spends running, miss-stalled,
//! committing and clock-gated; converting those into energy is the job of
//! `htm-power`, and deciding *when* to gate is the job of the hook.
//!
//! ```
//! use htm_sim::config::SimConfig;
//! use htm_tcc::txn::{Op, ThreadTrace, Transaction, WorkloadTrace};
//! use htm_tcc::{NoGating, TccSystem};
//!
//! // One core, one transaction: read a line, write another, compute a bit.
//! let tx = Transaction::new(0, vec![Op::Read(0), Op::Write(64), Op::Compute(4)]);
//! let trace = WorkloadTrace::new("tiny", vec![ThreadTrace::new(vec![tx])]);
//! let outcome = TccSystem::new(SimConfig::table2(1), trace, NoGating)
//!     .unwrap()
//!     .run_bounded(100_000)
//!     .unwrap();
//! assert_eq!(outcome.total_commits, 1);
//! outcome.check_consistency().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dirctrl;
pub mod hooks;
pub mod processor;
pub mod stats;
pub mod system;
pub mod token;
pub mod txn;

pub use hooks::{AbortAction, GateCommand, GatingHook, NoGating, SystemView, UngateDecision};
pub use stats::{ProcStats, RunOutcome, StateCycles};
pub use system::TccSystem;
pub use token::{Tid, TokenVendor};
pub use txn::{Op, ThreadTrace, Transaction, TxId, WorkloadTrace};
