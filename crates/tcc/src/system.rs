//! The Scalable-TCC system and its stepping engines.
//!
//! [`TccSystem`] wires processors, directories, the token vendor, the
//! configured interconnect [`Topology`] (the paper's shared
//! split-transaction bus, or the banked/sharded fabric for 64–1024 processor
//! machines) and main memory together and reports every abort to the
//! configured [`GatingHook`]. It is the replacement for the paper's
//! "substantially modified M5 full-system simulator with added support for a
//! Scalable-TCC system". Three stepping engines drive it ([`EngineKind`]):
//! the default event-driven fast-forward engine, which leaps over cycles in
//! which no component can act, the one-step-per-cycle naive reference it is
//! differentially tested against, and the island-parallel shard engine whose
//! per-system semantics are identical to fast-forward (its fan-out across
//! host threads lives one layer up, in the `clockgate-htm` runner). All
//! engines are bit-for-bit cycle-exact with respect to each other.

use htm_mem::{AddressMap, LineAddr, MainMemory, SpecCache};
use htm_sim::bus::BusTraffic;
use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};
use htm_sim::config::SimConfig;
use htm_sim::interval::{IntervalSeg, IntervalTracker};
use htm_sim::pool::WorkerPool;
use htm_sim::topology::{Interconnect, Node, Route, Topology, TopologyConfig};
use htm_sim::{Cycle, DirId, ProcId, ProcSet};

use crate::dirctrl::DirCtrl;
use crate::hooks::{AbortAction, GateCommand, GatingHook, ScopedCmdKey, SystemView};
use crate::processor::{CommitStep, Phase, ProcEvent, Processor, RetryAfter};
use crate::stats::{PowerState, RunOutcome};
use crate::token::TokenVendor;
use crate::txn::{fingerprint_parts, Op, WorkloadTrace};

mod windowed;
pub use windowed::WindowedStats;

/// Errors that can occur when constructing or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The machine configuration is inconsistent.
    BadConfig(String),
    /// The workload does not fit the configured machine.
    BadWorkload(String),
    /// The simulation exceeded the cycle bound passed to
    /// [`TccSystem::run_bounded`] (indicates a livelock/deadlock or an
    /// undersized bound).
    CycleLimitExceeded {
        /// The bound that was exceeded.
        limit: Cycle,
    },
    /// A checkpoint payload could not be applied to this system: it was taken
    /// on a different machine configuration or workload trace, or its state
    /// records are internally inconsistent.
    Checkpoint(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::BadWorkload(msg) => write!(f, "invalid workload: {msg}"),
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded the cycle limit of {limit}")
            }
            SimError::Checkpoint(msg) => write!(f, "cannot restore checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Which stepping engine drives the simulation.
///
/// Both engines are bit-for-bit cycle-exact with respect to each other (the
/// differential test suite proves identical [`RunOutcome`]s for every gating
/// mode and workload); the fast-forward engine is simply the same machine
/// with its quiescent windows skipped in one jump. See `DESIGN.md`
/// ("event-horizon computation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Event-driven stepping: every component reports the next cycle at
    /// which it can act, and the clock leaps straight to the earliest such
    /// deadline whenever no component needs per-cycle processing.
    #[default]
    FastForward,
    /// The reference engine: one `step` per simulated cycle, touching every
    /// processor every cycle. Kept as the ground truth for differential
    /// testing and as the `--engine naive` option of the `reproduce` binary.
    Naive,
    /// Island-parallel stepping for sharded topologies: the runner splits
    /// the machine into independent interconnect islands (connected
    /// components of processors over shared directory banks) and advances
    /// each island's fast-forward engine on its own host thread, merging the
    /// outcomes deterministically. Within a single [`TccSystem`] this engine
    /// is *identical* to [`EngineKind::FastForward`] — the fan-out lives in
    /// the `clockgate-htm` runner — which is exactly what makes the merge
    /// bit-reproducible. Falls back to plain fast-forward when the workload
    /// forms a single island or the topology is the shared bus.
    ShardParallel,
    /// Time-windowed conservative PDES stepping for sharded topologies: the
    /// run is cut into lookahead windows no longer than the interconnect's
    /// provable minimum cross-shard notification latency
    /// ([`Topology::min_notify_latency`]). Within a window the machine is
    /// partitioned into bank-disjoint groups (by home bank, not by conflict
    /// component) that are advanced independently on their own deadline
    /// heaps; every protocol message created inside a window provably
    /// delivers at or after the barrier, so cross-group messages are staged
    /// and exchanged at the barrier in the exact order a serial run would
    /// have enqueued them. Bit-for-bit identical to
    /// [`EngineKind::FastForward`]; falls back to plain fast-forward
    /// windows (a single group) on the shared bus or whenever the gating
    /// hook cannot declare its cross-shard couplings.
    Windowed,
}

impl EngineKind {
    /// Short label used in reports and timing artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::FastForward => "fast-forward",
            EngineKind::Naive => "naive",
            EngineKind::ShardParallel => "shard-parallel",
            EngineKind::Windowed => "windowed",
        }
    }
}

/// One planned advancement of the fast-forward engine, produced by
/// `TccSystem::plan_step`.
enum StepPlan {
    /// Every component is quiescent for the next `n` cycles: leap over them
    /// in one batch-accounted jump.
    Jump(u64),
    /// Execute one exact cycle. Member `i` of `active` is set iff processor
    /// `i` needs its per-cycle processing (event delivery and/or a phase
    /// transition, or a commit-spin probe); the cleared ones are proven
    /// inert and only receive their countdown bookkeeping. `hook_due` says
    /// whether the hook's `on_tick` may act this cycle.
    Cycle {
        /// Set of processors that must be stepped individually.
        active: ProcSet,
        /// Whether `on_tick` must run this cycle.
        hook_due: bool,
    },
    /// No component will ever act again (a protocol deadlock): the run can
    /// only end by hitting its cycle bound.
    Quiescent,
}

/// The complete simulated machine.
pub struct TccSystem<H: GatingHook> {
    cfg: SimConfig,
    map: AddressMap,
    procs: Vec<Processor>,
    dirs: Vec<DirCtrl>,
    token: TokenVendor,
    net: Interconnect,
    /// One memory bank per directory node (the distributed shared memory of
    /// Scalable TCC: each directory is the home node for its interleaved
    /// share of the physical memory and has its own single R/W port).
    memory_banks: Vec<MainMemory>,
    hook: H,
    view: SystemView,
    intervals: IntervalTracker,
    now: Cycle,
    workload_name: String,
    last_commit_end: Cycle,
    /// Scratch buffer handed to [`GatingHook::on_tick`] every cycle so the
    /// steady-state tick never allocates.
    tick_scratch: Vec<GateCommand>,
    /// Scratch buffer for the directories touched by an aborting/committing
    /// processor (avoids a `Vec` allocation per abort/commit).
    dir_scratch: Vec<DirId>,
    /// Set of processors whose view entries are stale because they acted in
    /// the most recent executed cycle; `step_cycle` refreshes exactly these
    /// instead of sweeping every processor each cycle.
    view_dirty: ProcSet,
    /// Per-processor accounting watermark: all cycles in `[0, acct_until[i])`
    /// are fully reflected in processor `i`'s `state_cycles`,
    /// `attempt_cycles`, countdown fields and `first_tx_start`. The fast
    /// engine accounts lazily (a processor parked in a waiting phase is not
    /// touched at all until something happens to it); `flush_accounting`
    /// settles the balance whenever the processor is processed or the run
    /// ends.
    acct_until: Vec<Cycle>,
    /// Event queue of the fast engine: `(deadline, proc)` pairs, earliest
    /// first, with lazy deletion (entries are validated against the
    /// processor's actual state when popped and re-pushed if stale).
    /// Commit spinners are deliberately *not* tracked here — their readiness
    /// depends on shared grant state, so `plan_step` probes them directly.
    deadlines: std::collections::BinaryHeap<std::cmp::Reverse<(Cycle, ProcId)>>,
    /// Set of processors currently in `Phase::SpinCommit`.
    spin_mask: ProcSet,
    /// Start-of-cycle population counts `(gated, missing, committing,
    /// throttled)`, maintained incrementally on every phase transition so
    /// each executed cycle records its interval data in O(1).
    state_counts: (usize, usize, usize, usize),
    /// Number of processors in `Phase::Done` (replaces the O(procs)
    /// `all_done` sweep in the run loop).
    done_count: usize,
    /// Set whenever processors were mutated without maintaining the fast
    /// engine's incremental structures (construction, naive steps); the
    /// next `plan_step` rebuilds them once.
    fast_state_stale: bool,
    /// Fault-injection switch for the divergence harness's self-test: when
    /// set, [`Self::flush_accounting`] under-counts `attempt_cycles` by one
    /// on every batched `Executing` span of at least 4 cycles. The naive
    /// engine settles accounting cycle by cycle (span 1), so only the
    /// fast-forward engine is affected — a deliberately planted
    /// engine-equivalence bug the fuzz harness must be able to catch.
    perturb_accounting: bool,
    /// When enabled ([`Self::enable_interval_log`]), a run-length-encoded
    /// copy of every interval record, coalescing adjacent segments with
    /// identical counts. The island-parallel runner sums per-lane logs
    /// cycle-by-cycle and replays them to reconstruct the exact
    /// [`IntervalTracker`] a serial run would have produced.
    interval_log: Option<Vec<IntervalSeg>>,
    /// Windowed-engine context ([`EngineKind::Windowed`]): set while one
    /// bank-disjoint group is advanced inside a lookahead window. Redirects
    /// inbox pushes into `wstage` and scopes hook ticks and view refreshes
    /// to the group's directories. `None` under every other engine.
    wfocus: Option<windowed::WindowFocus>,
    /// Messages created during a multi-group window, staged for delivery at
    /// the barrier in the exact order a serial run would have pushed them
    /// (so every inbox's FIFO sequence numbers match the serial run's).
    wstage: Vec<windowed::StagedMsg>,
    /// Scratch buffer for scoped hook commands (windowed engine only).
    wscratch: Vec<(ScopedCmdKey, GateCommand)>,
    /// Cycle just after the most recent processor-completion transition.
    /// The windowed engine uses it to stop at the exact cycle the serial
    /// engines would have stopped at when a run completes mid-window.
    last_done_cycle: Cycle,
    /// Windowed-engine counters. Monitoring only: deliberately excluded
    /// from checkpoints so engine-independent state digests stay
    /// comparable across engines.
    wstats: windowed::WindowedStats,
    /// Worker pool override for the windowed engine's lane fan-out. `None`
    /// (the default) uses [`WorkerPool::global`]; tests pin explicit pool
    /// sizes to prove byte-exactness is independent of worker count.
    lane_pool: Option<std::sync::Arc<WorkerPool>>,
    /// Cached per-lane placeholder machines for the windowed engine's
    /// parallel branch: full-size component vectors whose slots are
    /// mem-swapped with the group's real components each window, so lane
    /// construction is O(group size) swaps instead of a machine clone.
    /// Empty until the first parallel window; runtime-only (never
    /// checkpointed).
    lane_shells: Vec<windowed::LaneShell>,
}

impl<H: GatingHook> TccSystem<H> {
    /// Build a system running `workload` on the machine described by `cfg`,
    /// with abort handling delegated to `hook`.
    ///
    /// The workload must provide exactly one thread per processor and must
    /// not reference addresses beyond the installed memory.
    pub fn new(cfg: SimConfig, workload: WorkloadTrace, hook: H) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::BadConfig)?;
        if workload.num_threads() != cfg.num_procs {
            return Err(SimError::BadWorkload(format!(
                "workload '{}' has {} threads but the machine has {} processors",
                workload.name,
                workload.num_threads(),
                cfg.num_procs
            )));
        }
        if let Some(max) = workload.max_addr() {
            if max >= cfg.memory_bytes {
                return Err(SimError::BadWorkload(format!(
                    "workload references address {max:#x} beyond the {} byte memory",
                    cfg.memory_bytes
                )));
            }
        }

        let map = AddressMap::new(cfg.line_bytes, cfg.directory_segment_bytes, cfg.num_dirs);
        let procs: Vec<Processor> = workload
            .threads
            .iter()
            .cloned()
            .enumerate()
            .map(|(id, thread)| Processor::new(id, thread, SpecCache::from_config(&cfg)))
            .collect();
        let dirs: Vec<DirCtrl> = (0..cfg.num_dirs)
            .map(|d| DirCtrl::new(d, cfg.num_procs, cfg.directory_latency))
            .collect();
        let view = SystemView::new(cfg.num_procs, cfg.num_dirs);
        let intervals = IntervalTracker::new(cfg.num_procs);
        let net = Interconnect::from_config(&cfg);
        let memory_banks = (0..cfg.num_dirs)
            .map(|_| MainMemory::from_config(&cfg))
            .collect();
        // Sharded fabrics pair with the pipelined vendor (TIDs derived from
        // the request itself, so commit-token arbitration never couples
        // independent banks); the bus machine keeps the paper's serial
        // vendor port.
        let token = if matches!(cfg.topology, TopologyConfig::Sharded { .. }) {
            TokenVendor::pipelined(cfg.token_vendor_latency)
        } else {
            TokenVendor::new(cfg.token_vendor_latency)
        };
        let num_procs = procs.len();
        let done_count = procs.iter().filter(|p| p.is_done()).count();
        let mut system = Self {
            cfg,
            map,
            procs,
            dirs,
            token,
            net,
            memory_banks,
            hook,
            view,
            intervals,
            now: 0,
            workload_name: workload.name,
            last_commit_end: 0,
            tick_scratch: Vec::new(),
            dir_scratch: Vec::new(),
            view_dirty: ProcSet::empty(),
            acct_until: vec![0; num_procs],
            deadlines: std::collections::BinaryHeap::new(),
            spin_mask: ProcSet::empty(),
            state_counts: (0, 0, 0, 0),
            done_count,
            // The first fast plan populates the event queue and counters.
            fast_state_stale: true,
            perturb_accounting: false,
            interval_log: None,
            wfocus: None,
            wstage: Vec::new(),
            wscratch: Vec::new(),
            last_done_cycle: 0,
            wstats: windowed::WindowedStats::default(),
            lane_pool: None,
            lane_shells: Vec::new(),
        };
        // Populate the hook-visible snapshot once; from here on the engines
        // keep it current (the naive engine by full refresh, the fast engine
        // incrementally via `view_dirty`).
        system.refresh_view();
        Ok(system)
    }

    /// The machine configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Pin the worker pool the windowed engine fans per-window lanes onto,
    /// instead of the process-wide [`WorkerPool::global`]. Purely a
    /// scheduling knob: results are byte-identical for every pool size
    /// (a pool of one worker takes the sequential in-place path).
    pub fn set_lane_pool(&mut self, pool: std::sync::Arc<WorkerPool>) {
        self.lane_pool = Some(pool);
    }

    /// Current simulation cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Whether every processor has finished all of its transactions.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.procs.iter().all(Processor::is_done)
    }

    /// Run to completion with a safety bound on the number of cycles, using
    /// the default (fast-forward) engine.
    pub fn run_bounded(self, limit: Cycle) -> Result<RunOutcome, SimError> {
        self.run_bounded_parts(limit, EngineKind::default())
            .map(|(outcome, _hook)| outcome)
    }

    /// Run to completion with the chosen engine, returning both the outcome
    /// and the hook.
    ///
    /// Handing the hook back lets callers extract controller statistics
    /// directly instead of smuggling them out through a shared
    /// `Rc<RefCell<..>>` cell (which used to cost an interior-mutability
    /// dispatch on every hook call).
    pub fn run_bounded_parts(
        self,
        limit: Cycle,
        engine: EngineKind,
    ) -> Result<(RunOutcome, H), SimError> {
        self.run_bounded_full(limit, engine)
            .map(|(outcome, hook, _stats)| (outcome, hook))
    }

    /// [`Self::run_bounded_parts`] plus the windowed-engine counters of the
    /// run ([`WindowedStats`]; all zero under every other engine). The
    /// counters are monitoring-only by-products — the outcome and hook are
    /// byte-identical to the plain entry point.
    pub fn run_bounded_full(
        mut self,
        limit: Cycle,
        engine: EngineKind,
    ) -> Result<(RunOutcome, H, windowed::WindowedStats), SimError> {
        while self.done_count < self.procs.len() {
            if self.now >= limit {
                return Err(SimError::CycleLimitExceeded { limit });
            }
            match engine {
                // Within one system the shard-parallel engine *is* the
                // fast-forward engine; the island fan-out happens in the
                // runner, and this equivalence is what makes it exact.
                EngineKind::FastForward | EngineKind::ShardParallel => match self.plan_step() {
                    StepPlan::Jump(n) => self.fast_forward(n),
                    StepPlan::Cycle { active, hook_due } => self.step_cycle(active, hook_due),
                    // Provable deadlock (every processor gated or done with
                    // an empty inbox and no pending hook timer): leap
                    // straight to the bound instead of burning one step per
                    // cycle on a dead machine. The error below matches what
                    // the naive engine reports after grinding to `limit`.
                    StepPlan::Quiescent => self.fast_forward(limit - self.now),
                },
                // Window-at-a-time conservative stepping; falls back to the
                // fast-forward plan above when the topology offers no
                // cross-shard structure (shared bus / single bank).
                EngineKind::Windowed => {
                    if self.windowed_lookahead().is_some() {
                        self.advance_window(limit);
                    } else {
                        match self.plan_step() {
                            StepPlan::Jump(n) => self.fast_forward(n),
                            StepPlan::Cycle { active, hook_due } => {
                                self.step_cycle(active, hook_due);
                            }
                            StepPlan::Quiescent => self.fast_forward(limit - self.now),
                        }
                    }
                }
                EngineKind::Naive => self.step_naive(),
            }
        }
        let stats = self.wstats;
        let (outcome, hook) = self.into_parts();
        Ok((outcome, hook, stats))
    }

    /// Run to completion (with a very large implicit safety bound).
    pub fn run(self) -> Result<RunOutcome, SimError> {
        self.run_bounded(Cycle::MAX / 2)
    }

    /// Start mirroring every interval record into a run-length-encoded log
    /// (retrieved by [`Self::into_parts_with_log`]). The island-parallel
    /// runner enables this on each lane so the per-lane interval data can be
    /// summed cycle-by-cycle and replayed into the exact tracker a serial
    /// run of the whole machine would have produced.
    pub fn enable_interval_log(&mut self) {
        if self.interval_log.is_none() {
            self.interval_log = Some(Vec::new());
        }
    }

    /// Plant the deliberate fast-engine accounting bug (see the
    /// `perturb_accounting` field). Exists solely so the divergence fuzz
    /// harness can prove, end to end, that it detects a real
    /// engine-equivalence violation and shrinks it to a minimal trace.
    pub fn debug_perturb_fast_accounting(&mut self) {
        self.perturb_accounting = true;
    }

    // ----- checkpointing ---------------------------------------------------------

    /// Serialize the complete machine state at the current cycle into a raw
    /// checkpoint payload (frame it with [`htm_sim::checkpoint::seal`] before
    /// writing to disk).
    ///
    /// Every processor's lazy accounting backlog is settled first. Settling
    /// early is bit-exact: the skipped window `[acct_until[i], now)` is spent
    /// in one unchanged phase, and every batched update (state-cycle sums,
    /// `attempt_cycles`, countdown decrements, the `first_tx_start` stamp at
    /// the window's start) splits additively — so flushing now and flushing
    /// the remainder later yields exactly what one deferred flush would have.
    /// A checkpoint therefore observes — and a resumed run continues from —
    /// the same state the uninterrupted run passes through.
    pub fn save_checkpoint(&mut self) -> Vec<u8> {
        for i in 0..self.procs.len() {
            self.flush_accounting(i, self.now);
            self.acct_until[i] = self.now;
        }
        let mut w = CkptWriter::new();
        self.cfg.save_ckpt(&mut w);
        w.put_str(&self.workload_name);
        w.put_u64(fingerprint_parts(
            &self.workload_name,
            self.procs.iter().map(|p| &p.thread),
        ));
        w.put_u64(self.now);
        w.put_u64(self.last_commit_end);
        self.intervals.save_ckpt(&mut w);
        w.put_usize(self.procs.len());
        for p in &self.procs {
            p.save_ckpt(&mut w);
        }
        w.put_usize(self.dirs.len());
        for d in &self.dirs {
            d.save_ckpt(&mut w);
        }
        self.token.save_ckpt(&mut w);
        self.net.save_ckpt(&mut w);
        w.put_usize(self.memory_banks.len());
        for m in &self.memory_banks {
            m.save_ckpt(&mut w);
        }
        match &self.interval_log {
            Some(log) => {
                w.put_bool(true);
                w.put_usize(log.len());
                for seg in log {
                    w.put_u64(seg.cycles);
                    w.put_usize(seg.gated);
                    w.put_usize(seg.missing);
                    w.put_usize(seg.committing);
                    w.put_usize(seg.throttled);
                }
            }
            None => w.put_bool(false),
        }
        self.hook.snapshot(&mut w);
        w.into_payload()
    }

    /// Rebuild a system from a checkpoint payload produced by
    /// [`Self::save_checkpoint`].
    ///
    /// `cfg`, `workload` and `hook` must be the same values the checkpointed
    /// run was constructed with — the payload carries the configuration, the
    /// workload name and a full trace fingerprint, and restoring refuses to
    /// proceed on any mismatch (resuming against a different machine or trace
    /// would silently produce garbage). The hook must be freshly constructed
    /// with its original parameters; its mutable state is overwritten through
    /// [`GatingHook::restore`].
    pub fn restore_checkpoint(
        cfg: SimConfig,
        workload: WorkloadTrace,
        hook: H,
        payload: &[u8],
    ) -> Result<Self, SimError> {
        let expect_fp = workload.fingerprint();
        let expect_name = workload.name.clone();
        let mut sys = Self::new(cfg, workload, hook)?;
        let mut r = CkptReader::new(payload);
        fn ck(e: CkptError) -> SimError {
            SimError::Checkpoint(format!("corrupt checkpoint payload: {e}"))
        }

        let saved_cfg = SimConfig::load_ckpt(&mut r).map_err(ck)?;
        if saved_cfg != sys.cfg {
            return Err(SimError::Checkpoint(
                "checkpoint was taken on a different machine configuration".into(),
            ));
        }
        let name = r.get_str().map_err(ck)?;
        let fp = r.get_u64().map_err(ck)?;
        if name != expect_name || fp != expect_fp {
            return Err(SimError::Checkpoint(format!(
                "checkpoint belongs to workload '{name}' (fingerprint {fp:#018x}), \
                 not the supplied '{expect_name}' (fingerprint {expect_fp:#018x})"
            )));
        }
        let now = r.get_cycle().map_err(ck)?;
        let last_commit_end = r.get_cycle().map_err(ck)?;
        let intervals = IntervalTracker::load_ckpt(&mut r).map_err(ck)?;
        let n_procs = r.get_usize().map_err(ck)?;
        if n_procs != sys.procs.len() {
            return Err(SimError::Checkpoint(format!(
                "checkpoint holds {n_procs} processors but the machine has {}",
                sys.procs.len()
            )));
        }
        for proc in &mut sys.procs {
            proc.restore_ckpt(&mut r).map_err(ck)?;
        }
        let n_dirs = r.get_usize().map_err(ck)?;
        if n_dirs != sys.dirs.len() {
            return Err(SimError::Checkpoint(format!(
                "checkpoint holds {n_dirs} directories but the machine has {}",
                sys.dirs.len()
            )));
        }
        for (d, slot) in sys.dirs.iter_mut().enumerate() {
            *slot = DirCtrl::load_ckpt(&mut r).map_err(ck)?;
            if slot.id() != d {
                return Err(SimError::Checkpoint(format!(
                    "directory record {} restored into slot {d}",
                    slot.id()
                )));
            }
        }
        sys.token = TokenVendor::load_ckpt(&mut r).map_err(ck)?;
        sys.net = Interconnect::load_ckpt(&mut r).map_err(ck)?;
        let n_banks = r.get_usize().map_err(ck)?;
        if n_banks != sys.memory_banks.len() {
            return Err(SimError::Checkpoint(format!(
                "checkpoint holds {n_banks} memory banks but the machine has {}",
                sys.memory_banks.len()
            )));
        }
        for bank in &mut sys.memory_banks {
            *bank = MainMemory::load_ckpt(&mut r).map_err(ck)?;
        }
        sys.interval_log = if r.get_bool().map_err(ck)? {
            let n = r.get_usize().map_err(ck)?;
            let mut log = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                log.push(IntervalSeg {
                    cycles: r.get_u64().map_err(ck)?,
                    gated: r.get_usize().map_err(ck)?,
                    missing: r.get_usize().map_err(ck)?,
                    committing: r.get_usize().map_err(ck)?,
                    throttled: r.get_usize().map_err(ck)?,
                });
            }
            Some(log)
        } else {
            None
        };
        sys.hook.restore(&mut r).map_err(ck)?;
        r.expect_end().map_err(ck)?;

        sys.now = now;
        sys.last_commit_end = last_commit_end;
        sys.intervals = intervals;
        // Derived engine state: accounting was settled to `now` at save time,
        // the event queue / spin mask / population counters are rebuilt by
        // the next fast plan, and the hook-visible view is refreshed here so
        // naive stepping (which reads it before the first rebuild) sees a
        // current snapshot. Extra or missing *stale* queue entries never
        // change behaviour — entries are validated on pop and a conservative
        // (shorter) jump is always exact — so the rebuilt structures are
        // observably identical to the uninterrupted run's.
        sys.acct_until = vec![now; n_procs];
        sys.done_count = sys.procs.iter().filter(|p| p.is_done()).count();
        sys.fast_state_stale = true;
        sys.view_dirty = ProcSet::empty();
        sys.refresh_view();
        Ok(sys)
    }

    /// Whether every processor has finished, in O(1) (maintained by the
    /// engines; [`Self::all_done`] is the O(procs) sweep).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.done_count == self.procs.len()
    }

    /// Advance the machine to exactly cycle `target` (or until every
    /// processor is done, whichever comes first) with the fast-forward
    /// engine, clamping quiescent jumps at the window boundary.
    ///
    /// Splitting a quiescent jump of `n` cycles into `n1 + n2` is bit-exact
    /// (the interval record is the only observable effect and it is a pure
    /// count accumulation), so driving a machine through an arbitrary
    /// sequence of windows yields the same outcome as one uninterrupted run.
    /// This is the conservative-lookahead primitive of the island-parallel
    /// engine: each lane can be advanced window by window and inspected at
    /// the window boundaries without perturbing the simulation.
    pub fn advance_until(&mut self, target: Cycle) {
        while self.done_count < self.procs.len() && self.now < target {
            match self.plan_step() {
                StepPlan::Jump(n) => {
                    let clamped = n.min(target - self.now);
                    self.fast_forward(clamped);
                }
                StepPlan::Cycle { active, hook_due } => self.step_cycle(active, hook_due),
                StepPlan::Quiescent => self.fast_forward(target - self.now),
            }
        }
    }

    /// Engine-aware variant of [`Self::advance_until`]: the naive reference
    /// engine grinds one exact cycle at a time, the fast-forward and
    /// shard-parallel engines jump (within one system the shard engine *is*
    /// the fast-forward engine; the island fan-out happens in the runner).
    /// All three stop at exactly `target` unless the run completes first, so
    /// a checkpoint taken at the boundary observes the same state whichever
    /// engine drove the machine there.
    pub fn advance_until_engine(&mut self, target: Cycle, engine: EngineKind) {
        match engine {
            EngineKind::FastForward | EngineKind::ShardParallel => self.advance_until(target),
            EngineKind::Windowed => {
                if self.windowed_lookahead().is_some() {
                    while self.done_count < self.procs.len() && self.now < target {
                        self.advance_window(target);
                    }
                } else {
                    self.advance_until(target);
                }
            }
            EngineKind::Naive => {
                while self.done_count < self.procs.len() && self.now < target {
                    self.step_naive();
                }
            }
        }
    }

    /// Advance the simulation by at least one cycle with the fast-forward
    /// engine: if every component agrees that nothing can happen before some
    /// future cycle, leap straight to it (batch-accounting the skipped
    /// cycles); otherwise execute one exact cycle, touching only the
    /// processors that act in it.
    pub fn step(&mut self) {
        match self.plan_step() {
            StepPlan::Jump(n) => self.fast_forward(n),
            StepPlan::Cycle { active, hook_due } => self.step_cycle(active, hook_due),
            // No cycle bound available here: burn one reference cycle.
            StepPlan::Quiescent => self.step_naive(),
        }
    }

    /// Advance the simulation by exactly one cycle (the reference engine).
    pub fn step_naive(&mut self) {
        self.account_cycles(1);
        self.refresh_view();
        self.apply_hook_commands();
        for i in 0..self.procs.len() {
            self.handle_events(i);
            self.advance_processor(i);
        }
        // Keep the run-loop counter current and flag the fast engine's
        // incremental bookkeeping as stale, so the two stepping styles can
        // be interleaved freely (the next fast plan rebuilds its event
        // structures once). The recount costs no more than the `all_done`
        // sweep it replaces.
        self.done_count = self.procs.iter().filter(|p| p.is_done()).count();
        self.fast_state_stale = true;
        self.now += 1;
    }

    // ----- fast-forward engine ---------------------------------------------------

    /// Decide how to advance the clock: an exact cycle touching only the
    /// active processors, a multi-cycle jump, or the deadlock shortcut.
    ///
    /// Exactness argument (see `DESIGN.md`, "event-horizon computation"):
    /// every observable state change in a cycle is triggered by one of
    /// (a) a processor phase completing or issuing an operation, (b) an
    /// inbox message becoming deliverable, (c) the hook issuing commands
    /// from `on_tick`, or (d) a commit spin being granted a directory.
    /// (a)–(c) are reported by the processors ([`Processor::next_deadline`])
    /// and the hook ([`GatingHook::next_deadline`]). For (d), a spin can
    /// only become grantable when the directory's occupancy releases
    /// (reported by [`DirCtrl::next_deadline`], merged before any jump) or
    /// when another processor changes the marked set — which is itself an
    /// (a) transition that makes that processor active. Because a lower-id
    /// active processor can change the marked set *within* the cycle (and
    /// naive stepping lets a later spinner observe that), every commit
    /// spinner is processed per-cycle whenever any processor is active.
    /// The bus / token-vendor / miss ports are demand-driven and could be
    /// omitted from the horizon, but their in-flight release times are
    /// merged anyway: a shorter jump is always safe.
    fn plan_step(&mut self) -> StepPlan {
        if self.fast_state_stale {
            self.rebuild_fast_state();
        }
        let now = self.now;
        let mut active = ProcSet::empty();
        let mut horizon: Option<Cycle> = None;
        fn merge(horizon: &mut Option<Cycle>, d: Option<Cycle>) {
            if let Some(d) = d {
                *horizon = Some(horizon.map_or(d, |h| h.min(d)));
            }
        }
        // Probe every commit spinner directly: its readiness lives in
        // shared grant state the event queue cannot track. Spinner counts
        // are small (they exist only while a commit is being arbitrated).
        for i in self.spin_mask {
            let proc = &self.procs[i];
            let Phase::SpinCommit { step_idx } = proc.phase else {
                unreachable!("spin_mask tracks SpinCommit membership");
            };
            let step_dir = proc.commit_plan[step_idx].dir;
            let tid = proc.tid.expect("commit spin requires a TID");
            if self.dirs[step_dir].would_grant(i, tid, now) {
                active.insert(i);
            }
        }
        // Drain the event queue up to `now`, validating lazily: an entry is
        // stale if the processor's deadline moved (it was processed since,
        // or the entry predates a newer, earlier event).
        while let Some(&std::cmp::Reverse((d, i))) = self.deadlines.peek() {
            if d > now {
                break;
            }
            self.deadlines.pop();
            if active.contains(i) {
                continue;
            }
            let effective = if matches!(self.procs[i].phase, Phase::SpinCommit { .. }) {
                // Grant-state readiness was probed above; only a deliverable
                // inbox message makes a spinner active through the queue.
                self.procs[i].inbox.next_delivery()
            } else {
                self.procs[i].next_deadline(self.acct_until[i])
            };
            match effective {
                Some(e) if e <= now => active.insert(i),
                Some(e) => self.deadlines.push(std::cmp::Reverse((e, i))),
                None => {}
            }
        }
        let hook_deadline = self.hook.next_deadline(now);
        let hook_due = hook_deadline.is_some_and(|d| d <= now);
        if !active.is_empty() {
            // Some processor acts this cycle, so every commit spinner must
            // be processed too: naive stepping lets a spinner observe marks
            // changed earlier in the same cycle.
            return StepPlan::Cycle {
                active: active | self.spin_mask,
                hook_due,
            };
        }
        if hook_due {
            // Only the hook acts. It cannot change grant state mid-cycle
            // (commands travel through inboxes and arrive strictly later),
            // so the spinners stay skippable this cycle.
            return StepPlan::Cycle {
                active: ProcSet::empty(),
                hook_due: true,
            };
        }
        merge(&mut horizon, self.deadlines.peek().map(|r| r.0 .0));
        merge(&mut horizon, hook_deadline);
        // Demand-driven resources: their deadlines are strictly in the
        // future by construction (an idle resource reports `None`). The
        // directory release times also bound how long a commit spinner can
        // be left unprobed.
        merge(&mut horizon, self.net.next_deadline(now));
        merge(&mut horizon, self.token.next_deadline(now));
        for dir in &self.dirs {
            merge(&mut horizon, dir.next_deadline(now));
        }
        match horizon {
            Some(h) => {
                debug_assert!(h > now, "all now-or-earlier deadlines were handled above");
                StepPlan::Jump(h - now)
            }
            // Defensive: a spinner with no computable deadline (it cannot
            // happen — the oldest-TID spinner is always grantable or blocked
            // by a directory with a release deadline — but a per-cycle probe
            // is always exact).
            None if !self.spin_mask.is_empty() => StepPlan::Cycle {
                active: self.spin_mask,
                hook_due: false,
            },
            None => StepPlan::Quiescent,
        }
    }

    /// Rebuild the fast engine's incremental structures from scratch (after
    /// construction they are only invalidated by interleaved `step_naive`
    /// calls, which mutate processors without maintaining them).
    fn rebuild_fast_state(&mut self) {
        self.deadlines.clear();
        self.spin_mask = ProcSet::empty();
        let mut gated = 0usize;
        let mut missing = 0usize;
        let mut committing = 0usize;
        let mut throttled = 0usize;
        for (i, proc) in self.procs.iter().enumerate() {
            match proc.phase.power_state() {
                PowerState::Gated => gated += 1,
                PowerState::Miss => missing += 1,
                PowerState::Commit => committing += 1,
                PowerState::Throttled => throttled += 1,
                PowerState::Run => {}
            }
            if matches!(proc.phase, Phase::SpinCommit { .. }) {
                self.spin_mask.insert(i);
                // A spinner's only queue-tracked wake source is its inbox
                // (grant state is probed directly by `plan_step`).
                if let Some(d) = proc.inbox.next_delivery() {
                    self.deadlines.push(std::cmp::Reverse((d, i)));
                }
            } else if let Some(d) = proc.next_deadline(self.acct_until[i]) {
                // Already folds in the earliest inbox arrival.
                self.deadlines.push(std::cmp::Reverse((d, i)));
            }
        }
        self.state_counts = (gated, missing, committing, throttled);
        self.done_count = self.procs.iter().filter(|p| p.is_done()).count();
        self.view_dirty = ProcSet::all(self.procs.len());
        self.fast_state_stale = false;
    }

    /// Execute one exact cycle, doing per-processor work only for the
    /// processors in `active`. Every other processor was proven inert this
    /// cycle by [`Self::plan_step`] and is not touched at all — its
    /// per-cycle bookkeeping (state-cycle accounting, `attempt_cycles`
    /// increments, countdown decrements) is settled lazily by
    /// [`Self::flush_accounting`] the next time something happens to it.
    fn step_cycle(&mut self, active: ProcSet, hook_due: bool) {
        let now = self.now;
        // Interval accounting from the incrementally maintained population
        // counts: O(1) instead of a sweep over every processor.
        self.record_intervals(1);

        // Refresh the view snapshot: directory marked-bits every cycle (the
        // cached bit vectors make this O(dirs)), processor entries only for
        // the processors that acted since the last executed cycle. The
        // result is byte-identical to the naive full refresh, and hooks keep
        // seeing a start-of-cycle snapshot.
        for i in std::mem::take(&mut self.view_dirty) {
            self.view.proc_tx[i] = self.procs[i].current_tx_id();
            self.view.proc_gated[i] = self.procs[i].phase.is_gated_like();
        }
        // Under a window focus only the group's directories can change their
        // marked sets, so refreshing just those keeps the snapshot exact.
        let wfocus = self.wfocus.take();
        match &wfocus {
            Some(f) => {
                for &d in &f.dir_list {
                    self.view.dir_marked[d] = self.dirs[d].marked_bits();
                }
            }
            None => {
                for (d, dir) in self.dirs.iter().enumerate() {
                    self.view.dir_marked[d] = dir.marked_bits();
                }
            }
        }
        self.wfocus = wfocus;

        if hook_due {
            self.apply_hook_commands();
        }

        for i in active {
            // Settle the lazily skipped cycles, then account the current
            // cycle eagerly (state as of the start of the cycle, exactly
            // like the naive engine's accounting pass).
            self.flush_accounting(i, now);
            let pre_state = self.procs[i].phase.power_state();
            self.procs[i].state_cycles.add(pre_state, 1);
            self.acct_until[i] = now + 1;
            let pre_done = self.procs[i].is_done();

            self.handle_events(i);
            self.advance_processor(i);

            // Maintain the incremental structures across the transition.
            let proc = &self.procs[i];
            let post_state = proc.phase.power_state();
            if post_state != pre_state {
                let c = &mut self.state_counts;
                match pre_state {
                    PowerState::Gated => c.0 -= 1,
                    PowerState::Miss => c.1 -= 1,
                    PowerState::Commit => c.2 -= 1,
                    PowerState::Throttled => c.3 -= 1,
                    PowerState::Run => {}
                }
                match post_state {
                    PowerState::Gated => c.0 += 1,
                    PowerState::Miss => c.1 += 1,
                    PowerState::Commit => c.2 += 1,
                    PowerState::Throttled => c.3 += 1,
                    PowerState::Run => {}
                }
            }
            if proc.is_done() && !pre_done {
                self.done_count += 1;
                // Cycle just after the completion step: exactly where the
                // serial run loops stop when this was the last processor.
                self.last_done_cycle = self.last_done_cycle.max(now + 1);
            }
            if matches!(proc.phase, Phase::SpinCommit { .. }) {
                self.spin_mask.insert(i);
                // A spinner's only queue-tracked wake source is its inbox
                // (grant state is probed directly by `plan_step`). Without
                // this entry a pending delivery is unreachable whenever the
                // rest of the machine is quiescent at its arrival cycle:
                // the emission-time entry may have been collapsed into a
                // phase deadline by a heap rebuild (the windowed engine
                // reseeds the heap at every window boundary).
                if let Some(d) = proc.inbox.next_delivery() {
                    self.deadlines.push(std::cmp::Reverse((d, i)));
                }
            } else {
                self.spin_mask.remove(i);
                if let Some(d) = proc.next_deadline(now + 1) {
                    self.deadlines.push(std::cmp::Reverse((d, i)));
                }
            }
        }
        self.view_dirty = active;
        self.now += 1;
    }

    /// Leap `n` quiescent cycles in one jump. Thanks to lazy per-processor
    /// accounting this is O(1): the interval record is taken from the
    /// maintained population counts and nothing else in the machine changes
    /// (the caller proved, via [`Self::plan_step`], that nothing would have
    /// happened).
    fn fast_forward(&mut self, n: u64) {
        debug_assert!(n >= 1);
        self.record_intervals(n);
        self.now += n;
    }

    // ----- per-cycle bookkeeping -------------------------------------------------

    /// Record `cycles` cycles of the current population counts into the
    /// interval tracker, mirroring them into the RLE log when one is
    /// enabled (coalescing runs with identical counts, so the log stays
    /// proportional to the number of count *changes*, not cycles).
    fn record_intervals(&mut self, cycles: u64) {
        let (gated, missing, committing, throttled) = self.state_counts;
        self.intervals
            .record_with_throttle(cycles, gated, missing, committing, throttled);
        self.mirror_log(cycles, gated, missing, committing, throttled);
    }

    /// Append one record to the RLE interval log, if enabled.
    fn mirror_log(
        &mut self,
        cycles: u64,
        gated: usize,
        missing: usize,
        committing: usize,
        throttled: usize,
    ) {
        if let Some(log) = &mut self.interval_log {
            let seg = IntervalSeg {
                cycles,
                gated,
                missing,
                committing,
                throttled,
            };
            match log.last_mut() {
                Some(last) if last.same_counts(&seg) => last.cycles += cycles,
                _ => log.push(seg),
            }
        }
    }

    /// Settle processor `i`'s lazily skipped cycles up to (excluding)
    /// `target`: the per-cycle work its naive advance would have done in
    /// `[acct_until[i], target)` — all spent in one unchanged phase — is
    /// applied in a single batch.
    fn flush_accounting(&mut self, i: ProcId, target: Cycle) {
        let from = self.acct_until[i];
        if target <= from {
            return;
        }
        let span = target - from;
        let proc = &mut self.procs[i];
        proc.state_cycles.add(proc.phase.power_state(), span);
        match &mut proc.phase {
            Phase::PreCompute { remaining } => *remaining -= span,
            Phase::Executing { remaining, .. } => {
                // The first skipped cycle is the one that would have stamped
                // the start of the first transaction.
                if proc.first_tx_start.is_none() {
                    proc.first_tx_start = Some(from);
                }
                proc.attempt_cycles += if self.perturb_accounting && span >= 4 {
                    span - 1
                } else {
                    span
                };
                *remaining -= span;
            }
            Phase::WaitMiss { .. }
            | Phase::WaitToken { .. }
            | Phase::SpinCommit { .. }
            | Phase::Committing { .. } => proc.attempt_cycles += span,
            Phase::Aborting { .. }
            | Phase::Backoff { .. }
            | Phase::Throttled { .. }
            | Phase::GateDraining { .. }
            | Phase::WakeRestart { .. }
            | Phase::Gated
            | Phase::Done => {}
        }
        self.acct_until[i] = target;
    }

    /// Eager accounting used by the naive engine: settle any lazy backlog
    /// (a no-op in pure naive runs), then account `cycles` cycles of the
    /// current state for every processor.
    fn account_cycles(&mut self, cycles: u64) {
        let now = self.now;
        for i in 0..self.procs.len() {
            self.flush_accounting(i, now);
        }
        let mut gated = 0usize;
        let mut missing = 0usize;
        let mut committing = 0usize;
        let mut throttled = 0usize;
        for proc in &mut self.procs {
            let state = proc.phase.power_state();
            proc.state_cycles.add(state, cycles);
            match state {
                PowerState::Gated => gated += 1,
                PowerState::Miss => missing += 1,
                PowerState::Commit => committing += 1,
                PowerState::Throttled => throttled += 1,
                PowerState::Run => {}
            }
        }
        for a in &mut self.acct_until {
            *a = now + cycles;
        }
        self.intervals
            .record_with_throttle(cycles, gated, missing, committing, throttled);
        self.mirror_log(cycles, gated, missing, committing, throttled);
    }

    fn refresh_view(&mut self) {
        for (i, proc) in self.procs.iter().enumerate() {
            self.view.proc_tx[i] = proc.current_tx_id();
            self.view.proc_gated[i] = proc.phase.is_gated_like();
        }
        for (d, dir) in self.dirs.iter().enumerate() {
            self.view.dir_marked[d] = dir.marked_bits();
        }
    }

    fn apply_hook_commands(&mut self) {
        if self.wfocus.is_some() {
            // Windowed group advance: the tick is scoped to the group's
            // directories and its commands are staged for the barrier.
            self.apply_hook_commands_scoped();
            return;
        }
        let mut commands = std::mem::take(&mut self.tick_scratch);
        commands.clear();
        self.hook.on_tick(self.now, &self.view, &mut commands);
        for cmd in &commands {
            match *cmd {
                GateCommand::UngateProcessor { proc, dir } => {
                    // The "on" command travels from the directory to the
                    // processor's PLL enable over the interconnect.
                    let route = Route {
                        src: Node::Dir(dir),
                        dst: Node::Proc(proc),
                    };
                    let arrive = self.net.request(self.now, route, BusTraffic::Control);
                    self.procs[proc]
                        .inbox
                        .push(arrive, ProcEvent::TurnOn { dir });
                    self.deadlines.push(std::cmp::Reverse((arrive, proc)));
                }
            }
        }
        self.tick_scratch = commands;
    }

    // ----- event handling --------------------------------------------------------

    fn handle_events(&mut self, i: ProcId) {
        // Pop directly instead of draining into a `Vec`: event handling is
        // on the per-cycle hot path and must not allocate. Events delivered
        // while handling (none today — every push targets a future cycle)
        // would also be picked up, exactly like the drain they replace.
        while let Some(ev) = self.procs[i].inbox.pop_ready(self.now) {
            match ev {
                ProcEvent::Invalidation {
                    line,
                    dir,
                    aborter,
                    aborter_tx,
                } => {
                    self.procs[i].cache.invalidate(line);
                    if !self.procs[i].read_set.contains(&line) {
                        // Stale invalidation (the attempt that read this line
                        // already ended); nothing to abort.
                        continue;
                    }
                    // Consult the hook: every directory that aborts a victim
                    // logs the abort locally, even if the victim is already
                    // stopped (Section V: gating decisions are directory-local).
                    let action = self
                        .hook
                        .on_abort(dir, i, aborter, aborter_tx, self.now, &self.view);
                    if action == AbortAction::Gate {
                        // A gating directory issues one `TxInfoReq` to the
                        // committing processor whenever it logs an abort in
                        // its table (Fig. 2(d)), even if the victim is
                        // already stopped; the round-trip latency is folded
                        // into the gating window by the controller, so only
                        // the energy-relevant count is recorded here.
                        self.dirs[dir].record_txinfo_roundtrip();
                    }
                    if self.procs[i].phase.is_gated_like() {
                        // Already stopped: the extra invalidation only updates
                        // the aborting directory's table.
                        continue;
                    }
                    if matches!(self.procs[i].phase, Phase::Committing { .. }) {
                        // The victim has already been granted a directory and
                        // passed its validation point; it wins and cannot be
                        // aborted any more.
                        continue;
                    }
                    match action {
                        AbortAction::Retry { backoff: 0 } => {
                            self.begin_abort(i, RetryAfter::Immediately);
                        }
                        AbortAction::Retry { backoff } => {
                            self.begin_abort(i, RetryAfter::Backoff(backoff));
                        }
                        AbortAction::Throttle { duration } => {
                            self.begin_abort(i, RetryAfter::Throttle(duration));
                        }
                        AbortAction::Gate => self.begin_gating(i),
                    }
                }
                ProcEvent::TurnOn { dir: _ } => {
                    if matches!(self.procs[i].phase, Phase::Gated) {
                        self.begin_wake(i);
                    }
                    // A stale "on" for a processor that is already running is
                    // ignored (Section V reconciliation).
                }
            }
        }
    }

    fn release_directory_state(&mut self, i: ProcId, clear_sharers: bool) {
        let mut touched = std::mem::take(&mut self.dir_scratch);
        touched.clear();
        touched.extend(self.procs[i].dirs_touched.iter().copied());
        for &d in &touched {
            self.dirs[d].unmark(i);
            if clear_sharers {
                self.dirs[d].directory.clear_proc(i);
            }
        }
        self.dir_scratch = touched;
    }

    fn begin_abort(&mut self, i: ProcId, then: RetryAfter) {
        let wasted = self.procs[i].attempt_cycles;
        self.procs[i].stats.aborts += 1;
        self.procs[i].stats.wasted_cycles += wasted;
        self.procs[i].aborts_this_tx += 1;
        self.procs[i].cache.abort_speculative();
        self.release_directory_state(i, true);
        self.procs[i].clear_attempt_state();
        self.procs[i].dirs_touched.clear();
        let until = self.now + self.cfg.abort_rollback_latency;
        self.procs[i].phase = Phase::Aborting { until, then };
    }

    fn begin_gating(&mut self, i: ProcId) {
        let wasted = self.procs[i].attempt_cycles;
        self.procs[i].stats.aborts += 1;
        self.procs[i].stats.gatings += 1;
        self.procs[i].stats.wasted_cycles += wasted;
        self.procs[i].aborts_this_tx += 1;
        self.procs[i].attempt_cycles = 0;
        // The frozen transaction keeps its speculative state until the
        // self-abort on wake-up, but it must stop participating in commit
        // arbitration: a gated processor can never be granted a directory
        // (this is what makes the protocol deadlock-free).
        let mut touched = std::mem::take(&mut self.dir_scratch);
        touched.clear();
        touched.extend(self.procs[i].dirs_touched.iter().copied());
        for &d in &touched {
            self.dirs[d].unmark(i);
        }
        self.dir_scratch = touched;
        let until = self.now + self.cfg.stop_clock_drain_latency;
        self.procs[i].phase = Phase::GateDraining { until };
    }

    fn begin_wake(&mut self, i: ProcId) {
        // "After this wake-up, the processor needs to do a Self Abort of the
        // transaction it was executing at the time of freeze."
        self.procs[i].cache.abort_speculative();
        self.release_directory_state(i, true);
        self.procs[i].clear_attempt_state();
        self.procs[i].dirs_touched.clear();
        self.hook.on_wake(i, self.now);
        let until = self.now + self.cfg.wake_up_latency + self.cfg.abort_rollback_latency;
        self.procs[i].phase = Phase::WakeRestart { until };
    }

    // ----- processor stepping ----------------------------------------------------

    fn advance_processor(&mut self, i: ProcId) {
        match self.procs[i].phase.clone() {
            Phase::Done | Phase::Gated => {}
            Phase::PreCompute { remaining } => {
                if remaining <= 1 {
                    self.procs[i].phase = Phase::Executing {
                        op_idx: 0,
                        remaining: 0,
                    };
                } else {
                    self.procs[i].phase = Phase::PreCompute {
                        remaining: remaining - 1,
                    };
                }
            }
            Phase::Executing { op_idx, remaining } => {
                if self.procs[i].first_tx_start.is_none() {
                    self.procs[i].first_tx_start = Some(self.now);
                }
                self.procs[i].attempt_cycles += 1;
                if remaining > 0 {
                    self.procs[i].phase = Phase::Executing {
                        op_idx,
                        remaining: remaining - 1,
                    };
                } else {
                    self.issue_op(i, op_idx);
                }
            }
            Phase::WaitMiss {
                op_idx,
                until,
                line,
                is_store,
            } => {
                self.procs[i].attempt_cycles += 1;
                if self.now >= until {
                    self.procs[i].cache.fill(line, !is_store, is_store);
                    self.procs[i].phase = Phase::Executing {
                        op_idx,
                        remaining: 0,
                    };
                }
            }
            Phase::WaitToken { until } => {
                self.procs[i].attempt_cycles += 1;
                if self.now >= until {
                    self.mark_commit_plan(i);
                    self.procs[i].phase = Phase::SpinCommit { step_idx: 0 };
                }
            }
            Phase::SpinCommit { step_idx } => {
                self.procs[i].attempt_cycles += 1;
                self.try_start_flush(i, step_idx);
            }
            Phase::Committing { step_idx, until } => {
                self.procs[i].attempt_cycles += 1;
                if self.now >= until {
                    self.finish_flush_step(i, step_idx);
                }
            }
            Phase::Aborting { until, then } => {
                if self.now >= until {
                    match then {
                        RetryAfter::Immediately => self.procs[i].restart_transaction(),
                        RetryAfter::Backoff(backoff) => {
                            self.procs[i].stats.backoff_cycles += backoff;
                            self.procs[i].phase = Phase::Backoff {
                                until: self.now + backoff,
                            };
                        }
                        RetryAfter::Throttle(duration) => {
                            self.procs[i].phase = Phase::Throttled {
                                until: self.now + duration,
                            };
                        }
                    }
                }
            }
            Phase::Backoff { until } | Phase::Throttled { until } => {
                if self.now >= until {
                    self.procs[i].restart_transaction();
                }
            }
            Phase::GateDraining { until } => {
                if self.now >= until {
                    self.procs[i].phase = Phase::Gated;
                }
            }
            Phase::WakeRestart { until } => {
                if self.now >= until {
                    self.procs[i].restart_transaction();
                }
            }
        }
    }

    fn issue_op(&mut self, i: ProcId, op_idx: usize) {
        let Some(tx) = self.procs[i].current_tx() else {
            self.procs[i].phase = Phase::Done;
            return;
        };
        if op_idx >= tx.ops.len() {
            self.begin_commit(i);
            return;
        }
        let op = tx.ops[op_idx];
        match op {
            Op::Compute(c) => {
                self.procs[i].phase = Phase::Executing {
                    op_idx: op_idx + 1,
                    remaining: c.saturating_sub(1),
                };
            }
            Op::Read(addr) => {
                let line = self.map.line_of(addr);
                let home = self.map.home_of(line);
                self.procs[i].dirs_touched.insert(home);
                let newly_read = self.procs[i].read_set.insert(line);
                let hit = matches!(
                    self.procs[i].cache.load(line, true),
                    htm_mem::AccessOutcome::Hit
                );
                if hit {
                    if newly_read {
                        // Register this processor as a speculative sharer with
                        // the home directory (background control message; the
                        // hit itself does not stall).
                        self.dirs[home].directory.add_sharer(line, i);
                        let route = Route {
                            src: Node::Proc(i),
                            dst: Node::Dir(home),
                        };
                        self.net.request(self.now, route, BusTraffic::Control);
                        self.hook.on_proc_activity(i, home, self.now);
                    }
                    self.procs[i].phase = Phase::Executing {
                        op_idx: op_idx + 1,
                        remaining: self.cfg.l1_hit_latency.saturating_sub(1),
                    };
                } else {
                    self.dirs[home].directory.add_sharer(line, i);
                    self.hook.on_proc_activity(i, home, self.now);
                    let until = self.miss_fill_time(i, home, line);
                    self.procs[i].phase = Phase::WaitMiss {
                        op_idx: op_idx + 1,
                        until,
                        line,
                        is_store: false,
                    };
                }
            }
            Op::Write(addr) => {
                let line = self.map.line_of(addr);
                let home = self.map.home_of(line);
                self.procs[i].dirs_touched.insert(home);
                self.procs[i].write_set.insert(line);
                let hit = matches!(
                    self.procs[i].cache.store(line, true),
                    htm_mem::AccessOutcome::Hit
                );
                if hit {
                    self.procs[i].phase = Phase::Executing {
                        op_idx: op_idx + 1,
                        remaining: self.cfg.l1_hit_latency.saturating_sub(1),
                    };
                } else {
                    // Write-allocate fetch of the line; stores stay private
                    // until commit so no sharer registration is needed.
                    self.hook.on_proc_activity(i, home, self.now);
                    let until = self.miss_fill_time(i, home, line);
                    self.procs[i].phase = Phase::WaitMiss {
                        op_idx: op_idx + 1,
                        until,
                        line,
                        is_store: true,
                    };
                }
            }
        }
    }

    fn miss_fill_time(&mut self, i: ProcId, home: DirId, line: LineAddr) -> Cycle {
        // Request message competes for its channel now; the directory lookup
        // and (if needed) the memory-bank access queue behind earlier
        // requests to the same home node; the data reply is re-arbitrated
        // when the data is ready (split-transaction channels, so the channel
        // is not held during the memory wait).
        let to_dir = Route {
            src: Node::Proc(i),
            dst: Node::Dir(home),
        };
        let from_dir = Route {
            src: Node::Dir(home),
            dst: Node::Proc(i),
        };
        let req_at_dir = self.net.request(self.now, to_dir, BusTraffic::Control);
        let dir_done = self.dirs[home].service_miss(req_at_dir);
        // Lines that have been committed through this directory before are
        // served directly by the home node (the committed data lives in its
        // buffers / local memory controller); only cold lines pay the full
        // main-memory latency.
        let data_ready = if self.dirs[home].directory.owner(line).is_some() {
            dir_done
        } else {
            self.memory_banks[home].access(dir_done)
        };
        self.net
            .schedule_future(data_ready, from_dir, BusTraffic::Data)
    }

    fn begin_commit(&mut self, i: ProcId) {
        if self.procs[i].write_set.is_empty() {
            // Read-only transactions commit locally without arbitration.
            self.finish_commit(i);
            return;
        }
        // Build the commit plan: one step per home directory, visited in
        // ascending directory order.
        let mut by_dir: Vec<(DirId, Vec<LineAddr>)> = Vec::new();
        let mut lines: Vec<LineAddr> = self.procs[i].write_set.iter().copied().collect();
        lines.sort_unstable();
        for line in lines {
            let home = self.map.home_of(line);
            match by_dir.iter_mut().find(|(d, _)| *d == home) {
                Some((_, v)) => v.push(line),
                None => by_dir.push((home, vec![line])),
            }
        }
        by_dir.sort_unstable_by_key(|(d, _)| *d);
        self.procs[i].commit_plan = by_dir
            .into_iter()
            .map(|(dir, lines)| CommitStep { dir, lines })
            .collect();

        // Token acquisition: request over the interconnect, vendor service,
        // reply back to the processor.
        let to_vendor = Route {
            src: Node::Proc(i),
            dst: Node::Vendor,
        };
        let from_vendor = Route {
            src: Node::Vendor,
            dst: Node::Proc(i),
        };
        let req = self.net.request(self.now, to_vendor, BusTraffic::Control);
        let (tid, ready) = self.token.request(req, i);
        let reply = self.net.request(ready, from_vendor, BusTraffic::Control);
        self.procs[i].tid = Some(tid);
        self.procs[i].phase = Phase::WaitToken { until: reply };
    }

    fn mark_commit_plan(&mut self, i: ProcId) {
        let tid = self.procs[i].tid.expect("marking requires a TID");
        let dirs: Vec<DirId> = self.procs[i].commit_plan.iter().map(|s| s.dir).collect();
        for d in dirs {
            // One control message per directory announces the intention to
            // commit (sets the "Marked" bit the Fig. 2(e) circuit inspects).
            let route = Route {
                src: Node::Proc(i),
                dst: Node::Dir(d),
            };
            self.net.request(self.now, route, BusTraffic::Control);
            self.dirs[d].mark(tid, i);
        }
    }

    fn try_start_flush(&mut self, i: ProcId, step_idx: usize) {
        let tid = self.procs[i].tid.expect("commit spin requires a TID");
        let step = self.procs[i].commit_plan[step_idx].clone();
        if !self.dirs[step.dir].can_grant(i, tid, self.now) {
            return;
        }
        // Granted: the flush occupies the directory for its lookup latency
        // plus one bus data transfer per committed line. Each line becomes
        // owned as it is flushed, and the invalidations to its speculative
        // sharers leave the directory as soon as *that* line commits — so a
        // victim can be aborted (and clock-gated) while the committer is
        // still flushing the rest of its write set here, which is exactly the
        // window the renewal check of Fig. 2(e) inspects.
        let aborter_tx = self.procs[i].current_tx_id().unwrap_or_default();
        let flush_route = Route {
            src: Node::Proc(i),
            dst: Node::Dir(step.dir),
        };
        let mut t = self.now + self.cfg.directory_latency;
        for &line in &step.lines {
            t = self.net.request(t, flush_route, BusTraffic::Data);
            let victims = self.dirs[step.dir].directory.commit_line(line, i);
            for victim in victims {
                if victim == i {
                    continue;
                }
                let inval_route = Route {
                    src: Node::Dir(step.dir),
                    dst: Node::Proc(victim),
                };
                let deliver = self
                    .net
                    .schedule_future(t, inval_route, BusTraffic::Control);
                let deliver = deliver.max(self.now + 1);
                let ev = ProcEvent::Invalidation {
                    line,
                    dir: step.dir,
                    aborter: i,
                    aborter_tx,
                };
                if self.wfocus.is_some() {
                    // Windowed group advance: the lookahead proves this
                    // delivery lands beyond the window barrier, so it is
                    // staged and applied there in serial push order.
                    self.wstage.push(windowed::StagedMsg {
                        cycle: self.now,
                        phase: windowed::STAGE_PHASE_PROC,
                        key: (i as u64, 0, 0),
                        target: victim,
                        deliver_at: deliver,
                        ev,
                    });
                } else {
                    self.procs[victim].inbox.push(deliver, ev);
                    self.deadlines.push(std::cmp::Reverse((deliver, victim)));
                }
            }
        }
        self.dirs[step.dir].occupy(i, self.now, t);
        self.procs[i].phase = Phase::Committing { step_idx, until: t };
    }

    fn finish_flush_step(&mut self, i: ProcId, step_idx: usize) {
        let dir = self.procs[i].commit_plan[step_idx].dir;
        self.dirs[dir].unmark(i);
        if step_idx + 1 < self.procs[i].commit_plan.len() {
            self.procs[i].phase = Phase::SpinCommit {
                step_idx: step_idx + 1,
            };
        } else {
            self.finish_commit(i);
        }
    }

    fn finish_commit(&mut self, i: ProcId) {
        let attempt = self.procs[i].attempt_cycles;
        let aborts = self.procs[i].aborts_this_tx;
        self.procs[i].stats.commits += 1;
        self.procs[i].stats.useful_cycles += attempt;
        self.procs[i].stats.aborts_per_tx.record(aborts);
        self.procs[i].cache.commit_speculative();
        self.release_directory_state(i, true);
        self.procs[i].clear_attempt_state();
        self.procs[i].dirs_touched.clear();
        self.hook.on_commit(i, self.now);
        self.last_commit_end = self.last_commit_end.max(self.now);
        self.procs[i].advance_to_next_tx();
    }

    // ----- outcome ---------------------------------------------------------------

    /// Consume the system and return the outcome accumulated so far together
    /// with the hook (so controller statistics can be read out directly).
    #[must_use]
    pub fn into_parts(mut self) -> (RunOutcome, H) {
        // Settle every processor's lazy accounting backlog so the outcome
        // covers all `total_cycles` cycles (a no-op after naive runs).
        for i in 0..self.procs.len() {
            self.flush_accounting(i, self.now);
        }
        let total_cycles = self.now;
        let first_tx_start = self
            .procs
            .iter()
            .filter_map(|p| p.first_tx_start)
            .min()
            .unwrap_or(0);
        let state_cycles = self
            .procs
            .iter()
            .map(|p| p.state_cycles)
            .collect::<Vec<_>>();
        let proc_stats = self
            .procs
            .iter()
            .map(|p| p.stats.clone())
            .collect::<Vec<_>>();
        let total_commits = proc_stats.iter().map(|s| s.commits).sum();
        let total_aborts = proc_stats.iter().map(|s| s.aborts).sum();
        let total_gatings = proc_stats.iter().map(|s| s.gatings).sum();
        let dir_stats = self.dirs.iter().map(DirCtrl::stats).collect();
        let outcome = RunOutcome {
            workload: self.workload_name,
            num_procs: self.cfg.num_procs,
            total_cycles,
            first_tx_start,
            last_commit_end: self.last_commit_end,
            state_cycles,
            proc_stats,
            intervals: self.intervals,
            bus: self.net.stats(),
            shard_bus: self.net.shard_stats(),
            dir_stats,
            total_commits,
            total_aborts,
            total_gatings,
        };
        (outcome, self.hook)
    }

    /// Consume the system and return the outcome accumulated so far (useful
    /// for tests that drive [`Self::step`] manually).
    #[must_use]
    pub fn finish(self) -> RunOutcome {
        self.into_parts().0
    }

    /// [`Self::into_parts`] plus the RLE interval log (empty unless
    /// [`Self::enable_interval_log`] was called before the run).
    #[must_use]
    pub fn into_parts_with_log(mut self) -> (RunOutcome, H, Vec<IntervalSeg>) {
        let log = self.interval_log.take().unwrap_or_default();
        let (outcome, hook) = self.into_parts();
        (outcome, hook, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::{ExponentialBackoff, NoGating};
    use crate::txn::{Op, ThreadTrace, Transaction};

    fn cfg(procs: usize) -> SimConfig {
        SimConfig::table2(procs)
    }

    fn single_tx_workload() -> WorkloadTrace {
        WorkloadTrace::new(
            "single",
            vec![ThreadTrace::new(vec![Transaction::new(
                0x100,
                vec![Op::Read(0), Op::Compute(10), Op::Write(0)],
            )])],
        )
    }

    #[test]
    fn single_processor_single_transaction_commits() {
        let outcome = TccSystem::new(cfg(1), single_tx_workload(), NoGating)
            .unwrap()
            .run_bounded(100_000)
            .unwrap();
        assert_eq!(outcome.total_commits, 1);
        assert_eq!(outcome.total_aborts, 0);
        assert!(outcome.total_cycles > 0);
        outcome.check_consistency().unwrap();
    }

    #[test]
    fn read_only_transaction_commits_without_token() {
        let w = WorkloadTrace::new(
            "ro",
            vec![ThreadTrace::new(vec![Transaction::new(
                1,
                vec![Op::Read(0), Op::Read(64)],
            )])],
        );
        let outcome = TccSystem::new(cfg(1), w, NoGating)
            .unwrap()
            .run_bounded(100_000)
            .unwrap();
        assert_eq!(outcome.total_commits, 1);
        assert_eq!(outcome.total_aborts, 0);
    }

    #[test]
    fn wrong_thread_count_is_rejected() {
        let err = TccSystem::new(cfg(2), single_tx_workload(), NoGating)
            .err()
            .unwrap();
        assert!(matches!(err, SimError::BadWorkload(_)));
    }

    #[test]
    fn out_of_range_address_is_rejected() {
        let w = WorkloadTrace::new(
            "oob",
            vec![ThreadTrace::new(vec![Transaction::new(
                1,
                vec![Op::Read(1 << 40)],
            )])],
        );
        let err = TccSystem::new(cfg(1), w, NoGating).err().unwrap();
        assert!(matches!(err, SimError::BadWorkload(_)));
    }

    #[test]
    fn conflicting_writers_cause_aborts_and_still_commit() {
        // Two processors both read-modify-write the same line several times:
        // at least one abort is inevitable, but every transaction must commit
        // in the end (TCC guarantees progress).
        let tx = |id: u64| Transaction::new(id, vec![Op::Read(0), Op::Compute(50), Op::Write(0)]);
        let w = WorkloadTrace::new(
            "conflict",
            vec![
                ThreadTrace::new(vec![tx(1), tx(2), tx(3)]),
                ThreadTrace::new(vec![tx(11), tx(12), tx(13)]),
            ],
        );
        let outcome = TccSystem::new(cfg(2), w, NoGating)
            .unwrap()
            .run_bounded(1_000_000)
            .unwrap();
        assert_eq!(outcome.total_commits, 6);
        assert!(
            outcome.total_aborts > 0,
            "conflicting transactions must abort at least once"
        );
        assert_eq!(outcome.total_gatings, 0, "baseline never gates");
        outcome.check_consistency().unwrap();
    }

    #[test]
    fn disjoint_workloads_never_abort() {
        // Each processor works on its own lines: no conflicts, no aborts.
        let tx = |id: u64, base: u64| {
            Transaction::new(id, vec![Op::Read(base), Op::Compute(20), Op::Write(base)])
        };
        let w = WorkloadTrace::new(
            "disjoint",
            vec![
                ThreadTrace::new(vec![tx(1, 0), tx(2, 64)]),
                ThreadTrace::new(vec![tx(11, 4096), tx(12, 4160)]),
            ],
        );
        let outcome = TccSystem::new(cfg(2), w, NoGating)
            .unwrap()
            .run_bounded(1_000_000)
            .unwrap();
        assert_eq!(outcome.total_commits, 4);
        assert_eq!(outcome.total_aborts, 0);
    }

    #[test]
    fn miss_cycles_are_accounted() {
        let outcome = TccSystem::new(cfg(1), single_tx_workload(), NoGating)
            .unwrap()
            .run_bounded(100_000)
            .unwrap();
        assert!(outcome.total_miss_cycles() > 0, "the first read must miss");
        assert!(
            outcome.total_commit_cycles() > 0,
            "the write-set flush must be accounted"
        );
    }

    #[test]
    fn consistency_holds_for_conflicting_runs() {
        let tx =
            |id: u64| Transaction::new(id, vec![Op::Read(128), Op::Compute(30), Op::Write(128)]);
        let w = WorkloadTrace::new(
            "conflict",
            vec![
                ThreadTrace::new(vec![tx(1), tx(2)]),
                ThreadTrace::new(vec![tx(21), tx(22)]),
            ],
        );
        let outcome = TccSystem::new(cfg(2), w, NoGating)
            .unwrap()
            .run_bounded(1_000_000)
            .unwrap();
        outcome.check_consistency().unwrap();
        assert_eq!(outcome.num_procs, 2);
        assert!(outcome.last_commit_end <= outcome.total_cycles);
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let err = TccSystem::new(cfg(1), single_tx_workload(), NoGating)
            .unwrap()
            .run_bounded(3)
            .err()
            .unwrap();
        assert_eq!(err, SimError::CycleLimitExceeded { limit: 3 });
    }

    /// A hook that gates on the first abort and ungates a fixed number of
    /// cycles later, used to exercise the gate/wake/self-abort path without
    /// pulling in the full clock-gating controller.
    struct FixedWindowGate {
        window: Cycle,
        pending: Vec<(ProcId, DirId, Cycle)>,
        gated: Vec<bool>,
    }

    impl FixedWindowGate {
        fn new(num_procs: usize, window: Cycle) -> Self {
            Self {
                window,
                pending: Vec::new(),
                gated: vec![false; num_procs],
            }
        }
    }

    impl GatingHook for FixedWindowGate {
        fn on_abort(
            &mut self,
            dir: DirId,
            victim: ProcId,
            _aborter: ProcId,
            _aborter_tx: u64,
            now: Cycle,
            _view: &SystemView,
        ) -> AbortAction {
            if self.gated[victim] {
                return AbortAction::Gate;
            }
            self.gated[victim] = true;
            self.pending.push((victim, dir, now + self.window));
            AbortAction::Gate
        }

        fn on_tick(&mut self, now: Cycle, _view: &SystemView, out: &mut Vec<GateCommand>) {
            self.pending.retain(|&(proc, dir, due)| {
                if now >= due {
                    out.push(GateCommand::UngateProcessor { proc, dir });
                    false
                } else {
                    true
                }
            });
        }

        fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
            self.pending.iter().map(|&(_, _, due)| due.max(now)).min()
        }

        fn on_wake(&mut self, proc: ProcId, _now: Cycle) {
            self.gated[proc] = false;
        }
    }

    #[test]
    fn gating_hook_produces_gated_cycles_and_all_commits() {
        let tx = |id: u64| Transaction::new(id, vec![Op::Read(0), Op::Compute(80), Op::Write(0)]);
        let w = WorkloadTrace::new(
            "gated-conflict",
            vec![
                ThreadTrace::new(vec![tx(1), tx(2), tx(3)]),
                ThreadTrace::new(vec![tx(11), tx(12), tx(13)]),
            ],
        );
        let outcome = TccSystem::new(cfg(2), w, FixedWindowGate::new(2, 200))
            .unwrap()
            .run_bounded(2_000_000)
            .unwrap();
        assert_eq!(
            outcome.total_commits, 6,
            "every transaction must still commit"
        );
        assert!(outcome.total_gatings > 0, "conflicts must trigger gating");
        assert!(
            outcome.total_gated_cycles() > 0,
            "gated cycles must be accounted"
        );
        outcome.check_consistency().unwrap();
    }

    /// In-crate differential check: the fast-forward engine must reproduce
    /// the naive engine's outcome bit for bit on a contended gated run (the
    /// exhaustive mode × workload sweep lives in the `clockgate-htm` crate's
    /// differential test suite).
    #[test]
    fn fast_forward_matches_naive_on_gated_conflict() {
        let tx = |id: u64| Transaction::new(id, vec![Op::Read(0), Op::Compute(80), Op::Write(0)]);
        let build = || {
            WorkloadTrace::new(
                "gated-conflict",
                vec![
                    ThreadTrace::new(vec![tx(1), tx(2), tx(3)]),
                    ThreadTrace::new(vec![tx(11), tx(12), tx(13)]),
                ],
            )
        };
        let (fast, _) = TccSystem::new(cfg(2), build(), FixedWindowGate::new(2, 200))
            .unwrap()
            .run_bounded_parts(2_000_000, EngineKind::FastForward)
            .unwrap();
        let (naive, _) = TccSystem::new(cfg(2), build(), FixedWindowGate::new(2, 200))
            .unwrap()
            .run_bounded_parts(2_000_000, EngineKind::Naive)
            .unwrap();
        assert_eq!(fast, naive);
    }

    #[test]
    fn quiescent_deadlock_errors_like_naive_without_burning_cycles() {
        // A hook that gates on the first abort and never wakes anyone: the
        // victim freezes forever and the run must hit the cycle bound. The
        // fast engine proves quiescence and leaps straight to the limit.
        struct GateForever;
        impl GatingHook for GateForever {
            fn on_abort(
                &mut self,
                _dir: DirId,
                _victim: ProcId,
                _aborter: ProcId,
                _aborter_tx: u64,
                _now: Cycle,
                _view: &SystemView,
            ) -> AbortAction {
                AbortAction::Gate
            }
            fn next_deadline(&self, _now: Cycle) -> Option<Cycle> {
                None
            }
        }
        let tx = |id: u64| Transaction::new(id, vec![Op::Read(0), Op::Compute(50), Op::Write(0)]);
        let build = || {
            WorkloadTrace::new(
                "freeze",
                vec![
                    ThreadTrace::new(vec![tx(1), tx(2)]),
                    ThreadTrace::new(vec![tx(11), tx(12)]),
                ],
            )
        };
        let limit = 50_000_000;
        let err = TccSystem::new(cfg(2), build(), GateForever)
            .unwrap()
            .run_bounded_parts(limit, EngineKind::FastForward)
            .err()
            .unwrap();
        assert_eq!(err, SimError::CycleLimitExceeded { limit });
    }

    #[test]
    fn step_jumps_over_quiescent_windows() {
        // Single processor: the first read misses, so after the issue cycle
        // the machine is quiescent until the fill returns and `step` must
        // leap multiple cycles at once.
        let mut sys = TccSystem::new(cfg(1), single_tx_workload(), NoGating).unwrap();
        let mut jumped = false;
        let mut steps = 0u64;
        while !sys.all_done() {
            let before = sys.now();
            sys.step();
            assert!(sys.now() > before, "step must always advance the clock");
            jumped |= sys.now() > before + 1;
            steps += 1;
            assert!(steps < 10_000, "single transaction must finish quickly");
        }
        assert!(jumped, "the miss stall must be skipped in one jump");
        let outcome = sys.finish();
        assert_eq!(outcome.total_commits, 1);
        outcome.check_consistency().unwrap();
    }

    fn ckpt_workload() -> WorkloadTrace {
        let tx = |id: u64| Transaction::new(id, vec![Op::Read(0), Op::Compute(50), Op::Write(0)]);
        WorkloadTrace::new(
            "ckpt",
            vec![
                ThreadTrace::new(vec![tx(1), tx(2), tx(3)]),
                ThreadTrace::new(vec![tx(11), tx(12), tx(13)]),
            ],
        )
    }

    fn ckpt_hook() -> ExponentialBackoff {
        ExponentialBackoff::new(2, 16, 4)
    }

    #[test]
    fn checkpoint_resumed_run_equals_uninterrupted_run() {
        let (reference, _) = TccSystem::new(cfg(2), ckpt_workload(), ckpt_hook())
            .unwrap()
            .run_bounded_parts(2_000_000, EngineKind::FastForward)
            .unwrap();
        // Checkpoint at several mid-run cycles, including awkward ones that
        // land inside miss stalls and commit arbitration.
        for t in [1, 37, 256, 1000, 3000] {
            let mut sys = TccSystem::new(cfg(2), ckpt_workload(), ckpt_hook()).unwrap();
            sys.advance_until(t);
            let saved_at = sys.now();
            let payload = sys.save_checkpoint();
            let resumed =
                TccSystem::restore_checkpoint(cfg(2), ckpt_workload(), ckpt_hook(), &payload)
                    .unwrap();
            assert_eq!(resumed.now(), saved_at);
            let (outcome, _) = resumed
                .run_bounded_parts(2_000_000, EngineKind::FastForward)
                .unwrap();
            assert_eq!(outcome, reference, "resume at cycle {t} diverged");
        }
    }

    #[test]
    fn checkpoint_resumed_run_equals_uninterrupted_run_naive_engine() {
        let (reference, _) = TccSystem::new(cfg(2), ckpt_workload(), ckpt_hook())
            .unwrap()
            .run_bounded_parts(2_000_000, EngineKind::Naive)
            .unwrap();
        let mut sys = TccSystem::new(cfg(2), ckpt_workload(), ckpt_hook()).unwrap();
        while sys.now() < 700 && !sys.is_complete() {
            sys.step_naive();
        }
        let payload = sys.save_checkpoint();
        let resumed =
            TccSystem::restore_checkpoint(cfg(2), ckpt_workload(), ckpt_hook(), &payload).unwrap();
        let (outcome, _) = resumed
            .run_bounded_parts(2_000_000, EngineKind::Naive)
            .unwrap();
        assert_eq!(outcome, reference);
    }

    #[test]
    fn taking_a_checkpoint_does_not_perturb_the_run() {
        let (reference, _) = TccSystem::new(cfg(2), ckpt_workload(), ckpt_hook())
            .unwrap()
            .run_bounded_parts(2_000_000, EngineKind::FastForward)
            .unwrap();
        let mut sys = TccSystem::new(cfg(2), ckpt_workload(), ckpt_hook()).unwrap();
        // Save (and discard) checkpoints repeatedly while the run proceeds:
        // the early accounting flush must be invisible.
        for t in [100, 400, 900, 1600] {
            sys.advance_until(t);
            let _ = sys.save_checkpoint();
        }
        let (outcome, _) = sys
            .run_bounded_parts(2_000_000, EngineKind::FastForward)
            .unwrap();
        assert_eq!(outcome, reference);
    }

    #[test]
    fn checkpoint_payload_is_deterministic() {
        let make = || {
            let mut sys = TccSystem::new(cfg(2), ckpt_workload(), ckpt_hook()).unwrap();
            sys.advance_until(900);
            sys.save_checkpoint()
        };
        assert_eq!(make(), make(), "identical runs must serialize identically");
    }

    #[test]
    fn restore_rejects_wrong_workload() {
        let mut sys = TccSystem::new(cfg(2), ckpt_workload(), ckpt_hook()).unwrap();
        sys.advance_until(500);
        let payload = sys.save_checkpoint();
        let mut other = ckpt_workload();
        other.threads[0].transactions[0].ops[0] = Op::Read(64);
        let err = TccSystem::restore_checkpoint(cfg(2), other, ckpt_hook(), &payload)
            .err()
            .unwrap();
        assert!(matches!(err, SimError::Checkpoint(_)), "{err}");
    }

    #[test]
    fn restore_rejects_wrong_config() {
        let mut sys = TccSystem::new(cfg(2), ckpt_workload(), ckpt_hook()).unwrap();
        sys.advance_until(500);
        let payload = sys.save_checkpoint();
        let mut other_cfg = cfg(2);
        other_cfg.l1_hit_latency += 1;
        let err = TccSystem::restore_checkpoint(other_cfg, ckpt_workload(), ckpt_hook(), &payload)
            .err()
            .unwrap();
        assert!(matches!(err, SimError::Checkpoint(_)), "{err}");
    }

    #[test]
    fn restore_rejects_truncated_payload() {
        let mut sys = TccSystem::new(cfg(2), ckpt_workload(), ckpt_hook()).unwrap();
        sys.advance_until(500);
        let payload = sys.save_checkpoint();
        let err = TccSystem::restore_checkpoint(
            cfg(2),
            ckpt_workload(),
            ckpt_hook(),
            &payload[..payload.len() - 3],
        )
        .err()
        .unwrap();
        assert!(matches!(err, SimError::Checkpoint(_)), "{err}");
    }

    #[test]
    fn perturbed_fast_engine_diverges_from_naive() {
        // The planted accounting bug must be observable (the divergence
        // harness's self-test depends on it) and must only affect the
        // fast-forward engine.
        let run = |engine: EngineKind, perturb: bool| {
            let mut sys = TccSystem::new(cfg(2), ckpt_workload(), NoGating).unwrap();
            if perturb {
                sys.debug_perturb_fast_accounting();
            }
            sys.run_bounded_parts(2_000_000, engine).unwrap().0
        };
        let naive = run(EngineKind::Naive, true);
        assert_eq!(
            naive,
            run(EngineKind::Naive, false),
            "naive engine settles accounting every cycle, so the bug is dormant there"
        );
        let fast = run(EngineKind::FastForward, true);
        assert_ne!(
            fast, naive,
            "the planted bug must make the fast engine observably diverge"
        );
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let tx = |id: u64| Transaction::new(id, vec![Op::Read(64), Op::Compute(25), Op::Write(64)]);
        let build = || {
            WorkloadTrace::new(
                "det",
                vec![
                    ThreadTrace::new(vec![tx(1), tx(2)]),
                    ThreadTrace::new(vec![tx(21), tx(22)]),
                ],
            )
        };
        let a = TccSystem::new(cfg(2), build(), NoGating)
            .unwrap()
            .run_bounded(1_000_000)
            .unwrap();
        let b = TccSystem::new(cfg(2), build(), NoGating)
            .unwrap()
            .run_bounded(1_000_000)
            .unwrap();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.total_aborts, b.total_aborts);
        assert_eq!(a.state_cycles, b.state_cycles);
    }

    // ----- windowed engine -------------------------------------------------------

    fn sharded_cfg(procs: usize) -> SimConfig {
        SimConfig::table2_with_topology(procs, TopologyConfig::sharded_default())
    }

    /// Mixed workload for the windowed engine: every processor mostly works
    /// a private line homed at its own directory (cross-bank spread), with
    /// one contended read-modify-write of line 0 per thread mixed in so the
    /// groups exchange invalidations across windows.
    fn spread_workload(procs: usize) -> WorkloadTrace {
        let threads = (0..procs)
            .map(|p| {
                let base = (p as u64) * 4096;
                let mut txs = vec![
                    Transaction::new(
                        (p as u64) * 10 + 1,
                        vec![Op::Read(base), Op::Compute(12), Op::Write(base)],
                    ),
                    Transaction::new(
                        (p as u64) * 10 + 2,
                        vec![Op::Read(0), Op::Compute(8), Op::Write(0)],
                    ),
                    Transaction::new(
                        (p as u64) * 10 + 3,
                        vec![Op::Read(base + 64), Op::Compute(20), Op::Write(base + 64)],
                    ),
                ];
                if p % 2 == 0 {
                    txs.push(Transaction::new(
                        (p as u64) * 10 + 4,
                        vec![Op::Read(base + 128), Op::Compute(5), Op::Write(base)],
                    ));
                }
                ThreadTrace::new(txs)
            })
            .collect();
        WorkloadTrace::new("spread", threads)
    }

    #[test]
    fn windowed_matches_fast_forward_on_sharded_contention() {
        for procs in [4usize, 8] {
            let (fast, _) = TccSystem::new(sharded_cfg(procs), spread_workload(procs), NoGating)
                .unwrap()
                .run_bounded_parts(2_000_000, EngineKind::FastForward)
                .unwrap();
            let sys = TccSystem::new(sharded_cfg(procs), spread_workload(procs), NoGating).unwrap();
            assert!(sys.windowed_lookahead().is_some());
            let (windowed, _) = sys
                .run_bounded_parts(2_000_000, EngineKind::Windowed)
                .unwrap();
            assert_eq!(fast, windowed, "windowed diverged at {procs}p");
        }
    }

    #[test]
    fn windowed_matches_fast_forward_with_backoff_hook() {
        let procs = 8;
        let hook = || ExponentialBackoff::new(procs, 16, 6);
        let (fast, _) = TccSystem::new(sharded_cfg(procs), spread_workload(procs), hook())
            .unwrap()
            .run_bounded_parts(2_000_000, EngineKind::FastForward)
            .unwrap();
        let (windowed, _) = TccSystem::new(sharded_cfg(procs), spread_workload(procs), hook())
            .unwrap()
            .run_bounded_parts(2_000_000, EngineKind::Windowed)
            .unwrap();
        assert_eq!(fast, windowed);
    }

    #[test]
    fn windowed_splits_windows_into_multiple_groups() {
        let procs = 8;
        let mut sys = TccSystem::new(sharded_cfg(procs), spread_workload(procs), NoGating).unwrap();
        sys.advance_until_engine(Cycle::MAX / 2, EngineKind::Windowed);
        assert!(sys.is_complete());
        let stats = sys.windowed_stats();
        assert!(stats.windows > 0);
        assert!(
            stats.multi_group_windows > 0,
            "cross-bank workload must split at least one window: {stats:?}"
        );
        assert!(stats.max_groups_in_window > 1);
        assert!(stats.max_banks_active > 1);
    }

    #[test]
    fn windowed_without_hook_scoping_falls_back_and_matches() {
        // FixedWindowGate keeps the default `windowed_couplings` (false), so
        // every window degenerates to a single serial group — and must still
        // be bit-exact.
        let tx = |id: u64| Transaction::new(id, vec![Op::Read(0), Op::Compute(80), Op::Write(0)]);
        let build = || {
            WorkloadTrace::new(
                "gated-conflict",
                vec![
                    ThreadTrace::new(vec![tx(1), tx(2), tx(3)]),
                    ThreadTrace::new(vec![tx(11), tx(12), tx(13)]),
                ],
            )
        };
        let (fast, _) = TccSystem::new(sharded_cfg(2), build(), FixedWindowGate::new(2, 200))
            .unwrap()
            .run_bounded_parts(2_000_000, EngineKind::FastForward)
            .unwrap();
        let sys = TccSystem::new(sharded_cfg(2), build(), FixedWindowGate::new(2, 200)).unwrap();
        let (windowed, _) = sys
            .run_bounded_parts(2_000_000, EngineKind::Windowed)
            .unwrap();
        assert_eq!(fast, windowed);
    }

    #[test]
    fn windowed_on_bus_is_fast_forward() {
        // The shared bus offers no bank structure: the windowed engine must
        // refuse the windowed loop and behave exactly like fast-forward.
        let sys = TccSystem::new(cfg(2), ckpt_workload(), NoGating).unwrap();
        assert!(sys.windowed_lookahead().is_none());
        let (windowed, _) = sys
            .run_bounded_parts(2_000_000, EngineKind::Windowed)
            .unwrap();
        let (fast, _) = TccSystem::new(cfg(2), ckpt_workload(), NoGating)
            .unwrap()
            .run_bounded_parts(2_000_000, EngineKind::FastForward)
            .unwrap();
        assert_eq!(fast, windowed);
    }

    #[test]
    fn windowed_checkpoint_state_matches_fast_forward_mid_run() {
        // Engine-independent state digests: stopping both engines at an
        // arbitrary boundary must yield byte-identical checkpoints.
        let procs = 8;
        for boundary in [137u64, 1000, 4096] {
            let mut fast =
                TccSystem::new(sharded_cfg(procs), spread_workload(procs), NoGating).unwrap();
            fast.advance_until_engine(boundary, EngineKind::FastForward);
            let mut win =
                TccSystem::new(sharded_cfg(procs), spread_workload(procs), NoGating).unwrap();
            win.advance_until_engine(boundary, EngineKind::Windowed);
            assert_eq!(fast.now(), win.now());
            assert_eq!(
                fast.save_checkpoint(),
                win.save_checkpoint(),
                "checkpoint bytes diverged at cycle {boundary}"
            );
        }
    }

    #[test]
    fn parallel_lanes_are_byte_identical_for_every_pool_size() {
        use std::sync::Arc;
        let procs = 8;
        let (reference, _) = TccSystem::new(sharded_cfg(procs), spread_workload(procs), NoGating)
            .unwrap()
            .run_bounded_parts(2_000_000, EngineKind::FastForward)
            .unwrap();
        for workers in [1usize, 2, 8] {
            let mut sys =
                TccSystem::new(sharded_cfg(procs), spread_workload(procs), NoGating).unwrap();
            sys.set_lane_pool(Arc::new(WorkerPool::new(workers)));
            sys.advance_until_engine(Cycle::MAX / 2, EngineKind::Windowed);
            assert!(sys.is_complete());
            let stats = sys.windowed_stats();
            assert!(stats.multi_group_windows > 0, "{stats:?}");
            if workers == 1 {
                // Satellite guarantee for 1-core containers: a one-worker
                // pool must take the in-place sequential path.
                assert_eq!(stats.parallel_windows, 0, "{stats:?}");
                assert_eq!(stats.max_concurrent_lanes, 0, "{stats:?}");
            } else {
                assert!(
                    stats.parallel_windows > 0,
                    "multi-worker pool never fanned lanes out: {stats:?}"
                );
                assert!(stats.max_concurrent_lanes >= 2, "{stats:?}");
            }
            let (outcome, _) = sys.into_parts();
            assert_eq!(reference, outcome, "{workers}-worker pool diverged");
        }
    }

    #[test]
    fn parallel_lanes_match_with_backoff_hook_across_pool_sizes() {
        use std::sync::Arc;
        let procs = 8;
        let hook = || ExponentialBackoff::new(procs, 16, 6);
        let (reference, _) = TccSystem::new(sharded_cfg(procs), spread_workload(procs), hook())
            .unwrap()
            .run_bounded_parts(2_000_000, EngineKind::FastForward)
            .unwrap();
        for workers in [2usize, 8] {
            let mut sys =
                TccSystem::new(sharded_cfg(procs), spread_workload(procs), hook()).unwrap();
            sys.set_lane_pool(Arc::new(WorkerPool::new(workers)));
            sys.advance_until_engine(Cycle::MAX / 2, EngineKind::Windowed);
            assert!(sys.windowed_stats().parallel_windows > 0);
            let (outcome, _) = sys.into_parts();
            assert_eq!(reference, outcome, "{workers}-worker pool diverged");
        }
    }

    #[test]
    fn windowed_checkpoint_bytes_are_pool_size_independent() {
        use std::sync::Arc;
        let procs = 8;
        for boundary in [137u64, 1000, 4096] {
            let mut fast =
                TccSystem::new(sharded_cfg(procs), spread_workload(procs), NoGating).unwrap();
            fast.advance_until_engine(boundary, EngineKind::FastForward);
            let reference = fast.save_checkpoint();
            for workers in [1usize, 2, 8] {
                let mut win =
                    TccSystem::new(sharded_cfg(procs), spread_workload(procs), NoGating).unwrap();
                win.set_lane_pool(Arc::new(WorkerPool::new(workers)));
                win.advance_until_engine(boundary, EngineKind::Windowed);
                assert_eq!(fast.now(), win.now());
                assert_eq!(
                    reference,
                    win.save_checkpoint(),
                    "checkpoint bytes diverged at cycle {boundary} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn windowed_resumes_from_fast_forward_checkpoint() {
        let procs = 4;
        let mut sys = TccSystem::new(sharded_cfg(procs), spread_workload(procs), NoGating).unwrap();
        sys.advance_until(500);
        let payload = sys.save_checkpoint();
        sys.advance_until_engine(Cycle::MAX / 2, EngineKind::FastForward);
        let reference = sys.into_parts().0;

        let mut resumed = TccSystem::restore_checkpoint(
            sharded_cfg(procs),
            spread_workload(procs),
            NoGating,
            &payload,
        )
        .unwrap();
        resumed.advance_until_engine(Cycle::MAX / 2, EngineKind::Windowed);
        assert_eq!(reference, resumed.into_parts().0);
    }
}
