//! The cycle-driven Scalable-TCC system.
//!
//! [`TccSystem`] wires processors, directories, the token vendor, the
//! split-transaction bus and main memory together, drives them one cycle at a
//! time and reports every abort to the configured [`GatingHook`]. It is the
//! replacement for the paper's "substantially modified M5 full-system
//! simulator with added support for a Scalable-TCC system".

use htm_mem::{AddressMap, LineAddr, MainMemory, SpecCache};
use htm_sim::bus::{BusTraffic, SplitTransactionBus};
use htm_sim::config::SimConfig;
use htm_sim::interval::IntervalTracker;
use htm_sim::{Cycle, DirId, ProcId};

use crate::dirctrl::DirCtrl;
use crate::hooks::{AbortAction, GateCommand, GatingHook, SystemView};
use crate::processor::{CommitStep, Phase, ProcEvent, Processor};
use crate::stats::{PowerState, RunOutcome};
use crate::token::TokenVendor;
use crate::txn::{Op, WorkloadTrace};

/// Errors that can occur when constructing or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The machine configuration is inconsistent.
    BadConfig(String),
    /// The workload does not fit the configured machine.
    BadWorkload(String),
    /// The simulation exceeded the cycle bound passed to
    /// [`TccSystem::run_bounded`] (indicates a livelock/deadlock or an
    /// undersized bound).
    CycleLimitExceeded {
        /// The bound that was exceeded.
        limit: Cycle,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::BadWorkload(msg) => write!(f, "invalid workload: {msg}"),
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded the cycle limit of {limit}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The complete simulated machine.
pub struct TccSystem<H: GatingHook> {
    cfg: SimConfig,
    map: AddressMap,
    procs: Vec<Processor>,
    dirs: Vec<DirCtrl>,
    token: TokenVendor,
    bus: SplitTransactionBus,
    /// One memory bank per directory node (the distributed shared memory of
    /// Scalable TCC: each directory is the home node for its interleaved
    /// share of the physical memory and has its own single R/W port).
    memory_banks: Vec<MainMemory>,
    hook: H,
    view: SystemView,
    intervals: IntervalTracker,
    now: Cycle,
    workload_name: String,
    last_commit_end: Cycle,
}

impl<H: GatingHook> TccSystem<H> {
    /// Build a system running `workload` on the machine described by `cfg`,
    /// with abort handling delegated to `hook`.
    ///
    /// The workload must provide exactly one thread per processor and must
    /// not reference addresses beyond the installed memory.
    pub fn new(cfg: SimConfig, workload: WorkloadTrace, hook: H) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::BadConfig)?;
        if workload.num_threads() != cfg.num_procs {
            return Err(SimError::BadWorkload(format!(
                "workload '{}' has {} threads but the machine has {} processors",
                workload.name,
                workload.num_threads(),
                cfg.num_procs
            )));
        }
        if let Some(max) = workload.max_addr() {
            if max >= cfg.memory_bytes {
                return Err(SimError::BadWorkload(format!(
                    "workload references address {max:#x} beyond the {} byte memory",
                    cfg.memory_bytes
                )));
            }
        }

        let map = AddressMap::new(cfg.line_bytes, cfg.directory_segment_bytes, cfg.num_dirs);
        let procs: Vec<Processor> = workload
            .threads
            .iter()
            .cloned()
            .enumerate()
            .map(|(id, thread)| Processor::new(id, thread, SpecCache::from_config(&cfg)))
            .collect();
        let dirs: Vec<DirCtrl> = (0..cfg.num_dirs)
            .map(|d| DirCtrl::new(d, cfg.num_procs, cfg.directory_latency))
            .collect();
        let view = SystemView::new(cfg.num_procs, cfg.num_dirs);
        let intervals = IntervalTracker::new(cfg.num_procs);
        let bus = SplitTransactionBus::from_config(&cfg);
        let memory_banks = (0..cfg.num_dirs)
            .map(|_| MainMemory::from_config(&cfg))
            .collect();
        let token = TokenVendor::new(cfg.token_vendor_latency);
        Ok(Self {
            cfg,
            map,
            procs,
            dirs,
            token,
            bus,
            memory_banks,
            hook,
            view,
            intervals,
            now: 0,
            workload_name: workload.name,
            last_commit_end: 0,
        })
    }

    /// The machine configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current simulation cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Whether every processor has finished all of its transactions.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.procs.iter().all(Processor::is_done)
    }

    /// Run to completion with a safety bound on the number of cycles.
    pub fn run_bounded(mut self, limit: Cycle) -> Result<RunOutcome, SimError> {
        while !self.all_done() {
            if self.now >= limit {
                return Err(SimError::CycleLimitExceeded { limit });
            }
            self.step();
        }
        Ok(self.into_outcome())
    }

    /// Run to completion (with a very large implicit safety bound).
    pub fn run(self) -> Result<RunOutcome, SimError> {
        self.run_bounded(Cycle::MAX / 2)
    }

    /// Advance the simulation by one cycle.
    pub fn step(&mut self) {
        self.account_cycle();
        self.refresh_view();
        self.apply_hook_commands();
        for i in 0..self.procs.len() {
            self.handle_events(i);
            self.advance_processor(i);
        }
        self.now += 1;
    }

    // ----- per-cycle bookkeeping -------------------------------------------------

    fn account_cycle(&mut self) {
        let mut gated = 0usize;
        let mut missing = 0usize;
        let mut committing = 0usize;
        for proc in &mut self.procs {
            let state = proc.phase.power_state();
            proc.state_cycles.add(state, 1);
            match state {
                PowerState::Gated => gated += 1,
                PowerState::Miss => missing += 1,
                PowerState::Commit => committing += 1,
                PowerState::Run => {}
            }
        }
        self.intervals.record(1, gated, missing, committing);
    }

    fn refresh_view(&mut self) {
        for (i, proc) in self.procs.iter().enumerate() {
            self.view.proc_tx[i] = proc.current_tx_id();
            self.view.proc_gated[i] = proc.phase.is_gated_like();
        }
        for (d, dir) in self.dirs.iter().enumerate() {
            self.view.dir_marked[d] = dir.marked_bits();
        }
    }

    fn apply_hook_commands(&mut self) {
        let commands = self.hook.on_tick(self.now, &self.view);
        for cmd in commands {
            match cmd {
                GateCommand::UngateProcessor { proc, dir } => {
                    // The "on" command travels from the directory to the
                    // processor's PLL enable over the interconnect.
                    let arrive = self.bus.request(self.now, BusTraffic::Control);
                    self.procs[proc]
                        .inbox
                        .push(arrive, ProcEvent::TurnOn { dir });
                }
            }
        }
    }

    // ----- event handling --------------------------------------------------------

    fn handle_events(&mut self, i: ProcId) {
        let events = self.procs[i].inbox.drain_ready(self.now);
        for ev in events {
            match ev {
                ProcEvent::Invalidation {
                    line,
                    dir,
                    aborter,
                    aborter_tx,
                } => {
                    self.procs[i].cache.invalidate(line);
                    if !self.procs[i].read_set.contains(&line) {
                        // Stale invalidation (the attempt that read this line
                        // already ended); nothing to abort.
                        continue;
                    }
                    // Consult the hook: every directory that aborts a victim
                    // logs the abort locally, even if the victim is already
                    // stopped (Section V: gating decisions are directory-local).
                    let action = self
                        .hook
                        .on_abort(dir, i, aborter, aborter_tx, self.now, &self.view);
                    if self.procs[i].phase.is_gated_like() {
                        // Already stopped: the extra invalidation only updates
                        // the aborting directory's table.
                        continue;
                    }
                    if matches!(self.procs[i].phase, Phase::Committing { .. }) {
                        // The victim has already been granted a directory and
                        // passed its validation point; it wins and cannot be
                        // aborted any more.
                        continue;
                    }
                    match action {
                        AbortAction::Retry { backoff } => self.begin_abort(i, backoff),
                        AbortAction::Gate => self.begin_gating(i),
                    }
                }
                ProcEvent::TurnOn { dir: _ } => {
                    if matches!(self.procs[i].phase, Phase::Gated) {
                        self.begin_wake(i);
                    }
                    // A stale "on" for a processor that is already running is
                    // ignored (Section V reconciliation).
                }
            }
        }
    }

    fn release_directory_state(&mut self, i: ProcId, clear_sharers: bool) {
        let touched: Vec<DirId> = self.procs[i].dirs_touched.iter().copied().collect();
        for d in touched {
            self.dirs[d].unmark(i);
            if clear_sharers {
                self.dirs[d].directory.clear_proc(i);
            }
        }
    }

    fn begin_abort(&mut self, i: ProcId, backoff: Cycle) {
        let wasted = self.procs[i].attempt_cycles;
        self.procs[i].stats.aborts += 1;
        self.procs[i].stats.wasted_cycles += wasted;
        self.procs[i].aborts_this_tx += 1;
        self.procs[i].cache.abort_speculative();
        self.release_directory_state(i, true);
        self.procs[i].clear_attempt_state();
        self.procs[i].dirs_touched.clear();
        let until = self.now + self.cfg.abort_rollback_latency;
        self.procs[i].phase = Phase::Aborting { until, backoff };
    }

    fn begin_gating(&mut self, i: ProcId) {
        let wasted = self.procs[i].attempt_cycles;
        self.procs[i].stats.aborts += 1;
        self.procs[i].stats.gatings += 1;
        self.procs[i].stats.wasted_cycles += wasted;
        self.procs[i].aborts_this_tx += 1;
        self.procs[i].attempt_cycles = 0;
        // The frozen transaction keeps its speculative state until the
        // self-abort on wake-up, but it must stop participating in commit
        // arbitration: a gated processor can never be granted a directory
        // (this is what makes the protocol deadlock-free).
        let touched: Vec<DirId> = self.procs[i].dirs_touched.iter().copied().collect();
        for d in touched {
            self.dirs[d].unmark(i);
        }
        let until = self.now + self.cfg.stop_clock_drain_latency;
        self.procs[i].phase = Phase::GateDraining { until };
    }

    fn begin_wake(&mut self, i: ProcId) {
        // "After this wake-up, the processor needs to do a Self Abort of the
        // transaction it was executing at the time of freeze."
        self.procs[i].cache.abort_speculative();
        self.release_directory_state(i, true);
        self.procs[i].clear_attempt_state();
        self.procs[i].dirs_touched.clear();
        self.hook.on_wake(i, self.now);
        let until = self.now + self.cfg.wake_up_latency + self.cfg.abort_rollback_latency;
        self.procs[i].phase = Phase::WakeRestart { until };
    }

    // ----- processor stepping ----------------------------------------------------

    fn advance_processor(&mut self, i: ProcId) {
        match self.procs[i].phase.clone() {
            Phase::Done | Phase::Gated => {}
            Phase::PreCompute { remaining } => {
                if remaining <= 1 {
                    self.procs[i].phase = Phase::Executing {
                        op_idx: 0,
                        remaining: 0,
                    };
                } else {
                    self.procs[i].phase = Phase::PreCompute {
                        remaining: remaining - 1,
                    };
                }
            }
            Phase::Executing { op_idx, remaining } => {
                if self.procs[i].first_tx_start.is_none() {
                    self.procs[i].first_tx_start = Some(self.now);
                }
                self.procs[i].attempt_cycles += 1;
                if remaining > 0 {
                    self.procs[i].phase = Phase::Executing {
                        op_idx,
                        remaining: remaining - 1,
                    };
                } else {
                    self.issue_op(i, op_idx);
                }
            }
            Phase::WaitMiss {
                op_idx,
                until,
                line,
                is_store,
            } => {
                self.procs[i].attempt_cycles += 1;
                if self.now >= until {
                    self.procs[i].cache.fill(line, !is_store, is_store);
                    self.procs[i].phase = Phase::Executing {
                        op_idx,
                        remaining: 0,
                    };
                }
            }
            Phase::WaitToken { until } => {
                self.procs[i].attempt_cycles += 1;
                if self.now >= until {
                    self.mark_commit_plan(i);
                    self.procs[i].phase = Phase::SpinCommit { step_idx: 0 };
                }
            }
            Phase::SpinCommit { step_idx } => {
                self.procs[i].attempt_cycles += 1;
                self.try_start_flush(i, step_idx);
            }
            Phase::Committing { step_idx, until } => {
                self.procs[i].attempt_cycles += 1;
                if self.now >= until {
                    self.finish_flush_step(i, step_idx);
                }
            }
            Phase::Aborting { until, backoff } => {
                if self.now >= until {
                    if backoff > 0 {
                        self.procs[i].stats.backoff_cycles += backoff;
                        self.procs[i].phase = Phase::Backoff {
                            until: self.now + backoff,
                        };
                    } else {
                        self.procs[i].restart_transaction();
                    }
                }
            }
            Phase::Backoff { until } => {
                if self.now >= until {
                    self.procs[i].restart_transaction();
                }
            }
            Phase::GateDraining { until } => {
                if self.now >= until {
                    self.procs[i].phase = Phase::Gated;
                }
            }
            Phase::WakeRestart { until } => {
                if self.now >= until {
                    self.procs[i].restart_transaction();
                }
            }
        }
    }

    fn issue_op(&mut self, i: ProcId, op_idx: usize) {
        let Some(tx) = self.procs[i].current_tx() else {
            self.procs[i].phase = Phase::Done;
            return;
        };
        if op_idx >= tx.ops.len() {
            self.begin_commit(i);
            return;
        }
        let op = tx.ops[op_idx];
        match op {
            Op::Compute(c) => {
                self.procs[i].phase = Phase::Executing {
                    op_idx: op_idx + 1,
                    remaining: c.saturating_sub(1),
                };
            }
            Op::Read(addr) => {
                let line = self.map.line_of(addr);
                let home = self.map.home_of(line);
                self.procs[i].dirs_touched.insert(home);
                let newly_read = self.procs[i].read_set.insert(line);
                let hit = matches!(
                    self.procs[i].cache.load(line, true),
                    htm_mem::AccessOutcome::Hit
                );
                if hit {
                    if newly_read {
                        // Register this processor as a speculative sharer with
                        // the home directory (background control message; the
                        // hit itself does not stall).
                        self.dirs[home].directory.add_sharer(line, i);
                        self.bus.request(self.now, BusTraffic::Control);
                        self.hook.on_proc_activity(i, home, self.now);
                    }
                    self.procs[i].phase = Phase::Executing {
                        op_idx: op_idx + 1,
                        remaining: self.cfg.l1_hit_latency.saturating_sub(1),
                    };
                } else {
                    self.dirs[home].directory.add_sharer(line, i);
                    self.hook.on_proc_activity(i, home, self.now);
                    let until = self.miss_fill_time(home, line);
                    self.procs[i].phase = Phase::WaitMiss {
                        op_idx: op_idx + 1,
                        until,
                        line,
                        is_store: false,
                    };
                }
            }
            Op::Write(addr) => {
                let line = self.map.line_of(addr);
                let home = self.map.home_of(line);
                self.procs[i].dirs_touched.insert(home);
                self.procs[i].write_set.insert(line);
                let hit = matches!(
                    self.procs[i].cache.store(line, true),
                    htm_mem::AccessOutcome::Hit
                );
                if hit {
                    self.procs[i].phase = Phase::Executing {
                        op_idx: op_idx + 1,
                        remaining: self.cfg.l1_hit_latency.saturating_sub(1),
                    };
                } else {
                    // Write-allocate fetch of the line; stores stay private
                    // until commit so no sharer registration is needed.
                    self.hook.on_proc_activity(i, home, self.now);
                    let until = self.miss_fill_time(home, line);
                    self.procs[i].phase = Phase::WaitMiss {
                        op_idx: op_idx + 1,
                        until,
                        line,
                        is_store: true,
                    };
                }
            }
        }
    }

    fn miss_fill_time(&mut self, home: DirId, line: LineAddr) -> Cycle {
        // Request message competes for the bus now; the directory lookup and
        // (if needed) the memory-bank access queue behind earlier requests to
        // the same home node; the data reply is re-arbitrated when the data
        // is ready (split-transaction bus, so the channel is not held during
        // the memory wait).
        let req_at_dir = self.bus.request(self.now, BusTraffic::Control);
        let dir_done = self.dirs[home].service_miss(req_at_dir);
        // Lines that have been committed through this directory before are
        // served directly by the home node (the committed data lives in its
        // buffers / local memory controller); only cold lines pay the full
        // main-memory latency.
        let data_ready = if self.dirs[home].directory.owner(line).is_some() {
            dir_done
        } else {
            self.memory_banks[home].access(dir_done)
        };
        self.bus.schedule_future(data_ready, BusTraffic::Data)
    }

    fn begin_commit(&mut self, i: ProcId) {
        if self.procs[i].write_set.is_empty() {
            // Read-only transactions commit locally without arbitration.
            self.finish_commit(i);
            return;
        }
        // Build the commit plan: one step per home directory, visited in
        // ascending directory order.
        let mut by_dir: Vec<(DirId, Vec<LineAddr>)> = Vec::new();
        let mut lines: Vec<LineAddr> = self.procs[i].write_set.iter().copied().collect();
        lines.sort_unstable();
        for line in lines {
            let home = self.map.home_of(line);
            match by_dir.iter_mut().find(|(d, _)| *d == home) {
                Some((_, v)) => v.push(line),
                None => by_dir.push((home, vec![line])),
            }
        }
        by_dir.sort_unstable_by_key(|(d, _)| *d);
        self.procs[i].commit_plan = by_dir
            .into_iter()
            .map(|(dir, lines)| CommitStep { dir, lines })
            .collect();

        // Token acquisition: request over the bus, vendor service, reply.
        let req = self.bus.request(self.now, BusTraffic::Control);
        let (tid, ready) = self.token.request(req);
        let reply = self.bus.request(ready, BusTraffic::Control);
        self.procs[i].tid = Some(tid);
        self.procs[i].phase = Phase::WaitToken { until: reply };
    }

    fn mark_commit_plan(&mut self, i: ProcId) {
        let tid = self.procs[i].tid.expect("marking requires a TID");
        let dirs: Vec<DirId> = self.procs[i].commit_plan.iter().map(|s| s.dir).collect();
        for d in dirs {
            // One control message per directory announces the intention to
            // commit (sets the "Marked" bit the Fig. 2(e) circuit inspects).
            self.bus.request(self.now, BusTraffic::Control);
            self.dirs[d].mark(tid, i);
        }
    }

    fn try_start_flush(&mut self, i: ProcId, step_idx: usize) {
        let tid = self.procs[i].tid.expect("commit spin requires a TID");
        let step = self.procs[i].commit_plan[step_idx].clone();
        if !self.dirs[step.dir].can_grant(i, tid, self.now) {
            return;
        }
        // Granted: the flush occupies the directory for its lookup latency
        // plus one bus data transfer per committed line. Each line becomes
        // owned as it is flushed, and the invalidations to its speculative
        // sharers leave the directory as soon as *that* line commits — so a
        // victim can be aborted (and clock-gated) while the committer is
        // still flushing the rest of its write set here, which is exactly the
        // window the renewal check of Fig. 2(e) inspects.
        let aborter_tx = self.procs[i].current_tx_id().unwrap_or_default();
        let mut t = self.now + self.cfg.directory_latency;
        for &line in &step.lines {
            t = self.bus.request(t, BusTraffic::Data);
            let victims = self.dirs[step.dir].directory.commit_line(line, i);
            for victim in victims {
                if victim == i {
                    continue;
                }
                let deliver = self.bus.schedule_future(t, BusTraffic::Control);
                self.procs[victim].inbox.push(
                    deliver.max(self.now + 1),
                    ProcEvent::Invalidation {
                        line,
                        dir: step.dir,
                        aborter: i,
                        aborter_tx,
                    },
                );
            }
        }
        self.dirs[step.dir].occupy(i, self.now, t);
        self.procs[i].phase = Phase::Committing { step_idx, until: t };
    }

    fn finish_flush_step(&mut self, i: ProcId, step_idx: usize) {
        let dir = self.procs[i].commit_plan[step_idx].dir;
        self.dirs[dir].unmark(i);
        if step_idx + 1 < self.procs[i].commit_plan.len() {
            self.procs[i].phase = Phase::SpinCommit {
                step_idx: step_idx + 1,
            };
        } else {
            self.finish_commit(i);
        }
    }

    fn finish_commit(&mut self, i: ProcId) {
        let attempt = self.procs[i].attempt_cycles;
        let aborts = self.procs[i].aborts_this_tx;
        self.procs[i].stats.commits += 1;
        self.procs[i].stats.useful_cycles += attempt;
        self.procs[i].stats.aborts_per_tx.record(aborts);
        self.procs[i].cache.commit_speculative();
        self.release_directory_state(i, true);
        self.procs[i].clear_attempt_state();
        self.procs[i].dirs_touched.clear();
        self.hook.on_commit(i, self.now);
        self.last_commit_end = self.last_commit_end.max(self.now);
        self.procs[i].advance_to_next_tx();
    }

    // ----- outcome ---------------------------------------------------------------

    fn into_outcome(self) -> RunOutcome {
        let total_cycles = self.now;
        let first_tx_start = self
            .procs
            .iter()
            .filter_map(|p| p.first_tx_start)
            .min()
            .unwrap_or(0);
        let state_cycles = self
            .procs
            .iter()
            .map(|p| p.state_cycles)
            .collect::<Vec<_>>();
        let proc_stats = self
            .procs
            .iter()
            .map(|p| p.stats.clone())
            .collect::<Vec<_>>();
        let total_commits = proc_stats.iter().map(|s| s.commits).sum();
        let total_aborts = proc_stats.iter().map(|s| s.aborts).sum();
        let total_gatings = proc_stats.iter().map(|s| s.gatings).sum();
        RunOutcome {
            workload: self.workload_name,
            num_procs: self.cfg.num_procs,
            total_cycles,
            first_tx_start,
            last_commit_end: self.last_commit_end,
            state_cycles,
            proc_stats,
            intervals: self.intervals,
            bus: self.bus.stats(),
            total_commits,
            total_aborts,
            total_gatings,
        }
    }

    /// Consume the system and return the outcome accumulated so far (useful
    /// for tests that drive [`Self::step`] manually).
    #[must_use]
    pub fn finish(self) -> RunOutcome {
        self.into_outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoGating;
    use crate::txn::{Op, ThreadTrace, Transaction};

    fn cfg(procs: usize) -> SimConfig {
        SimConfig::table2(procs)
    }

    fn single_tx_workload() -> WorkloadTrace {
        WorkloadTrace::new(
            "single",
            vec![ThreadTrace::new(vec![Transaction::new(
                0x100,
                vec![Op::Read(0), Op::Compute(10), Op::Write(0)],
            )])],
        )
    }

    #[test]
    fn single_processor_single_transaction_commits() {
        let outcome = TccSystem::new(cfg(1), single_tx_workload(), NoGating)
            .unwrap()
            .run_bounded(100_000)
            .unwrap();
        assert_eq!(outcome.total_commits, 1);
        assert_eq!(outcome.total_aborts, 0);
        assert!(outcome.total_cycles > 0);
        outcome.check_consistency().unwrap();
    }

    #[test]
    fn read_only_transaction_commits_without_token() {
        let w = WorkloadTrace::new(
            "ro",
            vec![ThreadTrace::new(vec![Transaction::new(
                1,
                vec![Op::Read(0), Op::Read(64)],
            )])],
        );
        let outcome = TccSystem::new(cfg(1), w, NoGating)
            .unwrap()
            .run_bounded(100_000)
            .unwrap();
        assert_eq!(outcome.total_commits, 1);
        assert_eq!(outcome.total_aborts, 0);
    }

    #[test]
    fn wrong_thread_count_is_rejected() {
        let err = TccSystem::new(cfg(2), single_tx_workload(), NoGating)
            .err()
            .unwrap();
        assert!(matches!(err, SimError::BadWorkload(_)));
    }

    #[test]
    fn out_of_range_address_is_rejected() {
        let w = WorkloadTrace::new(
            "oob",
            vec![ThreadTrace::new(vec![Transaction::new(
                1,
                vec![Op::Read(1 << 40)],
            )])],
        );
        let err = TccSystem::new(cfg(1), w, NoGating).err().unwrap();
        assert!(matches!(err, SimError::BadWorkload(_)));
    }

    #[test]
    fn conflicting_writers_cause_aborts_and_still_commit() {
        // Two processors both read-modify-write the same line several times:
        // at least one abort is inevitable, but every transaction must commit
        // in the end (TCC guarantees progress).
        let tx = |id: u64| Transaction::new(id, vec![Op::Read(0), Op::Compute(50), Op::Write(0)]);
        let w = WorkloadTrace::new(
            "conflict",
            vec![
                ThreadTrace::new(vec![tx(1), tx(2), tx(3)]),
                ThreadTrace::new(vec![tx(11), tx(12), tx(13)]),
            ],
        );
        let outcome = TccSystem::new(cfg(2), w, NoGating)
            .unwrap()
            .run_bounded(1_000_000)
            .unwrap();
        assert_eq!(outcome.total_commits, 6);
        assert!(
            outcome.total_aborts > 0,
            "conflicting transactions must abort at least once"
        );
        assert_eq!(outcome.total_gatings, 0, "baseline never gates");
        outcome.check_consistency().unwrap();
    }

    #[test]
    fn disjoint_workloads_never_abort() {
        // Each processor works on its own lines: no conflicts, no aborts.
        let tx = |id: u64, base: u64| {
            Transaction::new(id, vec![Op::Read(base), Op::Compute(20), Op::Write(base)])
        };
        let w = WorkloadTrace::new(
            "disjoint",
            vec![
                ThreadTrace::new(vec![tx(1, 0), tx(2, 64)]),
                ThreadTrace::new(vec![tx(11, 4096), tx(12, 4160)]),
            ],
        );
        let outcome = TccSystem::new(cfg(2), w, NoGating)
            .unwrap()
            .run_bounded(1_000_000)
            .unwrap();
        assert_eq!(outcome.total_commits, 4);
        assert_eq!(outcome.total_aborts, 0);
    }

    #[test]
    fn miss_cycles_are_accounted() {
        let outcome = TccSystem::new(cfg(1), single_tx_workload(), NoGating)
            .unwrap()
            .run_bounded(100_000)
            .unwrap();
        assert!(outcome.total_miss_cycles() > 0, "the first read must miss");
        assert!(
            outcome.total_commit_cycles() > 0,
            "the write-set flush must be accounted"
        );
    }

    #[test]
    fn consistency_holds_for_conflicting_runs() {
        let tx =
            |id: u64| Transaction::new(id, vec![Op::Read(128), Op::Compute(30), Op::Write(128)]);
        let w = WorkloadTrace::new(
            "conflict",
            vec![
                ThreadTrace::new(vec![tx(1), tx(2)]),
                ThreadTrace::new(vec![tx(21), tx(22)]),
            ],
        );
        let outcome = TccSystem::new(cfg(2), w, NoGating)
            .unwrap()
            .run_bounded(1_000_000)
            .unwrap();
        outcome.check_consistency().unwrap();
        assert_eq!(outcome.num_procs, 2);
        assert!(outcome.last_commit_end <= outcome.total_cycles);
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let err = TccSystem::new(cfg(1), single_tx_workload(), NoGating)
            .unwrap()
            .run_bounded(3)
            .err()
            .unwrap();
        assert_eq!(err, SimError::CycleLimitExceeded { limit: 3 });
    }

    /// A hook that gates on the first abort and ungates a fixed number of
    /// cycles later, used to exercise the gate/wake/self-abort path without
    /// pulling in the full clock-gating controller.
    struct FixedWindowGate {
        window: Cycle,
        pending: Vec<(ProcId, DirId, Cycle)>,
        gated: Vec<bool>,
    }

    impl FixedWindowGate {
        fn new(num_procs: usize, window: Cycle) -> Self {
            Self {
                window,
                pending: Vec::new(),
                gated: vec![false; num_procs],
            }
        }
    }

    impl GatingHook for FixedWindowGate {
        fn on_abort(
            &mut self,
            dir: DirId,
            victim: ProcId,
            _aborter: ProcId,
            _aborter_tx: u64,
            now: Cycle,
            _view: &SystemView,
        ) -> AbortAction {
            if self.gated[victim] {
                return AbortAction::Gate;
            }
            self.gated[victim] = true;
            self.pending.push((victim, dir, now + self.window));
            AbortAction::Gate
        }

        fn on_tick(&mut self, now: Cycle, _view: &SystemView) -> Vec<GateCommand> {
            let mut out = Vec::new();
            self.pending.retain(|&(proc, dir, due)| {
                if now >= due {
                    out.push(GateCommand::UngateProcessor { proc, dir });
                    false
                } else {
                    true
                }
            });
            out
        }

        fn on_wake(&mut self, proc: ProcId, _now: Cycle) {
            self.gated[proc] = false;
        }
    }

    #[test]
    fn gating_hook_produces_gated_cycles_and_all_commits() {
        let tx = |id: u64| Transaction::new(id, vec![Op::Read(0), Op::Compute(80), Op::Write(0)]);
        let w = WorkloadTrace::new(
            "gated-conflict",
            vec![
                ThreadTrace::new(vec![tx(1), tx(2), tx(3)]),
                ThreadTrace::new(vec![tx(11), tx(12), tx(13)]),
            ],
        );
        let outcome = TccSystem::new(cfg(2), w, FixedWindowGate::new(2, 200))
            .unwrap()
            .run_bounded(2_000_000)
            .unwrap();
        assert_eq!(
            outcome.total_commits, 6,
            "every transaction must still commit"
        );
        assert!(outcome.total_gatings > 0, "conflicts must trigger gating");
        assert!(
            outcome.total_gated_cycles() > 0,
            "gated cycles must be accounted"
        );
        outcome.check_consistency().unwrap();
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let tx = |id: u64| Transaction::new(id, vec![Op::Read(64), Op::Compute(25), Op::Write(64)]);
        let build = || {
            WorkloadTrace::new(
                "det",
                vec![
                    ThreadTrace::new(vec![tx(1), tx(2)]),
                    ThreadTrace::new(vec![tx(21), tx(22)]),
                ],
            )
        };
        let a = TccSystem::new(cfg(2), build(), NoGating)
            .unwrap()
            .run_bounded(1_000_000)
            .unwrap();
        let b = TccSystem::new(cfg(2), build(), NoGating)
            .unwrap()
            .run_bounded(1_000_000)
            .unwrap();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.total_aborts, b.total_aborts);
        assert_eq!(a.state_cycles, b.state_cycles);
    }
}
