//! The Alpha 21264 power model in 65 nm (Section VII, Table I).
//!
//! The paper derives four unit-less power factors (relative to run-mode
//! power) from the published Alpha 21264 power breakdown, an assumed 20 %
//! active-leakage share in 65 nm, and the observation that during commits and
//! cache misses only the (TCC-augmented) data cache, the I/O interfaces and
//! their clocks are active:
//!
//! ```text
//! Commit power     = 0.2 + 0.8 * (0.15 + 0.05 + 0.10)       = 0.44
//! Cache-miss power = 0.2 + 0.8 * 0.5 * (0.15 + 0.05 + 0.10) = 0.32
//! Clock-gated      = leakage (+ negligible PLL)              = 0.20
//! Run              =                                           1.00
//! ```

use serde::{Deserialize, Serialize};

/// Share of total power drawn by the *original* Alpha 21264 data cache
/// (caches are 15 % in total, of which the D-cache is 10 %).
pub const DCACHE_SHARE: f64 = 0.10;
/// Share of total power drawn by both L1 caches together.
pub const CACHES_SHARE: f64 = 0.15;
/// Share of total power drawn by the I/O interfaces.
pub const IO_SHARE: f64 = 0.05;
/// Share of total power drawn by the clocks feeding the data cache and the
/// I/O interfaces (out of the 32 % total clock power).
pub const CACHE_IO_CLOCK_SHARE: f64 = 0.10;
/// Active-mode leakage share assumed for 65 nm with high-Vt / stacking
/// leakage control (Section VII).
pub const LEAKAGE_SHARE: f64 = 0.20;
/// Factor by which the TCC-augmented data cache consumes more power than a
/// conventional one (RW bits + store-address FIFO + commit controller).
pub const TCC_DCACHE_FACTOR: f64 = 1.5;
/// Fraction of the hit-mode cache dynamic power consumed while servicing a
/// miss (from the cache-energy estimation study the paper cites).
pub const MISS_ACTIVITY_FACTOR: f64 = 0.5;

/// The four per-state power factors of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Run-mode power factor (normal code, transactions, spin loops).
    pub run: f64,
    /// Power factor while stalled on a cache miss.
    pub miss: f64,
    /// Power factor while flushing a commit.
    pub commit: f64,
    /// Power factor while clock-gated (leakage + PLL).
    pub gated: f64,
}

impl PowerModel {
    /// The Table I model, derived from the component shares above rather than
    /// hard-coded, so the derivation itself is testable.
    #[must_use]
    pub fn alpha_21264_65nm() -> Self {
        let dynamic = 1.0 - LEAKAGE_SHARE;
        // TCC data cache share of dynamic power: the D-cache's 10% grows by
        // 1.5x to 15%.
        let tcc_dcache = DCACHE_SHARE * TCC_DCACHE_FACTOR;
        let active_during_commit = tcc_dcache + IO_SHARE + CACHE_IO_CLOCK_SHARE;
        let commit = LEAKAGE_SHARE + dynamic * active_during_commit;
        let miss = LEAKAGE_SHARE + dynamic * MISS_ACTIVITY_FACTOR * active_during_commit;
        Self {
            run: 1.0,
            miss,
            commit,
            gated: LEAKAGE_SHARE,
        }
    }

    /// A hypothetical model with perfect (zero-leakage) gating, used by the
    /// ablation benchmarks to bound how much of the savings is limited by
    /// leakage ("State Retention Power Gating" discussion in Section IV).
    #[must_use]
    pub fn with_power_gating(mut self) -> Self {
        self.gated = 0.0;
        self
    }

    /// Power factor for a given simulated processor state.
    #[must_use]
    pub fn factor(&self, state: htm_tcc::stats::PowerState) -> f64 {
        use htm_tcc::stats::PowerState;
        match state {
            PowerState::Run => self.run,
            PowerState::Miss => self.miss,
            PowerState::Commit => self.commit,
            PowerState::Gated => self.gated,
        }
    }

    /// Render the model as the rows of Table I.
    #[must_use]
    pub fn table1_rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("Run", self.run),
            ("Cache Miss", self.miss),
            ("Transaction Commit", self.commit),
            ("Clock Gated", self.gated),
        ]
    }

    /// Sanity-check the ordering the paper's derivation implies:
    /// gated < miss < commit < run.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        self.gated >= 0.0
            && self.gated < self.miss
            && self.miss < self.commit
            && self.commit < self.run
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::alpha_21264_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_tcc::stats::PowerState;

    #[test]
    fn derivation_reproduces_table1() {
        let m = PowerModel::alpha_21264_65nm();
        assert!((m.run - 1.0).abs() < 1e-12);
        assert!(
            (m.commit - 0.44).abs() < 1e-12,
            "commit factor: {}",
            m.commit
        );
        assert!((m.miss - 0.32).abs() < 1e-12, "miss factor: {}", m.miss);
        assert!((m.gated - 0.20).abs() < 1e-12);
    }

    #[test]
    fn model_is_well_formed() {
        assert!(PowerModel::alpha_21264_65nm().is_well_formed());
    }

    #[test]
    fn factor_maps_states() {
        let m = PowerModel::alpha_21264_65nm();
        assert_eq!(m.factor(PowerState::Run), m.run);
        assert_eq!(m.factor(PowerState::Miss), m.miss);
        assert_eq!(m.factor(PowerState::Commit), m.commit);
        assert_eq!(m.factor(PowerState::Gated), m.gated);
    }

    #[test]
    fn table1_rows_in_paper_order() {
        let rows = PowerModel::alpha_21264_65nm().table1_rows();
        let names: Vec<_> = rows.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["Run", "Cache Miss", "Transaction Commit", "Clock Gated"]
        );
    }

    #[test]
    fn power_gating_zeroes_gated_factor() {
        let m = PowerModel::alpha_21264_65nm().with_power_gating();
        assert_eq!(m.gated, 0.0);
        assert!(m.commit > 0.0);
    }

    #[test]
    fn default_is_the_paper_model() {
        assert_eq!(PowerModel::default(), PowerModel::alpha_21264_65nm());
    }
}
