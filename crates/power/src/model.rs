//! The Alpha 21264 power model in 65 nm (Section VII, Table I).
//!
//! The paper derives four unit-less power factors (relative to run-mode
//! power) from the published Alpha 21264 power breakdown, an assumed 20 %
//! active-leakage share in 65 nm, and the observation that during commits and
//! cache misses only the (TCC-augmented) data cache, the I/O interfaces and
//! their clocks are active:
//!
//! ```text
//! Commit power     = 0.2 + 0.8 * (0.15 + 0.05 + 0.10)       = 0.44
//! Cache-miss power = 0.2 + 0.8 * 0.5 * (0.15 + 0.05 + 0.10) = 0.32
//! Clock-gated      = leakage (+ negligible PLL)              = 0.20
//! Run              =                                           1.00
//! ```
//!
//! [`PowerModelConfig`] makes every input of that derivation explicit and
//! sweepable: the leakage share is a technology-node axis (the paper's 20 %
//! is one point on it), and the TCC data-cache factor is *derived* from the
//! swept L1 geometry through [`crate::cache_power::CachePowerModel`] instead
//! of being hard-coded next to it. [`PowerModel`] remains the four-factor
//! Table I output; the per-component split of the same configuration lives
//! in [`crate::ledger`].

use serde::{Deserialize, Serialize};

use crate::cache_power::CachePowerModel;
use crate::ledger::UncoreCosts;

/// Share of total power drawn by the *original* Alpha 21264 data cache
/// (caches are 15 % in total, of which the D-cache is 10 %).
pub const DCACHE_SHARE: f64 = 0.10;
/// Share of total power drawn by both L1 caches together.
pub const CACHES_SHARE: f64 = 0.15;
/// Share of total power drawn by the I/O interfaces.
pub const IO_SHARE: f64 = 0.05;
/// Share of total power drawn by the clocks feeding the data cache and the
/// I/O interfaces (out of the 32 % total clock power).
pub const CACHE_IO_CLOCK_SHARE: f64 = 0.10;
/// Share of total power drawn by the clock network as a whole (the published
/// Alpha 21264 breakdown).
pub const CLOCK_SHARE: f64 = 0.32;
/// Active-mode leakage share assumed for 65 nm with high-Vt / stacking
/// leakage control (Section VII).
pub const LEAKAGE_SHARE: f64 = 0.20;
/// Fraction of the hit-mode cache dynamic power consumed while servicing a
/// miss (from the cache-energy estimation study the paper cites).
pub const MISS_ACTIVITY_FACTOR: f64 = 0.5;
/// Fraction of the leakage budget attributed to the always-running PLL
/// (Table I calls it "negligible"; the ledger keeps it visible).
pub const PLL_LEAKAGE_FRACTION: f64 = 0.02;
/// Fraction of the dynamic (run-minus-standby) power still drawn in the
/// DVFS-style throttled state of the `throttle` contention policy: the
/// clocks run at half rate, so half of every component's switching activity
/// survives while the full leakage is paid. Not part of Table I — the
/// paper's machine has no intermediate state — so the factor is a derived
/// method ([`PowerModel::throttled`]) rather than a fifth serialized Table I
/// row, keeping the Table I artifact byte-stable.
pub const THROTTLE_DYNAMIC_SCALE: f64 = 0.5;

/// Every input of the Table I derivation, made explicit and sweepable.
///
/// The defaults reproduce the paper exactly ([`PowerModelConfig::factors`]
/// returns the Table I numbers bit for bit); the interesting axes are
///
/// * [`leakage_share`](Self::leakage_share) — the technology-node axis: the
///   paper's 65 nm assumption is 20 %, older nodes leak less, newer
///   uncontrolled nodes more. Clock gating saves only *dynamic* power, so
///   this single knob decides how much of the paper's mechanism survives a
///   node change (see the `leakage` sweep preset),
/// * [`tcc_dcache_factor`](Self::tcc_dcache_factor) — derived from the L1
///   geometry via [`CachePowerModel::table1_dcache_factor`] rather than
///   hard-coded,
/// * the uncore cost table ([`UncoreCosts`]) used by the component ledger.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModelConfig {
    /// Active-mode leakage share of total run power (the tech-node axis).
    pub leakage_share: f64,
    /// Clock-network share of total run power.
    pub clock_share: f64,
    /// Original (unaugmented) L1 data-cache share of total run power.
    pub dcache_share: f64,
    /// L1 instruction-cache share (the caches' total minus the D-cache).
    pub icache_share: f64,
    /// I/O-interface share of total run power.
    pub io_share: f64,
    /// Share of the clock network that feeds the data cache and the I/O
    /// interfaces (stays on during commits and misses).
    pub cache_io_clock_share: f64,
    /// Fraction of hit-mode cache dynamic power drawn while servicing a miss.
    pub miss_activity_factor: f64,
    /// Factor by which the TCC-augmented data cache consumes more power than
    /// a conventional one (RW bits + store-address FIFO + commit
    /// controller). Derived from the swept L1 geometry.
    pub tcc_dcache_factor: f64,
    /// Fraction of the leakage budget attributed to the PLL.
    pub pll_leakage_fraction: f64,
    /// Ablation: "State Retention Power Gating" — standby retains nothing
    /// and burns nothing ([`PowerModel::with_power_gating`] equivalent).
    pub power_gated_standby: bool,
    /// Per-event / per-cycle costs of the uncore components charged by the
    /// energy ledger (directory SRAM, interconnect flits, gating tables).
    pub uncore: UncoreCosts,
}

impl PowerModelConfig {
    /// The paper's configuration: Alpha 21264 shares, 20 % leakage at 65 nm,
    /// and the TCC data-cache factor derived from the Table II 64 KB L1.
    #[must_use]
    pub fn alpha_21264_65nm() -> Self {
        Self {
            leakage_share: LEAKAGE_SHARE,
            clock_share: CLOCK_SHARE,
            dcache_share: DCACHE_SHARE,
            icache_share: CACHES_SHARE - DCACHE_SHARE,
            io_share: IO_SHARE,
            cache_io_clock_share: CACHE_IO_CLOCK_SHARE,
            miss_activity_factor: MISS_ACTIVITY_FACTOR,
            tcc_dcache_factor: CachePowerModel::new_kb(64).table1_dcache_factor(),
            pll_leakage_fraction: PLL_LEAKAGE_FRACTION,
            power_gated_standby: false,
            uncore: UncoreCosts::default(),
        }
    }

    /// Sweep the leakage-share (technology-node) axis, keeping everything
    /// else at the paper's values.
    #[must_use]
    pub fn with_leakage_share(mut self, leakage_share: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&leakage_share),
            "leakage share must be in [0, 1): {leakage_share}"
        );
        self.leakage_share = leakage_share;
        self
    }

    /// Re-derive the TCC data-cache factor for a swept L1 capacity.
    #[must_use]
    pub fn for_l1_geometry(mut self, l1_kb: usize) -> Self {
        self.tcc_dcache_factor = CachePowerModel::new_kb(l1_kb).table1_dcache_factor();
        self
    }

    /// The "State Retention Power Gating" ablation: zero standby power.
    #[must_use]
    pub fn with_power_gating(mut self) -> Self {
        self.power_gated_standby = true;
        self
    }

    /// Dynamic (non-leakage) share of total run power.
    #[must_use]
    pub fn dynamic_share(&self) -> f64 {
        1.0 - self.leakage_share
    }

    /// TCC-augmented data-cache share of total run power.
    #[must_use]
    pub fn tcc_dcache_share(&self) -> f64 {
        self.dcache_share * self.tcc_dcache_factor
    }

    /// Dynamic share that stays active during commits and misses: the
    /// TCC data cache, the I/O interfaces and the clocks feeding them.
    #[must_use]
    pub fn commit_active_share(&self) -> f64 {
        self.tcc_dcache_share() + self.io_share + self.cache_io_clock_share
    }

    /// Evaluate the Table I derivation: the four per-state factors.
    #[must_use]
    pub fn factors(&self) -> PowerModel {
        let dynamic = self.dynamic_share();
        let active_during_commit = self.commit_active_share();
        let commit = self.leakage_share + dynamic * active_during_commit;
        let miss = self.leakage_share + dynamic * self.miss_activity_factor * active_during_commit;
        PowerModel {
            run: 1.0,
            miss,
            commit,
            gated: if self.power_gated_standby {
                0.0
            } else {
                self.leakage_share
            },
        }
    }
}

impl Default for PowerModelConfig {
    fn default() -> Self {
        Self::alpha_21264_65nm()
    }
}

/// The four per-state power factors of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Run-mode power factor (normal code, transactions, spin loops).
    pub run: f64,
    /// Power factor while stalled on a cache miss.
    pub miss: f64,
    /// Power factor while flushing a commit.
    pub commit: f64,
    /// Power factor while clock-gated (leakage + PLL).
    pub gated: f64,
}

impl PowerModel {
    /// The Table I model, derived from [`PowerModelConfig::alpha_21264_65nm`]
    /// rather than hard-coded, so the derivation itself is testable.
    #[must_use]
    pub fn alpha_21264_65nm() -> Self {
        PowerModelConfig::alpha_21264_65nm().factors()
    }

    /// A hypothetical model with perfect (zero-leakage) gating, used by the
    /// ablation benchmarks to bound how much of the savings is limited by
    /// leakage ("State Retention Power Gating" discussion in Section IV).
    #[must_use]
    pub fn with_power_gating(mut self) -> Self {
        self.gated = 0.0;
        self
    }

    /// Power factor of the DVFS-style throttled state: standby power plus
    /// [`THROTTLE_DYNAMIC_SCALE`] of the dynamic (run-minus-standby) power.
    /// With the paper's Table I numbers this is `0.2 + 0.5·0.8 = 0.6` —
    /// between Run and Gated, which is the whole point of the `throttle`
    /// policy's trade-off (no wake-up protocol, but a costlier wait).
    #[must_use]
    pub fn throttled(&self) -> f64 {
        self.gated + THROTTLE_DYNAMIC_SCALE * (self.run - self.gated)
    }

    /// Power factor for a given simulated processor state.
    #[must_use]
    pub fn factor(&self, state: htm_tcc::stats::PowerState) -> f64 {
        use htm_tcc::stats::PowerState;
        match state {
            PowerState::Run => self.run,
            PowerState::Miss => self.miss,
            PowerState::Commit => self.commit,
            PowerState::Gated => self.gated,
            PowerState::Throttled => self.throttled(),
        }
    }

    /// Render the model as the rows of Table I.
    #[must_use]
    pub fn table1_rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("Run", self.run),
            ("Cache Miss", self.miss),
            ("Transaction Commit", self.commit),
            ("Clock Gated", self.gated),
        ]
    }

    /// Sanity-check the ordering the paper's derivation implies:
    /// gated < miss < commit < run.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        self.gated >= 0.0
            && self.gated < self.miss
            && self.miss < self.commit
            && self.commit < self.run
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::alpha_21264_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_tcc::stats::PowerState;

    #[test]
    fn derivation_reproduces_table1() {
        let m = PowerModel::alpha_21264_65nm();
        assert!((m.run - 1.0).abs() < 1e-12);
        assert!(
            (m.commit - 0.44).abs() < 1e-12,
            "commit factor: {}",
            m.commit
        );
        assert!((m.miss - 0.32).abs() < 1e-12, "miss factor: {}", m.miss);
        assert!((m.gated - 0.20).abs() < 1e-12);
    }

    #[test]
    fn tcc_dcache_factor_is_derived_from_the_l1_geometry() {
        // Satellite invariant: the factor the Table I derivation uses comes
        // out of the geometry-dependent cache-power model, and at the paper's
        // geometry it equals the quoted 1.5 exactly.
        let cfg = PowerModelConfig::alpha_21264_65nm();
        assert_eq!(cfg.tcc_dcache_factor, 1.5);
        assert_eq!(
            cfg.tcc_dcache_factor,
            CachePowerModel::new_kb(64).table1_dcache_factor()
        );
        // Re-deriving for the swept capacities keeps Table I intact (the
        // analytical factor stays in the same half-unit bucket).
        for kb in [16usize, 32, 128] {
            let swept = cfg.for_l1_geometry(kb);
            assert_eq!(swept.factors(), cfg.factors());
        }
    }

    #[test]
    fn leakage_share_axis_moves_every_leakage_dependent_factor() {
        let low = PowerModelConfig::alpha_21264_65nm()
            .with_leakage_share(0.05)
            .factors();
        let high = PowerModelConfig::alpha_21264_65nm()
            .with_leakage_share(0.40)
            .factors();
        assert_eq!(low.run, 1.0);
        assert_eq!(high.run, 1.0);
        assert!((low.gated - 0.05).abs() < 1e-12);
        assert!((high.gated - 0.40).abs() < 1e-12);
        // More leakage narrows the run-vs-gated gap clock gating exploits.
        assert!(high.commit > low.commit);
        assert!(low.is_well_formed() && high.is_well_formed());
    }

    #[test]
    #[should_panic(expected = "leakage share")]
    fn leakage_share_out_of_range_is_rejected() {
        let _ = PowerModelConfig::alpha_21264_65nm().with_leakage_share(1.0);
    }

    #[test]
    fn model_is_well_formed() {
        assert!(PowerModel::alpha_21264_65nm().is_well_formed());
    }

    #[test]
    fn factor_maps_states() {
        let m = PowerModel::alpha_21264_65nm();
        assert_eq!(m.factor(PowerState::Run), m.run);
        assert_eq!(m.factor(PowerState::Miss), m.miss);
        assert_eq!(m.factor(PowerState::Commit), m.commit);
        assert_eq!(m.factor(PowerState::Gated), m.gated);
    }

    #[test]
    fn table1_rows_in_paper_order() {
        let rows = PowerModel::alpha_21264_65nm().table1_rows();
        let names: Vec<_> = rows.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["Run", "Cache Miss", "Transaction Commit", "Clock Gated"]
        );
    }

    #[test]
    fn power_gating_zeroes_gated_factor() {
        let m = PowerModel::alpha_21264_65nm().with_power_gating();
        assert_eq!(m.gated, 0.0);
        assert!(m.commit > 0.0);
        // The config-level ablation agrees with the factor-level one.
        let cfg = PowerModelConfig::alpha_21264_65nm().with_power_gating();
        assert_eq!(cfg.factors(), m);
    }

    #[test]
    fn default_is_the_paper_model() {
        assert_eq!(PowerModel::default(), PowerModel::alpha_21264_65nm());
        assert_eq!(
            PowerModelConfig::default(),
            PowerModelConfig::alpha_21264_65nm()
        );
    }
}
