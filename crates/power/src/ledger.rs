//! Component-resolved energy ledger.
//!
//! The Table I model of [`crate::model`] answers "how much energy did the
//! run consume?"; this module answers "*where did it go?*". It splits the
//! same four-state accounting into an [`EnergyComponent`] taxonomy — core
//! pipeline, clock tree, the TCC-augmented L1 arrays, I/O, PLL — accounted
//! per processor × per power state, and additionally charges the **uncore**
//! the paper ignores: directory SRAM lookups and leakage, interconnect
//! flits, and the gating tables/timers with their `TxInfoReq` traffic (in
//! the spirit of the component-level accounting of the data-dependent
//! clock-gating literature, Sarkar et al. 2018).
//!
//! Exactness contract:
//!
//! * the per-component factors of each state sum to that state's Table I
//!   factor **by construction** (the core pipeline is the residual), so the
//!   core subset of the ledger reproduces the legacy four-state accounting
//!   and the paper's Eq. 1/Eq. 5 interval formulation to float-rounding
//!   noise — [`EnergyLedgerReport::core_discrepancy`] and
//!   [`EnergyLedgerReport::interval_discrepancy`] carry both cross-checks;
//! * every input is part of the engine-exact [`RunOutcome`], so the ledger
//!   is byte-identical under the fast-forward and naive stepping engines.
//!
//! The ledger also derives the energy-delay metrics the sweep's selectable
//! objectives optimize: `EDP = E·N`, `ED²P = E·N²` and energy per committed
//! transaction.

use serde::{Deserialize, Serialize};

use htm_tcc::stats::{PowerState, RunOutcome, StateCycles};

use crate::energy;
use crate::model::PowerModelConfig;

/// The five power states, in ledger index order: the four of Table I plus
/// the DVFS-style throttled state of the `throttle` contention policy.
const STATES: [PowerState; 5] = [
    PowerState::Run,
    PowerState::Miss,
    PowerState::Commit,
    PowerState::Gated,
    PowerState::Throttled,
];

/// Number of ledger states (the dimension of the per-component factor rows).
const NUM_STATES: usize = STATES.len();

fn state_idx(state: PowerState) -> usize {
    match state {
        PowerState::Run => 0,
        PowerState::Miss => 1,
        PowerState::Commit => 2,
        PowerState::Gated => 3,
        PowerState::Throttled => 4,
    }
}

/// One accounted component of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergyComponent {
    /// Execution core: fetch/decode/issue/ALU/registers (the residual of
    /// the Alpha 21264 breakdown after the named components).
    CorePipeline,
    /// The clock distribution network (32 % of the Alpha 21264).
    ClockTree,
    /// The TCC-augmented L1 data array: RW tracking bits, store-address
    /// FIFO and commit controller included.
    L1DataArray,
    /// The L1 instruction array.
    L1InstrArray,
    /// The processor's I/O interfaces.
    IoInterface,
    /// The always-running PLL (kept on even while clock-gated).
    Pll,
    /// Uncore: the directory sharer/state SRAM of every home node.
    DirectorySram,
    /// Uncore: the split-transaction bus (charged per payload flit).
    Interconnect,
    /// Uncore: the gating tables, timers and their `TxInfoReq` traffic.
    GatingControl,
}

/// The core-local components, i.e. the subset whose per-state factors sum to
/// the Table I factors (ledger index order).
pub const CORE_COMPONENTS: [EnergyComponent; 6] = [
    EnergyComponent::CorePipeline,
    EnergyComponent::ClockTree,
    EnergyComponent::L1DataArray,
    EnergyComponent::L1InstrArray,
    EnergyComponent::IoInterface,
    EnergyComponent::Pll,
];

/// The uncore components the paper's model ignores.
pub const UNCORE_COMPONENTS: [EnergyComponent; 3] = [
    EnergyComponent::DirectorySram,
    EnergyComponent::Interconnect,
    EnergyComponent::GatingControl,
];

/// Every component, core first, in the order the artifacts list them.
pub const ALL_COMPONENTS: [EnergyComponent; 9] = [
    EnergyComponent::CorePipeline,
    EnergyComponent::ClockTree,
    EnergyComponent::L1DataArray,
    EnergyComponent::L1InstrArray,
    EnergyComponent::IoInterface,
    EnergyComponent::Pll,
    EnergyComponent::DirectorySram,
    EnergyComponent::Interconnect,
    EnergyComponent::GatingControl,
];

impl EnergyComponent {
    /// Stable snake_case label used in artifacts and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EnergyComponent::CorePipeline => "core_pipeline",
            EnergyComponent::ClockTree => "clock_tree",
            EnergyComponent::L1DataArray => "l1_data_array",
            EnergyComponent::L1InstrArray => "l1_instr_array",
            EnergyComponent::IoInterface => "io_interface",
            EnergyComponent::Pll => "pll",
            EnergyComponent::DirectorySram => "directory_sram",
            EnergyComponent::Interconnect => "interconnect",
            EnergyComponent::GatingControl => "gating_control",
        }
    }

    /// Whether the component belongs to the processor core (the Table I
    /// subset) rather than the uncore.
    #[must_use]
    pub fn is_core(self) -> bool {
        !matches!(
            self,
            EnergyComponent::DirectorySram
                | EnergyComponent::Interconnect
                | EnergyComponent::GatingControl
        )
    }
}

/// Per-event / per-cycle energy costs of the uncore, in the same unit as
/// everything else (run-mode power of one core × one cycle = 1.0).
///
/// The paper charges none of these; the defaults below are deliberately
/// modest first-order estimates (documented per field) so the uncore lands
/// in the low single-digit percent range of the core energy — enough to
/// shift a close gated-vs-ungated comparison, which is exactly the analysis
/// `docs/REPRODUCING.md` performs on the non-reproducing headline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UncoreCosts {
    /// Energy per control flit (one cycle of bus-path occupancy by a short
    /// message). The I/O interfaces draw 5 % of core power while active;
    /// one active cycle of the narrow control path is charged a fraction of
    /// that.
    pub control_flit_energy: f64,
    /// Energy per data flit (one cycle of a cache-line transfer occupying
    /// the full 16-byte path — the whole interface active).
    pub data_flit_energy: f64,
    /// Energy per directory SRAM lookup (miss service, mark write or
    /// commit grant — one row access of a small SRAM).
    pub dir_lookup_energy: f64,
    /// Leakage of one directory node's SRAM per cycle.
    pub dir_leakage_per_cycle: f64,
    /// Energy of one `TxInfoReq` round-trip: two control messages plus a
    /// table lookup on each side.
    pub txinfo_roundtrip_energy: f64,
    /// Energy of one "Stop Clock" event: a gating-table CAM write plus a
    /// timer load.
    pub gate_event_energy: f64,
    /// Leakage/clocking of one directory's gating table and timers per
    /// cycle; charged only when the gating hardware is present at all.
    pub gating_table_leakage_per_cycle: f64,
}

impl Default for UncoreCosts {
    fn default() -> Self {
        Self {
            control_flit_energy: 0.02,
            data_flit_energy: 0.05,
            dir_lookup_energy: 0.02,
            dir_leakage_per_cycle: 0.01,
            txinfo_roundtrip_energy: 0.06,
            gate_event_energy: 0.05,
            gating_table_leakage_per_cycle: 0.002,
        }
    }
}

/// Engine-exact activity tallies the uncore charges are computed from.
///
/// Everything here is either carried by [`RunOutcome`] directly (bus flits,
/// directory stats, gating counts) or derived from it plus mode-level
/// knowledge the caller has (renewal-time `TxInfoReq`s only exist when the
/// renewal check is enabled; the gating tables only leak when the gating
/// hardware exists).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UncoreActivity {
    /// Control payload flits moved over the interconnect.
    pub control_flits: u64,
    /// Data payload flits moved over the interconnect.
    pub data_flits: u64,
    /// Directory SRAM lookups (miss services + marks + grants).
    pub dir_lookups: u64,
    /// `TxInfoReq` round-trips (abort-time, from the directory stats, plus
    /// renewal-time checks reported by the gating controller).
    pub txinfo_roundtrips: u64,
    /// "Stop Clock" events (processor transitions into the gated state).
    pub gate_events: u64,
    /// Directory-cycles over the run: `num_dirs × total_cycles` (the SRAM
    /// leakage window).
    pub dir_cycles: u64,
    /// Directory-cycles during which gating tables/timers existed: equal to
    /// [`Self::dir_cycles`] for clock-gating modes, zero otherwise.
    pub gating_table_cycles: u64,
}

impl UncoreActivity {
    /// Derive the tallies from a finished run. `gating_hardware` says
    /// whether the machine had gating tables at all (any clock-gating
    /// mode); `renewal_txinfo` is the number of renewal-time `TxInfoReq`
    /// round-trips the gating controller performed (zero for non-gating
    /// modes and for the blind-timer ablation).
    #[must_use]
    pub fn from_outcome(outcome: &RunOutcome, gating_hardware: bool, renewal_txinfo: u64) -> Self {
        let dir_cycles = outcome.num_dirs() as u64 * outcome.total_cycles;
        Self {
            control_flits: outcome.bus.control_flits,
            data_flits: outcome.bus.data_flits,
            dir_lookups: outcome.total_dir_lookups(),
            txinfo_roundtrips: outcome.total_txinfo_roundtrips() + renewal_txinfo,
            gate_events: outcome.total_gatings,
            dir_cycles,
            gating_table_cycles: if gating_hardware { dir_cycles } else { 0 },
        }
    }
}

/// The per-state factors of every core component, derived from a
/// [`PowerModelConfig`].
///
/// Derivation: each component's run-mode dynamic share comes from the Alpha
/// 21264 breakdown (the TCC augmentation is absorbed into the run = 1.0
/// normalization, matching Table I); the leakage budget is split between
/// the PLL (a configured fraction) and the remaining components in
/// proportion to their dynamic shares. During a miss/commit only the TCC
/// data array, the I/O interfaces and their clock slice stay active (at the
/// miss-activity factor, resp. fully); while gated only leakage remains.
/// The **core pipeline is the residual** of each state's Table I factor, so
/// the component sums reproduce the four-state model exactly by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentFactors {
    /// `factors[component][state]`, `CORE_COMPONENTS` × `STATES` order.
    factors: [[f64; NUM_STATES]; 6],
}

impl ComponentFactors {
    /// Derive the per-component factors from a model configuration.
    #[must_use]
    pub fn from_config(cfg: &PowerModelConfig) -> Self {
        let model = cfg.factors();
        let dynamic = cfg.dynamic_share();
        // Run-mode dynamic shares (of total run power) per component, in
        // CORE_COMPONENTS order. The pipeline slot is filled as a residual.
        let l1d = cfg.tcc_dcache_share();
        let shares = [
            0.0, // CorePipeline: residual
            cfg.clock_share,
            l1d,
            cfg.icache_share,
            cfg.io_share,
            0.0, // Pll: folded into the clock tree's dynamic share
        ];
        // Leakage split: the PLL takes its configured fraction; the rest is
        // distributed over the remaining components in proportion to their
        // dynamic shares (pipeline's leak falls out of the residual).
        let pll_leak = cfg.leakage_share * cfg.pll_leakage_fraction;
        let leak_budget = cfg.leakage_share - pll_leak;
        // Per-state activity of the commit-active set {L1D, IO, their clock
        // slice}; everything else is inactive outside Run. While throttled,
        // every component keeps a DVFS-scaled slice of its run-mode dynamic
        // power (uniform half-rate clocking) on top of its full leakage.
        let miss_act = cfg.miss_activity_factor;
        let throttle_scale = crate::model::THROTTLE_DYNAMIC_SCALE;
        let mut factors = [[0.0f64; NUM_STATES]; 6];
        for (c, share) in shares.iter().enumerate().skip(1) {
            let leak = if CORE_COMPONENTS[c] == EnergyComponent::Pll {
                pll_leak
            } else {
                leak_budget * share
            };
            let (miss_dyn, commit_dyn) = match CORE_COMPONENTS[c] {
                EnergyComponent::ClockTree => (
                    dynamic * miss_act * cfg.cache_io_clock_share,
                    dynamic * cfg.cache_io_clock_share,
                ),
                EnergyComponent::L1DataArray => (dynamic * miss_act * l1d, dynamic * l1d),
                EnergyComponent::IoInterface => {
                    (dynamic * miss_act * cfg.io_share, dynamic * cfg.io_share)
                }
                _ => (0.0, 0.0),
            };
            factors[c] = [
                leak + dynamic * share,
                leak + miss_dyn,
                leak + commit_dyn,
                if cfg.power_gated_standby { 0.0 } else { leak },
                leak + throttle_scale * dynamic * share,
            ];
        }
        // The pipeline is the residual of each state's model factor, which
        // makes the component sums exact by construction (for the throttled
        // state the residual target is the derived `PowerModel::throttled`
        // factor, so the five-state ledger agrees with the direct accounting
        // the same way the Table I subset does).
        for (s, &state) in STATES.iter().enumerate() {
            let others: f64 = (1..6).map(|c| factors[c][s]).sum();
            factors[0][s] = model.factor(state) - others;
        }
        Self { factors }
    }

    /// Power factor of a core component in a given state.
    ///
    /// # Panics
    /// Panics if called with an uncore component (those are charged per
    /// event, not per state).
    #[must_use]
    pub fn factor(&self, component: EnergyComponent, state: PowerState) -> f64 {
        let c = CORE_COMPONENTS
            .iter()
            .position(|&x| x == component)
            .expect("per-state factors exist only for core components");
        self.factors[c][state_idx(state)]
    }

    /// Sum of the component factors of a state (equals the Table I factor).
    #[must_use]
    pub fn state_total(&self, state: PowerState) -> f64 {
        let s = state_idx(state);
        self.factors.iter().map(|row| row[s]).sum()
    }
}

/// One component's share of a run's energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentEnergy {
    /// Component label ([`EnergyComponent::label`]).
    pub component: String,
    /// Whether the component is core-local (Table I subset) or uncore.
    pub core: bool,
    /// Energy consumed, in run-power × cycles.
    pub energy: f64,
    /// Fraction of the ledger's total (core + uncore) energy.
    pub share_of_total: f64,
}

/// The complete component-resolved energy analysis of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedgerReport {
    /// Workload name.
    pub workload: String,
    /// Number of processors.
    pub num_procs: usize,
    /// Parallel-section execution time in cycles.
    pub execution_cycles: u64,
    /// One entry per component, in [`ALL_COMPONENTS`] order.
    pub components: Vec<ComponentEnergy>,
    /// Per-processor core energy (component-resolved accounting summed over
    /// that processor's states).
    pub per_proc_core: Vec<f64>,
    /// Core subset total: must reproduce the legacy four-state accounting.
    pub core_energy: f64,
    /// Uncore total (directory SRAM + interconnect + gating control).
    pub uncore_energy: f64,
    /// Ledger grand total: `core_energy + uncore_energy`.
    pub total_energy: f64,
    /// Cross-check: the legacy direct four-state accounting
    /// (`EnergyReport.total_energy`).
    pub legacy_total: f64,
    /// Cross-check: the paper's Eq. 1 / Eq. 5 interval formulation.
    pub interval_total: f64,
    /// Energy-delay product `E·N` of the ledger total.
    pub edp: f64,
    /// Energy-delay-squared product `E·N²`.
    pub ed2p: f64,
    /// Ledger total divided by committed transactions (0 when none).
    pub energy_per_commit: f64,
    /// Ledger total over `cycles × procs` (fraction of one core's run
    /// power; comparable to, and slightly above, the legacy average power).
    pub average_power: f64,
}

impl EnergyLedgerReport {
    /// Relative disagreement between the ledger's core subset and the legacy
    /// four-state accounting (float-rounding noise only).
    #[must_use]
    pub fn core_discrepancy(&self) -> f64 {
        relative(self.core_energy, self.legacy_total)
    }

    /// Relative disagreement between the ledger's core subset and the
    /// Eq. 1 / Eq. 5 interval formulation.
    #[must_use]
    pub fn interval_discrepancy(&self) -> f64 {
        relative(self.core_energy, self.interval_total)
    }

    /// Energy of one component (by label-equivalent enum).
    #[must_use]
    pub fn component_energy(&self, component: EnergyComponent) -> f64 {
        let idx = ALL_COMPONENTS
            .iter()
            .position(|&c| c == component)
            .expect("ALL_COMPONENTS is total");
        self.components[idx].energy
    }

    /// Uncore share of the ledger total, as a fraction in `[0, 1]`.
    #[must_use]
    pub fn uncore_share(&self) -> f64 {
        if self.total_energy > 0.0 {
            self.uncore_energy / self.total_energy
        } else {
            0.0
        }
    }
}

fn relative(a: f64, b: f64) -> f64 {
    let scale = b.abs().max(1.0);
    (a - b).abs() / scale
}

/// Streaming accumulator for the component ledger.
///
/// The engines' state records arrive as `(processor, state, cycles)` charges
/// — per-cycle from the naive engine's viewpoint, batched by the
/// fast-forward engine's `acct_until` settlement — and the builder folds
/// them into per-processor × per-component energy as they stream in. The
/// two arrival orders produce the same sums because each processor's charges
/// arrive in state-bucket batches either way (the ledger multiplies exact
/// integer cycle tallies, see [`LedgerBuilder::finish`]).
#[derive(Debug, Clone)]
pub struct LedgerBuilder {
    factors: ComponentFactors,
    costs: UncoreCosts,
    /// Exact integer cycle tallies: `[proc][state]`.
    proc_state_cycles: Vec<[u64; NUM_STATES]>,
    uncore: UncoreActivity,
}

impl LedgerBuilder {
    /// Create a builder for `num_procs` processors under `cfg`.
    #[must_use]
    pub fn new(cfg: &PowerModelConfig, num_procs: usize) -> Self {
        Self {
            factors: ComponentFactors::from_config(cfg),
            costs: cfg.uncore,
            proc_state_cycles: vec![[0u64; NUM_STATES]; num_procs],
            uncore: UncoreActivity::default(),
        }
    }

    /// Charge `cycles` cycles of `state` to processor `proc`.
    pub fn charge(&mut self, proc: usize, state: PowerState, cycles: u64) {
        self.proc_state_cycles[proc][state_idx(state)] += cycles;
    }

    /// Charge a processor's whole [`StateCycles`] record in one call.
    pub fn charge_state_cycles(&mut self, proc: usize, sc: &StateCycles) {
        self.charge(proc, PowerState::Run, sc.run);
        self.charge(proc, PowerState::Miss, sc.miss);
        self.charge(proc, PowerState::Commit, sc.commit);
        self.charge(proc, PowerState::Gated, sc.gated);
        self.charge(proc, PowerState::Throttled, sc.throttled);
    }

    /// Set the uncore activity tallies (replaces any previous value).
    pub fn charge_uncore(&mut self, activity: UncoreActivity) {
        self.uncore = activity;
    }

    /// Evaluate the ledger. `legacy_total` / `interval_total` are the two
    /// cross-check accountings of [`crate::energy`]; `total_commits` feeds
    /// the per-transaction metric.
    #[must_use]
    pub fn finish(
        &self,
        workload: &str,
        execution_cycles: u64,
        total_commits: u64,
        legacy_total: f64,
        interval_total: f64,
    ) -> EnergyLedgerReport {
        let num_procs = self.proc_state_cycles.len();
        // Aggregate exact integer cycle tallies per state, then multiply by
        // the factors once per (component, state): the summation order is
        // canonical, independent of how the charges streamed in.
        let mut state_totals = [0u64; NUM_STATES];
        for per_proc in &self.proc_state_cycles {
            for (s, cycles) in per_proc.iter().enumerate() {
                state_totals[s] += cycles;
            }
        }
        let mut core_by_component = [0.0f64; 6];
        for (c, slot) in core_by_component.iter_mut().enumerate() {
            for (s, &state) in STATES.iter().enumerate() {
                *slot += state_totals[s] as f64 * self.factors.factor(CORE_COMPONENTS[c], state);
            }
        }
        let per_proc_core: Vec<f64> = self
            .proc_state_cycles
            .iter()
            .map(|per_state| {
                let mut e = 0.0;
                for (s, &state) in STATES.iter().enumerate() {
                    let cycles = per_state[s] as f64;
                    for &c in &CORE_COMPONENTS {
                        e += cycles * self.factors.factor(c, state);
                    }
                }
                e
            })
            .collect();
        let core_energy: f64 = core_by_component.iter().sum();

        let u = &self.uncore;
        let costs = &self.costs;
        let directory = u.dir_lookups as f64 * costs.dir_lookup_energy
            + u.dir_cycles as f64 * costs.dir_leakage_per_cycle;
        let interconnect = u.control_flits as f64 * costs.control_flit_energy
            + u.data_flits as f64 * costs.data_flit_energy;
        let gating_control = u.gate_events as f64 * costs.gate_event_energy
            + u.txinfo_roundtrips as f64 * costs.txinfo_roundtrip_energy
            + u.gating_table_cycles as f64 * costs.gating_table_leakage_per_cycle;
        let uncore_energy = directory + interconnect + gating_control;
        let total_energy = core_energy + uncore_energy;

        let energies: Vec<(EnergyComponent, f64)> = CORE_COMPONENTS
            .iter()
            .zip(core_by_component)
            .map(|(&c, e)| (c, e))
            .chain([
                (EnergyComponent::DirectorySram, directory),
                (EnergyComponent::Interconnect, interconnect),
                (EnergyComponent::GatingControl, gating_control),
            ])
            .collect();
        let components = energies
            .into_iter()
            .map(|(c, energy)| ComponentEnergy {
                component: c.label().to_string(),
                core: c.is_core(),
                energy,
                share_of_total: if total_energy > 0.0 {
                    energy / total_energy
                } else {
                    0.0
                },
            })
            .collect();

        let n = execution_cycles as f64;
        EnergyLedgerReport {
            workload: workload.to_string(),
            num_procs,
            execution_cycles,
            components,
            per_proc_core,
            core_energy,
            uncore_energy,
            total_energy,
            legacy_total,
            interval_total,
            edp: total_energy * n,
            ed2p: total_energy * n * n,
            energy_per_commit: if total_commits > 0 {
                total_energy / total_commits as f64
            } else {
                0.0
            },
            average_power: if execution_cycles > 0 && num_procs > 0 {
                total_energy / (n * num_procs as f64)
            } else {
                0.0
            },
        }
    }
}

/// Analyze a finished run into the component ledger.
///
/// `uncore` carries the activity tallies (see
/// [`UncoreActivity::from_outcome`]); the legacy and interval cross-check
/// totals are computed here from the same configuration.
#[must_use]
pub fn analyze(
    outcome: &RunOutcome,
    cfg: &PowerModelConfig,
    uncore: UncoreActivity,
) -> EnergyLedgerReport {
    let model = cfg.factors();
    let legacy = energy::analyze(outcome, &model);
    let mut builder = LedgerBuilder::new(cfg, outcome.num_procs);
    for (proc, sc) in outcome.state_cycles.iter().enumerate() {
        builder.charge_state_cycles(proc, sc);
    }
    builder.charge_uncore(uncore);
    builder.finish(
        &outcome.workload,
        outcome.total_cycles,
        outcome.total_commits,
        legacy.total_energy,
        legacy.total_energy_interval,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PowerModelConfig {
        PowerModelConfig::alpha_21264_65nm()
    }

    #[test]
    fn component_factors_sum_to_table1_in_every_state() {
        for leakage in [0.05, 0.20, 0.40] {
            let c = cfg().with_leakage_share(leakage);
            let f = ComponentFactors::from_config(&c);
            let model = c.factors();
            for state in STATES {
                let sum = f.state_total(state);
                assert!(
                    (sum - model.factor(state)).abs() < 1e-12,
                    "leakage {leakage}, state {state:?}: {sum} vs {}",
                    model.factor(state)
                );
            }
        }
    }

    #[test]
    fn gated_state_keeps_only_leakage_and_the_pll_stays_on() {
        let f = ComponentFactors::from_config(&cfg());
        let pll = f.factor(EnergyComponent::Pll, PowerState::Gated);
        assert!(pll > 0.0, "the PLL keeps running while gated");
        assert_eq!(
            pll,
            f.factor(EnergyComponent::Pll, PowerState::Run),
            "the PLL burns the same (leakage-budget) power in every state"
        );
        // Gated factors are pure leakage: strictly below the run factors.
        for c in CORE_COMPONENTS {
            assert!(
                f.factor(c, PowerState::Gated) <= f.factor(c, PowerState::Run),
                "{c:?}"
            );
        }
    }

    #[test]
    fn power_gated_standby_zeroes_every_component() {
        let f = ComponentFactors::from_config(&cfg().with_power_gating());
        for c in CORE_COMPONENTS {
            assert_eq!(f.factor(c, PowerState::Gated), 0.0, "{c:?}");
        }
    }

    #[test]
    fn miss_and_commit_keep_only_the_cache_io_set_active() {
        let f = ComponentFactors::from_config(&cfg());
        // The L1 instruction array draws only leakage outside Run.
        let l1i_gated = f.factor(EnergyComponent::L1InstrArray, PowerState::Gated);
        assert_eq!(
            f.factor(EnergyComponent::L1InstrArray, PowerState::Miss),
            l1i_gated
        );
        assert_eq!(
            f.factor(EnergyComponent::L1InstrArray, PowerState::Commit),
            l1i_gated
        );
        // The TCC data array works at half activity during a miss and full
        // activity during a commit.
        let l1d_leak = f.factor(EnergyComponent::L1DataArray, PowerState::Gated);
        let l1d_miss = f.factor(EnergyComponent::L1DataArray, PowerState::Miss) - l1d_leak;
        let l1d_commit = f.factor(EnergyComponent::L1DataArray, PowerState::Commit) - l1d_leak;
        assert!((l1d_commit - 2.0 * l1d_miss).abs() < 1e-12);
        assert!(l1d_commit > 0.0);
    }

    #[test]
    fn builder_matches_direct_accounting_on_synthetic_charges() {
        let c = cfg();
        let mut b = LedgerBuilder::new(&c, 2);
        b.charge(0, PowerState::Run, 1000);
        b.charge(1, PowerState::Gated, 600);
        b.charge(1, PowerState::Run, 400);
        let model = c.factors();
        let legacy = 1000.0 * model.run + 400.0 * model.run + 600.0 * model.gated;
        let report = b.finish("t", 1000, 10, legacy, legacy);
        assert!(report.core_discrepancy() < 1e-12, "{report:?}");
        assert_eq!(report.uncore_energy, 0.0);
        assert!((report.per_proc_core[0] - 1000.0).abs() < 1e-9);
        assert!((report.per_proc_core[1] - (400.0 + 600.0 * 0.2)).abs() < 1e-9);
        assert!((report.edp - report.total_energy * 1000.0).abs() < 1e-6);
        assert!((report.ed2p - report.edp * 1000.0).abs() < 1.0);
        assert!((report.energy_per_commit - report.total_energy / 10.0).abs() < 1e-9);
    }

    #[test]
    fn uncore_charges_follow_the_cost_table() {
        let c = cfg();
        let mut b = LedgerBuilder::new(&c, 1);
        b.charge(0, PowerState::Run, 100);
        b.charge_uncore(UncoreActivity {
            control_flits: 10,
            data_flits: 20,
            dir_lookups: 5,
            txinfo_roundtrips: 3,
            gate_events: 2,
            dir_cycles: 100,
            gating_table_cycles: 100,
        });
        let u = c.uncore;
        let report = b.finish("t", 100, 1, 100.0, 100.0);
        let interconnect = 10.0 * u.control_flit_energy + 20.0 * u.data_flit_energy;
        let directory = 5.0 * u.dir_lookup_energy + 100.0 * u.dir_leakage_per_cycle;
        let gating = 2.0 * u.gate_event_energy
            + 3.0 * u.txinfo_roundtrip_energy
            + 100.0 * u.gating_table_leakage_per_cycle;
        assert!(
            (report.component_energy(EnergyComponent::Interconnect) - interconnect).abs() < 1e-12
        );
        assert!(
            (report.component_energy(EnergyComponent::DirectorySram) - directory).abs() < 1e-12
        );
        assert!((report.component_energy(EnergyComponent::GatingControl) - gating).abs() < 1e-12);
        assert!(
            (report.total_energy - (report.core_energy + interconnect + directory + gating)).abs()
                < 1e-12
        );
        assert!(report.uncore_share() > 0.0);
    }

    #[test]
    fn component_shares_sum_to_one() {
        let mut b = LedgerBuilder::new(&cfg(), 1);
        b.charge(0, PowerState::Run, 50);
        b.charge(0, PowerState::Commit, 25);
        b.charge_uncore(UncoreActivity {
            control_flits: 4,
            data_flits: 4,
            dir_lookups: 2,
            txinfo_roundtrips: 0,
            gate_events: 0,
            dir_cycles: 75,
            gating_table_cycles: 0,
        });
        let report = b.finish("t", 75, 1, 0.0, 0.0);
        let share_sum: f64 = report.components.iter().map(|c| c.share_of_total).sum();
        assert!((share_sum - 1.0).abs() < 1e-12, "{share_sum}");
        assert_eq!(report.components.len(), ALL_COMPONENTS.len());
        for (entry, component) in report.components.iter().zip(ALL_COMPONENTS) {
            assert_eq!(entry.component, component.label());
            assert_eq!(entry.core, component.is_core());
        }
    }

    #[test]
    fn zero_commit_run_reports_zero_energy_per_commit() {
        let b = LedgerBuilder::new(&cfg(), 1);
        let report = b.finish("t", 0, 0, 0.0, 0.0);
        assert_eq!(report.energy_per_commit, 0.0);
        assert_eq!(report.average_power, 0.0);
    }
}
