//! # htm-power — power and energy model
//!
//! Rust implementation of Sections IV and VII of the paper:
//!
//! * [`model`] — the Alpha 21264 power model in 65 nm (Table I): the power
//!   factors consumed in run mode, during a cache miss, during commit and
//!   while clock-gated, derived from the published Alpha 21264 component
//!   breakdown, a 20 % active-leakage assumption and the TCC-augmented data
//!   cache,
//! * [`cache_power`] — the CACTI-style estimate of the extra power the TCC
//!   read/write tracking bits, store-address FIFO and commit controller add
//!   to the data cache (Fig. 3),
//! * [`energy`] — the energy and average-power accounting of Section IV
//!   (Eqs. 1–7), computed two independent ways (per-processor state
//!   integration and the interval formulation) so they can cross-check each
//!   other, plus the gated-vs-ungated comparison metrics reported in
//!   Figs. 4–6 (speed-up, energy reduction, average-power reduction),
//! * [`ledger`] — the component-resolved energy ledger: the same four-state
//!   accounting split across an [`ledger::EnergyComponent`] taxonomy (core
//!   pipeline, clock tree, TCC-augmented L1 arrays, PLL) per processor ×
//!   per power state, plus the uncore charges the paper ignores (directory
//!   SRAM, interconnect flits, gating tables and `TxInfoReq` traffic) and
//!   the derived energy-delay metrics (EDP, ED²P, energy per commit).
//!
//! ```
//! use htm_power::PowerModel;
//! use htm_tcc::stats::PowerState;
//!
//! // Table I: clock-gated standby burns a fifth of run power.
//! let model = PowerModel::alpha_21264_65nm();
//! assert_eq!(model.factor(PowerState::Run), 1.0);
//! assert_eq!(model.factor(PowerState::Gated), 0.20);
//! assert!(model.is_well_formed());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache_power;
pub mod energy;
pub mod ledger;
pub mod model;

pub use cache_power::{CachePowerModel, TccCacheBreakdown};
pub use energy::{ComparisonReport, EnergyBreakdown, EnergyReport};
pub use ledger::{EnergyComponent, EnergyLedgerReport, LedgerBuilder, UncoreActivity, UncoreCosts};
pub use model::{PowerModel, PowerModelConfig};
