//! Energy and average-power accounting (Section IV, Eqs. 1–7).
//!
//! Two independent accountings are provided:
//!
//! 1. **Direct accounting** — every processor's cycles in each power state
//!    are multiplied by the corresponding Table I factor and summed ("an
//!    equivalent way to compute the total energy consumption is to track and
//!    sum up the individual contribution of each processor in each state",
//!    Section IV).
//! 2. **Interval accounting** — the paper's closed-form equations (1) and (5)
//!    evaluated from the `Xi`/`αi`/`βi` interval decomposition collected by
//!    the simulator.
//!
//! Both must agree (they are algebraic rearrangements of each other); the
//! [`EnergyReport`] carries both so integration and property tests can assert
//! it, and all derived metrics use the direct value.

use serde::{Deserialize, Serialize};

use htm_tcc::stats::RunOutcome;

use crate::model::PowerModel;

/// Energy broken down by the state in which it was consumed. The unit is
/// "run-mode-power × cycles", i.e. the same unit-less normalization the paper
/// uses.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy consumed at full run power.
    pub run: f64,
    /// Energy consumed while stalled on cache misses.
    pub miss: f64,
    /// Energy consumed while flushing commits.
    pub commit: f64,
    /// Energy consumed while clock-gated (leakage + PLL).
    pub gated: f64,
    /// Energy consumed in the DVFS-style throttled state (zero for every
    /// policy except `throttle`).
    pub throttled: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.run + self.miss + self.commit + self.gated + self.throttled
    }
}

/// Energy analysis of a single simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Name of the workload.
    pub workload: String,
    /// Number of processors.
    pub num_procs: usize,
    /// Parallel-section execution time in cycles (the paper's `N1`/`N2`).
    pub execution_cycles: u64,
    /// Direct (per-processor) energy accounting.
    pub breakdown: EnergyBreakdown,
    /// Total energy from the direct accounting.
    pub total_energy: f64,
    /// Total energy from the interval formulation (Eq. 1 / Eq. 5).
    pub total_energy_interval: f64,
    /// Average power dissipation over the run (energy / time / processors),
    /// normalized to one processor's run power.
    pub average_power: f64,
}

impl EnergyReport {
    /// Relative disagreement between the two accountings (should be ~0).
    #[must_use]
    pub fn accounting_discrepancy(&self) -> f64 {
        if self.total_energy == 0.0 {
            0.0
        } else {
            ((self.total_energy - self.total_energy_interval) / self.total_energy).abs()
        }
    }
}

/// Analyze one run under a power model.
#[must_use]
pub fn analyze(outcome: &RunOutcome, model: &PowerModel) -> EnergyReport {
    let mut breakdown = EnergyBreakdown::default();
    for sc in &outcome.state_cycles {
        breakdown.run += sc.run as f64 * model.run;
        breakdown.miss += sc.miss as f64 * model.miss;
        breakdown.commit += sc.commit as f64 * model.commit;
        breakdown.gated += sc.gated as f64 * model.gated;
        breakdown.throttled += sc.throttled as f64 * model.throttled();
    }
    let total_energy = breakdown.total();
    let total_energy_interval = interval_energy(outcome, model);
    let p = outcome.num_procs.max(1) as f64;
    let n = outcome.total_cycles.max(1) as f64;
    EnergyReport {
        workload: outcome.workload.clone(),
        num_procs: outcome.num_procs,
        execution_cycles: outcome.total_cycles,
        breakdown,
        total_energy,
        total_energy_interval,
        average_power: total_energy / (n * p),
    }
}

/// Evaluate the paper's interval formulation of the total energy.
///
/// For a gated run this is Eq. (1); for an ungated run (where no cycle has a
/// gated processor) the `Pgate` term vanishes and the expression reduces to
/// Eq. (5).
#[must_use]
pub fn interval_energy(outcome: &RunOutcome, model: &PowerModel) -> f64 {
    let p = outcome.num_procs as f64;
    let n = outcome.total_cycles as f64;
    let t = &outcome.intervals;
    let mut low_power_proc_cycles = 0.0; // Σ Xi * i
    let mut miss_term = 0.0; // Σ Xi * i * αi
    let mut commit_term = 0.0; // Σ Xi * i * βi
    let mut gate_term = 0.0; // Σ Xi * i * γi
    let mut throttle_term = 0.0; // Σ Xi * i * δi (zero without the throttle policy)
    for i in 1..=outcome.num_procs {
        let xi = t.x(i) as f64;
        if xi == 0.0 {
            continue;
        }
        let xi_i = xi * i as f64;
        low_power_proc_cycles += xi_i;
        miss_term += xi_i * t.alpha(i);
        commit_term += xi_i * t.beta(i);
        gate_term += xi_i * t.gamma(i);
        throttle_term += xi_i * t.delta(i);
    }
    (n * p - low_power_proc_cycles) * model.run
        + miss_term * model.miss
        + commit_term * model.commit
        + gate_term * model.gated
        + throttle_term * model.throttled()
}

/// Comparison of a clock-gated run against the ungated baseline for the same
/// workload and processor count (one bar pair of Figs. 4–6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// Workload name.
    pub workload: String,
    /// Number of processors.
    pub num_procs: usize,
    /// Ungated parallel execution time `N1` (cycles).
    pub ungated_cycles: u64,
    /// Gated parallel execution time `N2` (cycles).
    pub gated_cycles: u64,
    /// Ungated total energy `Eug`.
    pub ungated_energy: f64,
    /// Gated total energy `Eg`.
    pub gated_energy: f64,
    /// Speed-up `N1 / N2` (> 1 means clock gating made the run faster).
    pub speedup: f64,
    /// Energy reduction `Eug / Eg` (Eq. 6; > 1 means energy was saved).
    pub energy_reduction: f64,
    /// Average-power reduction `(Eug / Eg) * (N2 / N1)` (Eq. 7).
    pub average_power_reduction: f64,
    /// Aborts per commit in the ungated run.
    pub ungated_abort_rate: f64,
    /// Aborts per commit in the gated run.
    pub gated_abort_rate: f64,
    /// Total processor-cycles spent clock-gated in the gated run.
    pub gated_cycles_total: u64,
}

impl ComparisonReport {
    /// Energy savings expressed as a percentage of the ungated energy
    /// (the paper's "19% savings in the total consumed energy").
    #[must_use]
    pub fn energy_savings_percent(&self) -> f64 {
        if self.ungated_energy == 0.0 {
            0.0
        } else {
            (1.0 - self.gated_energy / self.ungated_energy) * 100.0
        }
    }

    /// Speed-up expressed as a percentage (the paper's "average speed-up of 4%").
    #[must_use]
    pub fn speedup_percent(&self) -> f64 {
        (self.speedup - 1.0) * 100.0
    }

    /// Average-power savings as a percentage.
    #[must_use]
    pub fn average_power_savings_percent(&self) -> f64 {
        if self.average_power_reduction == 0.0 {
            0.0
        } else {
            (1.0 - 1.0 / self.average_power_reduction) * 100.0
        }
    }
}

/// Compare a gated run against its ungated baseline under `model`.
///
/// # Panics
/// Panics if the two runs are for different workloads or processor counts
/// (that comparison would be meaningless).
#[must_use]
pub fn compare(ungated: &RunOutcome, gated: &RunOutcome, model: &PowerModel) -> ComparisonReport {
    assert_eq!(
        ungated.workload, gated.workload,
        "comparing different workloads"
    );
    assert_eq!(
        ungated.num_procs, gated.num_procs,
        "comparing different machine sizes"
    );
    let eug = analyze(ungated, model);
    let eg = analyze(gated, model);
    let n1 = ungated.total_cycles.max(1) as f64;
    let n2 = gated.total_cycles.max(1) as f64;
    let energy_reduction = if eg.total_energy > 0.0 {
        eug.total_energy / eg.total_energy
    } else {
        1.0
    };
    ComparisonReport {
        workload: ungated.workload.clone(),
        num_procs: ungated.num_procs,
        ungated_cycles: ungated.total_cycles,
        gated_cycles: gated.total_cycles,
        ungated_energy: eug.total_energy,
        gated_energy: eg.total_energy,
        speedup: n1 / n2,
        energy_reduction,
        average_power_reduction: energy_reduction * (n2 / n1),
        ungated_abort_rate: ungated.abort_rate(),
        gated_abort_rate: gated.abort_rate(),
        gated_cycles_total: gated.total_gated_cycles(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::bus::BusStats;
    use htm_sim::interval::IntervalTracker;
    use htm_tcc::stats::{ProcStats, StateCycles};

    /// Build a synthetic outcome where the per-cycle composition is constant,
    /// so the interval accounting can be written down by hand.
    fn synthetic_outcome(
        name: &str,
        cycles: u64,
        per_proc: Vec<StateCycles>,
        per_cycle: (usize, usize, usize),
    ) -> RunOutcome {
        let p = per_proc.len();
        let mut intervals = IntervalTracker::new(p);
        let (gated, miss, commit) = per_cycle;
        intervals.record(cycles, gated, miss, commit);
        RunOutcome {
            workload: name.into(),
            num_procs: p,
            total_cycles: cycles,
            first_tx_start: 0,
            last_commit_end: cycles,
            state_cycles: per_proc,
            proc_stats: vec![ProcStats::new(); p],
            intervals,
            bus: BusStats::default(),
            shard_bus: Vec::new(),
            dir_stats: Vec::new(),
            total_commits: 10,
            total_aborts: 5,
            total_gatings: 2,
        }
    }

    #[test]
    fn all_run_cycles_cost_run_power() {
        let o = synthetic_outcome(
            "t",
            100,
            vec![
                StateCycles {
                    run: 100,
                    ..Default::default()
                };
                4
            ],
            (0, 0, 0),
        );
        let m = PowerModel::alpha_21264_65nm();
        let r = analyze(&o, &m);
        assert!((r.total_energy - 400.0).abs() < 1e-9);
        assert!((r.average_power - 1.0).abs() < 1e-12);
        assert!(r.accounting_discrepancy() < 1e-12);
    }

    #[test]
    fn direct_and_interval_accountings_agree_on_mixed_states() {
        // 2 processors: one always running, one always gated.
        let o = synthetic_outcome(
            "t",
            1000,
            vec![
                StateCycles {
                    run: 1000,
                    ..Default::default()
                },
                StateCycles {
                    gated: 1000,
                    ..Default::default()
                },
            ],
            (1, 0, 0),
        );
        let m = PowerModel::alpha_21264_65nm();
        let r = analyze(&o, &m);
        let expected = 1000.0 * 1.0 + 1000.0 * 0.20;
        assert!((r.total_energy - expected).abs() < 1e-9);
        assert!(
            r.accounting_discrepancy() < 1e-12,
            "discrepancy: {}",
            r.accounting_discrepancy()
        );
    }

    #[test]
    fn interval_equation_matches_hand_computation() {
        // 3 processors, 10 cycles: 1 missing, 1 committing, 1 running.
        let o = synthetic_outcome(
            "t",
            10,
            vec![
                StateCycles {
                    run: 10,
                    ..Default::default()
                },
                StateCycles {
                    miss: 10,
                    ..Default::default()
                },
                StateCycles {
                    commit: 10,
                    ..Default::default()
                },
            ],
            (0, 1, 1),
        );
        let m = PowerModel::alpha_21264_65nm();
        // Eq (5): [N*p - sum(Yi*i)]*Prun + miss + commit terms
        // = [30 - 20]*1.0 + 10*0.32 + 10*0.44 = 10 + 3.2 + 4.4 = 17.6
        let e = interval_energy(&o, &m);
        assert!((e - 17.6).abs() < 1e-9, "interval energy {e}");
        assert!((analyze(&o, &m).total_energy - e).abs() < 1e-9);
    }

    #[test]
    fn comparison_metrics_match_equations_6_and_7() {
        let ungated = synthetic_outcome(
            "w",
            1000,
            vec![
                StateCycles {
                    run: 1000,
                    ..Default::default()
                };
                2
            ],
            (0, 0, 0),
        );
        // Gated run: faster (800 cycles) and one processor gated half the time.
        let gated = synthetic_outcome(
            "w",
            800,
            vec![
                StateCycles {
                    run: 800,
                    ..Default::default()
                },
                StateCycles {
                    run: 400,
                    gated: 400,
                    ..Default::default()
                },
            ],
            (1, 0, 0),
        );
        // NOTE: the per-cycle interval composition above is only approximate
        // for the gated run (half the cycles have a gated processor), so
        // rebuild it exactly:
        let mut gated = gated;
        let mut iv = IntervalTracker::new(2);
        iv.record(400, 1, 0, 0);
        iv.record(400, 0, 0, 0);
        gated.intervals = iv;

        let m = PowerModel::alpha_21264_65nm();
        let cmp = compare(&ungated, &gated, &m);
        let eug = 2000.0;
        let eg = 800.0 + 400.0 + 400.0 * 0.2;
        assert!((cmp.energy_reduction - eug / eg).abs() < 1e-9);
        assert!((cmp.speedup - 1000.0 / 800.0).abs() < 1e-12);
        assert!(
            (cmp.average_power_reduction - (eug / eg) * (800.0 / 1000.0)).abs() < 1e-9,
            "Eq. 7"
        );
        assert!(cmp.energy_savings_percent() > 0.0);
        assert!(cmp.speedup_percent() > 0.0);
    }

    #[test]
    fn savings_percentages_are_consistent() {
        let r = ComparisonReport {
            workload: "w".into(),
            num_procs: 4,
            ungated_cycles: 100,
            gated_cycles: 100,
            ungated_energy: 100.0,
            gated_energy: 81.0,
            speedup: 1.0,
            energy_reduction: 100.0 / 81.0,
            average_power_reduction: 100.0 / 81.0,
            ungated_abort_rate: 1.0,
            gated_abort_rate: 0.5,
            gated_cycles_total: 10,
        };
        assert!((r.energy_savings_percent() - 19.0).abs() < 1e-9);
        assert!((r.average_power_savings_percent() - 19.0).abs() < 1e-9);
        assert_eq!(r.speedup_percent(), 0.0);
    }

    #[test]
    #[should_panic(expected = "different workloads")]
    fn comparing_different_workloads_panics() {
        let a = synthetic_outcome(
            "a",
            10,
            vec![StateCycles {
                run: 10,
                ..Default::default()
            }],
            (0, 0, 0),
        );
        let b = synthetic_outcome(
            "b",
            10,
            vec![StateCycles {
                run: 10,
                ..Default::default()
            }],
            (0, 0, 0),
        );
        let _ = compare(&a, &b, &PowerModel::default());
    }

    #[test]
    fn gating_reduces_energy_relative_to_spinning() {
        // The same execution time, but in one run a processor spends half its
        // time gated instead of spinning: energy must drop by the difference
        // between run power and gated power.
        let spin = synthetic_outcome(
            "w",
            1000,
            vec![
                StateCycles {
                    run: 1000,
                    ..Default::default()
                };
                2
            ],
            (0, 0, 0),
        );
        let mut gated = synthetic_outcome(
            "w",
            1000,
            vec![
                StateCycles {
                    run: 1000,
                    ..Default::default()
                },
                StateCycles {
                    run: 500,
                    gated: 500,
                    ..Default::default()
                },
            ],
            (0, 0, 0),
        );
        let mut iv = IntervalTracker::new(2);
        iv.record(500, 1, 0, 0);
        iv.record(500, 0, 0, 0);
        gated.intervals = iv;
        let m = PowerModel::alpha_21264_65nm();
        let cmp = compare(&spin, &gated, &m);
        assert!(cmp.energy_reduction > 1.0);
        let expected_saving = 500.0 * (1.0 - 0.2) / 2000.0 * 100.0;
        assert!((cmp.energy_savings_percent() - expected_saving).abs() < 1e-9);
    }
}
