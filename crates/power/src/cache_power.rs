//! CACTI-style power estimate of the TCC-augmented data cache (Fig. 3 and
//! the surrounding discussion in Section VII).
//!
//! The paper uses CACTI to quantify the power added by the speculative
//! read/write (RW) tracking bits as their resolution is varied from one pair
//! of bits per 64-byte cache line down to one pair per byte, for several
//! cache sizes, and PowerTheater RTL estimates for the store-address FIFO and
//! commit controller. We cannot run CACTI, so we reimplement the same
//! first-order analytical relationship:
//!
//! * the data array power grows with the number of extra storage bit columns
//!   (2 bits per tracking granule per line, on top of the 8·line_bytes data
//!   bits and the tag),
//! * only a fraction of the total cache power scales with the array width
//!   (decoders, sense-amp periphery and wordline drivers do not), and that
//!   fraction shrinks slightly for larger caches,
//! * the store-address FIFO (one entry per cache line, ~10 bits each) and the
//!   commit controller add a further, resolution-independent overhead.
//!
//! The model is calibrated to the two anchor points the paper states
//! explicitly: a 64 KB cache with 2-byte (word) tracking costs ≈ 5 % extra
//! power, and the complete TCC data cache (with FIFO and controller) is
//! conservatively 1.5× a normal data cache.

use serde::{Deserialize, Serialize};

/// Power of a conventional data cache, used as the normalization base
/// (the paper's Fig. 3 plots "normalized power" with the normal cache at 100).
pub const BASELINE_UNITS: f64 = 100.0;

/// Fraction of total cache power that scales with the width of the data
/// array for a 64 KB cache (calibrated so word-level tracking costs 5 %).
const ARRAY_SCALING_64KB: f64 = 0.40;

/// Analytical model of the TCC data-cache power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CachePowerModel {
    /// Cache capacity in bytes.
    pub cache_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Physical tag width in bits (contributes to the baseline array width).
    pub tag_bits: usize,
}

impl CachePowerModel {
    /// Model a cache of `cache_kb` kibibytes with 64-byte lines and a 30-bit
    /// tag (the Fig. 3 configuration).
    #[must_use]
    pub fn new_kb(cache_kb: usize) -> Self {
        Self {
            cache_bytes: cache_kb * 1024,
            line_bytes: 64,
            tag_bits: 30,
        }
    }

    /// Number of cache lines.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.cache_bytes / self.line_bytes
    }

    /// Extra RW-tracking bits per line for a given tracking resolution
    /// (2 bits — one read, one write — per granule).
    #[must_use]
    pub fn rw_bits_per_line(&self, resolution_bytes: usize) -> usize {
        assert!(resolution_bytes > 0 && resolution_bytes <= self.line_bytes);
        2 * (self.line_bytes / resolution_bytes)
    }

    /// Fraction of the cache power that scales with array width; decreases
    /// mildly with capacity because the periphery amortizes better in larger
    /// arrays.
    #[must_use]
    pub fn array_scaling_fraction(&self) -> f64 {
        let ratio = self.cache_bytes as f64 / (64.0 * 1024.0);
        // ±10 % swing per factor-of-four capacity change around the 64 KB
        // anchor, clamped to a sane range.
        (ARRAY_SCALING_64KB * (1.0 - 0.05 * ratio.log2() / 2.0)).clamp(0.25, 0.55)
    }

    /// Normalized power (baseline = 100) of the data array with RW bits at
    /// the given tracking resolution — the quantity plotted in Fig. 3.
    #[must_use]
    pub fn normalized_rw_power(&self, resolution_bytes: usize) -> f64 {
        let data_bits = self.line_bytes * 8;
        let baseline_bits = data_bits + self.tag_bits;
        let extra_bits = self.rw_bits_per_line(resolution_bytes);
        let width_increase = extra_bits as f64 / baseline_bits as f64;
        BASELINE_UNITS * (1.0 + self.array_scaling_fraction() * width_increase)
    }

    /// The Fig. 3 series for this cache size: `(resolution_bytes, power)` for
    /// resolutions from the full line down to one byte (powers of two).
    #[must_use]
    pub fn fig3_series(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut res = self.line_bytes;
        while res >= 1 {
            out.push((res, self.normalized_rw_power(res)));
            res /= 2;
        }
        out
    }

    /// Power of the store-address FIFO, normalized to the baseline cache.
    ///
    /// The paper sizes the FIFO at one entry per cache line (1024 × 10 bits
    /// for 64 KB / 64 B). We scale its power with its capacity relative to
    /// the data array.
    #[must_use]
    pub fn store_fifo_power(&self) -> f64 {
        let fifo_bits = self.lines() as f64 * 10.0;
        let array_bits = (self.cache_bytes * 8) as f64;
        // Flip-flop based FIFOs burn considerably more power per bit than
        // SRAM, hence the large per-bit weight (calibrated against the 1.5x
        // total below).
        BASELINE_UNITS * (fifo_bits / array_bits) * 20.0
    }

    /// Power of the commit controller and related control circuitry,
    /// normalized to the baseline cache (resolution independent).
    #[must_use]
    pub fn commit_controller_power(&self) -> f64 {
        BASELINE_UNITS * 0.20
    }

    /// The Table I data-cache power factor implied by this cache geometry:
    /// the analytical TCC factor at word (2-byte) tracking, quantized to the
    /// half-unit precision at which the paper quotes it ("conservatively
    /// 1.5×"). At the paper's 64 KB geometry this derivation produces
    /// exactly 1.5, which is what [`crate::model::PowerModelConfig`] feeds
    /// into the Table I commit/miss factors — the constant is no longer
    /// hard-coded independently of this model, so recalibrating the cache
    /// model far enough to move the quantized factor shows up in Table I
    /// (and its pinned tests) immediately.
    #[must_use]
    pub fn table1_dcache_factor(&self) -> f64 {
        (self.tcc_breakdown(2).factor() * 2.0).round() / 2.0
    }

    /// Full breakdown of the TCC data-cache power at a given RW resolution.
    #[must_use]
    pub fn tcc_breakdown(&self, resolution_bytes: usize) -> TccCacheBreakdown {
        let array_with_rw = self.normalized_rw_power(resolution_bytes);
        let fifo = self.store_fifo_power();
        let controller = self.commit_controller_power();
        TccCacheBreakdown {
            baseline: BASELINE_UNITS,
            array_with_rw_bits: array_with_rw,
            store_fifo: fifo,
            commit_controller: controller,
        }
    }
}

/// Power breakdown of a TCC data cache (all values normalized to the
/// conventional cache at 100).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TccCacheBreakdown {
    /// The conventional cache (normalization base).
    pub baseline: f64,
    /// Data array including the RW tracking bits.
    pub array_with_rw_bits: f64,
    /// Store-address FIFO.
    pub store_fifo: f64,
    /// Commit controller and other control circuitry.
    pub commit_controller: f64,
}

impl TccCacheBreakdown {
    /// Total TCC data-cache power (normalized).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.array_with_rw_bits + self.store_fifo + self.commit_controller
    }

    /// Factor relative to the conventional cache (the paper quotes ~1.5×).
    #[must_use]
    pub fn factor(&self) -> f64 {
        self.total() / self.baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_tracking_on_64kb_costs_about_five_percent() {
        let m = CachePowerModel::new_kb(64);
        let p = m.normalized_rw_power(2);
        assert!(
            (p - 105.0).abs() < 1.0,
            "64KB @ 2B tracking should be ~105 units, got {p:.2}"
        );
    }

    #[test]
    fn finer_resolution_costs_more_power() {
        let m = CachePowerModel::new_kb(64);
        let series = m.fig3_series();
        // Resolutions go 64,32,...,1: power must be strictly increasing.
        for pair in series.windows(2) {
            assert!(
                pair[1].1 > pair[0].1,
                "power must grow as tracking gets finer: {series:?}"
            );
        }
    }

    #[test]
    fn line_granularity_overhead_is_small() {
        let m = CachePowerModel::new_kb(64);
        let p = m.normalized_rw_power(64);
        assert!(p < 101.0, "2 bits per line must cost well under 1%: {p}");
        assert!(p > 100.0);
    }

    #[test]
    fn fig3_series_covers_64_down_to_1_byte() {
        let m = CachePowerModel::new_kb(64);
        let res: Vec<usize> = m.fig3_series().iter().map(|(r, _)| *r).collect();
        assert_eq!(res, vec![64, 32, 16, 8, 4, 2, 1]);
    }

    #[test]
    fn rw_bits_per_line_counts_read_and_write_bits() {
        let m = CachePowerModel::new_kb(64);
        assert_eq!(m.rw_bits_per_line(64), 2);
        assert_eq!(m.rw_bits_per_line(2), 64);
        assert_eq!(m.rw_bits_per_line(1), 128);
    }

    #[test]
    fn full_tcc_cache_is_about_one_and_a_half_times() {
        let m = CachePowerModel::new_kb(64);
        let b = m.tcc_breakdown(2);
        assert!(
            (1.35..=1.65).contains(&b.factor()),
            "total TCC cache factor should be ~1.5x, got {:.2}",
            b.factor()
        );
    }

    #[test]
    fn table1_factor_derives_to_exactly_one_and_a_half_at_the_paper_geometry() {
        // Satellite invariant: the Table I factor is *derived* from the swept
        // L1 geometry (analytical factor quantized to the paper's half-unit
        // precision), and at the paper's 64 KB point the derivation lands on
        // exactly the quoted 1.5.
        let m = CachePowerModel::new_kb(64);
        assert_eq!(m.table1_dcache_factor(), 1.5);
        // The derivation is stable across the swept geometries (the
        // analytical factor stays within the same half-unit bucket).
        for kb in [16usize, 32, 128] {
            assert_eq!(CachePowerModel::new_kb(kb).table1_dcache_factor(), 1.5);
        }
    }

    #[test]
    fn larger_caches_have_relatively_smaller_rw_overhead() {
        let small = CachePowerModel::new_kb(16).normalized_rw_power(2);
        let large = CachePowerModel::new_kb(128).normalized_rw_power(2);
        assert!(
            large < small,
            "the periphery amortizes better in larger arrays"
        );
    }

    #[test]
    fn lines_computed_from_geometry() {
        assert_eq!(CachePowerModel::new_kb(64).lines(), 1024);
        assert_eq!(CachePowerModel::new_kb(16).lines(), 256);
    }

    #[test]
    #[should_panic]
    fn zero_resolution_rejected() {
        let _ = CachePowerModel::new_kb(64).rw_bits_per_line(0);
    }
}
