//! Interval accounting for the paper's energy equations (Section IV).
//!
//! Equation (1) of the paper expresses the gated-execution energy `Eg` in
//! terms of:
//!
//! * `Xi` — the total time during which *exactly i* processors were
//!   "gated, waiting for a cache miss, or performing commit",
//! * `αi` — the (weighted) proportion of those processors that were serving a
//!   cache miss,
//! * `βi` — the proportion that were performing a commit.
//!
//! Equation (5) does the same for the ungated run with `Yi` / `δi`.
//!
//! [`IntervalTracker`] collects exactly these quantities: every simulated
//! cycle the engine reports how many processors are gated, miss-stalled and
//! committing, and the tracker accumulates the per-`i` interval lengths and
//! the weighted miss / commit sums. The power crate then evaluates the
//! closed-form equations from this data and cross-checks them against the
//! direct per-processor accounting.

use serde::{Deserialize, Serialize};

use crate::checkpoint::{CkptError, CkptReader, CkptWriter};
use crate::Cycle;

/// One run-length-encoded segment of the per-cycle population counts fed to
/// an [`IntervalTracker`]: for `cycles` consecutive cycles, exactly `gated` /
/// `missing` / `committing` / `throttled` processors were in the respective
/// state.
///
/// The tracker's accumulated state is a pure function of the per-cycle count
/// sequence (segmentation does not matter), so a run can log its records as
/// segments, combine them with another run's log cycle-by-cycle and replay
/// the sum into a fresh tracker — this is how the island-parallel engine
/// merges per-lane interval data into the exact tracker a serial run of the
/// whole machine would have produced (see `docs/SCALING.md`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalSeg {
    /// Number of consecutive cycles with these counts.
    pub cycles: u64,
    /// Processors clock-gated.
    pub gated: usize,
    /// Processors stalled on a cache miss.
    pub missing: usize,
    /// Processors flushing a commit.
    pub committing: usize,
    /// Processors in the DVFS-style throttled state.
    pub throttled: usize,
}

impl IntervalSeg {
    /// Whether two segments carry identical counts (and can be coalesced).
    #[must_use]
    pub fn same_counts(&self, other: &IntervalSeg) -> bool {
        self.gated == other.gated
            && self.missing == other.missing
            && self.committing == other.committing
            && self.throttled == other.throttled
    }
}

/// Cycle-wise sum of several run-length-encoded segment logs plus a constant
/// baseline, emitted as maximal coalesced segments.
///
/// Every log must cover exactly `total` cycles. For each simulated cycle the
/// counts of all logs and the baseline are added; runs of identical summed
/// counts are coalesced before being handed to `emit`. This is the shared
/// merge primitive of the parallel engines: the island runner zip-sums
/// per-lane logs over the whole run, and the windowed engine zip-sums
/// per-group logs (baseline = the parked processors' constant counts) over
/// one lookahead window at each barrier. Replaying the emitted segments into
/// an [`IntervalTracker`] reproduces, bit for bit, the records a serial run
/// would have accumulated over the same cycles.
///
/// # Panics
/// Panics if any log covers fewer than `total` cycles (extra tail cycles
/// beyond `total` are ignored, which lets callers pad lazily).
pub fn zip_sum_segments(
    logs: &[Vec<IntervalSeg>],
    base: IntervalSeg,
    total: u64,
    mut emit: impl FnMut(IntervalSeg),
) {
    if total == 0 {
        return;
    }
    // One cursor per log: (segment index, cycles consumed in that segment).
    let mut cursors = vec![(0usize, 0u64); logs.len()];
    let mut remaining = total;
    let mut pending: Option<IntervalSeg> = None;
    while remaining > 0 {
        let mut span = remaining;
        let mut sum = base;
        for (log, cursor) in logs.iter().zip(cursors.iter()) {
            let seg = log
                .get(cursor.0)
                .unwrap_or_else(|| panic!("segment log shorter than {total} cycles"));
            span = span.min(seg.cycles - cursor.1);
            sum.gated += seg.gated;
            sum.missing += seg.missing;
            sum.committing += seg.committing;
            sum.throttled += seg.throttled;
        }
        sum.cycles = span;
        for (log, cursor) in logs.iter().zip(cursors.iter_mut()) {
            cursor.1 += span;
            if cursor.1 == log[cursor.0].cycles {
                cursor.0 += 1;
                cursor.1 = 0;
            }
        }
        remaining -= span;
        match &mut pending {
            Some(p) if p.same_counts(&sum) => p.cycles += span,
            Some(p) => {
                emit(*p);
                *p = sum;
            }
            None => pending = Some(sum),
        }
    }
    if let Some(p) = pending {
        emit(p);
    }
}

/// Accumulated interval data for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalTracker {
    /// Number of processors `p` in the system.
    num_procs: usize,
    /// `x[i]` = number of cycles during which exactly `i` processors were in
    /// a low-power-relevant state (gated + miss + commit). Index `0..=p`.
    x: Vec<u64>,
    /// `miss_weight[i]` = Σ over those cycles of the number of processors
    /// serving a miss (the numerator of Eq. 3 with Δ = 1 cycle).
    miss_weight: Vec<u64>,
    /// `commit_weight[i]` = Σ over those cycles of the number of processors
    /// performing commit (numerator of Eq. 4).
    commit_weight: Vec<u64>,
    /// `gate_weight[i]` = Σ of gated processors (the residual `1 - α - β`).
    gate_weight: Vec<u64>,
    /// `throttle_weight[i]` = Σ of DVFS-throttled processors. The paper's
    /// machine has no such state; the weight stays all-zero unless the
    /// `throttle` contention policy is active.
    throttle_weight: Vec<u64>,
    /// Total number of cycles recorded (the parallel-section length `N`).
    total_cycles: Cycle,
}

impl IntervalTracker {
    /// Create a tracker for a `num_procs`-processor system.
    #[must_use]
    pub fn new(num_procs: usize) -> Self {
        Self {
            num_procs,
            x: vec![0; num_procs + 1],
            miss_weight: vec![0; num_procs + 1],
            commit_weight: vec![0; num_procs + 1],
            gate_weight: vec![0; num_procs + 1],
            throttle_weight: vec![0; num_procs + 1],
            total_cycles: 0,
        }
    }

    /// Record `cycles` consecutive cycles during which `gated` processors were
    /// clock-gated, `missing` were stalled on a cache miss and `committing`
    /// were flushing their write set (no processor throttled — the paper's
    /// machine; see [`Self::record_with_throttle`]).
    ///
    /// # Panics
    /// Panics if the three categories sum to more than the number of
    /// processors (a processor can only be in one of them at a time).
    pub fn record(&mut self, cycles: u64, gated: usize, missing: usize, committing: usize) {
        self.record_with_throttle(cycles, gated, missing, committing, 0);
    }

    /// [`Self::record`] with a fourth low-power category: processors in the
    /// DVFS-style throttled state of the `throttle` contention policy.
    ///
    /// # Panics
    /// Panics if the four categories sum to more than the number of
    /// processors (a processor can only be in one of them at a time).
    pub fn record_with_throttle(
        &mut self,
        cycles: u64,
        gated: usize,
        missing: usize,
        committing: usize,
        throttled: usize,
    ) {
        let i = gated + missing + committing + throttled;
        assert!(
            i <= self.num_procs,
            "more low-power processors ({i}) than processors ({})",
            self.num_procs
        );
        self.x[i] += cycles;
        self.miss_weight[i] += cycles * missing as u64;
        self.commit_weight[i] += cycles * committing as u64;
        self.gate_weight[i] += cycles * gated as u64;
        self.throttle_weight[i] += cycles * throttled as u64;
        self.total_cycles += cycles;
    }

    /// Serialize the accumulated interval data into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_usize(self.num_procs);
        w.put_u64_slice(&self.x);
        w.put_u64_slice(&self.miss_weight);
        w.put_u64_slice(&self.commit_weight);
        w.put_u64_slice(&self.gate_weight);
        w.put_u64_slice(&self.throttle_weight);
        w.put_u64(self.total_cycles);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        let num_procs = r.get_usize()?;
        let tracker = Self {
            num_procs,
            x: r.get_u64_vec()?,
            miss_weight: r.get_u64_vec()?,
            commit_weight: r.get_u64_vec()?,
            gate_weight: r.get_u64_vec()?,
            throttle_weight: r.get_u64_vec()?,
            total_cycles: r.get_u64()?,
        };
        if tracker.x.len() != num_procs + 1
            || tracker.miss_weight.len() != num_procs + 1
            || tracker.commit_weight.len() != num_procs + 1
            || tracker.gate_weight.len() != num_procs + 1
            || tracker.throttle_weight.len() != num_procs + 1
        {
            return Err(CkptError::Corrupt(format!(
                "interval tracker arrays do not match {num_procs} processors"
            )));
        }
        Ok(tracker)
    }

    /// Build a tracker by replaying a segment log, e.g. the cycle-by-cycle
    /// sum of several per-lane logs produced by the island-parallel engine.
    ///
    /// ```
    /// use htm_sim::interval::{IntervalSeg, IntervalTracker};
    ///
    /// let mut direct = IntervalTracker::new(4);
    /// direct.record_with_throttle(10, 1, 1, 0, 0);
    /// direct.record_with_throttle(5, 0, 0, 2, 0);
    /// let log = [
    ///     IntervalSeg { cycles: 10, gated: 1, missing: 1, committing: 0, throttled: 0 },
    ///     IntervalSeg { cycles: 5, gated: 0, missing: 0, committing: 2, throttled: 0 },
    /// ];
    /// assert_eq!(IntervalTracker::from_segments(4, &log), direct);
    /// ```
    #[must_use]
    pub fn from_segments(num_procs: usize, segments: &[IntervalSeg]) -> Self {
        let mut tracker = Self::new(num_procs);
        for seg in segments {
            tracker.record_with_throttle(
                seg.cycles,
                seg.gated,
                seg.missing,
                seg.committing,
                seg.throttled,
            );
        }
        tracker
    }

    /// Number of processors `p`.
    #[must_use]
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// Total recorded cycles (the parallel-section execution time).
    #[must_use]
    pub fn total_cycles(&self) -> Cycle {
        self.total_cycles
    }

    /// `Xi` for a given `i` (cycles with exactly `i` low-power processors).
    #[must_use]
    pub fn x(&self, i: usize) -> u64 {
        self.x[i]
    }

    /// `αi`: weighted fraction of the `i` low-power processors that were
    /// serving a cache miss (Eq. 3). Returns 0 when `Xi = 0` or `i = 0`.
    #[must_use]
    pub fn alpha(&self, i: usize) -> f64 {
        if i == 0 || self.x[i] == 0 {
            0.0
        } else {
            self.miss_weight[i] as f64 / (i as f64 * self.x[i] as f64)
        }
    }

    /// `βi`: weighted fraction performing commit (Eq. 4).
    #[must_use]
    pub fn beta(&self, i: usize) -> f64 {
        if i == 0 || self.x[i] == 0 {
            0.0
        } else {
            self.commit_weight[i] as f64 / (i as f64 * self.x[i] as f64)
        }
    }

    /// Weighted fraction that was clock-gated (`1 - αi - βi` in the paper;
    /// with the throttled extension the residual is `1 - αi - βi - δi`).
    #[must_use]
    pub fn gamma(&self, i: usize) -> f64 {
        if i == 0 || self.x[i] == 0 {
            0.0
        } else {
            self.gate_weight[i] as f64 / (i as f64 * self.x[i] as f64)
        }
    }

    /// `δi`: weighted fraction of the `i` low-power processors that were in
    /// the DVFS-style throttled state (zero everywhere unless the `throttle`
    /// contention policy ran).
    #[must_use]
    pub fn delta(&self, i: usize) -> f64 {
        if i == 0 || self.x[i] == 0 {
            0.0
        } else {
            self.throttle_weight[i] as f64 / (i as f64 * self.x[i] as f64)
        }
    }

    /// Total processor-cycles spent gated, across all intervals.
    #[must_use]
    pub fn total_gated_proc_cycles(&self) -> u64 {
        self.gate_weight.iter().sum()
    }

    /// Total processor-cycles spent miss-stalled.
    #[must_use]
    pub fn total_miss_proc_cycles(&self) -> u64 {
        self.miss_weight.iter().sum()
    }

    /// Total processor-cycles spent committing.
    #[must_use]
    pub fn total_commit_proc_cycles(&self) -> u64 {
        self.commit_weight.iter().sum()
    }

    /// Total processor-cycles spent DVFS-throttled.
    #[must_use]
    pub fn total_throttled_proc_cycles(&self) -> u64 {
        self.throttle_weight.iter().sum()
    }

    /// Total processor-cycles spent in any low-power state (gated + miss +
    /// commit + throttled), i.e. `Σ Xi · i`.
    #[must_use]
    pub fn total_low_power_proc_cycles(&self) -> u64 {
        self.total_gated_proc_cycles()
            + self.total_miss_proc_cycles()
            + self.total_commit_proc_cycles()
            + self.total_throttled_proc_cycles()
    }

    /// Total processor-cycles spent at full run power, derived from the
    /// interval decomposition: `N·p − Σ Xi · i` — the run-power tally the
    /// Eq. 1 / Eq. 5 interval formulation charges (the energy ledger's
    /// interval-side cross-check evaluates the same expression).
    #[must_use]
    pub fn total_run_proc_cycles(&self) -> u64 {
        self.total_cycles * self.num_procs as u64 - self.total_low_power_proc_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_intervals() {
        let mut t = IntervalTracker::new(4);
        t.record(10, 1, 1, 0); // i = 2
        t.record(5, 0, 0, 0); // i = 0
        t.record(3, 2, 1, 1); // i = 4
        assert_eq!(t.total_cycles(), 18);
        assert_eq!(t.x(2), 10);
        assert_eq!(t.x(0), 5);
        assert_eq!(t.x(4), 3);
        assert_eq!(t.x(1), 0);
    }

    #[test]
    fn alpha_beta_gamma_partition_unity() {
        let mut t = IntervalTracker::new(8);
        t.record(7, 2, 3, 1); // i = 6
        let i = 6;
        let total = t.alpha(i) + t.beta(i) + t.gamma(i);
        assert!((total - 1.0).abs() < 1e-12);
        assert!((t.alpha(i) - 0.5).abs() < 1e-12);
        assert!((t.beta(i) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_of_empty_interval_is_zero() {
        let t = IntervalTracker::new(4);
        assert_eq!(t.alpha(2), 0.0);
        assert_eq!(t.beta(2), 0.0);
        assert_eq!(t.gamma(0), 0.0);
    }

    #[test]
    fn weighted_mixture_of_intervals() {
        let mut t = IntervalTracker::new(4);
        // Two different compositions at the same i = 2.
        t.record(10, 0, 2, 0); // all missing
        t.record(10, 0, 0, 2); // all committing
        assert!((t.alpha(2) - 0.5).abs() < 1e-12);
        assert!((t.beta(2) - 0.5).abs() < 1e-12);
        assert_eq!(t.gamma(2), 0.0);
    }

    #[test]
    fn totals_by_category() {
        let mut t = IntervalTracker::new(4);
        t.record(4, 1, 2, 1);
        t.record(6, 0, 1, 0);
        assert_eq!(t.total_gated_proc_cycles(), 4);
        assert_eq!(t.total_miss_proc_cycles(), 8 + 6);
        assert_eq!(t.total_commit_proc_cycles(), 4);
    }

    #[test]
    fn run_and_low_power_proc_cycles_partition_the_total() {
        let mut t = IntervalTracker::new(4);
        t.record(4, 1, 2, 1); // 4 cycles, all 4 procs in low-power states
        t.record(6, 0, 1, 0); // 6 cycles, 1 proc missing, 3 running
        assert_eq!(t.total_low_power_proc_cycles(), 16 + 6);
        assert_eq!(t.total_run_proc_cycles(), 4 * 10 - 22);
        assert_eq!(
            t.total_run_proc_cycles() + t.total_low_power_proc_cycles(),
            4 * t.total_cycles()
        );
    }

    #[test]
    #[should_panic(expected = "more low-power processors")]
    fn rejects_overcount() {
        let mut t = IntervalTracker::new(2);
        t.record(1, 1, 1, 1);
    }

    #[test]
    fn zip_sum_matches_cycle_by_cycle_addition() {
        let seg = |cycles, gated, missing, committing, throttled| IntervalSeg {
            cycles,
            gated,
            missing,
            committing,
            throttled,
        };
        // Two logs with different segmentations of the same 10 cycles, plus
        // a parked baseline of one permanently gated processor.
        let a = vec![seg(4, 1, 0, 0, 0), seg(6, 0, 1, 0, 0)];
        let b = vec![seg(7, 0, 0, 1, 0), seg(3, 0, 0, 0, 2)];
        let base = seg(0, 1, 0, 0, 0);
        let mut merged = Vec::new();
        zip_sum_segments(&[a, b], base, 10, |s| merged.push(s));
        assert_eq!(
            merged,
            vec![seg(4, 2, 0, 1, 0), seg(3, 1, 1, 1, 0), seg(3, 1, 1, 0, 2),]
        );
        assert_eq!(merged.iter().map(|s| s.cycles).sum::<u64>(), 10);
        // Adjacent equal-count spans coalesce across input boundaries.
        let c = vec![seg(5, 1, 0, 0, 0), seg(5, 1, 0, 0, 0)];
        let mut out = Vec::new();
        zip_sum_segments(&[c], IntervalSeg::default(), 10, |s| out.push(s));
        assert_eq!(out, vec![seg(10, 1, 0, 0, 0)]);
        // No logs: the baseline is emitted for the whole span.
        let mut only_base = Vec::new();
        zip_sum_segments(&[], seg(0, 0, 2, 0, 0), 7, |s| only_base.push(s));
        assert_eq!(only_base, vec![seg(7, 0, 2, 0, 0)]);
    }

    #[test]
    fn throttled_processors_join_the_low_power_decomposition() {
        let mut t = IntervalTracker::new(4);
        t.record_with_throttle(10, 1, 1, 0, 2); // i = 4
        assert_eq!(t.x(4), 10);
        assert!((t.delta(4) - 0.5).abs() < 1e-12);
        let unity = t.alpha(4) + t.beta(4) + t.gamma(4) + t.delta(4);
        assert!((unity - 1.0).abs() < 1e-12);
        assert_eq!(t.total_throttled_proc_cycles(), 20);
        assert_eq!(t.total_low_power_proc_cycles(), 40);
        assert_eq!(t.total_run_proc_cycles(), 0);
        // The 4-argument `record` is the throttle-free special case.
        let mut u = IntervalTracker::new(4);
        u.record(10, 1, 1, 0);
        assert_eq!(u.delta(2), 0.0);
        assert_eq!(u.total_throttled_proc_cycles(), 0);
    }
}
