//! # htm-sim — deterministic cycle-driven simulation engine
//!
//! This crate is the timing substrate used by the *Clock Gate on Abort*
//! reproduction. The original paper evaluates its proposal inside the M5
//! full-system simulator; we replace M5 with a compact, deterministic,
//! cycle-driven engine that provides exactly the facilities the protocol and
//! power models need:
//!
//! * a global [`Cycle`] counter and helpers for latency arithmetic,
//! * [`config::SimConfig`], the machine description of Table II of the paper
//!   (core count, L1 geometry, bus, directory and memory latencies),
//! * [`queue::TimedQueue`], a delivery-time-ordered message queue used for
//!   every point-to-point message in the coherence / commit protocol,
//! * [`bus::SplitTransactionBus`], an occupancy-modelling split-transaction
//!   bus with round-robin arbitration,
//! * [`port::SinglePortResource`], a single-ported resource model used for
//!   the main memory (Table II: "Single Read/Write Port"),
//! * [`rng::DeterministicRng`], a seedable, portable PRNG so that every
//!   simulation run is bit-for-bit reproducible,
//! * [`stats`] and [`interval`], the statistic collectors feeding the
//!   energy-accounting equations (Eqs. 1–7) of the paper.
//!
//! The engine is intentionally synchronous and single-threaded *per
//! simulation*: determinism and debuggability of the protocol matter more
//! than raw simulation speed, and the experiment harness parallelises across
//! independent simulations instead.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bus;
pub mod config;
pub mod interval;
pub mod port;
pub mod queue;
pub mod rng;
pub mod stats;

/// A simulation cycle (one tick of the global clock).
///
/// All latencies in the simulator are expressed in cycles of the processor
/// clock; the directories and the bus are modelled as running on the same
/// clock, matching the paper's single-clock-domain timing parameters
/// (Table II).
pub type Cycle = u64;

/// Identifier of a processor (core) in the simulated system.
pub type ProcId = usize;

/// Identifier of a directory (home node) in the simulated system.
pub type DirId = usize;

/// Saturating cycle addition helper.
///
/// Timer arithmetic in the gating protocol can produce very large renewal
/// windows (the staircase back-off of Eq. 8 doubles at exponentially spaced
/// abort counts); saturating arithmetic keeps that well-defined.
#[inline]
#[must_use]
pub fn cycles_after(now: Cycle, latency: u64) -> Cycle {
    now.saturating_add(latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_after_adds_latency() {
        assert_eq!(cycles_after(10, 5), 15);
    }

    #[test]
    fn cycles_after_saturates() {
        assert_eq!(cycles_after(Cycle::MAX - 1, 10), Cycle::MAX);
    }
}
