//! # htm-sim — deterministic cycle-driven simulation engine
//!
//! This crate is the timing substrate used by the *Clock Gate on Abort*
//! reproduction. The original paper evaluates its proposal inside the M5
//! full-system simulator; we replace M5 with a compact, deterministic,
//! cycle-driven engine that provides exactly the facilities the protocol and
//! power models need:
//!
//! * a global [`Cycle`] counter and helpers for latency arithmetic,
//! * [`config::SimConfig`], the machine description of Table II of the paper
//!   (core count, L1 geometry, bus, directory and memory latencies),
//! * [`queue::TimedQueue`], a delivery-time-ordered message queue used for
//!   every point-to-point message in the coherence / commit protocol,
//! * [`bus::SplitTransactionBus`], an occupancy-modelling split-transaction
//!   bus with round-robin arbitration,
//! * [`port::SinglePortResource`], a single-ported resource model used for
//!   the main memory (Table II: "Single Read/Write Port"),
//! * [`rng::DeterministicRng`], a seedable, portable PRNG so that every
//!   simulation run is bit-for-bit reproducible,
//! * [`stats`] and [`interval`], the statistic collectors feeding the
//!   energy-accounting equations (Eqs. 1–7) of the paper.
//!
//! Every simulation is deterministic and single-threaded. Raw speed comes
//! from two places layered above this crate: the `htm-tcc` system drives
//! these components with an event-driven fast-forward engine that leaps
//! over quiescent windows instead of ticking them cycle by cycle (the
//! one-step-per-cycle reference engine is retained for differential
//! testing; see `DESIGN.md`), and the experiment/sweep harnesses
//! parallelise across independent simulations.
//!
//! ```
//! use htm_sim::{cycles_after, config::SimConfig, ProcSet};
//!
//! // Table II machine description for 8 cores, with latency arithmetic and
//! // the full-bit-vector processor sets used throughout the protocol.
//! let cfg = SimConfig::table2(8);
//! assert_eq!(cfg.l1_sets(), 512);
//! let sharers: ProcSet = [0usize, 3, 7].into_iter().collect();
//! assert!(sharers.contains(3) && sharers.len() == 3);
//! assert_eq!(cycles_after(100, cfg.memory_latency), 200);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bus;
pub mod config;
pub mod fxhash;
pub mod interval;
pub mod port;
pub mod queue;
pub mod rng;
pub mod stats;

/// A simulation cycle (one tick of the global clock).
///
/// All latencies in the simulator are expressed in cycles of the processor
/// clock; the directories and the bus are modelled as running on the same
/// clock, matching the paper's single-clock-domain timing parameters
/// (Table II).
pub type Cycle = u64;

/// Identifier of a processor (core) in the simulated system.
pub type ProcId = usize;

/// Identifier of a directory (home node) in the simulated system.
pub type DirId = usize;

/// Saturating cycle addition helper.
///
/// Timer arithmetic in the gating protocol can produce very large renewal
/// windows (the staircase back-off of Eq. 8 doubles at exponentially spaced
/// abort counts); saturating arithmetic keeps that well-defined.
#[inline]
#[must_use]
pub fn cycles_after(now: Cycle, latency: u64) -> Cycle {
    now.saturating_add(latency)
}

/// A set of processors stored as a 64-bit full-bit vector (Table II limits
/// the machine to at most 64 cores).
///
/// Used on the simulator's hot path wherever the directory protocol needs to
/// hand a group of processors around (sharer vectors, invalidation victims):
/// iterating the bitmask directly avoids the per-event `Vec<ProcId>`
/// allocations the naive implementation paid every committed line.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcSet(u64);

impl ProcSet {
    /// The empty set.
    #[must_use]
    pub const fn empty() -> Self {
        Self(0)
    }

    /// Build a set from a raw bit vector (bit `p` set ⇔ processor `p` is a
    /// member).
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        Self(bits)
    }

    /// The raw bit vector.
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Whether `proc` is a member.
    #[must_use]
    pub const fn contains(self, proc: ProcId) -> bool {
        proc < 64 && self.0 & (1u64 << proc) != 0
    }

    /// Number of members.
    #[must_use]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate the members in ascending processor-id order, allocation-free.
    #[must_use]
    pub fn iter(self) -> ProcSetIter {
        ProcSetIter(self.0)
    }
}

impl IntoIterator for ProcSet {
    type Item = ProcId;
    type IntoIter = ProcSetIter;

    fn into_iter(self) -> ProcSetIter {
        self.iter()
    }
}

impl FromIterator<ProcId> for ProcSet {
    fn from_iter<I: IntoIterator<Item = ProcId>>(iter: I) -> Self {
        let mut bits = 0u64;
        for p in iter {
            assert!(p < 64, "ProcSet limited to 64 processors");
            bits |= 1u64 << p;
        }
        Self(bits)
    }
}

/// Ascending-order iterator over a [`ProcSet`].
#[derive(Debug, Clone)]
pub struct ProcSetIter(u64);

impl Iterator for ProcSetIter {
    type Item = ProcId;

    fn next(&mut self) -> Option<ProcId> {
        if self.0 == 0 {
            None
        } else {
            let p = self.0.trailing_zeros() as ProcId;
            self.0 &= self.0 - 1;
            Some(p)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ProcSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_after_adds_latency() {
        assert_eq!(cycles_after(10, 5), 15);
    }

    #[test]
    fn cycles_after_saturates() {
        assert_eq!(cycles_after(Cycle::MAX - 1, 10), Cycle::MAX);
    }

    #[test]
    fn proc_set_iterates_in_ascending_order() {
        let s = ProcSet::from_bits(0b1010_0101);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 5, 7]);
        assert_eq!(s.len(), 4);
        assert!(s.contains(5));
        assert!(!s.contains(1));
        assert!(!s.is_empty());
    }

    #[test]
    fn proc_set_empty_and_from_iter_roundtrip() {
        assert!(ProcSet::empty().is_empty());
        assert_eq!(ProcSet::empty().iter().count(), 0);
        let s: ProcSet = [3usize, 9, 63].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 9, 63]);
        assert_eq!(s.bits(), (1 << 3) | (1 << 9) | (1 << 63));
    }
}
