//! # htm-sim — deterministic cycle-driven simulation engine
//!
//! This crate is the timing substrate used by the *Clock Gate on Abort*
//! reproduction. The original paper evaluates its proposal inside the M5
//! full-system simulator; we replace M5 with a compact, deterministic,
//! cycle-driven engine that provides exactly the facilities the protocol and
//! power models need:
//!
//! * a global [`Cycle`] counter and helpers for latency arithmetic,
//! * [`config::SimConfig`], the machine description of Table II of the paper
//!   (core count, L1 geometry, interconnect, directory and memory latencies),
//! * [`queue::TimedQueue`], a delivery-time-ordered message queue used for
//!   every point-to-point message in the coherence / commit protocol,
//! * [`bus::SplitTransactionBus`], an occupancy-modelling split-transaction
//!   bus with round-robin arbitration,
//! * [`topology`], the interconnect abstraction behind which the legacy
//!   shared bus and the banked/sharded point-to-point fabrics live
//!   ([`topology::Topology`], [`topology::Interconnect`]),
//! * [`port::SinglePortResource`], a single-ported resource model used for
//!   the main memory (Table II: "Single Read/Write Port"),
//! * [`rng::DeterministicRng`], a seedable, portable PRNG so that every
//!   simulation run is bit-for-bit reproducible,
//! * [`stats`] and [`interval`], the statistic collectors feeding the
//!   energy-accounting equations (Eqs. 1–7) of the paper.
//!
//! Every simulation is deterministic and bit-reproducible. Raw speed comes
//! from the layers above this crate: the `htm-tcc` system drives these
//! components with an event-driven fast-forward engine that leaps over
//! quiescent windows instead of ticking them cycle by cycle (the
//! one-step-per-cycle reference engine is retained for differential
//! testing), on sharded topologies a single large run is additionally split
//! into independent interconnect islands advanced on parallel host threads
//! and merged deterministically (see `DESIGN.md` and `docs/SCALING.md`),
//! and the experiment/sweep harnesses parallelise across independent
//! simulations.
//!
//! ```
//! use htm_sim::{cycles_after, config::SimConfig, ProcSet};
//!
//! // Table II machine description for 8 cores, with latency arithmetic and
//! // the full-bit-vector processor sets used throughout the protocol.
//! let cfg = SimConfig::table2(8);
//! assert_eq!(cfg.l1_sets(), 512);
//! let sharers: ProcSet = [0usize, 3, 7].into_iter().collect();
//! assert!(sharers.contains(3) && sharers.len() == 3);
//! assert_eq!(cycles_after(100, cfg.memory_latency), 200);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize};

pub mod bus;
pub mod checkpoint;
pub mod config;
pub mod fxhash;
pub mod interval;
pub mod pool;
pub mod port;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod topology;

/// A simulation cycle (one tick of the global clock).
///
/// All latencies in the simulator are expressed in cycles of the processor
/// clock; the directories and the interconnect are modelled as running on
/// the same clock, matching the paper's single-clock-domain timing
/// parameters (Table II).
pub type Cycle = u64;

/// Identifier of a processor (core) in the simulated system.
pub type ProcId = usize;

/// Identifier of a directory (home node) in the simulated system.
pub type DirId = usize;

/// Number of 64-bit words backing a [`ProcSet`].
const PROC_SET_WORDS: usize = 16;

/// Largest processor count any simulated machine can have (the width of the
/// full-bit sharer/marked vectors kept by the directories).
///
/// The paper's Table II machine stops at 16 processors on a bus; the sharded
/// topologies scale the same protocol state to 1024-wide bit vectors.
pub const MAX_PROCS: usize = PROC_SET_WORDS * 64;

/// Saturating cycle addition helper.
///
/// Timer arithmetic in the gating protocol can produce very large renewal
/// windows (the staircase back-off of Eq. 8 doubles at exponentially spaced
/// abort counts); saturating arithmetic keeps that well-defined.
#[inline]
#[must_use]
pub fn cycles_after(now: Cycle, latency: u64) -> Cycle {
    now.saturating_add(latency)
}

/// A set of processors stored as a [`MAX_PROCS`]-wide full-bit vector.
///
/// Used on the simulator's hot path wherever the directory protocol needs to
/// hand a group of processors around (sharer vectors, invalidation victims,
/// the engine's active/spinner masks): iterating the bitmask directly avoids
/// the per-event `Vec<ProcId>` allocations the naive implementation paid
/// every committed line. Single-bit operations index one word, so they stay
/// O(1) regardless of the machine size.
///
/// ```
/// use htm_sim::ProcSet;
///
/// let mut set = ProcSet::empty();
/// set.insert(3);
/// set.insert(900); // well beyond the old 64-core bus limit
/// assert!(set.contains(900) && !set.contains(899));
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 900]);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcSet([u64; PROC_SET_WORDS]);

impl ProcSet {
    /// The empty set.
    #[must_use]
    pub const fn empty() -> Self {
        Self([0; PROC_SET_WORDS])
    }

    /// Build a set of the first 64 processors from a raw bit vector (bit `p`
    /// set ⇔ processor `p` is a member).
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        let mut words = [0; PROC_SET_WORDS];
        words[0] = bits;
        Self(words)
    }

    /// The low 64 bits of the vector (membership of processors 0–63); only a
    /// complete picture on machines with at most 64 processors.
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.0[0]
    }

    /// The set {0, 1, …, `n` − 1} of the first `n` processors.
    ///
    /// # Panics
    /// If `n` exceeds [`MAX_PROCS`].
    #[must_use]
    pub fn all(n: usize) -> Self {
        assert!(n <= MAX_PROCS, "ProcSet limited to {MAX_PROCS} processors");
        let mut words = [0; PROC_SET_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            let low = i * 64;
            if n >= low + 64 {
                *w = u64::MAX;
            } else if n > low {
                *w = (1u64 << (n - low)) - 1;
            }
        }
        Self(words)
    }

    /// Whether `proc` is a member.
    #[must_use]
    pub const fn contains(self, proc: ProcId) -> bool {
        proc < MAX_PROCS && self.0[proc / 64] & (1u64 << (proc % 64)) != 0
    }

    /// Add `proc` to the set.
    ///
    /// # Panics
    /// If `proc` is not below [`MAX_PROCS`].
    #[inline]
    pub fn insert(&mut self, proc: ProcId) {
        assert!(
            proc < MAX_PROCS,
            "ProcSet limited to {MAX_PROCS} processors"
        );
        self.0[proc / 64] |= 1u64 << (proc % 64);
    }

    /// Remove `proc` from the set (a no-op if it is not a member).
    #[inline]
    pub fn remove(&mut self, proc: ProcId) {
        if proc < MAX_PROCS {
            self.0[proc / 64] &= !(1u64 << (proc % 64));
        }
    }

    /// The set without `proc` (the original is unchanged).
    #[must_use]
    pub fn without(mut self, proc: ProcId) -> Self {
        self.remove(proc);
        self
    }

    /// Number of members.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// Iterate the members in ascending processor-id order, allocation-free.
    #[must_use]
    pub fn iter(self) -> ProcSetIter {
        ProcSetIter {
            words: self.0,
            word: 0,
        }
    }
}

impl std::ops::BitOr for ProcSet {
    type Output = Self;

    fn bitor(mut self, rhs: Self) -> Self {
        self |= rhs;
        self
    }
}

impl std::ops::BitOrAssign for ProcSet {
    fn bitor_assign(&mut self, rhs: Self) {
        for (w, r) in self.0.iter_mut().zip(rhs.0) {
            *w |= r;
        }
    }
}

impl IntoIterator for ProcSet {
    type Item = ProcId;
    type IntoIter = ProcSetIter;

    fn into_iter(self) -> ProcSetIter {
        self.iter()
    }
}

impl FromIterator<ProcId> for ProcSet {
    fn from_iter<I: IntoIterator<Item = ProcId>>(iter: I) -> Self {
        let mut set = Self::empty();
        for p in iter {
            set.insert(p);
        }
        set
    }
}

/// Ascending-order iterator over a [`ProcSet`].
#[derive(Debug, Clone)]
pub struct ProcSetIter {
    words: [u64; PROC_SET_WORDS],
    word: usize,
}

impl Iterator for ProcSetIter {
    type Item = ProcId;

    fn next(&mut self) -> Option<ProcId> {
        while self.word < PROC_SET_WORDS {
            let w = self.words[self.word];
            if w == 0 {
                self.word += 1;
                continue;
            }
            let p = self.word * 64 + w.trailing_zeros() as usize;
            self.words[self.word] = w & (w - 1);
            return Some(p);
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.words[self.word.min(PROC_SET_WORDS - 1)..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (n, Some(n))
    }
}

impl ExactSizeIterator for ProcSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_after_adds_latency() {
        assert_eq!(cycles_after(10, 5), 15);
    }

    #[test]
    fn cycles_after_saturates() {
        assert_eq!(cycles_after(Cycle::MAX - 1, 10), Cycle::MAX);
    }

    #[test]
    fn proc_set_iterates_in_ascending_order() {
        let s = ProcSet::from_bits(0b1010_0101);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 5, 7]);
        assert_eq!(s.len(), 4);
        assert!(s.contains(5));
        assert!(!s.contains(1));
        assert!(!s.is_empty());
    }

    #[test]
    fn proc_set_empty_and_from_iter_roundtrip() {
        assert!(ProcSet::empty().is_empty());
        assert_eq!(ProcSet::empty().iter().count(), 0);
        let s: ProcSet = [3usize, 9, 63].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 9, 63]);
        assert_eq!(s.bits(), (1 << 3) | (1 << 9) | (1 << 63));
    }

    #[test]
    fn proc_set_spans_all_sixteen_words() {
        let members = [0usize, 63, 64, 127, 512, MAX_PROCS - 1];
        let s: ProcSet = members.into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), members);
        assert_eq!(s.len(), members.len());
        assert!(s.contains(MAX_PROCS - 1));
        assert!(!s.contains(MAX_PROCS - 2));
        assert_eq!(s.iter().len(), members.len());
    }

    #[test]
    fn proc_set_insert_remove_and_without() {
        let mut s = ProcSet::empty();
        s.insert(70);
        s.insert(900);
        assert!(s.contains(70) && s.contains(900));
        s.remove(70);
        assert!(!s.contains(70));
        let t = s.without(900);
        assert!(t.is_empty());
        assert!(s.contains(900), "without() must not mutate the original");
    }

    #[test]
    fn proc_set_all_builds_prefix_sets() {
        assert!(ProcSet::all(0).is_empty());
        assert_eq!(ProcSet::all(64).len(), 64);
        assert_eq!(ProcSet::all(65).iter().last(), Some(64));
        let full = ProcSet::all(MAX_PROCS);
        assert_eq!(full.len(), MAX_PROCS);
        assert!(full.contains(0) && full.contains(MAX_PROCS - 1));
    }

    #[test]
    fn proc_set_bitor_unions() {
        let a: ProcSet = [1usize, 100].into_iter().collect();
        let b: ProcSet = [2usize, 100, 700].into_iter().collect();
        let u = a | b;
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 100, 700]);
    }

    #[test]
    #[should_panic(expected = "1024 processors")]
    fn proc_set_rejects_out_of_range_members() {
        let mut s = ProcSet::empty();
        s.insert(MAX_PROCS);
    }
}
