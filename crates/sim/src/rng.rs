//! Deterministic, portable pseudo-random number generation.
//!
//! Workload generation and any stochastic tie-breaking inside the simulator
//! must be reproducible across platforms and Rust versions, so the engine
//! ships its own small PRNG (splitmix64 seeding a xoshiro256\*\*) rather than
//! relying on `StdRng`'s unspecified algorithm. The `rand` crate is still
//! used by workload generators through the [`rand::RngCore`] implementation
//! provided here.

use rand::RngCore;

/// Splitmix64 step; used for seeding and as a cheap stateless mixer.
#[inline]
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** PRNG.
///
/// Identical seeds produce identical streams on every platform, which the
/// integration tests rely on to assert bit-for-bit reproducibility of whole
/// simulation runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicRng {
    s: [u64; 4],
}

impl DeterministicRng {
    /// Create a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derive an independent stream for a sub-component (e.g. one per
    /// thread). Streams derived with distinct `stream` values from the same
    /// base seed are statistically independent.
    #[must_use]
    pub fn derive(&self, stream: u64) -> Self {
        let mut sm = self.s[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        Self::new(splitmix64(&mut sm))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be non-zero");
        // Lemire-style rejection-free-enough reduction is fine here; the
        // simulator does not need cryptographic uniformity, but we avoid the
        // obvious modulo bias for small bounds by widening multiplication.
        let x = self.next_u64_raw();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Sample a geometric-ish transaction length: uniform in
    /// `[min, max]` raised to `skew` so that larger `skew` biases towards the
    /// lower end. Used by workload generators.
    #[inline]
    pub fn gen_skewed_range(&mut self, min: u64, max: u64, skew: f64) -> u64 {
        assert!(max >= min);
        let span = (max - min + 1) as f64;
        let u = self.gen_f64().powf(skew.max(1e-9));
        min + (u * span).min(span - 1.0) as u64
    }
}

impl RngCore for DeterministicRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::new(42);
        let mut b = DeterministicRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let same = (0..100)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert!(same < 3);
    }

    #[test]
    fn derived_streams_are_independent() {
        let base = DeterministicRng::new(7);
        let mut s1 = base.derive(1);
        let mut s2 = base.derive(2);
        let same = (0..100)
            .filter(|_| s1.next_u64_raw() == s2.next_u64_raw())
            .count();
        assert!(same < 3);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = DeterministicRng::new(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(17);
            assert!(v < 17);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = DeterministicRng::new(11);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[rng.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn gen_range_zero_bound_panics() {
        DeterministicRng::new(0).gen_range(0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = DeterministicRng::new(5);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = DeterministicRng::new(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn skewed_range_within_bounds() {
        let mut rng = DeterministicRng::new(13);
        for _ in 0..10_000 {
            let v = rng.gen_skewed_range(5, 50, 2.0);
            assert!((5..=50).contains(&v));
        }
    }

    #[test]
    fn skew_biases_towards_low_end() {
        let mut rng = DeterministicRng::new(17);
        let n = 20_000;
        let mean_skewed: f64 = (0..n)
            .map(|_| rng.gen_skewed_range(0, 100, 3.0) as f64)
            .sum::<f64>()
            / n as f64;
        let mean_flat: f64 = (0..n)
            .map(|_| rng.gen_skewed_range(0, 100, 1.0) as f64)
            .sum::<f64>()
            / n as f64;
        assert!(mean_skewed < mean_flat);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = DeterministicRng::new(21);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        // Probability of any byte being zero by chance is non-trivial, but the
        // probability that *all* are zero is negligible.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
