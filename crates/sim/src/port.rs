//! Single-ported resource occupancy model.
//!
//! Table II specifies a main memory with a *single read/write port* and a
//! 100-cycle access latency. Directories are similarly modelled as servicing
//! one request at a time with a 10-cycle occupancy. [`SinglePortResource`]
//! captures both: a request arriving while the port is busy queues behind the
//! in-flight one.

use serde::{Deserialize, Serialize};

use crate::checkpoint::{CkptError, CkptReader, CkptWriter};
use crate::{cycles_after, Cycle};

/// Occupancy statistics of a single-ported resource.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortStats {
    /// Number of accesses serviced.
    pub accesses: u64,
    /// Total cycles the port was occupied.
    pub busy_cycles: u64,
    /// Total cycles requests waited for the port.
    pub queue_cycles: u64,
}

impl PortStats {
    /// Serialize the tallies into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_u64(self.accesses);
        w.put_u64(self.busy_cycles);
        w.put_u64(self.queue_cycles);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            accesses: r.get_u64()?,
            busy_cycles: r.get_u64()?,
            queue_cycles: r.get_u64()?,
        })
    }
}

/// A resource that services one request at a time with a fixed latency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SinglePortResource {
    latency: u64,
    next_free: Cycle,
    stats: PortStats,
}

impl SinglePortResource {
    /// Create a resource with the given per-access occupancy/latency.
    #[must_use]
    pub fn new(latency: u64) -> Self {
        Self {
            latency: latency.max(1),
            next_free: 0,
            stats: PortStats::default(),
        }
    }

    /// Serialize the port state into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_u64(self.latency);
        w.put_u64(self.next_free);
        self.stats.save_ckpt(w);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            latency: r.get_u64()?,
            next_free: r.get_u64()?,
            stats: PortStats::load_ckpt(r)?,
        })
    }

    /// Issue an access at cycle `now`; returns the completion cycle.
    pub fn access(&mut self, now: Cycle) -> Cycle {
        let start = self.next_free.max(now);
        self.stats.queue_cycles += start - now;
        let done = cycles_after(start, self.latency);
        self.stats.busy_cycles += self.latency;
        self.stats.accesses += 1;
        self.next_free = done;
        done
    }

    /// Per-access latency of this resource.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Cycle at which the port next becomes free.
    #[must_use]
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Next cycle (strictly after `now`) at which the port state can change
    /// on its own (the in-flight access completing), or `None` when idle.
    /// Consumed by the fast-forward engine's horizon computation.
    #[must_use]
    pub fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
        (self.next_free > now).then_some(self.next_free)
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> PortStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_access_latency() {
        let mut mem = SinglePortResource::new(100);
        assert_eq!(mem.access(10), 110);
    }

    #[test]
    fn concurrent_accesses_queue() {
        let mut mem = SinglePortResource::new(100);
        assert_eq!(mem.access(0), 100);
        assert_eq!(mem.access(0), 200);
        assert_eq!(mem.access(0), 300);
        assert_eq!(mem.stats().queue_cycles, 100 + 200);
    }

    #[test]
    fn idle_port_services_immediately() {
        let mut mem = SinglePortResource::new(10);
        mem.access(0);
        assert_eq!(mem.access(1000), 1010);
        assert_eq!(mem.stats().queue_cycles, 0);
    }

    #[test]
    fn zero_latency_clamped_to_one() {
        let mut r = SinglePortResource::new(0);
        assert_eq!(r.access(5), 6);
    }

    #[test]
    fn stats_accumulate() {
        let mut r = SinglePortResource::new(7);
        for i in 0..5 {
            r.access(i * 100);
        }
        let s = r.stats();
        assert_eq!(s.accesses, 5);
        assert_eq!(s.busy_cycles, 35);
    }
}
