//! Delivery-time-ordered message queues.
//!
//! Every point-to-point message in the coherence and commit protocol
//! (load requests, invalidations, `TxInfoReq`/`TxInfoResp`, "Stop Clock",
//! "on", …) is carried by a [`TimedQueue`]: the sender stamps the message
//! with the cycle at which it becomes visible to the receiver, and the
//! receiver drains all messages whose delivery cycle has been reached.
//!
//! Messages with equal delivery cycles are delivered in FIFO (insertion)
//! order, which keeps the whole simulation deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::checkpoint::{CkptError, CkptReader, CkptWriter};
use crate::Cycle;

/// Internal heap entry. Ordered by `(deliver_at, seq)` ascending; the
/// sequence number breaks ties in insertion order.
#[derive(Debug)]
struct Entry<T> {
    deliver_at: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A queue of messages each carrying a delivery cycle.
#[derive(Debug)]
pub struct TimedQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for TimedQueue<T> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> TimedQueue<T> {
    /// Create an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of undelivered messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no messages at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Enqueue `payload` for delivery at cycle `deliver_at`.
    pub fn push(&mut self, deliver_at: Cycle, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            deliver_at,
            seq,
            payload,
        });
    }

    /// Delivery cycle of the earliest pending message, if any.
    #[must_use]
    pub fn next_delivery(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.deliver_at)
    }

    /// Pop the earliest message if its delivery cycle is `<= now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.deliver_at <= now) {
            Some(self.heap.pop().expect("peeked entry must exist").payload)
        } else {
            None
        }
    }

    /// Drain every message ready at `now` into a vector (in delivery order).
    pub fn drain_ready(&mut self, now: Cycle) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(msg) = self.pop_ready(now) {
            out.push(msg);
        }
        out
    }

    /// Serialize the queue into a checkpoint payload; `save_payload` encodes
    /// one message. Entries are written in delivery order — `(deliver_at,
    /// seq)` ascending — with their original sequence numbers, so a reload
    /// reproduces both the delivery schedule and the FIFO tie-breaking of
    /// messages pushed after the restore point.
    pub fn save_ckpt(&self, w: &mut CkptWriter, mut save_payload: impl FnMut(&mut CkptWriter, &T)) {
        w.put_u64(self.next_seq);
        w.put_usize(self.heap.len());
        let mut entries: Vec<&Entry<T>> = self.heap.iter().collect();
        entries.sort_by_key(|e| (e.deliver_at, e.seq));
        for entry in entries {
            w.put_u64(entry.deliver_at);
            w.put_u64(entry.seq);
            save_payload(w, &entry.payload);
        }
    }

    /// Inverse of [`Self::save_ckpt`]; `load_payload` decodes one message.
    pub fn load_ckpt(
        r: &mut CkptReader<'_>,
        mut load_payload: impl FnMut(&mut CkptReader<'_>) -> Result<T, CkptError>,
    ) -> Result<Self, CkptError> {
        let next_seq = r.get_u64()?;
        let n = r.get_usize()?;
        let mut heap = BinaryHeap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let deliver_at = r.get_u64()?;
            let seq = r.get_u64()?;
            if seq >= next_seq {
                return Err(CkptError::Corrupt(format!(
                    "queue entry seq {seq} not below next_seq {next_seq}"
                )));
            }
            let payload = load_payload(r)?;
            heap.push(Entry {
                deliver_at,
                seq,
                payload,
            });
        }
        Ok(Self { heap, next_seq })
    }

    /// Iterate over all undelivered messages as `(deliver_at, payload)`
    /// pairs, in no particular order. Used by the windowed engine's planner
    /// to inspect pending protocol events without disturbing the queue.
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, &T)> {
        self.heap.iter().map(|e| (e.deliver_at, &e.payload))
    }

    /// Delivery cycle of the earliest pending message if it lies strictly in
    /// the future of `now`. Callers use this *after* draining all ready
    /// messages to decide how far the engine may skip idle cycles; it returns
    /// `None` while the head of the queue is still deliverable at `now`.
    #[must_use]
    pub fn next_future_delivery(&self, now: Cycle) -> Option<Cycle> {
        self.next_delivery().filter(|&d| d > now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = TimedQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_ready(100), Some("a"));
        assert_eq!(q.pop_ready(100), Some("b"));
        assert_eq!(q.pop_ready(100), Some("c"));
        assert!(q.is_empty());
    }

    #[test]
    fn respects_delivery_cycle() {
        let mut q = TimedQueue::new();
        q.push(10, 1);
        assert_eq!(q.pop_ready(9), None);
        assert_eq!(q.pop_ready(10), Some(1));
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = TimedQueue::new();
        for i in 0..100 {
            q.push(5, i);
        }
        let drained = q.drain_ready(5);
        assert_eq!(drained, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn drain_only_takes_ready() {
        let mut q = TimedQueue::new();
        q.push(1, "early");
        q.push(50, "late");
        let drained = q.drain_ready(10);
        assert_eq!(drained, vec!["early"]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_delivery(), Some(50));
    }

    #[test]
    fn next_future_delivery_after_drain() {
        let mut q = TimedQueue::new();
        q.push(5, ());
        q.push(9, ());
        // While the head is still ready it reports None (caller must drain).
        assert_eq!(q.next_future_delivery(5), None);
        q.drain_ready(5);
        assert_eq!(q.next_future_delivery(5), Some(9));
        q.drain_ready(9);
        assert_eq!(q.next_future_delivery(9), None);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: TimedQueue<u8> = TimedQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_delivery(), None);
        assert_eq!(q.pop_ready(1000), None);
        assert!(q.drain_ready(1000).is_empty());
    }
}
