//! Common split-transaction bus model (Table II: "Interconnect").
//!
//! The bus is modelled at the occupancy level: every transfer occupies the
//! shared data/address path for a number of cycles derived from its payload
//! size, plus a fixed arbitration overhead. Transfers are granted in request
//! order (which, combined with the deterministic engine, approximates a
//! round-robin arbiter under the in-order cores of the paper). The model
//! captures the first-order effect the protocol cares about: commit bursts
//! and miss storms from many processors serialize on the interconnect.

use serde::{Deserialize, Serialize};

use crate::checkpoint::{CkptError, CkptReader, CkptWriter};
use crate::{cycles_after, Cycle};

/// Categories of bus transfers, used for statistics only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusTraffic {
    /// Short control message (requests, acknowledgements, invalidations,
    /// gating control such as "Stop Clock" / "on" / `TxInfoReq`).
    Control,
    /// Full cache-line data transfer (miss fills, commit write-backs).
    Data,
}

/// Per-category transfer counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Number of control transfers granted.
    pub control_transfers: u64,
    /// Number of data (cache line) transfers granted.
    pub data_transfers: u64,
    /// Total cycles the bus was occupied by granted transfers.
    pub busy_cycles: u64,
    /// Total cycles requesters spent waiting for the bus to become free.
    pub wait_cycles: u64,
    /// Payload cycles ("flits") moved by control transfers, excluding
    /// arbitration. One flit is one cycle of occupancy of the data path, so
    /// the tally is the quantity the interconnect energy model charges.
    pub control_flits: u64,
    /// Payload cycles moved by data (cache line) transfers, excluding
    /// arbitration.
    pub data_flits: u64,
}

impl BusStats {
    /// Total payload flits of both categories (the interconnect activity the
    /// energy ledger charges).
    #[must_use]
    pub fn total_flits(&self) -> u64 {
        self.control_flits + self.data_flits
    }

    /// Serialize the tallies into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_u64(self.control_transfers);
        w.put_u64(self.data_transfers);
        w.put_u64(self.busy_cycles);
        w.put_u64(self.wait_cycles);
        w.put_u64(self.control_flits);
        w.put_u64(self.data_flits);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            control_transfers: r.get_u64()?,
            data_transfers: r.get_u64()?,
            busy_cycles: r.get_u64()?,
            wait_cycles: r.get_u64()?,
            control_flits: r.get_u64()?,
            data_flits: r.get_u64()?,
        })
    }

    /// Add another channel's tallies into this one (used to aggregate the
    /// banks of a sharded fabric, and to merge the per-island outcomes of a
    /// shard-parallel run). Every field is a plain sum, so aggregation is
    /// order-independent.
    pub fn absorb(&mut self, other: &BusStats) {
        self.control_transfers += other.control_transfers;
        self.data_transfers += other.data_transfers;
        self.busy_cycles += other.busy_cycles;
        self.wait_cycles += other.wait_cycles;
        self.control_flits += other.control_flits;
        self.data_flits += other.data_flits;
    }
}

/// Occupancy model of one split-transaction channel: the whole interconnect
/// of the legacy shared-bus machine, or one independently arbitrated bank
/// channel of the sharded fabric ([`crate::topology`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitTransactionBus {
    /// First cycle at which the bus is free again.
    next_free: Cycle,
    /// Cycles a control transfer occupies the bus.
    control_cycles: u64,
    /// Cycles a full-line data transfer occupies the bus.
    data_cycles: u64,
    /// Fixed arbitration overhead per transfer.
    arbitration: u64,
    /// Statistics.
    stats: BusStats,
}

impl SplitTransactionBus {
    /// Create a bus. `control_cycles` / `data_cycles` are the occupancy of a
    /// control message and of a full cache-line transfer respectively;
    /// `arbitration` is added to every transfer.
    #[must_use]
    pub fn new(control_cycles: u64, data_cycles: u64, arbitration: u64) -> Self {
        Self {
            next_free: 0,
            control_cycles: control_cycles.max(1),
            data_cycles: data_cycles.max(1),
            arbitration,
            stats: BusStats::default(),
        }
    }

    /// Build from a [`crate::config::SimConfig`].
    #[must_use]
    pub fn from_config(cfg: &crate::config::SimConfig) -> Self {
        Self::new(
            cfg.bus_control_transfer_cycles(),
            cfg.bus_line_transfer_cycles(),
            cfg.bus_arbitration_latency,
        )
    }

    /// Serialize the channel state (release time, occupancy parameters and
    /// tallies) into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_u64(self.next_free);
        w.put_u64(self.control_cycles);
        w.put_u64(self.data_cycles);
        w.put_u64(self.arbitration);
        self.stats.save_ckpt(w);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            next_free: r.get_u64()?,
            control_cycles: r.get_u64()?,
            data_cycles: r.get_u64()?,
            arbitration: r.get_u64()?,
            stats: BusStats::load_ckpt(r)?,
        })
    }

    /// Request the bus at cycle `now` for a transfer of class `kind`.
    ///
    /// Returns the cycle at which the transfer has fully traversed the bus
    /// (i.e. the earliest cycle the message may be considered delivered to
    /// the other side, before any receiver-side latency is added).
    pub fn request(&mut self, now: Cycle, kind: BusTraffic) -> Cycle {
        let occupancy = match kind {
            BusTraffic::Control => {
                self.stats.control_transfers += 1;
                self.stats.control_flits += self.control_cycles;
                self.control_cycles
            }
            BusTraffic::Data => {
                self.stats.data_transfers += 1;
                self.stats.data_flits += self.data_cycles;
                self.data_cycles
            }
        } + self.arbitration;

        let start = self.next_free.max(now);
        self.stats.wait_cycles += start - now;
        let done = cycles_after(start, occupancy);
        self.stats.busy_cycles += occupancy;
        self.next_free = done;
        done
    }

    /// Occupancy (in cycles, including arbitration) of a transfer of class
    /// `kind`.
    #[must_use]
    pub fn transfer_latency(&self, kind: BusTraffic) -> u64 {
        match kind {
            BusTraffic::Control => self.control_cycles + self.arbitration,
            BusTraffic::Data => self.data_cycles + self.arbitration,
        }
    }

    /// Account a transfer that will happen at the (future) cycle `at` without
    /// reserving the channel between now and then.
    ///
    /// A split-transaction bus releases the channel while a long-latency
    /// operation (a memory access behind a miss) is in flight; the reply is
    /// re-arbitrated when the data is ready. Modelling that re-arbitration
    /// exactly would require knowing the future occupancy of the bus, so the
    /// reply is charged its transfer time and counted in the statistics, but
    /// it does not block requests issued in the meantime. See DESIGN.md
    /// ("interconnect model") for the discussion of this simplification.
    pub fn schedule_future(&mut self, at: Cycle, kind: BusTraffic) -> Cycle {
        let occupancy = self.transfer_latency(kind);
        match kind {
            BusTraffic::Control => {
                self.stats.control_transfers += 1;
                self.stats.control_flits += self.control_cycles;
            }
            BusTraffic::Data => {
                self.stats.data_transfers += 1;
                self.stats.data_flits += self.data_cycles;
            }
        }
        self.stats.busy_cycles += occupancy;
        cycles_after(at, occupancy)
    }

    /// Cycle at which the bus next becomes idle.
    #[must_use]
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Next cycle (strictly after `now`) at which the bus state can change on
    /// its own: the release of the transfer currently occupying the channel.
    /// Returns `None` when the bus is already idle — the model is demand
    /// driven, so an idle bus does nothing until the next `request`.
    ///
    /// Used by the fast-forward engine (see `DESIGN.md`, "event-horizon
    /// computation") to bound how far the clock may leap.
    #[must_use]
    pub fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
        (self.next_free > now).then_some(self.next_free)
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Bus utilisation over `total_cycles` of simulated time, in `[0, 1]`.
    #[must_use]
    pub fn utilisation(&self, total_cycles: Cycle) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.stats.busy_cycles as f64 / total_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    fn uncontended_transfer_takes_occupancy() {
        let mut bus = SplitTransactionBus::new(1, 4, 1);
        // control: 1 + 1 arbitration = 2 cycles
        assert_eq!(bus.request(0, BusTraffic::Control), 2);
        // bus now busy until cycle 2
        assert_eq!(bus.next_free(), 2);
    }

    #[test]
    fn back_to_back_transfers_serialize() {
        let mut bus = SplitTransactionBus::new(1, 4, 0);
        let a = bus.request(0, BusTraffic::Data); // 0..4
        let b = bus.request(0, BusTraffic::Data); // 4..8
        let c = bus.request(0, BusTraffic::Control); // 8..9
        assert_eq!(a, 4);
        assert_eq!(b, 8);
        assert_eq!(c, 9);
        assert_eq!(bus.stats().wait_cycles, 4 + 8);
    }

    #[test]
    fn idle_gaps_are_not_counted_busy() {
        let mut bus = SplitTransactionBus::new(1, 4, 0);
        bus.request(0, BusTraffic::Control);
        bus.request(100, BusTraffic::Control);
        assert_eq!(bus.stats().busy_cycles, 2);
        assert!(bus.utilisation(101) < 0.03);
    }

    #[test]
    fn from_config_uses_line_and_width() {
        let cfg = SimConfig::table2(4);
        let mut bus = SplitTransactionBus::from_config(&cfg);
        // 64B over 16B/cycle = 4 cycles + 1 arbitration
        assert_eq!(bus.request(0, BusTraffic::Data), 5);
    }

    #[test]
    fn stats_track_both_classes() {
        let mut bus = SplitTransactionBus::new(1, 4, 0);
        bus.request(0, BusTraffic::Control);
        bus.request(0, BusTraffic::Data);
        bus.request(0, BusTraffic::Data);
        let s = bus.stats();
        assert_eq!(s.control_transfers, 1);
        assert_eq!(s.data_transfers, 2);
        assert_eq!(s.busy_cycles, 1 + 4 + 4);
    }

    #[test]
    fn flit_tallies_exclude_arbitration_and_cover_future_transfers() {
        let mut bus = SplitTransactionBus::new(1, 4, 1);
        bus.request(0, BusTraffic::Control);
        bus.request(0, BusTraffic::Data);
        bus.schedule_future(100, BusTraffic::Data);
        let s = bus.stats();
        assert_eq!(s.control_flits, 1);
        assert_eq!(s.data_flits, 8, "two data transfers x 4 payload cycles");
        assert_eq!(s.total_flits(), 9);
        // busy_cycles additionally charges the per-transfer arbitration.
        assert_eq!(s.busy_cycles, 2 + 5 + 5);
    }

    #[test]
    fn utilisation_zero_cycles_is_zero() {
        let bus = SplitTransactionBus::new(1, 4, 0);
        assert_eq!(bus.utilisation(0), 0.0);
    }

    #[test]
    fn next_deadline_reports_pending_release_only() {
        let mut bus = SplitTransactionBus::new(1, 4, 0);
        assert_eq!(bus.next_deadline(0), None, "idle bus has no deadline");
        let done = bus.request(0, BusTraffic::Data);
        assert_eq!(bus.next_deadline(0), Some(done));
        assert_eq!(bus.next_deadline(done), None, "released at `done`");
    }
}
