//! A persistent, process-wide worker pool with a scoped-spawn API.
//!
//! The parallel runners — the island fan-out, the windowed engine's
//! per-window lane fan-out, the evaluation-matrix driver, and the sweep
//! executor — all follow the same shape: fan a batch of independent,
//! deterministic jobs out over host threads and wait for every one before
//! merging. Spawning an OS thread per job (the original
//! `std::thread::scope` pattern) is correct but pays thread start-up and
//! teardown on every run, which dominates at matrix scale where a single
//! sweep issues thousands of short cells. [`WorkerPool::global`] amortises
//! that cost into one process-lifetime set of workers, sized to the host's
//! available parallelism (or to an explicit [`WorkerPool::configure_global`]
//! cap, which is what the binaries' `--threads` flag sets — one budget
//! shared by matrix-level and window-level parallelism).
//!
//! [`WorkerPool::scope`] mirrors `std::thread::scope`: jobs may borrow from
//! the caller's stack, every job is finished (or was never started) before
//! the scope returns, and a panicking job re-raises its payload at the scope
//! boundary. The borrow-soundness argument is the same as std's — the scope
//! cannot be exited (normally *or* by unwinding) until the pending-job count
//! reaches zero, which the `WaitGuard` enforces in its `Drop`.
//!
//! Waiting scopes *help*: while a scope owner blocks on its pending count it
//! pops queued jobs — anyone's — and runs them inline. This makes nesting
//! deadlock-free by construction (a matrix cell running on a pool worker can
//! itself open an island or lane scope: the worker drains jobs instead of
//! parking) and means the pool degrades to plain serial execution, never a
//! hang, on a single-core host.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide pool singleton plus the pre-creation size override.
static GLOBAL_POOL: OnceLock<WorkerPool> = OnceLock::new();
static GLOBAL_WORKERS: OnceLock<usize> = OnceLock::new();

/// A fixed set of persistent worker threads executing queued jobs.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
}

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawn a pool with `workers` persistent threads (clamped to at least
    /// one). The threads live for the life of the pool value; the global
    /// pool's live for the process.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("htm-pool-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawning a pool worker thread");
        }
        Self { shared, workers }
    }

    /// Cap the size of the process-wide pool *before* its first use.
    ///
    /// Returns `true` if the cap was installed; `false` if the global pool
    /// already exists (or was already configured), in which case the call
    /// has no effect. The binaries call this from their `--threads N` flag
    /// as the very first thing they do, so matrix-level and window-level
    /// parallelism draw from one shared budget instead of oversubscribing.
    pub fn configure_global(workers: usize) -> bool {
        GLOBAL_WORKERS.set(workers.max(1)).is_ok() && GLOBAL_POOL.get().is_none()
    }

    /// The process-wide pool, created on first use and sized to
    /// `std::thread::available_parallelism()` (or to the
    /// [`Self::configure_global`] cap, when one was installed first).
    pub fn global() -> &'static WorkerPool {
        GLOBAL_POOL.get_or_init(|| {
            WorkerPool::new(GLOBAL_WORKERS.get().copied().unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            }))
        })
    }

    /// Number of worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f` with a [`Scope`] on which borrowed jobs can be spawned.
    ///
    /// Returns only after every spawned job has finished. If a job panicked,
    /// the first payload is re-raised here; if `f` itself panics, its unwind
    /// still waits for all jobs before propagating.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let state = Arc::new(ScopeState::new());
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        let guard = WaitGuard {
            pool: self,
            state: &state,
        };
        let out = f(&scope);
        drop(guard); // Blocks until pending == 0; jobs' borrows end here.
        if let Some(payload) = state.take_panic() {
            resume_unwind(payload);
        }
        out
    }

    fn push(&self, job: Job) {
        self.shared.queue.lock().expect("pool queue").push_back(job);
        self.shared.available.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.shared.queue.lock().expect("pool queue").pop_front()
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.available.wait(queue).expect("pool queue");
            }
        };
        job();
    }
}

struct ScopeState {
    inner: Mutex<ScopeInner>,
    done: Condvar,
}

struct ScopeInner {
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl ScopeState {
    fn new() -> Self {
        Self {
            inner: Mutex::new(ScopeInner {
                pending: 0,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut inner = self.inner.lock().expect("scope state");
        inner.pending -= 1;
        if inner.panic.is_none() {
            inner.panic = panic;
        }
        self.done.notify_all();
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.inner.lock().expect("scope state").panic.take()
    }

    /// Block until every job of this scope has completed, executing queued
    /// jobs (of any scope) inline while waiting so that nested scopes on
    /// pool workers cannot deadlock.
    fn wait(&self, pool: &WorkerPool) {
        loop {
            if let Some(job) = pool.try_pop() {
                job();
                continue;
            }
            // Queue drained: every remaining pending job of ours is being
            // executed by some thread right now and will signal `done`.
            let inner = self.inner.lock().expect("scope state");
            if inner.pending == 0 {
                return;
            }
            drop(self.done.wait(inner).expect("scope state"));
        }
    }
}

/// Waits for the scope's jobs on drop — including during unwinding — so the
/// lifetime-erasing spawn below stays sound.
struct WaitGuard<'a> {
    pool: &'a WorkerPool,
    state: &'a ScopeState,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.state.wait(self.pool);
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, exactly like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Queue `f` for execution on the pool. `f` may borrow from the
    /// enclosing scope; the borrow is released when the scope ends.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'env) {
        self.state.inner.lock().expect("scope state").pending += 1;
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            state.complete(result.err());
        });
        // SAFETY: erasing `'env` to `'static` is sound because the job
        // cannot outlive the borrows it captures: the `WaitGuard` inside
        // `WorkerPool::scope` blocks (on the normal path and during unwind)
        // until this job has run to completion, and the job itself drops
        // `f` before signalling completion.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.push(job);
    }

    /// [`Self::spawn`] with panic routing: if `f` panics, the payload is
    /// re-raised at the scope boundary prefixed with `label`, so a fan-out
    /// over many lanes reports *which* lane failed instead of an anonymous
    /// payload.
    pub fn spawn_labeled(&self, label: &str, f: impl FnOnce() + Send + 'env) {
        let label = label.to_string();
        self.spawn(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "job panicked with a non-string payload".into());
                panic!("{label}: {msg}");
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_jobs_borrow_and_all_complete() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        let inputs: Vec<usize> = (0..64).collect();
        let mut outputs = vec![0usize; inputs.len()];
        pool.scope(|scope| {
            for (slot, &x) in outputs.iter_mut().zip(&inputs) {
                let hits = &hits;
                scope.spawn(move || {
                    *slot = x * 2;
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 64);
        assert!(outputs.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn nested_scopes_on_pool_workers_do_not_deadlock() {
        let pool = WorkerPool::new(1); // One worker forces inline helping.
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                let total = &total;
                outer.spawn(move || {
                    WorkerPool::global().scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move || {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn a_panicking_job_reraises_at_the_scope_boundary() {
        let pool = WorkerPool::new(2);
        let after = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("lane failed"));
                scope.spawn(|| {
                    after.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        let payload = caught.expect_err("scope re-raises the job panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert_eq!(msg, "lane failed");
        // The sibling job still ran to completion before the re-raise.
        assert_eq!(after.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn labeled_spawn_prefixes_the_panic_payload() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn_labeled("windowed lane 3", || panic!("bad deadline"));
            });
        }));
        let payload = caught.expect_err("scope re-raises the labeled panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string payload".into());
        assert_eq!(msg, "windowed lane 3: bad deadline");
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.workers() >= 1);
    }
}
