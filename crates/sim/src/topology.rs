//! Interconnect topologies: the shared bus and the banked/sharded fabrics.
//!
//! The paper's Table II machine hangs every processor, directory and the
//! commit-token vendor off one [`SplitTransactionBus`]. That is faithful up
//! to 16 processors but serializes the whole machine, so the reproduction
//! hides the interconnect behind the [`Topology`] trait:
//!
//! * [`SplitTransactionBus`] — the legacy shared bus. Routes are ignored;
//!   every transfer arbitrates for the single channel. This is the default
//!   and keeps all paper-configuration artifacts byte-identical.
//! * [`ShardedInterconnect`] — directories are grouped into independently
//!   arbitrated *banks* (channels), addresses stay interleaved across home
//!   directories, and a mesh or crossbar [`LatencyModel`] adds a
//!   receiver-side hop latency per route. Traffic to the token vendor uses a
//!   dedicated latency-only link, so commit-token arbitration never couples
//!   otherwise independent banks.
//!
//! The concrete machine holds an [`Interconnect`] (an enum over the two
//! implementations) so the simulation hot path stays free of virtual
//! dispatch; the trait exists so alternative fabrics can be plugged in and
//! tested against the same contract.
//!
//! Sharding is also what makes *intra-run* parallelism possible: processors
//! that only ever touch disjoint banks never interact, so a large run can be
//! split into independent islands advanced on parallel host threads and
//! merged deterministically (see `docs/SCALING.md`).

use serde::{Deserialize, Serialize};

use crate::bus::{BusStats, BusTraffic, SplitTransactionBus};
use crate::checkpoint::{CkptError, CkptReader, CkptWriter};
use crate::config::SimConfig;
use crate::{Cycle, DirId, ProcId};

/// An endpoint of the on-chip interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Node {
    /// A processor (core).
    Proc(ProcId),
    /// A directory (home node). Directory `d` is co-located with processor
    /// `d` on the mesh when both exist.
    Dir(DirId),
    /// The commit-token vendor (co-located with node 0 on the mesh).
    Vendor,
}

/// A source → destination pair describing one interconnect traversal.
///
/// ```
/// use htm_sim::topology::{Node, Route};
///
/// let miss_request = Route {
///     src: Node::Proc(3),
///     dst: Node::Dir(7),
/// };
/// assert_eq!(miss_request.dir(), Some(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    /// Sending endpoint.
    pub src: Node,
    /// Receiving endpoint.
    pub dst: Node,
}

impl Route {
    /// The directory endpoint of the route, if any. Protocol messages
    /// involve at most one directory; its bank decides which channel of a
    /// sharded fabric the transfer arbitrates for.
    #[must_use]
    pub fn dir(&self) -> Option<DirId> {
        match (self.src, self.dst) {
            (Node::Dir(d), _) | (_, Node::Dir(d)) => Some(d),
            _ => None,
        }
    }
}

/// Occupancy-and-latency contract every interconnect implements.
///
/// The trait mirrors the narrow interface `TccSystem` already used on the
/// shared bus: blocking transfers ([`Topology::request`]), future transfers
/// that do not reserve the channel ([`Topology::schedule_future`]), the
/// event-horizon deadline for the fast-forward engine
/// ([`Topology::next_deadline`]) and the statistics feeding the energy
/// ledger. All methods are deterministic functions of the call sequence, so
/// any implementation keeps runs bit-reproducible.
///
/// ```
/// use htm_sim::bus::{BusTraffic, SplitTransactionBus};
/// use htm_sim::topology::{Node, Route, Topology};
///
/// let mut bus = SplitTransactionBus::new(1, 4, 1);
/// let route = Route { src: Node::Proc(0), dst: Node::Dir(0) };
/// let done = Topology::request(&mut bus, 0, route, BusTraffic::Control);
/// assert_eq!(done, 2); // 1 payload cycle + 1 arbitration, route ignored
/// ```
pub trait Topology {
    /// Request a transfer along `route` at cycle `now`; returns the cycle at
    /// which the message is delivered (channel traversal plus any hop
    /// latency of the route).
    fn request(&mut self, now: Cycle, route: Route, kind: BusTraffic) -> Cycle;

    /// Account a transfer that happens at the future cycle `at` without
    /// reserving the channel in the meantime (split-transaction replies);
    /// returns the delivery cycle.
    fn schedule_future(&mut self, at: Cycle, route: Route, kind: BusTraffic) -> Cycle;

    /// Next cycle strictly after `now` at which the interconnect state can
    /// change on its own (a channel release), or `None` when idle.
    fn next_deadline(&self, now: Cycle) -> Option<Cycle>;

    /// Aggregate statistics over every channel of the fabric.
    fn stats(&self) -> BusStats;

    /// Per-bank statistics, in bank order; empty for the monolithic bus.
    fn shard_stats(&self) -> Vec<BusStats> {
        Vec::new()
    }

    /// Conservative lower bound on the delivery latency of any
    /// directory→processor control notification: a message entered into the
    /// fabric at cycle `t` (via [`Topology::request`] or
    /// [`Topology::schedule_future`]) is delivered no earlier than
    /// `t + min_notify_latency()`.
    ///
    /// The bound is provable from the occupancy model: a transfer pays at
    /// least its unloaded channel occupancy (payload cycles plus
    /// arbitration — queueing behind earlier transfers only increases the
    /// latency) plus the smallest receiver-side hop latency any route can
    /// have under the fabric's [`LatencyModel`]. The windowed PDES engine
    /// uses this as its lookahead: events produced inside a window of this
    /// length can only be delivered in later windows.
    fn min_notify_latency(&self) -> u64;
}

impl Topology for SplitTransactionBus {
    fn request(&mut self, now: Cycle, _route: Route, kind: BusTraffic) -> Cycle {
        SplitTransactionBus::request(self, now, kind)
    }

    fn schedule_future(&mut self, at: Cycle, _route: Route, kind: BusTraffic) -> Cycle {
        SplitTransactionBus::schedule_future(self, at, kind)
    }

    fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
        SplitTransactionBus::next_deadline(self, now)
    }

    fn stats(&self) -> BusStats {
        SplitTransactionBus::stats(self)
    }

    fn min_notify_latency(&self) -> u64 {
        // Routes are ignored on the shared bus: the floor is the unloaded
        // occupancy of a control transfer.
        self.transfer_latency(BusTraffic::Control)
    }
}

/// Hop-latency model of a sharded fabric: how long a message spends
/// traversing the switch fabric between its endpoints, *after* it has been
/// granted its bank channel. Receiver-side latency only — it never adds to
/// channel occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Single-stage crossbar: every route pays the same constant traversal
    /// latency.
    Crossbar {
        /// Cycles per crossbar traversal.
        hop_cycles: u64,
    },
    /// 2-D mesh: endpoints are laid out row-major on the smallest square
    /// grid that fits every node (directory `d` co-located with processor
    /// `d`, the vendor at node 0), and a route pays its Manhattan distance
    /// in hops.
    Mesh {
        /// Cycles per mesh hop.
        hop_cycles: u64,
    },
}

impl LatencyModel {
    /// Serialize into a checkpoint payload (tag byte + hop latency).
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        match *self {
            LatencyModel::Crossbar { hop_cycles } => {
                w.put_u8(0);
                w.put_u64(hop_cycles);
            }
            LatencyModel::Mesh { hop_cycles } => {
                w.put_u8(1);
                w.put_u64(hop_cycles);
            }
        }
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        match r.get_u8()? {
            0 => Ok(LatencyModel::Crossbar {
                hop_cycles: r.get_u64()?,
            }),
            1 => Ok(LatencyModel::Mesh {
                hop_cycles: r.get_u64()?,
            }),
            t => Err(CkptError::Corrupt(format!("invalid latency-model tag {t}"))),
        }
    }

    /// Default crossbar traversal latency (cycles).
    pub const DEFAULT_CROSSBAR_HOP: u64 = 2;
    /// Default per-hop mesh latency (cycles).
    pub const DEFAULT_MESH_HOP: u64 = 1;

    /// Short label used in sweep keys and CLI output: `x` for crossbar, `m`
    /// for mesh.
    #[must_use]
    pub fn key_letter(self) -> char {
        match self {
            LatencyModel::Crossbar { .. } => 'x',
            LatencyModel::Mesh { .. } => 'm',
        }
    }
}

/// Which interconnect a [`SimConfig`] machine instantiates.
///
/// The default is the paper's shared bus, which keeps every artifact of the
/// reproduction harness byte-identical; `Sharded` is the scale-out fabric
/// for 64–1024 processor machines.
///
/// ```
/// use htm_sim::topology::{LatencyModel, TopologyConfig};
///
/// assert_eq!(TopologyConfig::default(), TopologyConfig::Bus);
/// let sharded = TopologyConfig::parse("sharded:8:mesh").unwrap();
/// assert_eq!(sharded.effective_banks(64), 8);
/// assert_eq!(sharded.key_segment().as_deref(), Some("sh8m"));
/// assert_eq!(TopologyConfig::Bus.key_segment(), None);
/// assert!(matches!(
///     TopologyConfig::parse("sharded").unwrap(),
///     TopologyConfig::Sharded { banks: 0, model: LatencyModel::Crossbar { .. } }
/// ));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyConfig {
    /// One shared split-transaction bus (the paper's Table II machine).
    #[default]
    Bus,
    /// Banked directories on independently arbitrated channels with a
    /// point-to-point latency model.
    Sharded {
        /// Number of directory banks (independent channels). `0` means one
        /// bank per directory — the fully sharded machine.
        banks: usize,
        /// Fabric traversal latency model.
        model: LatencyModel,
    },
}

impl TopologyConfig {
    /// Serialize into a checkpoint payload (tag byte + per-variant fields).
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        match *self {
            TopologyConfig::Bus => w.put_u8(0),
            TopologyConfig::Sharded { banks, model } => {
                w.put_u8(1);
                w.put_usize(banks);
                model.save_ckpt(w);
            }
        }
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        match r.get_u8()? {
            0 => Ok(TopologyConfig::Bus),
            1 => Ok(TopologyConfig::Sharded {
                banks: r.get_usize()?,
                model: LatencyModel::load_ckpt(r)?,
            }),
            t => Err(CkptError::Corrupt(format!("invalid topology tag {t}"))),
        }
    }

    /// The fully sharded default: one bank per directory over a crossbar.
    #[must_use]
    pub fn sharded_default() -> Self {
        TopologyConfig::Sharded {
            banks: 0,
            model: LatencyModel::Crossbar {
                hop_cycles: LatencyModel::DEFAULT_CROSSBAR_HOP,
            },
        }
    }

    /// Parse a CLI topology spec: `bus`, `sharded`, `sharded:BANKS` or
    /// `sharded:BANKS:mesh|xbar` (`BANKS` = 0 means one bank per
    /// directory). Returns `None` on anything else.
    #[must_use]
    pub fn parse(spec: &str) -> Option<Self> {
        if spec == "bus" {
            return Some(TopologyConfig::Bus);
        }
        let mut parts = spec.split(':');
        if parts.next() != Some("sharded") {
            return None;
        }
        let banks = match parts.next() {
            None => 0,
            Some(b) => b.parse().ok()?,
        };
        let model = match parts.next() {
            None | Some("xbar" | "crossbar") => LatencyModel::Crossbar {
                hop_cycles: LatencyModel::DEFAULT_CROSSBAR_HOP,
            },
            Some("mesh") => LatencyModel::Mesh {
                hop_cycles: LatencyModel::DEFAULT_MESH_HOP,
            },
            Some(_) => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(TopologyConfig::Sharded { banks, model })
    }

    /// Number of independent bank channels this topology gives a machine
    /// with `num_dirs` directories. The bus counts as a single bank (every
    /// transfer shares one channel).
    #[must_use]
    pub fn effective_banks(&self, num_dirs: usize) -> usize {
        match *self {
            TopologyConfig::Bus => 1,
            TopologyConfig::Sharded { banks, .. } => {
                if banks == 0 {
                    num_dirs.max(1)
                } else {
                    banks.min(num_dirs.max(1))
                }
            }
        }
    }

    /// The bank channel directory `dir` lives on, for a machine with
    /// `num_dirs` directories.
    #[must_use]
    pub fn bank_of(&self, dir: DirId, num_dirs: usize) -> usize {
        dir % self.effective_banks(num_dirs)
    }

    /// Extra sweep-key segment (e.g. `sh8x`), or `None` for the default bus
    /// topology — bus sweep keys stay byte-identical to the pre-topology
    /// harness.
    #[must_use]
    pub fn key_segment(&self) -> Option<String> {
        match *self {
            TopologyConfig::Bus => None,
            TopologyConfig::Sharded { banks, model } => {
                Some(format!("sh{banks}{}", model.key_letter()))
            }
        }
    }

    /// Human-readable description for CLI banners and reports.
    #[must_use]
    pub fn describe(&self) -> String {
        match *self {
            TopologyConfig::Bus => "shared split-transaction bus".to_string(),
            TopologyConfig::Sharded { banks, model } => {
                let banks = if banks == 0 {
                    "one bank per directory".to_string()
                } else {
                    format!("{banks} banks")
                };
                let model = match model {
                    LatencyModel::Crossbar { hop_cycles } => {
                        format!("crossbar, {hop_cycles}-cycle traversal")
                    }
                    LatencyModel::Mesh { hop_cycles } => format!("mesh, {hop_cycles} cycles/hop"),
                };
                format!("sharded directories ({banks}; {model})")
            }
        }
    }
}

/// Banked/sharded directory interconnect.
///
/// Directories are interleaved across `banks` independently arbitrated
/// channels (`bank = dir % banks`); each channel is its own
/// [`SplitTransactionBus`] occupancy model, so commit bursts on one bank no
/// longer stall misses on another. Messages to or from the token vendor use
/// a dedicated latency-only link: they are charged transfer time and
/// statistics but never queue, which models a pipelined vendor port and
/// keeps banks independent of each other.
///
/// On top of the channel occupancy every delivery pays the
/// [`LatencyModel`]'s traversal latency for its route; that latency is
/// receiver-side and never occupies a channel.
///
/// ```
/// use htm_sim::bus::BusTraffic;
/// use htm_sim::config::SimConfig;
/// use htm_sim::topology::{Node, Route, ShardedInterconnect, Topology, TopologyConfig};
///
/// let mut cfg = SimConfig::table2(8);
/// cfg.topology = TopologyConfig::sharded_default();
/// let mut net = ShardedInterconnect::from_config(&cfg);
/// let a = net.request(0, Route { src: Node::Proc(0), dst: Node::Dir(0) }, BusTraffic::Control);
/// let b = net.request(0, Route { src: Node::Proc(1), dst: Node::Dir(1) }, BusTraffic::Control);
/// assert_eq!(a, b, "different banks never contend");
/// assert_eq!(net.shard_stats().len(), 8);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedInterconnect {
    banks: Vec<SplitTransactionBus>,
    num_dirs: usize,
    model: LatencyModel,
    /// Side of the square mesh grid (row-major node layout).
    mesh_side: usize,
    /// Occupancy of a control/data transfer on the vendor link.
    control_cycles: u64,
    data_cycles: u64,
    /// Tallies of the latency-only vendor link.
    vendor_stats: BusStats,
}

impl ShardedInterconnect {
    /// Build the fabric described by `cfg.topology` (which must be
    /// [`TopologyConfig::Sharded`]; a `Bus` config yields a single-bank
    /// fabric, useful only for tests).
    #[must_use]
    pub fn from_config(cfg: &SimConfig) -> Self {
        let banks = cfg.topology.effective_banks(cfg.num_dirs);
        let model = match cfg.topology {
            TopologyConfig::Sharded { model, .. } => model,
            TopologyConfig::Bus => LatencyModel::Crossbar {
                hop_cycles: LatencyModel::DEFAULT_CROSSBAR_HOP,
            },
        };
        let nodes = cfg.num_procs.max(cfg.num_dirs).max(1);
        let mut mesh_side = 1;
        while mesh_side * mesh_side < nodes {
            mesh_side += 1;
        }
        Self {
            banks: (0..banks)
                .map(|_| SplitTransactionBus::from_config(cfg))
                .collect(),
            num_dirs: cfg.num_dirs,
            model,
            mesh_side,
            control_cycles: cfg.bus_control_transfer_cycles().max(1),
            data_cycles: cfg.bus_line_transfer_cycles().max(1),
            vendor_stats: BusStats::default(),
        }
    }

    /// Number of bank channels.
    #[must_use]
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// Fabric traversal latency of `route` under the configured model.
    #[must_use]
    pub fn hop_latency(&self, route: Route) -> u64 {
        let coord = |node: Node| {
            let idx = match node {
                Node::Proc(p) => p,
                Node::Dir(d) => d,
                Node::Vendor => 0,
            };
            (idx % self.mesh_side, idx / self.mesh_side)
        };
        match self.model {
            LatencyModel::Crossbar { hop_cycles } => hop_cycles,
            LatencyModel::Mesh { hop_cycles } => {
                let (sx, sy) = coord(route.src);
                let (dx, dy) = coord(route.dst);
                let hops = sx.abs_diff(dx) + sy.abs_diff(dy);
                hop_cycles * hops as u64
            }
        }
    }

    /// Serialize the fabric's full state (bank channels, geometry and the
    /// vendor-link tallies) into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_usize(self.banks.len());
        for bank in &self.banks {
            bank.save_ckpt(w);
        }
        w.put_usize(self.num_dirs);
        self.model.save_ckpt(w);
        w.put_usize(self.mesh_side);
        w.put_u64(self.control_cycles);
        w.put_u64(self.data_cycles);
        self.vendor_stats.save_ckpt(w);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        let n = r.get_usize()?;
        let mut banks = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            banks.push(SplitTransactionBus::load_ckpt(r)?);
        }
        Ok(Self {
            banks,
            num_dirs: r.get_usize()?,
            model: LatencyModel::load_ckpt(r)?,
            mesh_side: r.get_usize()?,
            control_cycles: r.get_u64()?,
            data_cycles: r.get_u64()?,
            vendor_stats: BusStats::load_ckpt(r)?,
        })
    }

    /// Copy the full state of bank `bank` (queue occupancy and stats) from
    /// `other`. Used by the windowed engine's lane barrier: each lane owns a
    /// disjoint set of banks for the window, and the master copies those
    /// banks back wholesale when the lane rejoins.
    pub fn copy_bank_from(&mut self, other: &ShardedInterconnect, bank: usize) {
        self.banks[bank].clone_from(&other.banks[bank]);
    }

    /// Zero the vendor-link counters. A windowed lane starts from a zeroed
    /// vendor ledger so that, at the barrier, its counters are exactly the
    /// in-window delta to fold back into the master with
    /// [`Self::absorb_vendor_stats`]. Sound because the vendor link is
    /// latency-only: it carries no queued state, so the counters are the
    /// only thing a transfer mutates.
    pub fn reset_vendor_stats(&mut self) {
        self.vendor_stats = BusStats::default();
    }

    /// Fold another interconnect's vendor-link counters into this one's
    /// (the inverse of [`Self::reset_vendor_stats`] at the lane barrier).
    pub fn absorb_vendor_stats(&mut self, other: &ShardedInterconnect) {
        self.vendor_stats.absorb(&other.vendor_stats);
    }

    /// Charge a transfer on the latency-only vendor link.
    fn vendor_transfer(&mut self, kind: BusTraffic) -> u64 {
        match kind {
            BusTraffic::Control => {
                self.vendor_stats.control_transfers += 1;
                self.vendor_stats.control_flits += self.control_cycles;
                self.vendor_stats.busy_cycles += self.control_cycles;
                self.control_cycles
            }
            BusTraffic::Data => {
                self.vendor_stats.data_transfers += 1;
                self.vendor_stats.data_flits += self.data_cycles;
                self.vendor_stats.busy_cycles += self.data_cycles;
                self.data_cycles
            }
        }
    }
}

impl Topology for ShardedInterconnect {
    fn request(&mut self, now: Cycle, route: Route, kind: BusTraffic) -> Cycle {
        let hop = self.hop_latency(route);
        let done = match route.dir() {
            Some(dir) => {
                let bank = dir % self.banks.len();

                self.banks[bank].request(now, kind)
            }
            None => crate::cycles_after(now, self.vendor_transfer(kind)),
        };
        crate::cycles_after(done, hop)
    }

    fn schedule_future(&mut self, at: Cycle, route: Route, kind: BusTraffic) -> Cycle {
        let hop = self.hop_latency(route);
        let done = match route.dir() {
            Some(dir) => {
                let bank = dir % self.banks.len();

                self.banks[bank].schedule_future(at, kind)
            }
            None => crate::cycles_after(at, self.vendor_transfer(kind)),
        };
        crate::cycles_after(done, hop)
    }

    fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
        self.banks.iter().filter_map(|b| b.next_deadline(now)).min()
    }

    fn stats(&self) -> BusStats {
        let mut total = self.vendor_stats;
        for bank in &self.banks {
            total.absorb(&bank.stats());
        }
        total
    }

    fn shard_stats(&self) -> Vec<BusStats> {
        self.banks.iter().map(SplitTransactionBus::stats).collect()
    }

    fn min_notify_latency(&self) -> u64 {
        // Every bank channel is built from the same configuration, so the
        // unloaded control occupancy of any one of them is the channel floor.
        let channel_floor = self.banks.first().map_or(self.control_cycles, |b| {
            b.transfer_latency(BusTraffic::Control)
        });
        // Hop floor: the crossbar charges every route the same traversal;
        // on the mesh, directory `d` is co-located with processor `d`, so a
        // zero-hop directory→processor route always exists.
        let hop_floor = match self.model {
            LatencyModel::Crossbar { hop_cycles } => hop_cycles,
            LatencyModel::Mesh { .. } => 0,
        };
        channel_floor + hop_floor
    }
}

/// The concrete interconnect a [`crate::config::SimConfig`] machine holds:
/// an enum over both [`Topology`] implementations, so the simulation hot
/// path pays no virtual dispatch.
///
/// ```
/// use htm_sim::config::SimConfig;
/// use htm_sim::topology::{Interconnect, TopologyConfig};
///
/// let mut cfg = SimConfig::table2(4);
/// assert!(matches!(Interconnect::from_config(&cfg), Interconnect::Bus(_)));
/// cfg.topology = TopologyConfig::sharded_default();
/// assert!(matches!(Interconnect::from_config(&cfg), Interconnect::Sharded(_)));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Interconnect {
    /// The legacy shared bus.
    Bus(SplitTransactionBus),
    /// The banked/sharded fabric.
    Sharded(ShardedInterconnect),
}

impl Interconnect {
    /// Serialize the interconnect state (tag byte + variant payload).
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        match self {
            Interconnect::Bus(b) => {
                w.put_u8(0);
                b.save_ckpt(w);
            }
            Interconnect::Sharded(s) => {
                w.put_u8(1);
                s.save_ckpt(w);
            }
        }
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        match r.get_u8()? {
            0 => Ok(Interconnect::Bus(SplitTransactionBus::load_ckpt(r)?)),
            1 => Ok(Interconnect::Sharded(ShardedInterconnect::load_ckpt(r)?)),
            t => Err(CkptError::Corrupt(format!("invalid interconnect tag {t}"))),
        }
    }

    /// Instantiate the interconnect selected by `cfg.topology`.
    #[must_use]
    pub fn from_config(cfg: &SimConfig) -> Self {
        match cfg.topology {
            TopologyConfig::Bus => Interconnect::Bus(SplitTransactionBus::from_config(cfg)),
            TopologyConfig::Sharded { .. } => {
                Interconnect::Sharded(ShardedInterconnect::from_config(cfg))
            }
        }
    }

    /// [`ShardedInterconnect::copy_bank_from`], lifted to the enum. No-op on
    /// a bus (the windowed engine never splits a bus machine into lanes).
    pub fn copy_bank_from(&mut self, other: &Interconnect, bank: usize) {
        if let (Interconnect::Sharded(s), Interconnect::Sharded(o)) = (self, other) {
            s.copy_bank_from(o, bank);
        }
    }

    /// [`ShardedInterconnect::reset_vendor_stats`], lifted to the enum.
    pub fn reset_vendor_stats(&mut self) {
        if let Interconnect::Sharded(s) = self {
            s.reset_vendor_stats();
        }
    }

    /// [`ShardedInterconnect::absorb_vendor_stats`], lifted to the enum.
    pub fn absorb_vendor_stats(&mut self, other: &Interconnect) {
        if let (Interconnect::Sharded(s), Interconnect::Sharded(o)) = (self, other) {
            s.absorb_vendor_stats(o);
        }
    }
}

impl Topology for Interconnect {
    fn request(&mut self, now: Cycle, route: Route, kind: BusTraffic) -> Cycle {
        match self {
            Interconnect::Bus(b) => Topology::request(b, now, route, kind),
            Interconnect::Sharded(s) => s.request(now, route, kind),
        }
    }

    fn schedule_future(&mut self, at: Cycle, route: Route, kind: BusTraffic) -> Cycle {
        match self {
            Interconnect::Bus(b) => Topology::schedule_future(b, at, route, kind),
            Interconnect::Sharded(s) => s.schedule_future(at, route, kind),
        }
    }

    fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
        match self {
            Interconnect::Bus(b) => SplitTransactionBus::next_deadline(b, now),
            Interconnect::Sharded(s) => s.next_deadline(now),
        }
    }

    fn stats(&self) -> BusStats {
        match self {
            Interconnect::Bus(b) => SplitTransactionBus::stats(b),
            Interconnect::Sharded(s) => Topology::stats(s),
        }
    }

    fn shard_stats(&self) -> Vec<BusStats> {
        match self {
            Interconnect::Bus(_) => Vec::new(),
            Interconnect::Sharded(s) => Topology::shard_stats(s),
        }
    }

    fn min_notify_latency(&self) -> u64 {
        match self {
            Interconnect::Bus(b) => Topology::min_notify_latency(b),
            Interconnect::Sharded(s) => Topology::min_notify_latency(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded_cfg(procs: usize, topology: TopologyConfig) -> SimConfig {
        let mut cfg = SimConfig::table2(procs);
        cfg.topology = topology;
        cfg
    }

    #[test]
    fn parse_covers_the_cli_grammar() {
        assert_eq!(TopologyConfig::parse("bus"), Some(TopologyConfig::Bus));
        assert!(TopologyConfig::parse("sharded").is_some());
        assert!(matches!(
            TopologyConfig::parse("sharded:4"),
            Some(TopologyConfig::Sharded { banks: 4, .. })
        ));
        assert!(matches!(
            TopologyConfig::parse("sharded:4:mesh"),
            Some(TopologyConfig::Sharded {
                banks: 4,
                model: LatencyModel::Mesh { .. }
            })
        ));
        assert!(TopologyConfig::parse("sharded:4:xbar").is_some());
        assert!(TopologyConfig::parse("ring").is_none());
        assert!(TopologyConfig::parse("sharded:x").is_none());
        assert!(TopologyConfig::parse("sharded:4:mesh:extra").is_none());
    }

    #[test]
    fn effective_banks_and_bank_of() {
        let t = TopologyConfig::sharded_default();
        assert_eq!(t.effective_banks(16), 16);
        assert_eq!(t.bank_of(13, 16), 13);
        let four = TopologyConfig::parse("sharded:4").unwrap();
        assert_eq!(four.effective_banks(16), 4);
        assert_eq!(four.bank_of(13, 16), 1);
        assert_eq!(TopologyConfig::Bus.effective_banks(16), 1);
        assert_eq!(TopologyConfig::Bus.bank_of(13, 16), 0);
    }

    #[test]
    fn min_notify_latency_is_a_delivery_floor() {
        // Bus: unloaded control occupancy (payload + arbitration).
        let bus = SplitTransactionBus::new(2, 4, 1);
        assert_eq!(Topology::min_notify_latency(&bus), 3);

        // Crossbar fabric: channel floor + constant traversal.
        let cfg = sharded_cfg(8, TopologyConfig::sharded_default());
        let net = ShardedInterconnect::from_config(&cfg);
        let floor = Topology::min_notify_latency(&net);
        assert!(floor >= 1);
        // An unloaded request can achieve exactly the floor.
        let mut probe = ShardedInterconnect::from_config(&cfg);
        let route = Route {
            src: Node::Dir(3),
            dst: Node::Proc(5),
        };
        assert_eq!(
            probe.request(100, route, BusTraffic::Control),
            100 + floor,
            "crossbar routes all pay the same traversal, so the floor is tight"
        );

        // Mesh fabric: co-located Dir(d)/Proc(d) makes the hop floor zero.
        let mesh = sharded_cfg(
            8,
            TopologyConfig::parse("sharded:0:mesh").expect("valid spec"),
        );
        let mut mesh_net = ShardedInterconnect::from_config(&mesh);
        let mesh_floor = Topology::min_notify_latency(&mesh_net);
        let colocated = Route {
            src: Node::Dir(2),
            dst: Node::Proc(2),
        };
        assert_eq!(
            mesh_net.request(50, colocated, BusTraffic::Control),
            50 + mesh_floor,
            "the co-located route achieves the mesh floor exactly"
        );
        // No route can beat the floor, loaded or not.
        for d in 0..8 {
            for p in 0..8 {
                let done = mesh_net.request(
                    200,
                    Route {
                        src: Node::Dir(d),
                        dst: Node::Proc(p),
                    },
                    BusTraffic::Control,
                );
                assert!(done >= 200 + mesh_floor, "dir {d} -> proc {p}");
            }
        }
    }

    #[test]
    fn disjoint_banks_do_not_contend() {
        let cfg = sharded_cfg(4, TopologyConfig::sharded_default());
        let mut net = ShardedInterconnect::from_config(&cfg);
        let r0 = Route {
            src: Node::Proc(0),
            dst: Node::Dir(0),
        };
        let r1 = Route {
            src: Node::Proc(1),
            dst: Node::Dir(1),
        };
        let a = net.request(0, r0, BusTraffic::Data);
        let b = net.request(0, r1, BusTraffic::Data);
        assert_eq!(a, b);
        // Same bank serializes exactly like the bus would.
        let c = net.request(0, r0, BusTraffic::Data);
        assert!(c > a);
    }

    #[test]
    fn mesh_routes_pay_manhattan_distance() {
        let cfg = sharded_cfg(
            16,
            TopologyConfig::Sharded {
                banks: 0,
                model: LatencyModel::Mesh { hop_cycles: 3 },
            },
        );
        let net = ShardedInterconnect::from_config(&cfg);
        // 16 nodes → 4x4 grid. Proc 0 is (0,0); dir 15 is (3,3): 6 hops.
        let far = Route {
            src: Node::Proc(0),
            dst: Node::Dir(15),
        };
        assert_eq!(net.hop_latency(far), 18);
        // Dir 5 is co-located with proc 5: zero hops.
        let local = Route {
            src: Node::Proc(5),
            dst: Node::Dir(5),
        };
        assert_eq!(net.hop_latency(local), 0);
    }

    #[test]
    fn crossbar_latency_is_route_independent() {
        let cfg = sharded_cfg(16, TopologyConfig::sharded_default());
        let net = ShardedInterconnect::from_config(&cfg);
        let near = Route {
            src: Node::Proc(0),
            dst: Node::Dir(0),
        };
        let far = Route {
            src: Node::Proc(0),
            dst: Node::Dir(15),
        };
        assert_eq!(net.hop_latency(near), net.hop_latency(far));
    }

    #[test]
    fn vendor_link_is_latency_only() {
        let cfg = sharded_cfg(4, TopologyConfig::sharded_default());
        let mut net = ShardedInterconnect::from_config(&cfg);
        let to_vendor = Route {
            src: Node::Proc(2),
            dst: Node::Vendor,
        };
        let a = net.request(0, to_vendor, BusTraffic::Control);
        let b = net.request(0, to_vendor, BusTraffic::Control);
        assert_eq!(a, b, "the pipelined vendor link never queues");
        assert_eq!(net.next_deadline(0), None, "and creates no deadlines");
        let s = Topology::stats(&net);
        assert_eq!(s.control_transfers, 2);
        assert_eq!(s.wait_cycles, 0);
    }

    #[test]
    fn aggregate_stats_sum_banks_and_vendor() {
        let cfg = sharded_cfg(4, TopologyConfig::sharded_default());
        let mut net = ShardedInterconnect::from_config(&cfg);
        net.request(
            0,
            Route {
                src: Node::Proc(0),
                dst: Node::Dir(0),
            },
            BusTraffic::Data,
        );
        net.request(
            0,
            Route {
                src: Node::Proc(1),
                dst: Node::Dir(3),
            },
            BusTraffic::Control,
        );
        net.request(
            0,
            Route {
                src: Node::Proc(1),
                dst: Node::Vendor,
            },
            BusTraffic::Control,
        );
        let total = Topology::stats(&net);
        assert_eq!(total.data_transfers, 1);
        assert_eq!(total.control_transfers, 2);
        let per_bank = Topology::shard_stats(&net);
        assert_eq!(per_bank.len(), 4);
        assert_eq!(per_bank[0].data_transfers, 1);
        assert_eq!(per_bank[3].control_transfers, 1);
    }

    #[test]
    fn interconnect_enum_matches_config() {
        let bus = Interconnect::from_config(&SimConfig::table2(4));
        assert!(matches!(bus, Interconnect::Bus(_)));
        assert!(bus.shard_stats().is_empty());
        let cfg = sharded_cfg(4, TopologyConfig::parse("sharded:2").unwrap());
        let sharded = Interconnect::from_config(&cfg);
        assert!(matches!(sharded, Interconnect::Sharded(_)));
        assert_eq!(sharded.shard_stats().len(), 2);
    }

    #[test]
    fn key_segments_and_descriptions() {
        assert_eq!(TopologyConfig::Bus.key_segment(), None);
        assert_eq!(
            TopologyConfig::parse("sharded:8:mesh")
                .unwrap()
                .key_segment(),
            Some("sh8m".to_string())
        );
        assert_eq!(
            TopologyConfig::sharded_default().key_segment(),
            Some("sh0x".to_string())
        );
        assert!(TopologyConfig::Bus.describe().contains("bus"));
        assert!(TopologyConfig::sharded_default()
            .describe()
            .contains("bank"));
    }
}
