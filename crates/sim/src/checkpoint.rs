//! Versioned, self-describing binary checkpoint codec.
//!
//! Every stateful component of the simulator serializes itself through
//! [`CkptWriter`] / [`CkptReader`], a deliberately tiny little-endian binary
//! codec with no external dependencies (the workspace `serde` shim can
//! serialize but not deserialize, so checkpoints carry their own format).
//! A complete checkpoint payload is framed by [`seal`] / [`unseal`]:
//!
//! ```text
//! magic "HTMCKPT\0" (8) | version u32 | payload length u64 | FNV-1a-64 checksum u64 | payload
//! ```
//!
//! The length and checksum make torn or bit-rotted files *detectable*: a
//! partial write fails the length check, a corrupted byte fails the
//! checksum, and a future format bumps the version — each case maps to its
//! own [`CkptError`] variant so callers can skip corrupt files loudly while
//! treating version mismatches as a dedicated, pre-run error.
//!
//! The exactness contract layered on top of this codec (a checkpoint-resumed
//! run is byte-for-byte identical to an uninterrupted one, on every engine)
//! is documented in `DESIGN.md` ("Checkpoint format & the cross-process
//! exactness contract").

use crate::Cycle;

/// File magic of every checkpoint blob.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"HTMCKPT\0";

/// Current checkpoint format version (the "CheckpointV1" layout in DESIGN.md).
pub const CHECKPOINT_VERSION: u32 = 1;

/// Size of the [`seal`] header preceding the payload.
pub const HEADER_BYTES: usize = 8 + 4 + 8 + 8;

/// Errors produced while framing or decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The blob does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The blob's format version is not the one this binary writes.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Version this binary reads and writes.
        expected: u32,
    },
    /// The blob (or a field inside it) is shorter than its header claims —
    /// the signature of a torn write.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload bytes do not hash to the stored checksum.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// The payload decoded structurally but its contents are inconsistent
    /// (wrong component count, config mismatch, invalid enum tag, …).
    Corrupt(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::UnsupportedVersion { found, expected } => write!(
                f,
                "checkpoint format version {found} is not supported (this build reads \
                 version {expected}); re-create the checkpoint with the current binary"
            ),
            CkptError::Truncated { needed, available } => write!(
                f,
                "checkpoint is truncated (needed {needed} bytes, found {available}) — \
                 likely a torn write"
            ),
            CkptError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#018x}, computed \
                 {computed:#018x}) — the file is corrupt"
            ),
            CkptError::Corrupt(msg) => write!(f, "checkpoint is corrupt: {msg}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// FNV-1a 64-bit hash of `bytes` (the checkpoint checksum; also used for the
/// workload-trace fingerprint stored in every checkpoint).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = Fnv64::new();
    hash.write(bytes);
    hash.finish()
}

/// Incremental FNV-1a-64 hasher (for fingerprinting structured data without
/// materializing a byte buffer).
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Start a fresh hash.
    #[must_use]
    pub const fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Fold `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Fold a `u64` (little-endian) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The accumulated hash value.
    #[must_use]
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

/// Frame `payload` with magic, the current version, its length and checksum.
#[must_use]
pub fn seal(payload: &[u8]) -> Vec<u8> {
    seal_with_version(CHECKPOINT_VERSION, payload)
}

/// [`seal`] with an explicit version (tests use this to fabricate
/// old-version checkpoints; production code always writes the current one).
#[must_use]
pub fn seal_with_version(version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate the frame of `blob` and return `(version, payload)`.
///
/// Checks magic, declared length (a torn write shows up as
/// [`CkptError::Truncated`]) and checksum — but *not* the version, so that
/// callers can distinguish "old format" (a dedicated loud error) from
/// "corrupt file" (skipped while hunting for the newest valid checkpoint).
pub fn unseal(blob: &[u8]) -> Result<(u32, &[u8]), CkptError> {
    if blob.len() < HEADER_BYTES {
        return Err(CkptError::Truncated {
            needed: HEADER_BYTES,
            available: blob.len(),
        });
    }
    if blob[..8] != CHECKPOINT_MAGIC {
        return Err(CkptError::BadMagic);
    }
    let version = u32::from_le_bytes(blob[8..12].try_into().expect("4 bytes"));
    let len = u64::from_le_bytes(blob[12..20].try_into().expect("8 bytes")) as usize;
    let stored = u64::from_le_bytes(blob[20..28].try_into().expect("8 bytes"));
    let payload = &blob[HEADER_BYTES..];
    if payload.len() != len {
        return Err(CkptError::Truncated {
            needed: HEADER_BYTES + len,
            available: blob.len(),
        });
    }
    let computed = fnv1a64(payload);
    if computed != stored {
        return Err(CkptError::ChecksumMismatch { stored, computed });
    }
    Ok((version, payload))
}

/// [`unseal`] plus the version check against [`CHECKPOINT_VERSION`].
pub fn unseal_current(blob: &[u8]) -> Result<&[u8], CkptError> {
    let (version, payload) = unseal(blob)?;
    if version != CHECKPOINT_VERSION {
        return Err(CkptError::UnsupportedVersion {
            found: version,
            expected: CHECKPOINT_VERSION,
        });
    }
    Ok(payload)
}

/// Peek at the frame of `blob` without hashing the payload: returns the
/// version if magic and length check out. Used to detect old-format files
/// cheaply before any cell runs.
pub fn peek_version(blob: &[u8]) -> Result<u32, CkptError> {
    if blob.len() < HEADER_BYTES {
        return Err(CkptError::Truncated {
            needed: HEADER_BYTES,
            available: blob.len(),
        });
    }
    if blob[..8] != CHECKPOINT_MAGIC {
        return Err(CkptError::BadMagic);
    }
    Ok(u32::from_le_bytes(blob[8..12].try_into().expect("4 bytes")))
}

/// Little-endian binary writer for checkpoint payloads.
#[derive(Debug, Default)]
pub struct CkptWriter {
    buf: Vec<u8>,
}

impl CkptWriter {
    /// Start an empty payload.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw payload written so far (frame it with [`seal`]).
    #[must_use]
    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64` (also used for [`Cycle`]).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Write a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Write an `f64` by its IEEE-754 bit pattern (bit-exact round-trip,
    /// NaN payloads included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write an optional `u64` (presence byte + value).
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.put_u8(1);
                self.put_u64(v);
            }
            None => self.put_u8(0),
        }
    }

    /// Write an optional `usize` (presence byte + value).
    pub fn put_opt_usize(&mut self, v: Option<usize>) {
        self.put_opt_u64(v.map(|v| v as u64));
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }
}

/// Little-endian binary reader over a checkpoint payload.
#[derive(Debug)]
pub struct CkptReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CkptReader<'a> {
    /// Read from the start of `payload`.
    #[must_use]
    pub fn new(payload: &'a [u8]) -> Self {
        Self {
            buf: payload,
            pos: 0,
        }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated {
                needed: self.pos + n,
                available: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read a [`Cycle`].
    pub fn get_cycle(&mut self) -> Result<Cycle, CkptError> {
        self.get_u64()
    }

    /// Read a `usize` stored as `u64`, guarding against absurd lengths (a
    /// corrupt length prefix must not drive a multi-gigabyte allocation).
    pub fn get_usize(&mut self) -> Result<usize, CkptError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .ok()
            .filter(|&v| v <= (1 << 40))
            .ok_or_else(|| CkptError::Corrupt(format!("implausible length {v}")))
    }

    /// Read a boolean (one byte, strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, CkptError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CkptError::Corrupt(format!("invalid boolean byte {b}"))),
        }
    }

    /// Read an `f64` stored as its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read an optional `u64`.
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, CkptError> {
        Ok(if self.get_bool()? {
            Some(self.get_u64()?)
        } else {
            None
        })
    }

    /// Read an optional `usize`.
    pub fn get_opt_usize(&mut self) -> Result<Option<usize>, CkptError> {
        self.get_opt_u64().map(|v| v.map(|v| v as usize))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CkptError> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CkptError::Corrupt("non-UTF-8 string".into()))
    }

    /// Read a length-prefixed `u64` vector.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, CkptError> {
        let len = self.get_usize()?;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Assert that the payload is fully consumed (catches encoder/decoder
    /// drift: every byte written must be read back).
    pub fn expect_end(&self) -> Result<(), CkptError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CkptError::Corrupt(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )))
        }
    }
}

// ----- codecs for the substrate's shared plain types ---------------------------

impl crate::ProcSet {
    /// Serialize as an ascending member list (compact for the sparse sets
    /// the protocol actually keeps, and width-independent).
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_usize(self.len());
        for p in self.iter() {
            w.put_usize(p);
        }
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        let n = r.get_usize()?;
        let mut set = Self::empty();
        for _ in 0..n {
            let p = r.get_usize()?;
            if p >= crate::MAX_PROCS {
                return Err(CkptError::Corrupt(format!("processor id {p} out of range")));
            }
            set.insert(p);
        }
        Ok(set)
    }
}

impl crate::config::SimConfig {
    /// Serialize the full machine description (the checkpoint's config echo:
    /// restore refuses to graft saved state onto a different machine).
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_usize(self.num_procs);
        w.put_usize(self.num_dirs);
        w.put_usize(self.l1_bytes);
        w.put_usize(self.l1_assoc);
        w.put_usize(self.line_bytes);
        w.put_usize(self.directory_segment_bytes);
        w.put_u64(self.l1_hit_latency);
        w.put_u64(self.directory_latency);
        w.put_u64(self.memory_latency);
        w.put_u64(self.memory_port_occupancy);
        w.put_u64(self.memory_bytes);
        w.put_usize(self.bus_width_bytes);
        w.put_u64(self.bus_arbitration_latency);
        w.put_u64(self.token_vendor_latency);
        w.put_u64(self.ungate_circuit_latency);
        w.put_u64(self.stop_clock_drain_latency);
        w.put_u64(self.wake_up_latency);
        w.put_u64(self.abort_rollback_latency);
        self.topology.save_ckpt(w);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            num_procs: r.get_usize()?,
            num_dirs: r.get_usize()?,
            l1_bytes: r.get_usize()?,
            l1_assoc: r.get_usize()?,
            line_bytes: r.get_usize()?,
            directory_segment_bytes: r.get_usize()?,
            l1_hit_latency: r.get_u64()?,
            directory_latency: r.get_u64()?,
            memory_latency: r.get_u64()?,
            memory_port_occupancy: r.get_u64()?,
            memory_bytes: r.get_u64()?,
            bus_width_bytes: r.get_usize()?,
            bus_arbitration_latency: r.get_u64()?,
            token_vendor_latency: r.get_u64()?,
            ungate_circuit_latency: r.get_u64()?,
            stop_clock_drain_latency: r.get_u64()?,
            wake_up_latency: r.get_u64()?,
            abort_rollback_latency: r.get_u64()?,
            topology: crate::topology::TopologyConfig::load_ckpt(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip_primitives() {
        let mut w = CkptWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_usize(12345);
        w.put_bool(true);
        w.put_bool(false);
        w.put_opt_u64(Some(99));
        w.put_opt_u64(None);
        w.put_str("héllo");
        w.put_u64_slice(&[1, 2, 3]);
        let payload = w.into_payload();
        let mut r = CkptReader::new(&payload);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_usize().unwrap(), 12345);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_opt_u64().unwrap(), Some(99));
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_u64_vec().unwrap(), vec![1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let blob = seal(b"payload bytes");
        let (version, payload) = unseal(&blob).unwrap();
        assert_eq!(version, CHECKPOINT_VERSION);
        assert_eq!(payload, b"payload bytes");
        assert_eq!(unseal_current(&blob).unwrap(), b"payload bytes");
        assert_eq!(peek_version(&blob).unwrap(), CHECKPOINT_VERSION);
    }

    #[test]
    fn truncated_blob_is_detected_by_length() {
        let blob = seal(b"0123456789");
        let torn = &blob[..blob.len() - 3];
        assert!(matches!(unseal(torn), Err(CkptError::Truncated { .. })));
        assert!(matches!(
            unseal(&blob[..4]),
            Err(CkptError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut blob = seal(b"0123456789");
        let last = blob.len() - 1;
        blob[last] ^= 0x40;
        assert!(matches!(
            unseal(&blob),
            Err(CkptError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut blob = seal(b"x");
        blob[0] = b'X';
        assert_eq!(unseal(&blob), Err(CkptError::BadMagic));
    }

    #[test]
    fn old_version_is_a_dedicated_error() {
        let blob = seal_with_version(0, b"legacy");
        // Frame-valid (unseal succeeds) …
        assert_eq!(unseal(&blob).unwrap().0, 0);
        assert_eq!(peek_version(&blob).unwrap(), 0);
        // … but the current-version gate refuses it loudly.
        assert_eq!(
            unseal_current(&blob),
            Err(CkptError::UnsupportedVersion {
                found: 0,
                expected: CHECKPOINT_VERSION
            })
        );
    }

    #[test]
    fn proc_set_codec_roundtrips_wide_sets() {
        let set: crate::ProcSet = [0usize, 63, 64, 511, 1023].into_iter().collect();
        let mut w = CkptWriter::new();
        set.save_ckpt(&mut w);
        let payload = w.into_payload();
        let mut r = CkptReader::new(&payload);
        assert_eq!(crate::ProcSet::load_ckpt(&mut r).unwrap(), set);
        r.expect_end().unwrap();
    }

    #[test]
    fn sim_config_codec_roundtrips_both_topologies() {
        for cfg in [
            crate::config::SimConfig::table2(8),
            crate::config::SimConfig::table2_with_topology(
                64,
                crate::topology::TopologyConfig::parse("sharded:8:mesh").unwrap(),
            ),
        ] {
            let mut w = CkptWriter::new();
            cfg.save_ckpt(&mut w);
            let payload = w.into_payload();
            let mut r = CkptReader::new(&payload);
            let back = crate::config::SimConfig::load_ckpt(&mut r).unwrap();
            r.expect_end().unwrap();
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn fnv_incremental_matches_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"abc");
        h.write(b"def");
        assert_eq!(h.finish(), fnv1a64(b"abcdef"));
    }
}
