//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! The standard library's default `SipHash` is DoS-resistant but costs tens
//! of nanoseconds per lookup — and the speculative read/write sets, the
//! directory line tables and the per-processor reader sets are probed on
//! every memory operation of every simulated cycle. These maps are keyed by
//! trusted, simulator-generated integers (line addresses, directory ids), so
//! the multiply-and-rotate scheme popularised by `rustc-hash`/`FxHasher` is
//! both safe and several times faster here.
//!
//! Iteration order of the resulting maps is explicitly **not** part of any
//! simulation outcome: everywhere a map's contents feed the protocol, the
//! consumer either sorts (commit plans), folds order-independently (bit
//! masks, counters) or drains-and-clears. The determinism test suite and the
//! engine-differential tests guard that property.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The `FxHasher` multiplier (a 64-bit truncation of π's golden-ratio-like
/// constant used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-and-rotate hasher for trusted integer keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0u64..1000 {
            let mut a = FxHasher::default();
            a.write_u64(i * 64);
            let mut b = FxHasher::default();
            b.write_u64(i * 64);
            assert_eq!(a.finish(), b.finish(), "same input, same hash");
            seen.insert(a.finish());
        }
        assert_eq!(seen.len(), 1000, "aligned keys must not collide");
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(64, "line");
        assert_eq!(m.get(&64), Some(&"line"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(128));
        assert!(s.contains(&128));
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is over eight bytes");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is over eight bytez");
        assert_ne!(a.finish(), b.finish());
    }
}
