//! Lightweight statistic collectors.
//!
//! The protocol and experiment layers accumulate event counts (commits,
//! aborts, renewals, gated cycles, …) and distributions (aborts per
//! transaction, gating-window lengths). These helpers keep the collection
//! allocation-free in the per-cycle hot path.

use serde::{Deserialize, Serialize};

use crate::checkpoint::{CkptError, CkptReader, CkptWriter};

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Create a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self(0)
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Serialize into a checkpoint payload.
    pub fn save_ckpt(self, w: &mut CkptWriter) {
        w.put_u64(self.0);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self(r.get_u64()?))
    }
}

/// Running summary (count / sum / min / max / mean) of a stream of samples.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Create an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples, or `None` if no sample was recorded.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Serialize into a checkpoint payload (bit-exact, infinities included).
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_u64(self.count);
        w.put_f64(self.sum);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            count: r.get_u64()?,
            sum: r.get_f64()?,
            min: r.get_f64()?,
            max: r.get_f64()?,
        })
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-bucket histogram for small non-negative integer samples
/// (e.g. aborts suffered per transaction). Samples beyond the last bucket
/// are clamped into it, mirroring the paper's 8-bit saturating abort counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `buckets` buckets covering values
    /// `0..buckets-1`, the last one saturating.
    #[must_use]
    pub fn new(buckets: usize) -> Self {
        Self {
            buckets: vec![0; buckets.max(1)],
            total: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bucket `idx` (clamped).
    #[must_use]
    pub fn bucket(&self, idx: usize) -> u64 {
        self.buckets[idx.min(self.buckets.len() - 1)]
    }

    /// All buckets.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Serialize into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_u64_slice(&self.buckets);
        w.put_u64(self.total);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        let buckets = r.get_u64_vec()?;
        if buckets.is_empty() {
            return Err(CkptError::Corrupt("histogram with no buckets".into()));
        }
        Ok(Self {
            buckets,
            total: r.get_u64()?,
        })
    }

    /// Mean of the recorded samples treating the saturating bucket at its
    /// lower edge; `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| i as f64 * c as f64)
            .sum();
        Some(sum / self.total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments() {
        let mut c = Counter::new();
        c.incr();
        c.incr();
        c.add(3);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_tracks_min_max_mean() {
        let mut s = Summary::new();
        for v in [3.0, 1.0, 2.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        assert!((s.mean().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_has_no_mean() {
        let s = Summary::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_merge() {
        let mut a = Summary::new();
        a.record(1.0);
        a.record(2.0);
        let mut b = Summary::new();
        b.record(10.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(10.0));
        let empty = Summary::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn histogram_saturates_last_bucket() {
        let mut h = Histogram::new(4);
        h.record(0);
        h.record(3);
        h.record(250);
        assert_eq!(h.bucket(3), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(10);
        h.record(2);
        h.record(4);
        assert!((h.mean().unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(Histogram::new(5).mean(), None);
    }
}
