//! Machine configuration (Table II of the paper).
//!
//! The defaults reproduce Table II: 1–16 single-issue in-order cores, a
//! 64 KB 2-way 64-byte-line L1 data cache with 1-cycle latency, a common
//! split-transaction bus, full-bit-vector directories with 10-cycle latency
//! and a single-ported 100-cycle main memory. The
//! [`topology`](SimConfig::topology) axis swaps the shared bus for a
//! banked/sharded fabric so the same protocol scales to 64–1024 cores (see
//! [`crate::topology`] and `docs/SCALING.md`).

use serde::{Deserialize, Serialize};

use crate::topology::TopologyConfig;
use crate::MAX_PROCS;

/// Complete description of the simulated machine.
///
/// A `SimConfig` is immutable for the duration of a simulation run; the
/// experiment harness builds one per data point (e.g. one per processor
/// count in Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of processors (cores). The paper evaluates 4, 8 and 16.
    pub num_procs: usize,
    /// Number of directories (home nodes). The paper's example (Fig. 2) uses
    /// one directory per processor; we follow that default.
    pub num_dirs: usize,
    /// L1 data cache capacity in bytes (default 64 KB).
    pub l1_bytes: usize,
    /// L1 data cache associativity (default 2-way).
    pub l1_assoc: usize,
    /// Cache line size in bytes (default 64 B).
    pub line_bytes: usize,
    /// Size of the physical-memory segments interleaved across directories
    /// (default 4 KiB). Each directory is home to every `num_dirs`-th
    /// segment, matching the paper's "multiple directories ... map different
    /// segments of the physical memory".
    pub directory_segment_bytes: usize,
    /// L1 hit latency in cycles (default 1).
    pub l1_hit_latency: u64,
    /// Directory access latency in cycles (default 10).
    pub directory_latency: u64,
    /// Main memory access latency in cycles (default 100).
    pub memory_latency: u64,
    /// Cycles the single memory read/write port of a home node is tied up per
    /// access. The default equals the access latency (the strict reading of
    /// Table II's "Single Read/Write Port"); smaller values model a pipelined
    /// bank that can overlap accesses.
    pub memory_port_occupancy: u64,
    /// Main memory capacity in bytes (default 1 GB). Only used for sanity
    /// checks on workload address ranges.
    pub memory_bytes: u64,
    /// Width of the split-transaction bus data path in bytes per cycle.
    pub bus_width_bytes: usize,
    /// Bus arbitration overhead in cycles charged to every transfer.
    pub bus_arbitration_latency: u64,
    /// Latency of the centralized token vendor (TID request round trip),
    /// excluding bus transfer time.
    pub token_vendor_latency: u64,
    /// Number of cycles the directory-side "control circuit" of Fig. 2(e)
    /// needs to produce the "on" command after the gating timer expires.
    /// The paper notes the high fan-in OR takes multiple cycles; this models
    /// that small extension of the gating period.
    pub ungate_circuit_latency: u64,
    /// Cycles a processor takes to drain its in-flight instruction and enter
    /// standby after receiving "Stop Clock".
    pub stop_clock_drain_latency: u64,
    /// Cycles from the "on" command reaching the PLL output until the core
    /// resumes fetching (the paper assumes the main PLL keeps running, so the
    /// wake-up is essentially instantaneous; default 1).
    pub wake_up_latency: u64,
    /// Cycles needed to restore the check-pointed architectural state on an
    /// abort (register checkpoint restore + speculative-line flash clear).
    pub abort_rollback_latency: u64,
    /// Interconnect topology: the paper's shared bus (default) or the
    /// banked/sharded fabric used for 64–1024-processor machines.
    pub topology: TopologyConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::table2(8)
    }
}

impl SimConfig {
    /// The Table II configuration for `num_procs` processors.
    #[must_use]
    pub fn table2(num_procs: usize) -> Self {
        Self {
            num_procs,
            num_dirs: num_procs.max(1),
            l1_bytes: 64 * 1024,
            l1_assoc: 2,
            line_bytes: 64,
            directory_segment_bytes: 4096,
            l1_hit_latency: 1,
            directory_latency: 10,
            memory_latency: 100,
            memory_port_occupancy: 16,
            memory_bytes: 1 << 30,
            bus_width_bytes: 16,
            bus_arbitration_latency: 1,
            token_vendor_latency: 5,
            ungate_circuit_latency: 4,
            stop_clock_drain_latency: 1,
            wake_up_latency: 1,
            abort_rollback_latency: 5,
            topology: TopologyConfig::Bus,
        }
    }

    /// The Table II configuration with the interconnect swapped for a
    /// topology, e.g. [`TopologyConfig::sharded_default`] for large machines.
    #[must_use]
    pub fn table2_with_topology(num_procs: usize, topology: TopologyConfig) -> Self {
        Self {
            topology,
            ..Self::table2(num_procs)
        }
    }

    /// Replace the L1 data-cache geometry (capacity in KiB, associativity),
    /// keeping everything else. Used by the sensitivity-sweep harness to
    /// explore cache configurations beyond the Table II 64 KB 2-way point;
    /// the result still has to pass [`SimConfig::validate`].
    #[must_use]
    pub fn with_l1_geometry(mut self, l1_kb: usize, l1_assoc: usize) -> Self {
        self.l1_bytes = l1_kb * 1024;
        self.l1_assoc = l1_assoc;
        self
    }

    /// Number of sets in the L1 data cache.
    #[must_use]
    pub fn l1_sets(&self) -> usize {
        self.l1_bytes / (self.line_bytes * self.l1_assoc)
    }

    /// Number of cycles a full cache line occupies the bus data path.
    #[must_use]
    pub fn bus_line_transfer_cycles(&self) -> u64 {
        (self.line_bytes as u64).div_ceil(self.bus_width_bytes as u64)
    }

    /// Number of cycles a short (address / control only) message occupies the
    /// bus.
    #[must_use]
    pub fn bus_control_transfer_cycles(&self) -> u64 {
        1
    }

    /// Validate internal consistency; returns a human-readable description of
    /// the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_procs == 0 {
            return Err("num_procs must be >= 1".into());
        }
        if self.num_procs > MAX_PROCS {
            // The directory sharer vectors, the hook view's marked bits and
            // the engine's active/spinner masks are all fixed-width
            // full-bit vectors (`ProcSet`).
            return Err(format!(
                "num_procs ({}) exceeds the {MAX_PROCS}-processor full-bit-vector limit",
                self.num_procs
            ));
        }
        if self.num_dirs == 0 {
            return Err("num_dirs must be >= 1".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line_bytes ({}) must be a power of two",
                self.line_bytes
            ));
        }
        if !self.directory_segment_bytes.is_power_of_two()
            || self.directory_segment_bytes < self.line_bytes
        {
            return Err(format!(
                "directory_segment_bytes ({}) must be a power of two no smaller than a line",
                self.directory_segment_bytes
            ));
        }
        if self.l1_assoc == 0 {
            return Err("l1_assoc must be >= 1".into());
        }
        if !self
            .l1_bytes
            .is_multiple_of(self.line_bytes * self.l1_assoc)
        {
            return Err(format!(
                "l1_bytes ({}) must be a multiple of line_bytes*assoc ({})",
                self.l1_bytes,
                self.line_bytes * self.l1_assoc
            ));
        }
        if !self.l1_sets().is_power_of_two() {
            return Err(format!(
                "l1 set count ({}) must be a power of two",
                self.l1_sets()
            ));
        }
        if self.bus_width_bytes == 0 {
            return Err("bus_width_bytes must be >= 1".into());
        }
        Ok(())
    }

    /// Render the configuration as the rows of Table II of the paper.
    #[must_use]
    pub fn table2_rows(&self) -> Vec<(String, String)> {
        vec![
            (
                "CPU".to_string(),
                format!("{} single issue in-order cores", self.num_procs),
            ),
            (
                "L1D".to_string(),
                format!(
                    "{}KB {} byte line size, {}-way associative, {} cycle latency",
                    self.l1_bytes / 1024,
                    self.line_bytes,
                    self.l1_assoc,
                    self.l1_hit_latency
                ),
            ),
            (
                "Interconnect".to_string(),
                match self.topology {
                    TopologyConfig::Bus => format!(
                        "Common Split-Transaction Bus ({} bytes/cycle)",
                        self.bus_width_bytes
                    ),
                    TopologyConfig::Sharded { .. } => format!(
                        "{} ({} bytes/cycle per bank)",
                        self.topology.describe(),
                        self.bus_width_bytes
                    ),
                },
            ),
            (
                "Directory".to_string(),
                format!(
                    "Full-bit vector sharer, {} cycle latency, {} byte segments",
                    self.directory_latency, self.directory_segment_bytes
                ),
            ),
            (
                "Main Memory".to_string(),
                format!(
                    "{}GB, {} cycle latency, Single Read/Write Port",
                    self.memory_bytes >> 30,
                    self.memory_latency
                ),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults_match_paper() {
        let cfg = SimConfig::table2(16);
        assert_eq!(cfg.num_procs, 16);
        assert_eq!(cfg.l1_bytes, 64 * 1024);
        assert_eq!(cfg.l1_assoc, 2);
        assert_eq!(cfg.line_bytes, 64);
        assert_eq!(cfg.l1_hit_latency, 1);
        assert_eq!(cfg.directory_latency, 10);
        assert_eq!(cfg.memory_latency, 100);
        assert_eq!(cfg.memory_bytes, 1 << 30);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn l1_geometry() {
        let cfg = SimConfig::table2(4);
        // 64KB / (64B * 2 ways) = 512 sets
        assert_eq!(cfg.l1_sets(), 512);
        assert!(cfg.l1_sets().is_power_of_two());
    }

    #[test]
    fn bus_transfer_cycles() {
        let cfg = SimConfig::table2(4);
        // 64B line over a 16B bus = 4 data cycles
        assert_eq!(cfg.bus_line_transfer_cycles(), 4);
        assert_eq!(cfg.bus_control_transfer_cycles(), 1);
    }

    #[test]
    fn validation_rejects_zero_procs() {
        let mut cfg = SimConfig::table2(4);
        cfg.num_procs = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_too_many_procs() {
        let mut cfg = SimConfig::table2(MAX_PROCS);
        assert!(cfg.validate().is_ok(), "1024 processors is the ceiling");
        cfg.num_procs = MAX_PROCS + 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn topology_defaults_to_bus_and_renders_in_table2() {
        let cfg = SimConfig::table2(8);
        assert_eq!(cfg.topology, TopologyConfig::Bus);
        assert!(cfg.table2_rows()[2].1.contains("Split-Transaction Bus"));
        let sharded = SimConfig::table2_with_topology(64, TopologyConfig::sharded_default());
        assert_eq!(sharded.num_procs, 64);
        assert!(sharded.validate().is_ok());
        assert!(sharded.table2_rows()[2].1.contains("sharded"));
    }

    #[test]
    fn validation_rejects_non_pow2_line() {
        let mut cfg = SimConfig::table2(4);
        cfg.line_bytes = 48;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_capacity() {
        let mut cfg = SimConfig::table2(4);
        cfg.l1_bytes = 60 * 1024 + 17;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn table2_rows_render() {
        let rows = SimConfig::table2(8).table2_rows();
        assert_eq!(rows.len(), 5);
        assert!(rows[0].1.contains("8 single issue"));
        assert!(rows[3].1.contains("10 cycle"));
        assert!(rows[4].1.contains("100 cycle"));
    }

    #[test]
    fn default_is_eight_procs() {
        assert_eq!(SimConfig::default().num_procs, 8);
    }

    #[test]
    fn with_l1_geometry_replaces_cache_only() {
        let cfg = SimConfig::table2(4).with_l1_geometry(16, 4);
        assert_eq!(cfg.l1_bytes, 16 * 1024);
        assert_eq!(cfg.l1_assoc, 4);
        assert_eq!(cfg.l1_sets(), 64);
        assert_eq!(cfg.num_procs, 4, "non-cache parameters are untouched");
        assert!(cfg.validate().is_ok());
        // A non-power-of-two set count is still caught by validate().
        assert!(SimConfig::table2(4)
            .with_l1_geometry(48, 2)
            .validate()
            .is_err());
    }
}
