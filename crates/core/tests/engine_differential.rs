//! Differential proof of the stepping engines' exactness invariant.
//!
//! The fast-forward engine (`EngineKind::FastForward`) must be bit-for-bit
//! cycle-exact with respect to the naive one-step-per-cycle reference engine
//! (`EngineKind::Naive`); the shard-parallel engine
//! (`EngineKind::ShardParallel`) — which decomposes a sharded machine into
//! conflict-isolated islands and simulates them on parallel host threads —
//! and the time-windowed conservative PDES engine (`EngineKind::Windowed`)
//! — which advances per-bank groups one provable lookahead window at a time
//! even when the whole machine is one conflict-connected island — must both
//! be bit-for-bit exact with respect to them: identical `RunOutcome`s —
//! total cycles, commits, aborts, gatings, per-state cycle breakdowns,
//! interval decomposition, bus and shard statistics — identical controller
//! statistics and identical energy analyses, for **every registered
//! contention policy** (the six legacy modes and the adaptive / hybrid /
//! throttle / oracle extensions), every registered workload and **both
//! interconnect topologies** (the paper's shared bus and the banked sharded
//! fabric). This suite sweeps the full (policy × workload × topology) grid
//! at `Test` scale, replays the policy grid on a 64-processor sharded
//! machine where the clustered workload actually decomposes into islands,
//! and then hammers the same invariants with property-based random traces
//! designed to provoke conflicts, aborts, gating, renewal, throttled
//! windows, oracle subscriptions and multi-island decompositions.

use clockgate_htm::report::to_json;
use clockgate_htm::sim::{
    choose_engine, EngineChoice, EngineKind, GatingMode, SimReport, SimulationBuilder,
};
use htm_sim::topology::TopologyConfig;
use htm_tcc::txn::{Op, ThreadTrace, Transaction, WorkloadTrace};
use htm_workloads::registry::ALL_WORKLOADS;
use htm_workloads::WorkloadScale;
use proptest::prelude::*;

/// Every policy family of the registry: the six legacy modes of the
/// evaluation plus the four framework extensions. Kept in sync with the
/// registry by the `covers_every_registered_family` test below.
fn all_modes() -> [GatingMode; 10] {
    [
        GatingMode::Ungated,
        GatingMode::ExponentialBackoff { base: 16, cap: 8 },
        GatingMode::ClockGate { w0: 8 },
        GatingMode::ClockGateFixedWindow { window: 64 },
        GatingMode::ClockGateNoRenew { w0: 8 },
        GatingMode::ClockGateLinear { w0: 8 },
        GatingMode::AdaptiveW0 { w0: 8 },
        GatingMode::Hybrid {
            gate_limit: 2,
            w0: 8,
            base: 16,
            cap: 8,
        },
        GatingMode::Throttle { w0: 8 },
        GatingMode::Oracle,
    ]
}

#[test]
fn covers_every_registered_family() {
    let covered: std::collections::BTreeSet<&str> =
        all_modes().iter().map(GatingMode::family).collect();
    for info in clockgate_htm::gating::policy::registry() {
        assert!(
            covered.contains(info.family),
            "policy family `{}` is missing from the differential sweep",
            info.family
        );
    }
}

/// The default (bank-per-directory, crossbar) sharded fabric.
fn sharded() -> TopologyConfig {
    TopologyConfig::parse("sharded").unwrap()
}

fn run_named_on(
    mode: GatingMode,
    workload: &str,
    procs: usize,
    engine: EngineKind,
    topology: TopologyConfig,
) -> SimReport {
    SimulationBuilder::new()
        .processors(procs)
        .topology(topology)
        .workload_by_name(workload, WorkloadScale::Test, 11)
        .unwrap()
        .gating(mode)
        .cycle_limit(50_000_000)
        .engine(engine)
        .run()
        .unwrap()
}

fn run_named(mode: GatingMode, workload: &str, procs: usize, engine: EngineKind) -> SimReport {
    run_named_on(mode, workload, procs, engine, TopologyConfig::Bus)
}

fn run_trace_on(
    mode: GatingMode,
    trace: WorkloadTrace,
    engine: EngineKind,
    topology: TopologyConfig,
) -> SimReport {
    SimulationBuilder::new()
        .processors(trace.num_threads())
        .topology(topology)
        .workload(trace)
        .gating(mode)
        .cycle_limit(50_000_000)
        .engine(engine)
        .run()
        .unwrap()
}

fn run_trace(mode: GatingMode, trace: WorkloadTrace, engine: EngineKind) -> SimReport {
    run_trace_on(mode, trace, engine, TopologyConfig::Bus)
}

/// Compare two reports field for field. `RunOutcome` derives `PartialEq`, so
/// the protocol-level comparison is exact; the full reports (including the
/// floating-point energy analysis and the controller statistics) are
/// additionally compared through their canonical JSON serialization, which
/// is total over every field.
fn assert_identical(fast: &SimReport, naive: &SimReport, context: &str) {
    assert_eq!(
        fast.outcome, naive.outcome,
        "{context}: protocol outcome diverged between engines"
    );
    assert_eq!(
        fast.gating, naive.gating,
        "{context}: controller statistics diverged between engines"
    );
    assert_eq!(
        to_json(fast),
        to_json(naive),
        "{context}: serialized reports diverged between engines"
    );
    assert_ledger_exact(fast, context);
}

/// The component ledger's exactness invariant: its core subset must
/// reproduce both the legacy direct four-state accounting and the paper's
/// Eq. 1 / Eq. 5 interval formulation (the batched `acct_until` settlement
/// of the fast engine and the per-cycle naive accounting feed the same
/// integer cycle tallies).
fn assert_ledger_exact(report: &SimReport, context: &str) {
    assert_eq!(
        report.ledger.legacy_total, report.energy.total_energy,
        "{context}: ledger cross-check total is not the legacy total"
    );
    assert!(
        report.ledger.core_discrepancy() < 1e-12,
        "{context}: ledger core subset {} vs legacy {}",
        report.ledger.core_energy,
        report.ledger.legacy_total
    );
    assert!(
        report.ledger.interval_discrepancy() < 1e-9,
        "{context}: ledger core subset {} vs Eq. 1/5 interval {}",
        report.ledger.core_energy,
        report.ledger.interval_total
    );
    let component_sum: f64 = report.ledger.components.iter().map(|c| c.energy).sum();
    let tol = 1e-9 * report.ledger.total_energy.max(1.0);
    assert!(
        (component_sum - report.ledger.total_energy).abs() <= tol,
        "{context}: component energies do not sum to the ledger total"
    );
}

#[test]
fn every_mode_and_workload_is_engine_exact() {
    for workload in ALL_WORKLOADS {
        for mode in all_modes() {
            let fast = run_named(mode, workload, 4, EngineKind::FastForward);
            let naive = run_named(mode, workload, 4, EngineKind::Naive);
            assert_identical(
                &fast,
                &naive,
                &format!("workload={workload} mode={}", mode.label()),
            );
            fast.outcome.check_consistency().unwrap();
        }
    }
}

#[test]
fn every_mode_and_workload_is_engine_exact_on_the_sharded_fabric() {
    // The same (policy × workload) grid on the banked topology, with the
    // shard-parallel and windowed engines as third and fourth parties to
    // the agreement. At four processors most workloads form a single island
    // (the shard-parallel engine falls back to serial fast-forward, while
    // the windowed engine is precisely the one that still parallelizes);
    // the fallback must be invisible in the output.
    for workload in ALL_WORKLOADS {
        for mode in all_modes() {
            let fast = run_named_on(mode, workload, 4, EngineKind::FastForward, sharded());
            let naive = run_named_on(mode, workload, 4, EngineKind::Naive, sharded());
            let shard = run_named_on(mode, workload, 4, EngineKind::ShardParallel, sharded());
            let windowed = run_named_on(mode, workload, 4, EngineKind::Windowed, sharded());
            let context = format!("sharded workload={workload} mode={}", mode.label());
            assert_identical(&fast, &naive, &context);
            assert_identical(&shard, &fast, &context);
            assert_identical(&windowed, &fast, &context);
            fast.outcome.check_consistency().unwrap();
        }
    }
}

#[test]
fn parallel_engines_are_exact_on_the_bus_topology_too() {
    // On the bus there is nothing to decompose and no lookahead to prove;
    // the shard-parallel and windowed engines must degrade to plain
    // fast-forward, not diverge or refuse.
    for mode in [GatingMode::Ungated, GatingMode::ClockGate { w0: 8 }] {
        let fast = run_named(mode, "intruder", 4, EngineKind::FastForward);
        let shard = run_named(mode, "intruder", 4, EngineKind::ShardParallel);
        let windowed = run_named(mode, "intruder", 4, EngineKind::Windowed);
        assert_identical(&shard, &fast, &format!("bus mode={}", mode.label()));
        assert_identical(&windowed, &fast, &format!("bus mode={}", mode.label()));
    }
}

#[test]
fn clustered_64p_islands_are_engine_exact_for_every_policy() {
    // The scale case the tentpole is about: 64 processors, the clustered
    // workload decomposing into eight conflict-isolated islands on the
    // sharded fabric. The shard-parallel engine simulates the islands on
    // parallel host threads and must reproduce the serial engines bit for
    // bit — for all ten policy families, including the stateful adaptive /
    // hybrid / oracle extensions whose controller statistics are merged
    // across lanes.
    for mode in all_modes() {
        let fast = run_named_on(mode, "clustered", 64, EngineKind::FastForward, sharded());
        let shard = run_named_on(mode, "clustered", 64, EngineKind::ShardParallel, sharded());
        let windowed = run_named_on(mode, "clustered", 64, EngineKind::Windowed, sharded());
        let context = format!("clustered 64p sharded mode={}", mode.label());
        assert_identical(&shard, &fast, &context);
        assert_identical(&windowed, &fast, &context);
        fast.outcome.check_consistency().unwrap();
    }
    // The naive reference engine is too slow to sweep all ten families at
    // this size; one gated and one ungated point anchor the three-way
    // agreement.
    for mode in [GatingMode::Ungated, GatingMode::ClockGate { w0: 8 }] {
        let fast = run_named_on(mode, "clustered", 64, EngineKind::FastForward, sharded());
        let naive = run_named_on(mode, "clustered", 64, EngineKind::Naive, sharded());
        assert_identical(
            &fast,
            &naive,
            &format!("clustered 64p sharded naive mode={}", mode.label()),
        );
    }
}

#[test]
fn recorded_traces_replay_engine_exact_on_all_four_engines() {
    // The trace subsystem's round-trip contract meets the exactness
    // invariant: a workload recorded to htmtrace text and read back is the
    // same value, and replaying it must land on byte-identical reports on
    // every engine — so a trace file is as good a witness as the generator.
    for workload in [
        "intruder",
        "bayes",
        "hotspot",
        "zipfian",
        "ring",
        "longshort",
    ] {
        let original = htm_workloads::by_name(workload, 4, WorkloadScale::Test, 11).unwrap();
        let text = htm_workloads::trace::render(&original);
        let loaded = htm_workloads::trace::read_from(text.as_bytes()).unwrap();
        assert_eq!(
            loaded.workload, original,
            "{workload}: trace round trip must be the identity"
        );
        let mode = GatingMode::ClockGate { w0: 8 };
        let baseline = run_trace(mode, original, EngineKind::FastForward);
        for engine in [
            EngineKind::FastForward,
            EngineKind::Naive,
            EngineKind::ShardParallel,
            EngineKind::Windowed,
        ] {
            let replay = run_trace(mode, loaded.workload.clone(), engine);
            assert_identical(
                &replay,
                &baseline,
                &format!("trace replay workload={workload} engine={}", engine.label()),
            );
        }
    }
}

#[test]
fn paper_matrix_processor_counts_are_engine_exact() {
    // The gated mode across the paper's processor counts: the gating /
    // renewal timers interact with commit bursts differently at each size.
    for procs in [2usize, 8, 16] {
        let mode = GatingMode::ClockGate { w0: 8 };
        let fast = run_named(mode, "intruder", procs, EngineKind::FastForward);
        let naive = run_named(mode, "intruder", procs, EngineKind::Naive);
        assert_identical(&fast, &naive, &format!("intruder procs={procs}"));
    }
}

/// Raw proptest-sampled operations: one `(kind, address-pool index, cycles)`
/// triple per op, grouped into transactions, grouped into threads.
type RawThreads = Vec<Vec<Vec<(u8, usize, u64)>>>;

/// Build a workload from proptest-sampled raw data. Addresses come from a
/// small pool so that conflicts (and therefore aborts, gatings and renewals)
/// are common; every static transaction gets a distinct `TxId`.
fn trace_from_raw(threads: &RawThreads) -> WorkloadTrace {
    const POOL: [u64; 8] = [0, 64, 128, 192, 4096, 4160, 8192, 12288];
    let threads = threads
        .iter()
        .enumerate()
        .map(|(t, txs)| {
            ThreadTrace::new(
                txs.iter()
                    .enumerate()
                    .map(|(x, ops)| {
                        let tx_id = ((t as u64) << 16) | (x as u64) | 0x1000;
                        let ops = ops
                            .iter()
                            .map(|&(kind, addr, cycles)| match kind {
                                0 => Op::Read(POOL[addr]),
                                1 => Op::Write(POOL[addr]),
                                _ => Op::Compute(cycles),
                            })
                            .collect();
                        Transaction::with_pre_compute(tx_id, cycles_of(x), ops)
                    })
                    .collect(),
            )
        })
        .collect();
    WorkloadTrace::new("random-trace", threads)
}

/// Small deterministic prologue length so some transactions exercise the
/// `PreCompute` fast-forward path and others skip it.
fn cycles_of(tx_idx: usize) -> u64 {
    (tx_idx as u64 % 3) * 7
}

/// Like [`trace_from_raw`], but pairs of threads are confined to their own
/// 4 KiB directory segment: threads `2k` and `2k+1` draw every address from
/// segment `k`. On a sharded machine with one directory per processor the
/// pairs are conflict-isolated islands, so the shard-parallel engine
/// actually fans out — with conflicts, aborts and gating *inside* each pair.
fn clustered_trace_from_raw(threads: &RawThreads) -> WorkloadTrace {
    const POOL: [u64; 8] = [0, 64, 128, 192, 1024, 2048, 3072, 3968];
    let threads = threads
        .iter()
        .enumerate()
        .map(|(t, txs)| {
            let segment_base = (t as u64 / 2) * 4096;
            ThreadTrace::new(
                txs.iter()
                    .enumerate()
                    .map(|(x, ops)| {
                        let tx_id = ((t as u64) << 16) | (x as u64) | 0x1000;
                        let ops = ops
                            .iter()
                            .map(|&(kind, addr, cycles)| match kind {
                                0 => Op::Read(segment_base + POOL[addr]),
                                1 => Op::Write(segment_base + POOL[addr]),
                                _ => Op::Compute(cycles),
                            })
                            .collect();
                        Transaction::with_pre_compute(tx_id, cycles_of(x), ops)
                    })
                    .collect(),
            )
        })
        .collect();
    WorkloadTrace::new("random-clustered-trace", threads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random conflicting traces: both engines must agree on the complete
    /// outcome for a randomly chosen gating mode.
    #[test]
    fn random_traces_are_engine_exact(
        threads in prop::collection::vec(
            prop::collection::vec(
                prop::collection::vec((0u8..3, 0usize..8, 1u64..60), 1..6),
                1..5,
            ),
            2..5,
        ),
        mode_idx in 0usize..10,
    ) {
        let mode = all_modes()[mode_idx];
        let fast = run_trace(mode, trace_from_raw(&threads), EngineKind::FastForward);
        let naive = run_trace(mode, trace_from_raw(&threads), EngineKind::Naive);
        prop_assert_eq!(&fast.outcome, &naive.outcome);
        prop_assert_eq!(&fast.gating, &naive.gating);
        prop_assert_eq!(to_json(&fast), to_json(&naive));
        // The component ledger is part of the serialized report (so the
        // line above already proves engine byte-agreement); additionally
        // assert its exactness invariant on both engines' reports.
        for (report, engine) in [(&fast, "fast"), (&naive, "naive")] {
            prop_assert!(report.ledger.core_discrepancy() < 1e-12,
                "{} engine: core {} vs legacy {}",
                engine, report.ledger.core_energy, report.ledger.legacy_total);
            prop_assert!(report.ledger.interval_discrepancy() < 1e-9,
                "{} engine: core {} vs interval {}",
                engine, report.ledger.core_energy, report.ledger.interval_total);
            let component_sum: f64 =
                report.ledger.components.iter().map(|c| c.energy).sum();
            let tol = 1e-9 * report.ledger.total_energy.max(1.0);
            prop_assert!((component_sum - report.ledger.total_energy).abs() <= tol,
                "{} engine: components sum {} vs ledger total {}",
                engine, component_sum, report.ledger.total_energy);
        }
    }

    /// Random conflict traces on the sharded fabric: the shard-parallel
    /// engine's island decomposition and deterministic merge must be
    /// bit-exact against serial fast-forward for arbitrary op mixes. Eight
    /// threads form four two-thread islands (see
    /// [`clustered_trace_from_raw`]), so the fan-out path — not just the
    /// single-island fallback — is what gets hammered.
    #[test]
    fn random_clustered_traces_are_shard_parallel_exact(
        threads in prop::collection::vec(
            prop::collection::vec(
                prop::collection::vec((0u8..3, 0usize..8, 1u64..60), 1..6),
                1..5,
            ),
            8..9,
        ),
        mode_idx in 0usize..10,
    ) {
        let mode = all_modes()[mode_idx];
        let fast = run_trace_on(
            mode, clustered_trace_from_raw(&threads), EngineKind::FastForward, sharded());
        let shard = run_trace_on(
            mode, clustered_trace_from_raw(&threads), EngineKind::ShardParallel, sharded());
        let windowed = run_trace_on(
            mode, clustered_trace_from_raw(&threads), EngineKind::Windowed, sharded());
        prop_assert_eq!(&shard.outcome, &fast.outcome);
        prop_assert_eq!(&shard.gating, &fast.gating);
        prop_assert_eq!(to_json(&shard), to_json(&fast));
        prop_assert_eq!(&windowed.outcome, &fast.outcome);
        prop_assert_eq!(&windowed.gating, &fast.gating);
        prop_assert_eq!(to_json(&windowed), to_json(&fast));
        fast.outcome.check_consistency().unwrap();
    }
}

#[test]
fn windowed_engine_parallelizes_a_contended_single_island_run() {
    // The tentpole's acceptance criterion: on a 64-processor sharded
    // machine, the hotspot workload is one conflict-connected island — the
    // island engine has nothing to fan out — yet the windowed engine must
    // still advance more than one bank shard per lookahead window. The
    // counters live in `RunStats` (and flow into the timing artifact), not
    // in the byte-compared report.
    let build = |engine: EngineChoice| {
        SimulationBuilder::new()
            .processors(64)
            .topology(sharded())
            .workload_by_name("hotspot", WorkloadScale::Test, 11)
            .unwrap()
            .gating(GatingMode::ClockGate { w0: 8 })
            .cycle_limit(50_000_000)
            .engine(engine)
    };
    let workload = htm_workloads::by_name("hotspot", 64, WorkloadScale::Test, 11).unwrap();
    let cfg = htm_sim::config::SimConfig::table2_with_topology(64, sharded());
    assert_eq!(
        clockgate_htm::islands::partition_islands(&cfg, &workload).len(),
        1,
        "hotspot at 64p must be a single island for this test to mean anything"
    );
    let (report, stats) = build(EngineKind::Windowed.into()).run_with_stats().unwrap();
    assert_eq!(stats.engine, EngineKind::Windowed);
    assert!(
        stats.windowed.windows > 0,
        "the windowed engine must actually cut the run into windows"
    );
    assert!(
        stats.windowed.multi_group_windows > 0,
        "at least one window must split into independent groups: {:?}",
        stats.windowed
    );
    assert!(
        stats.windowed.max_banks_active > 1,
        "more than one bank shard must be active in some window: {:?}",
        stats.windowed
    );
    // And the parallelism is free: the report is still byte-identical.
    let (serial, serial_stats) = build(EngineKind::FastForward.into())
        .run_with_stats()
        .unwrap();
    assert_identical(&report, &serial, "hotspot 64p windowed vs fast-forward");
    assert_eq!(
        serial_stats.windowed,
        Default::default(),
        "non-windowed engines must report zero windowed counters"
    );
}

#[test]
fn parallel_windowed_lanes_match_every_engine_for_every_pool_size() {
    // The lane fan-out's differential arm: a contended multi-bank run that
    // provably splits windows into more than one disjoint group, advanced
    // with the lane pool pinned to 1, 2 and 8 workers. Every pool size must
    // reproduce the byte-identical report of all three other engines — the
    // 1-worker pool through the sequential in-place path (zero parallel
    // windows), the larger pools through genuinely concurrent lanes.
    use clockgate_htm::pool::WorkerPool;
    use std::sync::Arc;

    let build = || {
        SimulationBuilder::new()
            .processors(16)
            .topology(sharded())
            .workload_by_name("hotspot", WorkloadScale::Test, 11)
            .unwrap()
            .gating(GatingMode::ClockGate { w0: 8 })
            .cycle_limit(50_000_000)
    };
    let fast = run_named_on(
        GatingMode::ClockGate { w0: 8 },
        "hotspot",
        16,
        EngineKind::FastForward,
        sharded(),
    );
    let naive = run_named_on(
        GatingMode::ClockGate { w0: 8 },
        "hotspot",
        16,
        EngineKind::Naive,
        sharded(),
    );
    let shard = run_named_on(
        GatingMode::ClockGate { w0: 8 },
        "hotspot",
        16,
        EngineKind::ShardParallel,
        sharded(),
    );
    assert_identical(&fast, &naive, "hotspot 16p fast-forward vs naive");
    assert_identical(&fast, &shard, "hotspot 16p fast-forward vs shard-parallel");
    for workers in [1usize, 2, 8] {
        let (report, stats) = build()
            .engine(EngineKind::Windowed)
            .lane_pool(Arc::new(WorkerPool::new(workers)))
            .run_with_stats()
            .unwrap();
        assert!(
            stats.windowed.multi_group_windows > 0,
            "the trace must split at least one window into independent \
             groups for this test to exercise the lanes: {:?}",
            stats.windowed
        );
        if workers == 1 {
            assert_eq!(
                stats.windowed.parallel_windows, 0,
                "a one-worker pool must take the sequential in-place path: {:?}",
                stats.windowed
            );
        } else {
            assert!(
                stats.windowed.parallel_windows > 0,
                "a {workers}-worker pool must fan some windows out: {:?}",
                stats.windowed
            );
            assert!(
                stats.windowed.max_concurrent_lanes >= 2,
                "lanes never ran concurrently on a {workers}-worker pool: {:?}",
                stats.windowed
            );
        }
        assert_identical(
            &fast,
            &report,
            &format!("hotspot 16p windowed ({workers}-worker lane pool) vs fast-forward"),
        );
    }
    // Checkpoint/resume round trip with lanes live: a checkpointed windowed
    // run with an 8-worker lane pool must hand back the same report again
    // (snapshots settle the lazy accounting mid-run, and the checkpoint
    // bytes are pool-size independent — see the system-level tests).
    let dir = std::env::temp_dir().join(format!("clockgate-lane-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for workers in [1usize, 8] {
        let ckpt = clockgate_htm::checkpoint::CheckpointConfig {
            dir: dir.clone(),
            every: 2_000,
            key: format!("lane-diff-w{workers}"),
            resume: true,
        };
        let (report, _info) = build()
            .engine(EngineKind::Windowed)
            .lane_pool(Arc::new(WorkerPool::new(workers)))
            .run_checkpointed(&ckpt)
            .unwrap();
        assert_identical(
            &fast,
            &report,
            &format!("hotspot 16p checkpointed windowed ({workers}-worker lane pool)"),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auto_engine_heuristic_picks_by_topology_and_islands() {
    let workload = |name: &str, procs: usize| {
        htm_workloads::by_name(name, procs, WorkloadScale::Test, 11).unwrap()
    };
    // Bus: nothing to shard, always fast-forward.
    let bus = htm_sim::config::SimConfig::table2(4);
    assert_eq!(
        choose_engine(&bus, &workload("intruder", 4)),
        EngineKind::FastForward
    );
    // Sharded, clustered at 64p: decomposes into islands → shard-parallel.
    let sharded64 = htm_sim::config::SimConfig::table2_with_topology(64, sharded());
    assert_eq!(
        choose_engine(&sharded64, &workload("clustered", 64)),
        EngineKind::ShardParallel
    );
    // Sharded, hotspot at 64p: one conflict-connected island → windowed,
    // unless the global pool has a single worker (1-core host or
    // `--threads 1`), where windowed lanes cannot run concurrently and the
    // heuristic falls back to fast-forward.
    let contended_pick = if clockgate_htm::pool::WorkerPool::global().workers() > 1 {
        EngineKind::Windowed
    } else {
        EngineKind::FastForward
    };
    assert_eq!(
        choose_engine(&sharded64, &workload("hotspot", 64)),
        contended_pick
    );
    // EngineChoice::Auto resolves through the same function and the run is
    // byte-identical to a fixed-engine run.
    let auto = SimulationBuilder::new()
        .processors(64)
        .topology(sharded())
        .workload_by_name("hotspot", WorkloadScale::Test, 11)
        .unwrap()
        .gating(GatingMode::ClockGate { w0: 8 })
        .cycle_limit(50_000_000)
        .engine(EngineChoice::Auto)
        .run_with_stats()
        .unwrap();
    assert_eq!(auto.1.engine, contended_pick);
    let fixed = run_named_on(
        GatingMode::ClockGate { w0: 8 },
        "hotspot",
        64,
        EngineKind::FastForward,
        sharded(),
    );
    assert_identical(&auto.0, &fixed, "auto vs fixed fast-forward at 64p");
    // Round-trip of the CLI values, including the new ones.
    for (value, expect) in [
        ("fast", EngineChoice::Fixed(EngineKind::FastForward)),
        ("windowed", EngineChoice::Fixed(EngineKind::Windowed)),
        ("auto", EngineChoice::Auto),
    ] {
        assert_eq!(EngineChoice::parse(value), Some(expect));
    }
    assert_eq!(EngineChoice::parse("warp"), None);
}
