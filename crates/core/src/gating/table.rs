//! The additional per-directory table of Fig. 1.
//!
//! Every directory gains one entry per processor with the fields the paper
//! lists in Section III:
//!
//! * **Aborter Proc** — the processor whose commit aborted this entry's
//!   processor in this directory,
//! * **Aborter Tx Id** — the static transaction (identified by the PC that
//!   started it) the aborter was committing; obtained with a `TxInfoReq`
//!   message,
//! * **Abort Count** — an 8-bit saturating up-counter of aborts suffered by
//!   the currently running transaction, reset to 0 on commit,
//! * **Renew Count** — how many times the processor's gating period has been
//!   renewed at the current abort level, reset whenever the abort count
//!   changes,
//! * **Gating Timer** — cycle count until the gating period expires,
//! * **OFF** — whether this directory believes the processor is clock-gated.

use serde::{Deserialize, Serialize};

use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};
use htm_sim::{Cycle, ProcId};
use htm_tcc::txn::TxId;

/// Saturation limit of the abort counter (8 bits, per Section III).
pub const ABORT_COUNT_MAX: u32 = 255;

/// One row of the Fig. 1 table: the gating state a directory keeps for one
/// processor.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatingEntry {
    /// Processor whose commit caused the most recent abort logged here.
    pub aborter_proc: Option<ProcId>,
    /// Static transaction the aborter was committing.
    pub aborter_tx: Option<TxId>,
    /// Aborts suffered by the victim's current transaction (8-bit saturating).
    pub abort_count: u32,
    /// Renewals of the gating period at the current abort level.
    pub renew_count: u32,
    /// Cycle at which the current gating period expires (valid while `off`).
    pub timer_expires: Cycle,
    /// Whether this directory believes the processor is clock-gated.
    pub off: bool,
}

impl GatingEntry {
    /// Record a new abort caused by `aborter` committing `aborter_tx`:
    /// increments the (saturating) abort counter, resets the renew counter
    /// and marks the processor OFF with a gating period of `window` cycles
    /// starting at `now`.
    pub fn record_abort(&mut self, aborter: ProcId, aborter_tx: TxId, now: Cycle, window: Cycle) {
        self.aborter_proc = Some(aborter);
        self.aborter_tx = Some(aborter_tx);
        self.abort_count = (self.abort_count + 1).min(ABORT_COUNT_MAX);
        self.renew_count = 0;
        self.timer_expires = now.saturating_add(window);
        self.off = true;
    }

    /// Renew the gating period (the Fig. 2(f) case): increments the renew
    /// counter and loads a fresh timer value.
    pub fn renew(&mut self, now: Cycle, window: Cycle) {
        self.renew_count = self.renew_count.saturating_add(1);
        self.timer_expires = now.saturating_add(window);
    }

    /// Clear the OFF bit (the processor was woken, or a load/store from it
    /// reached this directory and the stale OFF bit is reconciled).
    pub fn turn_on(&mut self) {
        self.off = false;
    }

    /// Reset the abort bookkeeping after the processor commits.
    pub fn reset_on_commit(&mut self) {
        self.abort_count = 0;
        self.renew_count = 0;
        self.aborter_proc = None;
        self.aborter_tx = None;
    }

    /// Whether the gating timer has expired at `now` (only meaningful while
    /// the entry is OFF).
    #[must_use]
    pub fn timer_expired(&self, now: Cycle) -> bool {
        self.off && now >= self.timer_expires
    }

    /// Serialize the entry into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_opt_usize(self.aborter_proc);
        w.put_opt_u64(self.aborter_tx);
        w.put_u32(self.abort_count);
        w.put_u32(self.renew_count);
        w.put_u64(self.timer_expires);
        w.put_bool(self.off);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            aborter_proc: r.get_opt_usize()?,
            aborter_tx: r.get_opt_u64()?,
            abort_count: r.get_u32()?,
            renew_count: r.get_u32()?,
            timer_expires: r.get_cycle()?,
            off: r.get_bool()?,
        })
    }
}

/// The Fig. 1 table of one directory: one [`GatingEntry`] per processor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatingTable {
    entries: Vec<GatingEntry>,
}

impl GatingTable {
    /// Create a table for `num_procs` processors.
    #[must_use]
    pub fn new(num_procs: usize) -> Self {
        Self {
            entries: vec![GatingEntry::default(); num_procs],
        }
    }

    /// Entry for `proc`.
    #[must_use]
    pub fn entry(&self, proc: ProcId) -> &GatingEntry {
        &self.entries[proc]
    }

    /// Mutable entry for `proc`.
    pub fn entry_mut(&mut self, proc: ProcId) -> &mut GatingEntry {
        &mut self.entries[proc]
    }

    /// Number of entries currently marked OFF.
    #[must_use]
    pub fn off_count(&self) -> usize {
        self.entries.iter().filter(|e| e.off).count()
    }

    /// Iterate over `(proc, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, &GatingEntry)> {
        self.entries.iter().enumerate()
    }

    /// Serialize the whole table into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_usize(self.entries.len());
        for entry in &self.entries {
            entry.save_ckpt(w);
        }
    }

    /// Overwrite this table's entries from a checkpoint payload; the entry
    /// count must match the machine the table was built for.
    pub fn restore_ckpt(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.get_usize()?;
        if n != self.entries.len() {
            return Err(CkptError::Corrupt(format!(
                "gating table for {n} processors restored into a machine with {}",
                self.entries.len()
            )));
        }
        for entry in &mut self.entries {
            *entry = GatingEntry::load_ckpt(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_abort_sets_all_fields() {
        let mut e = GatingEntry::default();
        e.record_abort(3, 0x400, 100, 50);
        assert_eq!(e.aborter_proc, Some(3));
        assert_eq!(e.aborter_tx, Some(0x400));
        assert_eq!(e.abort_count, 1);
        assert_eq!(e.renew_count, 0);
        assert_eq!(e.timer_expires, 150);
        assert!(e.off);
        assert!(!e.timer_expired(149));
        assert!(e.timer_expired(150));
    }

    #[test]
    fn abort_count_saturates_at_255() {
        let mut e = GatingEntry::default();
        for _ in 0..300 {
            e.record_abort(0, 1, 0, 10);
        }
        assert_eq!(e.abort_count, ABORT_COUNT_MAX);
    }

    #[test]
    fn renew_increments_count_and_reloads_timer() {
        let mut e = GatingEntry::default();
        e.record_abort(1, 2, 0, 10);
        e.renew(10, 40);
        assert_eq!(e.renew_count, 1);
        assert_eq!(e.timer_expires, 50);
        assert!(e.off);
    }

    #[test]
    fn new_abort_resets_renew_count() {
        let mut e = GatingEntry::default();
        e.record_abort(1, 2, 0, 10);
        e.renew(10, 40);
        e.renew(50, 40);
        assert_eq!(e.renew_count, 2);
        e.record_abort(1, 2, 100, 10);
        assert_eq!(
            e.renew_count, 0,
            "renew count resets when the abort count changes"
        );
        assert_eq!(e.abort_count, 2);
    }

    #[test]
    fn commit_resets_counters_but_not_off() {
        let mut e = GatingEntry::default();
        e.record_abort(1, 2, 0, 10);
        e.reset_on_commit();
        assert_eq!(e.abort_count, 0);
        assert_eq!(e.renew_count, 0);
        assert_eq!(e.aborter_proc, None);
        assert!(e.off, "reset_on_commit does not change the OFF bit");
    }

    #[test]
    fn turn_on_only_clears_off() {
        let mut e = GatingEntry::default();
        e.record_abort(1, 2, 0, 10);
        e.turn_on();
        assert!(!e.off);
        assert_eq!(e.abort_count, 1, "the abort history survives ungating");
        assert!(
            !e.timer_expired(1000),
            "an ON entry never reports an expired timer"
        );
    }

    #[test]
    fn table_tracks_entries_per_processor() {
        let mut t = GatingTable::new(4);
        assert_eq!(t.off_count(), 0);
        t.entry_mut(2).record_abort(0, 9, 0, 10);
        t.entry_mut(3).record_abort(0, 9, 0, 10);
        assert_eq!(t.off_count(), 2);
        assert!(t.entry(2).off);
        assert!(!t.entry(0).off);
        assert_eq!(t.iter().filter(|(_, e)| e.off).count(), 2);
    }
}
