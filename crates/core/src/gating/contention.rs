//! Gating-aware contention management (Section VI).
//!
//! The paper sets the gating window with the staircase back-off of Eq. (8):
//!
//! ```text
//! Wt = W0 * ( 2^ceil(lg Na) + 2^ceil(lg Nr) )
//! ```
//!
//! where `Na` is the abort count and `Nr` the renew count of the victim's
//! entry in the directory that is gating it. The ceiled logarithms make the
//! window a staircase with discontinuities at exponentially spaced counts:
//! the window is moderately large for highly conflicting applications (big
//! energy savings) but stays small while the counters are low (performance
//! close to the baseline). `W0` has "first-order significance": it should be
//! small for large machines (many aborts) and large for small ones — Fig. 7
//! sweeps it.

use serde::{Deserialize, Serialize};

use htm_sim::Cycle;

/// `2^ceil(lg n)` — the smallest power of two that is ≥ `n`, with the paper's
/// implicit convention that the term contributes `1` when the counter is
/// still zero (only the renew counter can be zero when the window is
/// computed; the abort counter is at least 1).
#[must_use]
pub fn pow2_ceil_lg(n: u32) -> u64 {
    u64::from(n.max(1)).next_power_of_two()
}

/// Policy deciding the gating window from the directory-local abort and
/// renew counters.
pub trait ContentionPolicy: Send {
    /// Gating window in cycles for a processor whose entry shows
    /// `abort_count` aborts and `renew_count` renewals.
    fn window(&self, abort_count: u32, renew_count: u32) -> Cycle;

    /// Short human-readable name used in reports.
    fn name(&self) -> &'static str;
}

/// The paper's gating-aware policy (Eq. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatingAwarePolicy {
    /// The constant factor `W0`.
    pub w0: Cycle,
}

impl GatingAwarePolicy {
    /// Create the policy with the given `W0` (the paper uses `W0 = 8` for its
    /// experiments).
    #[must_use]
    pub fn new(w0: Cycle) -> Self {
        Self { w0 }
    }
}

impl ContentionPolicy for GatingAwarePolicy {
    fn window(&self, abort_count: u32, renew_count: u32) -> Cycle {
        self.w0
            .saturating_mul(pow2_ceil_lg(abort_count) + pow2_ceil_lg(renew_count))
    }

    fn name(&self) -> &'static str {
        "gating-aware (Eq. 8)"
    }
}

/// Ablation policy: a fixed gating window regardless of the abort history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedWindow {
    /// The constant window in cycles.
    pub window: Cycle,
}

impl FixedWindow {
    /// Create a fixed-window policy.
    #[must_use]
    pub fn new(window: Cycle) -> Self {
        Self { window }
    }
}

impl ContentionPolicy for FixedWindow {
    fn window(&self, _abort_count: u32, _renew_count: u32) -> Cycle {
        self.window
    }

    fn name(&self) -> &'static str {
        "fixed window"
    }
}

/// Ablation policy: a *linear* back-off `W0 * (Na + Nr)`, to contrast with the
/// staircase of Eq. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearBackoffPolicy {
    /// The constant factor.
    pub w0: Cycle,
}

impl ContentionPolicy for LinearBackoffPolicy {
    fn window(&self, abort_count: u32, renew_count: u32) -> Cycle {
        self.w0
            .saturating_mul(u64::from(abort_count.max(1)) + u64::from(renew_count))
    }

    fn name(&self) -> &'static str {
        "linear back-off"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_ceil_lg_matches_definition() {
        assert_eq!(pow2_ceil_lg(0), 1);
        assert_eq!(pow2_ceil_lg(1), 1);
        assert_eq!(pow2_ceil_lg(2), 2);
        assert_eq!(pow2_ceil_lg(3), 4);
        assert_eq!(pow2_ceil_lg(4), 4);
        assert_eq!(pow2_ceil_lg(5), 8);
        assert_eq!(pow2_ceil_lg(255), 256);
    }

    #[test]
    fn equation8_first_gating_window() {
        // Na = 1, Nr = 0 -> W0 * (1 + 1).
        let p = GatingAwarePolicy::new(8);
        assert_eq!(p.window(1, 0), 16);
    }

    #[test]
    fn equation8_staircase_shape() {
        let p = GatingAwarePolicy::new(8);
        // Windows only change when a counter crosses a power of two.
        assert_eq!(p.window(2, 0), 8 * (2 + 1));
        assert_eq!(p.window(3, 0), 8 * (4 + 1));
        assert_eq!(p.window(4, 0), 8 * (4 + 1));
        assert_eq!(p.window(5, 0), 8 * (8 + 1));
        // Renewals grow the window at a fixed abort level.
        assert_eq!(p.window(1, 1), 8 * (1 + 1));
        assert_eq!(p.window(1, 2), 8 * (1 + 2));
        assert_eq!(p.window(1, 3), 8 * (1 + 4));
        assert_eq!(p.window(1, 5), 8 * (1 + 8));
    }

    #[test]
    fn window_is_monotone_in_both_counters() {
        let p = GatingAwarePolicy::new(4);
        for na in 1..20 {
            for nr in 0..20 {
                assert!(p.window(na + 1, nr) >= p.window(na, nr));
                assert!(p.window(na, nr + 1) >= p.window(na, nr));
            }
        }
    }

    #[test]
    fn w0_scales_the_window_linearly() {
        let small = GatingAwarePolicy::new(2);
        let large = GatingAwarePolicy::new(16);
        assert_eq!(large.window(3, 2) / small.window(3, 2), 8);
    }

    #[test]
    fn fixed_window_ignores_counters() {
        let p = FixedWindow::new(100);
        assert_eq!(p.window(1, 0), 100);
        assert_eq!(p.window(200, 50), 100);
        assert_eq!(p.name(), "fixed window");
    }

    #[test]
    fn linear_policy_grows_linearly() {
        let p = LinearBackoffPolicy { w0: 10 };
        assert_eq!(p.window(1, 0), 10);
        assert_eq!(p.window(2, 0), 20);
        assert_eq!(p.window(2, 3), 50);
    }

    #[test]
    fn saturating_window_never_overflows() {
        let p = GatingAwarePolicy::new(Cycle::MAX / 2);
        let _ = p.window(255, 255);
    }
}
