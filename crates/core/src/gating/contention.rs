//! Gating-aware contention management (Section VI).
//!
//! The paper sets the gating window with the staircase back-off of Eq. (8):
//!
//! ```text
//! Wt = W0 * ( 2^ceil(lg Na) + 2^ceil(lg Nr) )
//! ```
//!
//! where `Na` is the abort count and `Nr` the renew count of the victim's
//! entry in the directory that is gating it. The ceiled logarithms make the
//! window a staircase with discontinuities at exponentially spaced counts:
//! the window is moderately large for highly conflicting applications (big
//! energy savings) but stays small while the counters are low (performance
//! close to the baseline). `W0` has "first-order significance": it should be
//! small for large machines (many aborts) and large for small ones — Fig. 7
//! sweeps it.

use serde::{Deserialize, Serialize};

use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};
use htm_sim::{Cycle, ProcId};

/// `2^ceil(lg n)` — the smallest power of two that is ≥ `n`, with the paper's
/// implicit convention that the term contributes `1` when the counter is
/// still zero (only the renew counter can be zero when the window is
/// computed; the abort counter is at least 1).
#[must_use]
pub fn pow2_ceil_lg(n: u32) -> u64 {
    u64::from(n.max(1)).next_power_of_two()
}

/// Policy deciding the gating window from the directory-local abort and
/// renew counters.
///
/// The window may additionally depend on the *victim* (the adaptive-`W0`
/// policy keeps a per-victim predictor), so the controller passes the
/// victim's id and forwards the gate/wake lifecycle events; static policies
/// ignore all three.
pub trait ContentionPolicy: Send {
    /// Gating window in cycles for `victim`, whose entry shows `abort_count`
    /// aborts and `renew_count` renewals.
    fn window(&self, victim: ProcId, abort_count: u32, renew_count: u32) -> Cycle;

    /// Short human-readable name used in reports.
    fn name(&self) -> &'static str;

    /// `victim` just received "Stop Clock" (it was not gated before this
    /// abort). Default: no-op.
    fn on_gated(&mut self, _victim: ProcId, _now: Cycle) {}

    /// `victim` woke up and finished its self-abort. Default: no-op.
    fn on_wake(&mut self, _victim: ProcId, _now: Cycle) {}

    /// Serialize the policy's mutable state into a checkpoint payload. The
    /// default writes nothing — correct for the stateless window formulas;
    /// stateful policies ([`AdaptiveW0Policy`]) must override this *and*
    /// [`ContentionPolicy::restore`] symmetrically, or a checkpoint-resumed
    /// run diverges from the uninterrupted one.
    fn snapshot(&self, _w: &mut CkptWriter) {}

    /// Inverse of [`ContentionPolicy::snapshot`]: overwrite the mutable
    /// state of a freshly constructed policy with the checkpointed values
    /// (configuration comes from construction, not from the checkpoint).
    fn restore(&mut self, _r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        Ok(())
    }
}

/// The paper's gating-aware policy (Eq. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatingAwarePolicy {
    /// The constant factor `W0`.
    pub w0: Cycle,
}

impl GatingAwarePolicy {
    /// Create the policy with the given `W0` (the paper uses `W0 = 8` for its
    /// experiments).
    #[must_use]
    pub fn new(w0: Cycle) -> Self {
        Self { w0 }
    }
}

impl ContentionPolicy for GatingAwarePolicy {
    fn window(&self, _victim: ProcId, abort_count: u32, renew_count: u32) -> Cycle {
        self.w0
            .saturating_mul(pow2_ceil_lg(abort_count) + pow2_ceil_lg(renew_count))
    }

    fn name(&self) -> &'static str {
        "gating-aware (Eq. 8)"
    }
}

/// Ablation policy: a fixed gating window regardless of the abort history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedWindow {
    /// The constant window in cycles.
    pub window: Cycle,
}

impl FixedWindow {
    /// Create a fixed-window policy.
    #[must_use]
    pub fn new(window: Cycle) -> Self {
        Self { window }
    }
}

impl ContentionPolicy for FixedWindow {
    fn window(&self, _victim: ProcId, _abort_count: u32, _renew_count: u32) -> Cycle {
        self.window
    }

    fn name(&self) -> &'static str {
        "fixed window"
    }
}

/// Ablation policy: a *linear* back-off `W0 * (Na + Nr)`, to contrast with the
/// staircase of Eq. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearBackoffPolicy {
    /// The constant factor.
    pub w0: Cycle,
}

impl ContentionPolicy for LinearBackoffPolicy {
    fn window(&self, _victim: ProcId, abort_count: u32, renew_count: u32) -> Cycle {
        self.w0
            .saturating_mul(u64::from(abort_count.max(1)) + u64::from(renew_count))
    }

    fn name(&self) -> &'static str {
        "linear back-off"
    }
}

/// Fixed-point scale of the adaptive-`W0` EWMA predictor (1/16 cycle
/// resolution keeps the update integer-exact and engine-deterministic).
const EWMA_FP_SHIFT: u32 = 4;
/// Clamp on a single gate-to-wake observation, so one pathological episode
/// (e.g. a renewal chain behind a long commit burst) cannot blow the
/// predictor up for the rest of the run.
const MAX_OBSERVED_GATE: Cycle = 1 << 20;

/// The adaptive-`W0` extension: Eq. 8's staircase with the static `W0`
/// constant replaced by a **per-victim EWMA predictor of the conflictor's
/// remaining length**.
///
/// The paper notes that `W0` has "first-order significance" and must be
/// re-tuned per machine size (Fig. 7). This policy tunes it online instead:
/// every completed gating episode of a victim is an observation of how long
/// its conflictor actually needed (the victim is woken precisely when the
/// aborter has left the directory), so the predictor `Ŵ0(v)` is an EWMA
/// (α = 1/4, integer fixed-point, deterministic across engines) of the
/// victim's observed gate-to-wake durations, seeded with the configured
/// `W0`. The Eq. 8 window becomes `Ŵ0(v) · (2^⌈lg Na⌉ + 2^⌈lg Nr⌉)`.
#[derive(Debug, Clone)]
pub struct AdaptiveW0Policy {
    initial_w0: Cycle,
    /// Per-victim predictor in 1/16-cycle fixed point.
    ewma_fp: Vec<u64>,
    /// Per-victim start of the current gating episode.
    gate_start: Vec<Option<Cycle>>,
}

impl AdaptiveW0Policy {
    /// Create the policy for `num_procs` processors, seeding every
    /// per-victim predictor with `w0`.
    #[must_use]
    pub fn new(num_procs: usize, w0: Cycle) -> Self {
        let seed = w0.max(1) << EWMA_FP_SHIFT;
        Self {
            initial_w0: w0,
            ewma_fp: vec![seed; num_procs],
            gate_start: vec![None; num_procs],
        }
    }

    /// The current effective `W0` of a victim (the predictor, floored to one
    /// cycle).
    #[must_use]
    pub fn effective_w0(&self, victim: ProcId) -> Cycle {
        (self.ewma_fp[victim] >> EWMA_FP_SHIFT).max(1)
    }

    /// The `W0` every predictor was seeded with.
    #[must_use]
    pub fn initial_w0(&self) -> Cycle {
        self.initial_w0
    }
}

impl ContentionPolicy for AdaptiveW0Policy {
    fn window(&self, victim: ProcId, abort_count: u32, renew_count: u32) -> Cycle {
        self.effective_w0(victim)
            .saturating_mul(pow2_ceil_lg(abort_count) + pow2_ceil_lg(renew_count))
    }

    fn name(&self) -> &'static str {
        "adaptive W0 (per-victim EWMA)"
    }

    fn on_gated(&mut self, victim: ProcId, now: Cycle) {
        // A new episode only starts when the victim was running; repeated
        // aborts of an already-gated victim extend the same episode.
        if self.gate_start[victim].is_none() {
            self.gate_start[victim] = Some(now);
        }
    }

    fn on_wake(&mut self, victim: ProcId, now: Cycle) {
        if let Some(start) = self.gate_start[victim].take() {
            let observed = now.saturating_sub(start).min(MAX_OBSERVED_GATE);
            let obs_fp = (observed << EWMA_FP_SHIFT) as i64;
            let old = self.ewma_fp[victim] as i64;
            // EWMA with α = 1/4: new = old + (obs − old)/4, in integer
            // fixed point (arithmetic shift — deterministic, no floats).
            let new = old + ((obs_fp - old) >> 2);
            self.ewma_fp[victim] = new.max(1 << EWMA_FP_SHIFT) as u64;
        }
    }

    fn snapshot(&self, w: &mut CkptWriter) {
        w.put_u64_slice(&self.ewma_fp);
        w.put_usize(self.gate_start.len());
        for slot in &self.gate_start {
            w.put_opt_u64(*slot);
        }
    }

    fn restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let ewma = r.get_u64_vec()?;
        let n = r.get_usize()?;
        if ewma.len() != self.ewma_fp.len() || n != self.gate_start.len() {
            return Err(CkptError::Corrupt(format!(
                "adaptive-W0 state for {} processors restored into a machine with {}",
                ewma.len().max(n),
                self.ewma_fp.len()
            )));
        }
        self.ewma_fp = ewma;
        for slot in &mut self.gate_start {
            *slot = r.get_opt_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_ceil_lg_matches_definition() {
        assert_eq!(pow2_ceil_lg(0), 1);
        assert_eq!(pow2_ceil_lg(1), 1);
        assert_eq!(pow2_ceil_lg(2), 2);
        assert_eq!(pow2_ceil_lg(3), 4);
        assert_eq!(pow2_ceil_lg(4), 4);
        assert_eq!(pow2_ceil_lg(5), 8);
        assert_eq!(pow2_ceil_lg(255), 256);
    }

    #[test]
    fn equation8_first_gating_window() {
        // Na = 1, Nr = 0 -> W0 * (1 + 1).
        let p = GatingAwarePolicy::new(8);
        assert_eq!(p.window(0, 1, 0), 16);
    }

    #[test]
    fn equation8_staircase_shape() {
        let p = GatingAwarePolicy::new(8);
        // Windows only change when a counter crosses a power of two.
        assert_eq!(p.window(0, 2, 0), 8 * (2 + 1));
        assert_eq!(p.window(0, 3, 0), 8 * (4 + 1));
        assert_eq!(p.window(0, 4, 0), 8 * (4 + 1));
        assert_eq!(p.window(0, 5, 0), 8 * (8 + 1));
        // Renewals grow the window at a fixed abort level.
        assert_eq!(p.window(0, 1, 1), 8 * (1 + 1));
        assert_eq!(p.window(0, 1, 2), 8 * (1 + 2));
        assert_eq!(p.window(0, 1, 3), 8 * (1 + 4));
        assert_eq!(p.window(0, 1, 5), 8 * (1 + 8));
    }

    #[test]
    fn window_is_monotone_in_both_counters() {
        let p = GatingAwarePolicy::new(4);
        for na in 1..20 {
            for nr in 0..20 {
                assert!(p.window(0, na + 1, nr) >= p.window(0, na, nr));
                assert!(p.window(0, na, nr + 1) >= p.window(0, na, nr));
            }
        }
    }

    #[test]
    fn w0_scales_the_window_linearly() {
        let small = GatingAwarePolicy::new(2);
        let large = GatingAwarePolicy::new(16);
        assert_eq!(large.window(0, 3, 2) / small.window(0, 3, 2), 8);
    }

    #[test]
    fn fixed_window_ignores_counters() {
        let p = FixedWindow::new(100);
        assert_eq!(p.window(0, 1, 0), 100);
        assert_eq!(p.window(0, 200, 50), 100);
        assert_eq!(p.name(), "fixed window");
    }

    #[test]
    fn linear_policy_grows_linearly() {
        let p = LinearBackoffPolicy { w0: 10 };
        assert_eq!(p.window(0, 1, 0), 10);
        assert_eq!(p.window(0, 2, 0), 20);
        assert_eq!(p.window(0, 2, 3), 50);
    }

    #[test]
    fn saturating_window_never_overflows() {
        let p = GatingAwarePolicy::new(Cycle::MAX / 2);
        let _ = p.window(0, 255, 255);
    }

    #[test]
    fn adaptive_policy_starts_at_the_seed_and_learns_per_victim() {
        let mut p = AdaptiveW0Policy::new(2, 8);
        assert_eq!(p.initial_w0(), 8);
        // Before any observation the policy is exactly Eq. 8 with W0 = 8.
        let eq8 = GatingAwarePolicy::new(8);
        assert_eq!(p.window(0, 1, 0), eq8.window(0, 1, 0));
        assert_eq!(p.window(1, 3, 2), eq8.window(1, 3, 2));
        // Victim 0 observes a long episode: its predictor moves a quarter of
        // the way toward the observation; victim 1 is untouched.
        p.on_gated(0, 100);
        p.on_wake(0, 100 + 40);
        assert_eq!(p.effective_w0(0), 8 + (40 - 8) / 4);
        assert_eq!(p.effective_w0(1), 8);
        assert!(p.window(0, 1, 0) > p.window(1, 1, 0));
    }

    #[test]
    fn adaptive_episode_spans_repeated_aborts_until_the_wake() {
        let mut p = AdaptiveW0Policy::new(1, 8);
        p.on_gated(0, 100);
        // A second abort of the already-gated victim must not restart the
        // episode clock.
        p.on_gated(0, 150);
        p.on_wake(0, 200);
        assert_eq!(p.effective_w0(0), 8 + (100 - 8) / 4);
        // A wake without a matching gate is ignored.
        let before = p.effective_w0(0);
        p.on_wake(0, 999);
        assert_eq!(p.effective_w0(0), before);
    }

    #[test]
    fn adaptive_predictor_converges_downward_and_stays_positive() {
        let mut p = AdaptiveW0Policy::new(1, 64);
        for i in 0..200 {
            p.on_gated(0, i * 10);
            p.on_wake(0, i * 10 + 1); // consistently tiny episodes
        }
        assert_eq!(p.effective_w0(0), 1, "floor at one cycle");
        assert!(p.window(0, 1, 0) >= 2);
    }
}
