//! The pluggable contention-policy framework.
//!
//! Abort handling used to be a closed enum hard-coded across four crates;
//! this module turns it into three open layers:
//!
//! 1. **[`PolicySpec`]** — the serializable description of a policy and its
//!    parameters. This is what configs, sweep cells and artifacts carry;
//!    its legacy variants (the six historical `GatingMode`s) keep their
//!    exact labels, slugs and serialized shape, so every pre-framework
//!    artifact stays byte-identical (golden-fixture gated in CI).
//! 2. **The registry** — one [`PolicyInfo`] per policy *family*
//!    ([`POLICY_REGISTRY`]), carrying the family's name, a one-line summary,
//!    whether it reproduces the paper or extends it, a default-parameter
//!    spec and the builder that resolves a spec of that family into a hook.
//!    The `--list-policies` flag of the `reproduce` and `sweep` binaries
//!    enumerates this table, so CLI and docs cannot drift from the
//!    implemented set.
//! 3. **[`PolicyHook`]** — the boxed runtime object. It extends the
//!    substrate's [`GatingHook`] with the two pieces of mode-specific
//!    knowledge the reporting layers used to pull out of the enum: the
//!    controller statistics ([`PolicyHook::gating_stats`]) and the uncore
//!    charges the energy ledger must account
//!    ([`PolicyHook::uncore_charges`] — gating-table hardware presence and
//!    renewal-time `TxInfoReq` round-trips). Every policy declares both, so
//!    the ledger accounts new policies uniformly without a `match` anywhere.
//!
//! Exactness contract: every hook must implement
//! [`GatingHook::next_deadline`] precisely (the fast-forward engine skips
//! cycles based on it), and the `engine_differential` suite proves
//! fast-vs-naive bit-equality for **every** registered policy, not just the
//! legacy set.

use serde::{Deserialize, Serialize};

use htm_sim::config::SimConfig;
use htm_sim::Cycle;
use htm_sim::{DirId, ProcId};
use htm_tcc::hooks::{
    AbortAction, ExponentialBackoff, GateCommand, GatingHook, NoGating, ScopedCmdKey, SystemView,
};
use htm_tcc::txn::TxId;

use crate::gating::contention::{
    AdaptiveW0Policy, FixedWindow, GatingAwarePolicy, LinearBackoffPolicy,
};
use crate::gating::controller::{ClockGateController, ControllerConfig, GatingStats};
use crate::gating::hybrid::HybridHook;
use crate::gating::oracle::OracleHook;
use crate::gating::throttle::ThrottleHook;

/// Uncore activity a policy's hardware generates, declared by the hook
/// itself so the energy ledger can charge every policy uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UncoreCharges {
    /// Whether the machine carries per-directory gating tables and timers at
    /// all (their leakage and per-event costs are charged when present).
    pub gating_hardware: bool,
    /// Renewal-time `TxInfoReq` round-trips performed by the policy's
    /// controller over the run (abort-time round-trips are counted by the
    /// substrate whenever a hook answers `Gate`).
    pub renewal_txinfo_roundtrips: u64,
}

impl UncoreCharges {
    /// A policy with no gating hardware at all (plain retry / back-off).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Gating tables present, with the given renewal-time `TxInfoReq` tally.
    #[must_use]
    pub fn gating(renewal_txinfo_roundtrips: u64) -> Self {
        Self {
            gating_hardware: true,
            renewal_txinfo_roundtrips,
        }
    }
}

/// The runtime face of a contention policy: the substrate's [`GatingHook`]
/// plus the reporting/accounting surface the framework needs.
///
/// All methods have defaults matching a stateless non-gating policy.
pub trait PolicyHook: GatingHook {
    /// Controller statistics accumulated over the run, for policies that
    /// drive the gating protocol (`None` for retry-style policies).
    fn gating_stats(&self) -> Option<GatingStats> {
        None
    }

    /// The uncore activity this policy's hardware generated; read after the
    /// run, fed into [`htm_power::ledger::UncoreActivity`].
    fn uncore_charges(&self) -> UncoreCharges {
        UncoreCharges::none()
    }
}

/// `Box<dyn PolicyHook>` is itself a [`GatingHook`], so the generic
/// [`htm_tcc::system::TccSystem`] runs boxed policies without a dedicated
/// code path (the `policy_dispatch` bench guards the cost of this vtable
/// hop on the 16-processor hot path).
impl GatingHook for Box<dyn PolicyHook> {
    fn on_abort(
        &mut self,
        dir: DirId,
        victim: ProcId,
        aborter: ProcId,
        aborter_tx: TxId,
        now: Cycle,
        view: &SystemView,
    ) -> AbortAction {
        (**self).on_abort(dir, victim, aborter, aborter_tx, now, view)
    }

    fn on_tick(&mut self, now: Cycle, view: &SystemView, out: &mut Vec<GateCommand>) {
        (**self).on_tick(now, view, out);
    }

    fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
        (**self).next_deadline(now)
    }

    fn on_commit(&mut self, proc: ProcId, now: Cycle) {
        (**self).on_commit(proc, now);
    }

    fn on_wake(&mut self, proc: ProcId, now: Cycle) {
        (**self).on_wake(proc, now);
    }

    fn on_proc_activity(&mut self, proc: ProcId, dir: DirId, now: Cycle) {
        (**self).on_proc_activity(proc, dir, now);
    }

    // The scoped-windowing pair must forward explicitly: the trait defaults
    // answer "unsupported", so without these the windowed engine would fall
    // back to single-group (serial) windows for every registry policy.
    fn windowed_couplings(&self, out: &mut Vec<(DirId, ProcId)>) -> bool {
        (**self).windowed_couplings(out)
    }

    fn on_tick_scoped(
        &mut self,
        now: Cycle,
        view: &SystemView,
        focus: &[bool],
        out: &mut Vec<(ScopedCmdKey, GateCommand)>,
    ) {
        (**self).on_tick_scoped(now, view, focus, out);
    }

    fn snapshot(&self, w: &mut htm_sim::checkpoint::CkptWriter) {
        (**self).snapshot(w);
    }

    fn restore(
        &mut self,
        r: &mut htm_sim::checkpoint::CkptReader<'_>,
    ) -> Result<(), htm_sim::checkpoint::CkptError> {
        (**self).restore(r)
    }
}

impl PolicyHook for NoGating {}

impl PolicyHook for ExponentialBackoff {}

impl PolicyHook for ClockGateController {
    fn gating_stats(&self) -> Option<GatingStats> {
        Some(self.stats())
    }

    fn uncore_charges(&self) -> UncoreCharges {
        // Every timer expiry whose aborter was still marked performed one
        // TxInfoReq round-trip, whatever its verdict (renewed, null reply,
        // or a different transaction). The blind-timer ablation never
        // checks, so it never pays.
        let s = self.stats();
        let renewal = if self.config().renew_enabled {
            s.renewals + s.ungate_null_reply + s.ungate_different_tx
        } else {
            0
        };
        UncoreCharges::gating(renewal)
    }
}

/// Serializable description of an abort-handling policy: which family, with
/// which parameters. Resolved into a runnable [`PolicyHook`] through the
/// [`POLICY_REGISTRY`] by [`PolicySpec::build`].
///
/// The first six variants are the historical `GatingMode` set (kept under
/// the same variant names, labels and slugs — artifacts are byte-stable);
/// the last four are the policies the enum-shaped architecture could not
/// express.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Plain Scalable TCC: abort and retry immediately (the paper's
    /// "without clock-gating" baseline).
    Ungated,
    /// Conventional exponential polite back-off (no clock gating): the victim
    /// spins at run power for `base * 2^n` cycles after its `n`-th
    /// consecutive abort.
    ExponentialBackoff {
        /// Base back-off window in cycles.
        base: Cycle,
        /// Cap on the exponent.
        cap: u32,
    },
    /// The paper's proposal: clock-gate on abort with the gating-aware
    /// contention manager of Eq. 8.
    ClockGate {
        /// The `W0` constant (the paper uses 8).
        w0: Cycle,
    },
    /// Ablation: clock gating with a fixed window instead of Eq. 8.
    ClockGateFixedWindow {
        /// The constant gating window in cycles.
        window: Cycle,
    },
    /// Ablation: clock gating with Eq. 8 but without the Fig. 2(e) renewal
    /// check (the victim is always woken when the first window expires).
    ClockGateNoRenew {
        /// The `W0` constant.
        w0: Cycle,
    },
    /// Ablation: clock gating with a linear (non-staircase) back-off
    /// `W0 * (Na + Nr)`.
    ClockGateLinear {
        /// The `W0` constant.
        w0: Cycle,
    },
    /// Extension: Eq. 8 with the static `W0` replaced by a per-victim EWMA
    /// predictor of the conflictor's remaining length
    /// ([`AdaptiveW0Policy`]).
    AdaptiveW0 {
        /// Seed of every per-victim predictor.
        w0: Cycle,
    },
    /// Extension: clock-gate for the first `gate_limit` consecutive aborts
    /// of a victim, then fall back to exponential polite back-off (the
    /// cheap mechanism first, the robust one when contention persists).
    Hybrid {
        /// Consecutive aborts handled by gating before falling back.
        gate_limit: u32,
        /// The `W0` constant of the gating phase.
        w0: Cycle,
        /// Base back-off window of the fallback phase, in cycles.
        base: Cycle,
        /// Cap on the fallback exponent.
        cap: u32,
    },
    /// Extension: DVFS-style throttling — the victim waits out an Eq. 8
    /// window at reduced power instead of fully gating, so no wake-up
    /// protocol (and no renewal traffic) is needed at the price of a hotter
    /// wait.
    Throttle {
        /// The `W0` constant of the window staircase.
        w0: Cycle,
    },
    /// Extension: the oracle upper bound — gate exactly until the aborter
    /// commits, via a commit-subscription channel from the substrate
    /// (every heuristic is measured against this).
    Oracle,
}

impl PolicySpec {
    /// Whether this policy uses the clock-gating mechanism at all.
    #[must_use]
    pub fn uses_gating(&self) -> bool {
        !matches!(
            self,
            PolicySpec::Ungated | PolicySpec::ExponentialBackoff { .. }
        )
    }

    // NOTE: there is deliberately no spec-level "renewal check enabled"
    // predicate. Whether (and how much) renewal-time `TxInfoReq` traffic a
    // policy generates is declared by its *hook* at run time
    // ([`PolicyHook::uncore_charges`]), which cannot drift from the
    // implementation the way a parallel classification here could.

    /// Whether this policy is one of the four extensions (vs. the six
    /// paper-reproducing legacy modes).
    #[must_use]
    pub fn is_extension(&self) -> bool {
        matches!(
            self,
            PolicySpec::AdaptiveW0 { .. }
                | PolicySpec::Hybrid { .. }
                | PolicySpec::Throttle { .. }
                | PolicySpec::Oracle
        )
    }

    /// The registry family this spec belongs to ([`PolicyInfo::family`]).
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            PolicySpec::Ungated => "ungated",
            PolicySpec::ExponentialBackoff { .. } => "backoff",
            PolicySpec::ClockGate { .. } => "clock-gate",
            PolicySpec::ClockGateFixedWindow { .. } => "clock-gate-fixed",
            PolicySpec::ClockGateNoRenew { .. } => "clock-gate-no-renew",
            PolicySpec::ClockGateLinear { .. } => "clock-gate-linear",
            PolicySpec::AdaptiveW0 { .. } => "adaptive-w0",
            PolicySpec::Hybrid { .. } => "hybrid",
            PolicySpec::Throttle { .. } => "throttle",
            PolicySpec::Oracle => "oracle",
        }
    }

    /// Short label used in reports and figures (legacy labels unchanged).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Ungated => "ungated".into(),
            PolicySpec::ExponentialBackoff { base, cap } => {
                format!("backoff(base={base},cap={cap})")
            }
            PolicySpec::ClockGate { w0 } => format!("clock-gate(W0={w0})"),
            PolicySpec::ClockGateFixedWindow { window } => format!("clock-gate(fixed={window})"),
            PolicySpec::ClockGateNoRenew { w0 } => format!("clock-gate(no-renew,W0={w0})"),
            PolicySpec::ClockGateLinear { w0 } => format!("clock-gate(linear,W0={w0})"),
            PolicySpec::AdaptiveW0 { w0 } => format!("clock-gate(adaptive,W0={w0})"),
            PolicySpec::Hybrid {
                gate_limit,
                w0,
                base,
                cap,
            } => format!("hybrid(gate={gate_limit},W0={w0},base={base},cap={cap})"),
            PolicySpec::Throttle { w0 } => format!("throttle(W0={w0})"),
            PolicySpec::Oracle => "oracle".into(),
        }
    }

    /// Compact, filesystem-safe slug used in sweep cell keys (legacy slugs
    /// unchanged).
    #[must_use]
    pub fn slug(&self) -> String {
        match self {
            PolicySpec::Ungated => "ungated".to_string(),
            PolicySpec::ExponentialBackoff { base, cap } => format!("backoff-b{base}-c{cap}"),
            PolicySpec::ClockGate { w0 } => format!("cg-w{w0}"),
            PolicySpec::ClockGateFixedWindow { window } => format!("cgfix-{window}"),
            PolicySpec::ClockGateNoRenew { w0 } => format!("cgnr-w{w0}"),
            PolicySpec::ClockGateLinear { w0 } => format!("cglin-w{w0}"),
            PolicySpec::AdaptiveW0 { w0 } => format!("cgad-w{w0}"),
            PolicySpec::Hybrid {
                gate_limit,
                w0,
                base,
                cap,
            } => format!("hyb-g{gate_limit}-w{w0}-b{base}-c{cap}"),
            PolicySpec::Throttle { w0 } => format!("thr-w{w0}"),
            PolicySpec::Oracle => "oracle".to_string(),
        }
    }

    /// Resolve this spec into a runnable hook through the registry.
    ///
    /// # Panics
    /// Panics if the registry has no entry for the spec's family — that is a
    /// registration bug (every variant names a family and every family has
    /// a builder), and the registry test enumerates all variants.
    #[must_use]
    pub fn build(&self, cfg: &SimConfig) -> Box<dyn PolicyHook> {
        let info = find_family(self.family())
            .unwrap_or_else(|| panic!("policy family `{}` is not registered", self.family()));
        (info.build)(self, cfg)
            .unwrap_or_else(|| panic!("registry builder for `{}` rejected {self:?}", info.family))
    }
}

/// One family of contention policies, as registered with the framework.
pub struct PolicyInfo {
    /// Stable family name (the `--list-policies` key).
    pub family: &'static str,
    /// One-line description for CLI listings and docs.
    pub summary: &'static str,
    /// Whether the family is part of the paper's evaluated set (vs. an
    /// extension of this reproduction).
    pub paper: bool,
    /// A spec of this family at its default operating point.
    pub default_spec: fn() -> PolicySpec,
    /// Resolve a spec of this family into a hook (`None` if the spec
    /// belongs to a different family).
    pub build: fn(&PolicySpec, &SimConfig) -> Option<Box<dyn PolicyHook>>,
}

fn controller(
    cfg: &SimConfig,
    policy: Box<dyn crate::gating::contention::ContentionPolicy>,
    renew: bool,
) -> Box<dyn PolicyHook> {
    let mut ctrl_cfg = ControllerConfig::from_sim_config(cfg);
    if !renew {
        ctrl_cfg = ctrl_cfg.without_renewal();
    }
    Box::new(ClockGateController::new(
        cfg.num_dirs,
        cfg.num_procs,
        policy,
        ctrl_cfg,
    ))
}

/// Every registered policy family, in listing order: the paper's set first,
/// then the extensions.
pub static POLICY_REGISTRY: [PolicyInfo; 10] = [
    PolicyInfo {
        family: "ungated",
        summary: "plain Scalable TCC: abort and retry immediately (paper baseline)",
        paper: true,
        default_spec: || PolicySpec::Ungated,
        build: |spec, _cfg| match spec {
            PolicySpec::Ungated => Some(Box::new(NoGating)),
            _ => None,
        },
    },
    PolicyInfo {
        family: "backoff",
        summary: "exponential polite back-off at run power (no gating hardware)",
        paper: true,
        default_spec: || PolicySpec::ExponentialBackoff { base: 32, cap: 8 },
        build: |spec, cfg| match *spec {
            PolicySpec::ExponentialBackoff { base, cap } => {
                Some(Box::new(ExponentialBackoff::new(cfg.num_procs, base, cap)))
            }
            _ => None,
        },
    },
    PolicyInfo {
        family: "clock-gate",
        summary: "the paper's proposal: gate on abort, Eq. 8 staircase windows",
        paper: true,
        default_spec: || PolicySpec::ClockGate { w0: 8 },
        build: |spec, cfg| match *spec {
            PolicySpec::ClockGate { w0 } => {
                Some(controller(cfg, Box::new(GatingAwarePolicy::new(w0)), true))
            }
            _ => None,
        },
    },
    PolicyInfo {
        family: "clock-gate-fixed",
        summary: "ablation: gate with a fixed window instead of Eq. 8",
        paper: true,
        default_spec: || PolicySpec::ClockGateFixedWindow { window: 64 },
        build: |spec, cfg| match *spec {
            PolicySpec::ClockGateFixedWindow { window } => {
                Some(controller(cfg, Box::new(FixedWindow::new(window)), true))
            }
            _ => None,
        },
    },
    PolicyInfo {
        family: "clock-gate-no-renew",
        summary: "ablation: Eq. 8 windows but no Fig. 2(e) renewal check",
        paper: true,
        default_spec: || PolicySpec::ClockGateNoRenew { w0: 8 },
        build: |spec, cfg| match *spec {
            PolicySpec::ClockGateNoRenew { w0 } => {
                Some(controller(cfg, Box::new(GatingAwarePolicy::new(w0)), false))
            }
            _ => None,
        },
    },
    PolicyInfo {
        family: "clock-gate-linear",
        summary: "ablation: gate with a linear W0*(Na+Nr) window",
        paper: true,
        default_spec: || PolicySpec::ClockGateLinear { w0: 8 },
        build: |spec, cfg| match *spec {
            PolicySpec::ClockGateLinear { w0 } => {
                Some(controller(cfg, Box::new(LinearBackoffPolicy { w0 }), true))
            }
            _ => None,
        },
    },
    PolicyInfo {
        family: "adaptive-w0",
        summary: "extension: Eq. 8 with a per-victim EWMA predictor replacing W0",
        paper: false,
        default_spec: || PolicySpec::AdaptiveW0 { w0: 8 },
        build: |spec, cfg| match *spec {
            PolicySpec::AdaptiveW0 { w0 } => Some(controller(
                cfg,
                Box::new(AdaptiveW0Policy::new(cfg.num_procs, w0)),
                true,
            )),
            _ => None,
        },
    },
    PolicyInfo {
        family: "hybrid",
        summary: "extension: gate the first k consecutive aborts, then back off",
        paper: false,
        default_spec: || PolicySpec::Hybrid {
            gate_limit: 2,
            w0: 8,
            base: 32,
            cap: 8,
        },
        build: |spec, cfg| match *spec {
            PolicySpec::Hybrid {
                gate_limit,
                w0,
                base,
                cap,
            } => Some(Box::new(HybridHook::new(cfg, gate_limit, w0, base, cap))),
            _ => None,
        },
    },
    PolicyInfo {
        family: "throttle",
        summary: "extension: DVFS-throttle the victim instead of fully gating it",
        paper: false,
        default_spec: || PolicySpec::Throttle { w0: 8 },
        build: |spec, cfg| match *spec {
            PolicySpec::Throttle { w0 } => Some(Box::new(ThrottleHook::new(cfg.num_procs, w0))),
            _ => None,
        },
    },
    PolicyInfo {
        family: "oracle",
        summary: "extension: gate exactly until the aborter commits (upper bound)",
        paper: false,
        default_spec: || PolicySpec::Oracle,
        build: |spec, cfg| match spec {
            PolicySpec::Oracle => Some(Box::new(OracleHook::new(cfg.num_procs))),
            _ => None,
        },
    },
];

/// The full policy registry, in listing order.
#[must_use]
pub fn registry() -> &'static [PolicyInfo] {
    &POLICY_REGISTRY
}

/// Look up a family by name.
#[must_use]
pub fn find_family(family: &str) -> Option<&'static PolicyInfo> {
    POLICY_REGISTRY.iter().find(|info| info.family == family)
}

/// Render the registry as the `--list-policies` table. Both the `reproduce`
/// and `sweep` binaries print exactly this, so the CLI (and the docs that
/// quote it) can never drift from the implemented set.
#[must_use]
pub fn render_policy_list() -> String {
    let rows: Vec<Vec<String>> = POLICY_REGISTRY
        .iter()
        .map(|info| {
            let spec = (info.default_spec)();
            vec![
                info.family.to_string(),
                if info.paper { "paper" } else { "extension" }.to_string(),
                spec.label(),
                spec.slug(),
                info.summary.to_string(),
            ]
        })
        .collect();
    format!(
        "Registered contention policies ({} families):\n{}",
        POLICY_REGISTRY.len(),
        crate::report::format_table(
            &["family", "origin", "default label", "cell slug", "summary"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn cfg() -> SimConfig {
        SimConfig::table2(4)
    }

    fn all_specs() -> Vec<PolicySpec> {
        POLICY_REGISTRY.iter().map(|i| (i.default_spec)()).collect()
    }

    #[test]
    fn registry_families_are_unique_and_cover_every_variant() {
        let families: BTreeSet<&str> = POLICY_REGISTRY.iter().map(|i| i.family).collect();
        assert_eq!(families.len(), POLICY_REGISTRY.len());
        for info in registry() {
            let spec = (info.default_spec)();
            assert_eq!(spec.family(), info.family, "default spec family mismatch");
            assert!(find_family(info.family).is_some());
        }
        assert!(find_family("nope").is_none());
    }

    #[test]
    fn every_default_spec_builds_through_the_registry() {
        for spec in all_specs() {
            let hook = spec.build(&cfg());
            // The hook's uncore declaration is consistent with the spec.
            assert_eq!(
                hook.uncore_charges().gating_hardware,
                spec.uses_gating(),
                "{spec:?}"
            );
        }
    }

    #[test]
    fn builders_reject_foreign_specs() {
        let oracle = find_family("oracle").unwrap();
        assert!((oracle.build)(&PolicySpec::Ungated, &cfg()).is_none());
        let ungated = find_family("ungated").unwrap();
        assert!((ungated.build)(&PolicySpec::Oracle, &cfg()).is_none());
    }

    #[test]
    fn labels_and_slugs_are_distinct_across_the_registry() {
        let labels: BTreeSet<String> = all_specs().iter().map(PolicySpec::label).collect();
        let slugs: BTreeSet<String> = all_specs().iter().map(PolicySpec::slug).collect();
        assert_eq!(labels.len(), POLICY_REGISTRY.len());
        assert_eq!(slugs.len(), POLICY_REGISTRY.len());
        for slug in &slugs {
            assert!(
                slug.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
                "{slug} must be filesystem- and JSON-safe"
            );
        }
    }

    #[test]
    fn legacy_labels_and_slugs_are_byte_stable() {
        // The exact strings the pre-framework enum produced; changing any of
        // them breaks artifact byte-compatibility (and the golden fixture).
        let expected = [
            (PolicySpec::Ungated, "ungated", "ungated"),
            (
                PolicySpec::ExponentialBackoff { base: 32, cap: 8 },
                "backoff(base=32,cap=8)",
                "backoff-b32-c8",
            ),
            (PolicySpec::ClockGate { w0: 8 }, "clock-gate(W0=8)", "cg-w8"),
            (
                PolicySpec::ClockGateFixedWindow { window: 64 },
                "clock-gate(fixed=64)",
                "cgfix-64",
            ),
            (
                PolicySpec::ClockGateNoRenew { w0: 8 },
                "clock-gate(no-renew,W0=8)",
                "cgnr-w8",
            ),
            (
                PolicySpec::ClockGateLinear { w0: 8 },
                "clock-gate(linear,W0=8)",
                "cglin-w8",
            ),
        ];
        for (spec, label, slug) in expected {
            assert_eq!(spec.label(), label);
            assert_eq!(spec.slug(), slug);
            assert!(!spec.is_extension());
        }
    }

    #[test]
    fn extension_specs_are_flagged_and_gating_classified() {
        for spec in all_specs() {
            let expects_gating = !matches!(
                spec,
                PolicySpec::Ungated | PolicySpec::ExponentialBackoff { .. }
            );
            assert_eq!(spec.uses_gating(), expects_gating, "{spec:?}");
        }
        assert_eq!(all_specs().iter().filter(|s| s.is_extension()).count(), 4);
        assert_eq!(
            POLICY_REGISTRY.iter().filter(|i| i.paper).count(),
            6,
            "the paper-reproducing compatibility set"
        );
    }

    #[test]
    fn boxed_hook_forwards_to_the_inner_policy() {
        let mut hook = PolicySpec::ClockGate { w0: 8 }.build(&cfg());
        let view = SystemView::new(4, 4);
        let action = hook.on_abort(0, 1, 2, 0x42, 10, &view);
        assert_eq!(action, AbortAction::Gate);
        assert_eq!(hook.gating_stats().unwrap().gatings, 1);
        assert!(hook.next_deadline(10).is_some());
        let mut out = Vec::new();
        hook.on_tick(10, &view, &mut out);
        assert!(out.is_empty(), "no timer expired yet");
    }
}
