//! The clock-gate-on-abort mechanism (Sections III, V and VI of the paper).

pub mod contention;
pub mod controller;
pub mod table;
