//! The clock-gate-on-abort mechanism (Sections III, V and VI of the paper)
//! and the pluggable contention-policy framework built around it.
//!
//! * [`table`] / [`controller`] / [`contention`] — the paper's per-directory
//!   gating tables, the Section V gating/ungating protocol and the Eq. 8
//!   contention management (plus the adaptive-`W0` extension).
//! * [`policy`] — the framework: serializable [`policy::PolicySpec`]s
//!   resolving through the [`policy::POLICY_REGISTRY`] into boxed
//!   [`policy::PolicyHook`]s.
//! * [`hybrid`] / [`throttle`] / [`oracle`] — the extension policies the
//!   closed enum architecture could not express.

pub mod contention;
pub mod controller;
pub mod hybrid;
pub mod oracle;
pub mod policy;
pub mod table;
pub mod throttle;
