//! The gating / ungating protocol of Section V, implemented as a
//! [`GatingHook`] plugged into the Scalable-TCC substrate.
//!
//! The controller owns one [`GatingTable`] per directory and drives the
//! protocol of Fig. 2:
//!
//! 1. When a directory aborts a victim on behalf of a committing processor,
//!    the directory logs the aborter, queries the aborter's transaction id
//!    (`TxInfoReq`), sets the abort counter, loads the gating timer with the
//!    window chosen by the contention-management policy and sends
//!    "Stop Clock" to the victim (the hook returns [`AbortAction::Gate`]).
//! 2. When the gating timer expires, the control circuit of Fig. 2(e) checks
//!    whether the aborter is still *marked* (intending to commit) in this
//!    directory and, if so, whether it is still executing the same static
//!    transaction (a second `TxInfoReq`; a clock-gated aborter replies
//!    "null"). If both checks are positive the gating period is *renewed*
//!    with a longer window (Fig. 2(f)); otherwise the victim is sent the
//!    "on" command, wakes up, self-aborts and retries.
//! 3. Abort counters reset when the victim commits; renew counters reset
//!    whenever the abort counter changes; a load/store arriving from a
//!    processor a directory still believes to be OFF clears that stale OFF
//!    bit.
//!
//! Gating decisions are strictly directory-local, exactly as in the paper: a
//! processor may be OFF in one directory's table and ON in another's.

use serde::{Deserialize, Serialize};

use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};
use htm_sim::{Cycle, DirId, ProcId};
use htm_tcc::hooks::{AbortAction, GateCommand, GatingHook, ScopedCmdKey, SystemView};
use htm_tcc::txn::TxId;

use crate::gating::contention::ContentionPolicy;
use crate::gating::table::GatingTable;

/// Timing constants of the gating protocol, derived from the machine
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Cycles the Fig. 2(e) control circuit needs after timer expiry before
    /// its decision takes effect (the high fan-in OR "will take multiple
    /// cycles", which "extends the clock gating period further by a small
    /// amount of time").
    pub ungate_circuit_latency: Cycle,
    /// Round-trip latency of a `TxInfoReq` / reply exchange between the
    /// directory and the committing processor.
    pub txinfo_roundtrip_latency: Cycle,
    /// Whether the renewal check is performed at all. Disabling it is the
    /// "blind timer" ablation: the victim is always woken when the first
    /// window expires.
    pub renew_enabled: bool,
}

impl ControllerConfig {
    /// Derive the protocol costs from a machine configuration.
    #[must_use]
    pub fn from_sim_config(cfg: &htm_sim::config::SimConfig) -> Self {
        Self {
            ungate_circuit_latency: cfg.ungate_circuit_latency,
            // Request + reply control messages, each crossing the bus, plus
            // one directory lookup to fetch the stored Aborter Tx Id.
            txinfo_roundtrip_latency: 2
                * (cfg.bus_control_transfer_cycles() + cfg.bus_arbitration_latency)
                + cfg.directory_latency,
            renew_enabled: true,
        }
    }

    /// Disable the renewal check (ablation).
    #[must_use]
    pub fn without_renewal(mut self) -> Self {
        self.renew_enabled = false;
        self
    }
}

/// Aggregate statistics of the gating controller over one run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatingStats {
    /// "Stop Clock" commands issued (aborts that resulted in gating).
    pub gatings: u64,
    /// Gating periods renewed because the aborter was still committing the
    /// same transaction in the gating directory.
    pub renewals: u64,
    /// Wake-ups because the aborter was no longer marked in the directory.
    pub ungate_aborter_gone: u64,
    /// Wake-ups because the aborter had moved on to a different transaction.
    pub ungate_different_tx: u64,
    /// Wake-ups because the aborter itself was clock-gated (null `TxInfoReq`
    /// reply).
    pub ungate_null_reply: u64,
    /// Stale OFF bits reconciled by observing a load/store from the
    /// supposedly-off processor.
    pub stale_off_reconciled: u64,
}

impl GatingStats {
    /// Total "on" commands issued.
    #[must_use]
    pub fn total_ungates(&self) -> u64 {
        self.ungate_aborter_gone + self.ungate_different_tx + self.ungate_null_reply
    }

    /// Fold another controller's counters into this one (fieldwise sums).
    /// Used by the island-parallel runner to merge per-lane gating
    /// statistics; each processor gates only within its own island, so the
    /// merge is exact.
    pub fn absorb(&mut self, other: &GatingStats) {
        self.gatings += other.gatings;
        self.renewals += other.renewals;
        self.ungate_aborter_gone += other.ungate_aborter_gone;
        self.ungate_different_tx += other.ungate_different_tx;
        self.ungate_null_reply += other.ungate_null_reply;
        self.stale_off_reconciled += other.stale_off_reconciled;
    }

    /// Serialize the counters into a checkpoint payload.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.put_u64(self.gatings);
        w.put_u64(self.renewals);
        w.put_u64(self.ungate_aborter_gone);
        w.put_u64(self.ungate_different_tx);
        w.put_u64(self.ungate_null_reply);
        w.put_u64(self.stale_off_reconciled);
    }

    /// Inverse of [`Self::save_ckpt`].
    pub fn load_ckpt(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            gatings: r.get_u64()?,
            renewals: r.get_u64()?,
            ungate_aborter_gone: r.get_u64()?,
            ungate_different_tx: r.get_u64()?,
            ungate_null_reply: r.get_u64()?,
            stale_off_reconciled: r.get_u64()?,
        })
    }
}

/// The clock-gate-on-abort controller (the paper's proposal).
pub struct ClockGateController {
    tables: Vec<GatingTable>,
    policy: Box<dyn ContentionPolicy>,
    config: ControllerConfig,
    stats: GatingStats,
    /// Per-directory lower bound on the earliest gating-timer expiry in that
    /// directory's table, so `next_deadline` never misses an expiry without
    /// scanning every entry. Maintained as a *lower* bound only (new timers
    /// merge in eagerly; wake-ups may leave a slot stale-early, which merely
    /// costs one extra no-op scan of that table, never a missed one); a scan
    /// recomputes its own directory's slot exactly.
    ///
    /// The bound is deliberately **directory-local**: whether and when a
    /// table is scanned (and its slot healed) depends only on that
    /// directory's own abort/renewal history, so a scoped tick
    /// ([`GatingHook::on_tick_scoped`]) that sees only one window group's
    /// directories leaves every other slot byte-identical to what a serial
    /// run would hold — which is what keeps windowed-engine checkpoints
    /// exact.
    pending_min: Vec<Option<Cycle>>,
}

impl std::fmt::Debug for ClockGateController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClockGateController")
            .field("dirs", &self.tables.len())
            .field("policy", &self.policy.name())
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

impl ClockGateController {
    /// Create a controller for `num_dirs` directories and `num_procs`
    /// processors, using `policy` to size gating windows.
    #[must_use]
    pub fn new(
        num_dirs: usize,
        num_procs: usize,
        policy: Box<dyn ContentionPolicy>,
        config: ControllerConfig,
    ) -> Self {
        Self {
            tables: (0..num_dirs).map(|_| GatingTable::new(num_procs)).collect(),
            policy,
            config,
            stats: GatingStats::default(),
            pending_min: vec![None; num_dirs],
        }
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> GatingStats {
        self.stats
    }

    /// The gating table of directory `dir` (for inspection / tests).
    #[must_use]
    pub fn table(&self, dir: DirId) -> &GatingTable {
        &self.tables[dir]
    }

    /// Name of the contention policy in use.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The protocol-timing configuration this controller runs under.
    #[must_use]
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Scan one directory's table at `now`: process every expired gating
    /// timer (renew or emit a wake through `emit`) and recompute the
    /// directory's `pending_min` slot exactly. Callers gate on the slot
    /// being due, so a scan that finds nothing expired only happens to heal
    /// a stale-early bound.
    fn tick_dir(
        &mut self,
        dir: DirId,
        now: Cycle,
        view: &SystemView,
        emit: &mut impl FnMut(ProcId, DirId),
    ) {
        let mut next_min: Option<Cycle> = None;
        let mut merge_min = |expires: Cycle| {
            next_min = Some(next_min.map_or(expires, |m: Cycle| m.min(expires)));
        };
        let table = &mut self.tables[dir];
        for proc in 0..view.proc_tx.len() {
            let circuit = self.config.ungate_circuit_latency;
            let entry = table.entry_mut(proc);
            if !entry.timer_expired(now) {
                if entry.off {
                    merge_min(entry.timer_expires);
                }
                continue;
            }
            // Fig. 2(e): OR the marked processor ids and compare with the
            // stored aborter id.
            let aborter_present = entry
                .aborter_proc
                .is_some_and(|aborter| view.is_marked(dir, aborter));
            if !self.config.renew_enabled || !aborter_present {
                entry.turn_on();
                if aborter_present {
                    // Only reachable in the blind-timer ablation: the
                    // victim is woken even though its enemy is still
                    // committing here.
                    self.stats.ungate_different_tx += 1;
                } else {
                    self.stats.ungate_aborter_gone += 1;
                }
                emit(proc, dir);
                continue;
            }
            // The aborter is still marked here: issue a TxInfoReq and
            // compare its reply with the stored Aborter Tx Id.
            let aborter = entry.aborter_proc.expect("aborter_present implies Some");
            let reply = view.current_tx(aborter);
            match (reply, entry.aborter_tx) {
                (Some(current), Some(stored)) if current == stored => {
                    // Same transaction still trying to commit: renew.
                    let window = self
                        .policy
                        .window(proc, entry.abort_count, entry.renew_count + 1);
                    entry.renew(now, window + self.config.txinfo_roundtrip_latency + circuit);
                    merge_min(entry.timer_expires);
                    self.stats.renewals += 1;
                }
                (None, _) => {
                    // Null reply: the aborter has itself been clock-gated.
                    entry.turn_on();
                    self.stats.ungate_null_reply += 1;
                    emit(proc, dir);
                }
                _ => {
                    // Different transaction (or no stored id): wake up.
                    entry.turn_on();
                    self.stats.ungate_different_tx += 1;
                    emit(proc, dir);
                }
            }
        }
        self.pending_min[dir] = next_min;
    }
}

impl GatingHook for ClockGateController {
    fn on_abort(
        &mut self,
        dir: DirId,
        victim: ProcId,
        aborter: ProcId,
        aborter_tx: TxId,
        now: Cycle,
        _view: &SystemView,
    ) -> AbortAction {
        let entry = self.tables[dir].entry_mut(victim);
        // The directory queries the committing processor for the transaction
        // id with a TxInfoReq (Fig. 2(d)); the victim is already being
        // stopped, so the round trip only delays the availability of the
        // stored id, which we fold into the initial timer.
        let was_off = entry.off;
        let provisional = entry.abort_count + 1;
        let window = self.policy.window(victim, provisional, 0);
        self.tables[dir].entry_mut(victim).record_abort(
            aborter,
            aborter_tx,
            now,
            window + self.config.txinfo_roundtrip_latency,
        );
        if !was_off {
            self.stats.gatings += 1;
            self.policy.on_gated(victim, now);
        }
        // A fresh timer can only pull the earliest expiry forward.
        let expires = self.tables[dir].entry(victim).timer_expires;
        let slot = &mut self.pending_min[dir];
        *slot = Some(slot.map_or(expires, |m| m.min(expires)));
        AbortAction::Gate
    }

    fn on_tick(&mut self, now: Cycle, view: &SystemView, commands: &mut Vec<GateCommand>) {
        // Scan only the directories whose own lower bound is due; each scan
        // recomputes its directory's slot exactly (stale-early values heal
        // here; see `pending_min`). Skipped directories provably hold no
        // expired timer, so skipping them changes no command and no entry.
        for dir in 0..self.tables.len() {
            if self.pending_min[dir].is_some_and(|m| m <= now) {
                self.tick_dir(dir, now, view, &mut |proc, dir| {
                    commands.push(GateCommand::UngateProcessor { proc, dir });
                });
            }
        }
    }

    fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
        // The controller acts spontaneously only when a gating timer of an
        // OFF entry expires; between expiries `on_tick` pushes nothing and
        // mutates nothing, so the earliest expiry bounds the fast-forward
        // horizon exactly. Each slot is a lower bound: a stale-early value
        // (after a wake-up cleared the earliest timer) clamps to `now` and
        // costs one no-op scan of that table, which recomputes it exactly.
        self.pending_min
            .iter()
            .filter_map(|m| *m)
            .min()
            .map(|m| m.max(now))
    }

    fn on_commit(&mut self, proc: ProcId, _now: Cycle) {
        for table in &mut self.tables {
            table.entry_mut(proc).reset_on_commit();
        }
    }

    fn on_wake(&mut self, proc: ProcId, now: Cycle) {
        // The processor is running again; every directory that still believes
        // it is OFF will reconcile lazily (on_proc_activity) or has already
        // turned it on. Clearing the local timers here prevents spurious
        // duplicate "on" commands from other directories.
        self.policy.on_wake(proc, now);
        for table in &mut self.tables {
            table.entry_mut(proc).turn_on();
        }
    }

    fn on_proc_activity(&mut self, proc: ProcId, dir: DirId, _now: Cycle) {
        let entry = self.tables[dir].entry_mut(proc);
        if entry.off {
            entry.turn_on();
            self.stats.stale_off_reconciled += 1;
        }
    }

    fn windowed_couplings(&self, out: &mut Vec<(DirId, ProcId)>) -> bool {
        // Every OFF entry couples its directory to two processors: the
        // *victim*, whose own callbacks (`on_wake` after a wake from another
        // directory, `on_commit` after a stale-OFF retry, `on_proc_activity`)
        // mutate this entry while the directory's scoped scan reads and
        // renews it; and the *aborter*, whose marked bit and `TxInfoReq`
        // reply the Fig. 2(e) renewal check consults (and whose per-victim
        // policy state a renewal's `window()` call may read). Extra pairs
        // only coarsen the window grouping; these are the complete set of
        // cross-processor accesses a scoped scan can perform.
        for (dir, table) in self.tables.iter().enumerate() {
            for (proc, entry) in table.iter() {
                if entry.off {
                    out.push((dir, proc));
                    if let Some(aborter) = entry.aborter_proc {
                        out.push((dir, aborter));
                    }
                }
            }
        }
        true
    }

    fn on_tick_scoped(
        &mut self,
        now: Cycle,
        view: &SystemView,
        focus: &[bool],
        out: &mut Vec<(ScopedCmdKey, GateCommand)>,
    ) {
        // Identical to `on_tick` restricted to the focus directories. The
        // serial tick emits in directory-then-processor order, so the key
        // `(dir, proc, 0)` reproduces that order at the window barrier.
        // Out-of-focus slots are left untouched — their groups run their own
        // scoped scans for the same cycles, and `pending_min` healing is
        // directory-local, so the merged end-of-window state is
        // byte-identical to a serial run's.
        for (dir, &in_focus) in focus.iter().enumerate().take(self.tables.len()) {
            if in_focus && self.pending_min[dir].is_some_and(|m| m <= now) {
                self.tick_dir(dir, now, view, &mut |proc, dir| {
                    out.push((
                        (dir as u64, proc as u64, 0),
                        GateCommand::UngateProcessor { proc, dir },
                    ));
                });
            }
        }
    }

    fn snapshot(&self, w: &mut CkptWriter) {
        w.put_usize(self.tables.len());
        for table in &self.tables {
            table.save_ckpt(w);
        }
        self.stats.save_ckpt(w);
        for slot in &self.pending_min {
            w.put_opt_u64(*slot);
        }
        // The contention policy serializes last so the controller's framing
        // stays fixed whatever the policy writes (possibly nothing).
        self.policy.snapshot(w);
    }

    fn restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.get_usize()?;
        if n != self.tables.len() {
            return Err(CkptError::Corrupt(format!(
                "gating controller for {n} directories restored into a machine with {}",
                self.tables.len()
            )));
        }
        for table in &mut self.tables {
            table.restore_ckpt(r)?;
        }
        self.stats = GatingStats::load_ckpt(r)?;
        for slot in &mut self.pending_min {
            *slot = r.get_opt_u64()?;
        }
        self.policy.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gating::contention::GatingAwarePolicy;

    fn controller(dirs: usize, procs: usize, w0: u64) -> ClockGateController {
        ClockGateController::new(
            dirs,
            procs,
            Box::new(GatingAwarePolicy::new(w0)),
            ControllerConfig {
                ungate_circuit_latency: 4,
                txinfo_roundtrip_latency: 10,
                renew_enabled: true,
            },
        )
    }

    fn view(procs: usize, dirs: usize) -> SystemView {
        SystemView::new(procs, dirs)
    }

    /// Test shim for the scratch-buffer `on_tick` signature.
    fn tick(c: &mut ClockGateController, now: Cycle, v: &SystemView) -> Vec<GateCommand> {
        let mut out = Vec::new();
        c.on_tick(now, v, &mut out);
        out
    }

    #[test]
    fn abort_gates_the_victim_and_logs_the_entry() {
        let mut c = controller(2, 4, 8);
        let v = view(4, 2);
        let action = c.on_abort(1, 2, 0, 0x400, 100, &v);
        assert_eq!(action, AbortAction::Gate);
        let entry = c.table(1).entry(2);
        assert!(entry.off);
        assert_eq!(entry.aborter_proc, Some(0));
        assert_eq!(entry.aborter_tx, Some(0x400));
        assert_eq!(entry.abort_count, 1);
        // Window = W0*(1+1) = 16 plus the TxInfoReq round trip.
        assert_eq!(entry.timer_expires, 100 + 16 + 10);
        assert_eq!(c.stats().gatings, 1);
    }

    #[test]
    fn timer_expiry_with_aborter_gone_ungates() {
        let mut c = controller(1, 4, 8);
        let mut v = view(4, 1);
        c.on_abort(0, 2, 0, 0x400, 0, &v);
        // Aborter (proc 0) is NOT marked in the directory.
        v.dir_marked[0] = htm_sim::ProcSet::empty();
        let expiry = c.table(0).entry(2).timer_expires;
        assert!(tick(&mut c, expiry - 1, &v).is_empty(), "not yet expired");
        let cmds = tick(&mut c, expiry, &v);
        assert_eq!(cmds, vec![GateCommand::UngateProcessor { proc: 2, dir: 0 }]);
        assert!(!c.table(0).entry(2).off);
        assert_eq!(c.stats().ungate_aborter_gone, 1);
        // Nothing further happens on the next tick.
        assert!(tick(&mut c, expiry + 1, &v).is_empty());
    }

    #[test]
    fn timer_expiry_with_same_transaction_renews() {
        let mut c = controller(1, 4, 8);
        let mut v = view(4, 1);
        c.on_abort(0, 2, 0, 0x400, 0, &v);
        // Aborter still marked and still executing the same transaction.
        v.dir_marked[0] = htm_sim::ProcSet::from_bits(1);
        v.proc_tx[0] = Some(0x400);
        let expiry = c.table(0).entry(2).timer_expires;
        let cmds = tick(&mut c, expiry, &v);
        assert!(cmds.is_empty(), "renewal must not wake the victim");
        let entry = c.table(0).entry(2);
        assert!(entry.off);
        assert_eq!(entry.renew_count, 1);
        assert!(entry.timer_expires > expiry);
        assert_eq!(c.stats().renewals, 1);
    }

    #[test]
    fn renewal_windows_grow_with_the_renew_count() {
        let mut c = controller(1, 2, 8);
        let mut v = view(2, 1);
        c.on_abort(0, 1, 0, 0x77, 0, &v);
        v.dir_marked[0] = htm_sim::ProcSet::from_bits(1);
        v.proc_tx[0] = Some(0x77);
        let mut last_window = 0;
        let mut last_expiry = c.table(0).entry(1).timer_expires;
        for _ in 0..4 {
            let cmds = tick(&mut c, last_expiry, &v);
            assert!(cmds.is_empty());
            let e = c.table(0).entry(1);
            let window = e.timer_expires - last_expiry;
            assert!(
                window >= last_window,
                "windows must not shrink across renewals"
            );
            last_window = window;
            last_expiry = e.timer_expires;
        }
        assert_eq!(c.stats().renewals, 4);
    }

    #[test]
    fn timer_expiry_with_different_transaction_ungates() {
        let mut c = controller(1, 4, 8);
        let mut v = view(4, 1);
        c.on_abort(0, 2, 0, 0x400, 0, &v);
        v.dir_marked[0] = htm_sim::ProcSet::from_bits(1);
        v.proc_tx[0] = Some(0x999); // the aborter moved on
        let expiry = c.table(0).entry(2).timer_expires;
        let cmds = tick(&mut c, expiry, &v);
        assert_eq!(cmds.len(), 1);
        assert_eq!(c.stats().ungate_different_tx, 1);
    }

    #[test]
    fn null_txinfo_reply_ungates() {
        let mut c = controller(1, 4, 8);
        let mut v = view(4, 1);
        c.on_abort(0, 2, 0, 0x400, 0, &v);
        v.dir_marked[0] = htm_sim::ProcSet::from_bits(1);
        v.proc_tx[0] = Some(0x400);
        v.proc_gated[0] = true; // the aborter itself has been gated
        let expiry = c.table(0).entry(2).timer_expires;
        let cmds = tick(&mut c, expiry, &v);
        assert_eq!(cmds.len(), 1);
        assert_eq!(c.stats().ungate_null_reply, 1);
    }

    #[test]
    fn blind_timer_ablation_never_renews() {
        let mut c = ClockGateController::new(
            1,
            2,
            Box::new(GatingAwarePolicy::new(8)),
            ControllerConfig {
                ungate_circuit_latency: 0,
                txinfo_roundtrip_latency: 0,
                renew_enabled: false,
            },
        );
        let mut v = view(2, 1);
        c.on_abort(0, 1, 0, 0x42, 0, &v);
        v.dir_marked[0] = htm_sim::ProcSet::from_bits(1);
        v.proc_tx[0] = Some(0x42);
        let expiry = c.table(0).entry(1).timer_expires;
        let cmds = tick(&mut c, expiry, &v);
        assert_eq!(
            cmds.len(),
            1,
            "ablation wakes the victim even though the aborter is present"
        );
        assert_eq!(c.stats().renewals, 0);
    }

    #[test]
    fn commit_resets_abort_counters_everywhere() {
        let mut c = controller(2, 4, 8);
        let v = view(4, 2);
        c.on_abort(0, 2, 0, 1, 0, &v);
        c.on_abort(1, 2, 3, 1, 0, &v);
        c.on_commit(2, 50);
        assert_eq!(c.table(0).entry(2).abort_count, 0);
        assert_eq!(c.table(1).entry(2).abort_count, 0);
    }

    #[test]
    fn repeated_aborts_escalate_the_window() {
        let mut c = controller(1, 2, 8);
        let v = view(2, 1);
        c.on_abort(0, 1, 0, 1, 0, &v);
        let w1 = c.table(0).entry(1).timer_expires;
        // Victim woke up, retried, got aborted again.
        c.on_wake(1, w1);
        c.on_abort(0, 1, 0, 1, 1000, &v);
        let w2 = c.table(0).entry(1).timer_expires - 1000;
        assert!(
            w2 >= w1,
            "the second abort must not get a shorter window (w1={w1} w2={w2})"
        );
        assert_eq!(c.table(0).entry(1).abort_count, 2);
    }

    #[test]
    fn stale_off_bit_reconciled_on_activity() {
        let mut c = controller(2, 2, 8);
        let v = view(2, 2);
        c.on_abort(0, 1, 0, 1, 0, &v);
        c.on_abort(1, 1, 0, 1, 0, &v);
        // Directory 0 wakes it (simulated via on_wake); directory 1 still has
        // a stale OFF bit until the processor touches it.
        c.on_wake(1, 10);
        assert!(!c.table(1).entry(1).off, "on_wake clears local OFF state");
        // Re-gate only in directory 1, then observe activity there.
        c.on_abort(1, 1, 0, 1, 20, &v);
        assert!(c.table(1).entry(1).off);
        c.on_proc_activity(1, 1, 30);
        assert!(!c.table(1).entry(1).off);
        assert_eq!(c.stats().stale_off_reconciled, 1);
    }

    #[test]
    fn gating_is_directory_local() {
        let mut c = controller(2, 2, 8);
        let v = view(2, 2);
        c.on_abort(0, 1, 0, 1, 0, &v);
        assert!(c.table(0).entry(1).off);
        assert!(
            !c.table(1).entry(1).off,
            "the other directory keeps its own view"
        );
    }
}
