//! The throttle contention policy: DVFS the victim down instead of stopping
//! its clocks.
//!
//! Clock gating buys the lowest possible wait power but needs the full
//! Section V machinery: Stop-Clock drain, a per-directory timer, the
//! Fig. 2(e) renewal circuit with its `TxInfoReq` round-trips, and a wake-up
//! protocol ending in a self-abort. Dynamic voltage/frequency scaling is the
//! classic intermediate point (cf. data-dependent clock gating, which argues
//! gating decisions should follow observed activity): the victim's clocks
//! keep running at a reduced rate — it burns the throttled power factor
//! instead of the gated one — but the wait is a **processor-local
//! countdown**: no renewal traffic, no wake-up latency, no self-abort, and
//! the fast-forward engine tracks the window like any other phase deadline.
//!
//! The window is the Eq. 8 staircase with the renew term pinned at zero
//! (there are no renewals without a directory timer):
//! `W = W0 · (2^⌈lg Na⌉ + 1)` for the victim's `Na`-th consecutive abort.

use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};
use htm_sim::{Cycle, DirId, ProcId};
use htm_tcc::hooks::{AbortAction, GateCommand, GatingHook, ScopedCmdKey, SystemView};
use htm_tcc::txn::TxId;

use crate::gating::contention::pow2_ceil_lg;
use crate::gating::policy::{PolicyHook, UncoreCharges};

/// The DVFS-style throttling hook (see the module docs).
#[derive(Debug, Clone)]
pub struct ThrottleHook {
    w0: Cycle,
    /// Per-victim consecutive-abort count since its last commit.
    consecutive: Vec<u32>,
    /// Throttled windows issued.
    throttles: u64,
}

impl ThrottleHook {
    /// Create the hook for `num_procs` processors with the given `W0`.
    #[must_use]
    pub fn new(num_procs: usize, w0: Cycle) -> Self {
        Self {
            w0,
            consecutive: vec![0; num_procs],
            throttles: 0,
        }
    }

    /// Number of throttled windows issued so far.
    #[must_use]
    pub fn throttles(&self) -> u64 {
        self.throttles
    }
}

impl GatingHook for ThrottleHook {
    fn on_abort(
        &mut self,
        _dir: DirId,
        victim: ProcId,
        _aborter: ProcId,
        _aborter_tx: TxId,
        _now: Cycle,
        _view: &SystemView,
    ) -> AbortAction {
        let n = self.consecutive[victim].saturating_add(1);
        self.consecutive[victim] = n;
        self.throttles += 1;
        AbortAction::Throttle {
            duration: self.w0.saturating_mul(pow2_ceil_lg(n) + 1),
        }
    }

    fn on_commit(&mut self, proc: ProcId, _now: Cycle) {
        self.consecutive[proc] = 0;
    }

    fn next_deadline(&self, _now: Cycle) -> Option<Cycle> {
        // The throttled window is a processor-local countdown
        // (`Phase::Throttled`); the hook itself never acts spontaneously.
        None
    }

    fn windowed_couplings(&self, _out: &mut Vec<(DirId, ProcId)>) -> bool {
        // Per-victim ladders touched only by the victim's own abort/commit
        // callbacks, and no spontaneous actions: no cross-shard hook state.
        true
    }

    fn on_tick_scoped(
        &mut self,
        _now: Cycle,
        _view: &SystemView,
        _focus: &[bool],
        _out: &mut Vec<(ScopedCmdKey, GateCommand)>,
    ) {
    }

    fn snapshot(&self, w: &mut CkptWriter) {
        w.put_usize(self.consecutive.len());
        for &n in &self.consecutive {
            w.put_u32(n);
        }
        w.put_u64(self.throttles);
    }

    fn restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.get_usize()?;
        if n != self.consecutive.len() {
            return Err(CkptError::Corrupt(format!(
                "throttle ladder for {n} processors restored into a machine with {}",
                self.consecutive.len()
            )));
        }
        for slot in &mut self.consecutive {
            *slot = r.get_u32()?;
        }
        self.throttles = r.get_u64()?;
        Ok(())
    }
}

impl PolicyHook for ThrottleHook {
    fn uncore_charges(&self) -> UncoreCharges {
        // The per-directory abort-counter tables and window timers exist
        // (their leakage is charged), but there is no renewal circuit and
        // therefore no renewal-time TxInfoReq traffic; the substrate counts
        // no abort-time round-trips either, because the hook never answers
        // `Gate`.
        UncoreCharges::gating(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_follow_the_eq8_staircase_without_renewals() {
        let mut h = ThrottleHook::new(2, 8);
        let v = SystemView::new(2, 1);
        let windows: Vec<Cycle> = (0..5)
            .map(|_| match h.on_abort(0, 0, 1, 7, 0, &v) {
                AbortAction::Throttle { duration } => duration,
                other => panic!("throttle always throttles: {other:?}"),
            })
            .collect();
        // W0=8: Na = 1,2,3,4,5 -> 8*(1+1), 8*(2+1), 8*(4+1), 8*(4+1), 8*(8+1).
        assert_eq!(windows, vec![16, 24, 40, 40, 72]);
        assert_eq!(h.throttles(), 5);
    }

    #[test]
    fn commit_resets_the_per_victim_staircase() {
        let mut h = ThrottleHook::new(2, 8);
        let v = SystemView::new(2, 1);
        let _ = h.on_abort(0, 0, 1, 7, 0, &v);
        let _ = h.on_abort(0, 0, 1, 7, 0, &v);
        h.on_commit(0, 100);
        match h.on_abort(0, 0, 1, 7, 200, &v) {
            AbortAction::Throttle { duration } => assert_eq!(duration, 16),
            other => panic!("{other:?}"),
        }
        // Victim 1's ladder was never touched.
        match h.on_abort(0, 1, 0, 9, 200, &v) {
            AbortAction::Throttle { duration } => assert_eq!(duration, 16),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hook_is_passive_and_declares_gating_tables_without_txinfo() {
        let h = ThrottleHook::new(1, 8);
        assert_eq!(h.next_deadline(123), None);
        let charges = h.uncore_charges();
        assert!(charges.gating_hardware);
        assert_eq!(charges.renewal_txinfo_roundtrips, 0);
        assert!(h.gating_stats().is_none(), "no Stop Clock protocol stats");
    }
}
