//! The hybrid contention policy: clock-gate first, back off when gating
//! stops paying.
//!
//! Clock gating wins when the conflictor finishes soon (the wait is cheap
//! and precisely renewed); exponential back-off wins when contention is so
//! persistent that repeated gate/wake/self-abort round-trips — each paying
//! drain, wake-up and roll-back latencies plus `TxInfoReq` traffic — burn
//! more than a longer polite spin would. The hybrid policy takes both ends:
//! the first `gate_limit` *consecutive* aborts of a victim are handled by
//! the paper's full gating protocol (Eq. 8 windows, Fig. 2(e) renewal);
//! beyond that the victim falls back to exponential back-off at run power
//! until it finally commits, which resets the ladder.

use htm_sim::checkpoint::{CkptError, CkptReader, CkptWriter};
use htm_sim::config::SimConfig;
use htm_sim::{Cycle, DirId, ProcId};
use htm_tcc::hooks::{AbortAction, GateCommand, GatingHook, ScopedCmdKey, SystemView};
use htm_tcc::txn::TxId;

use crate::gating::contention::GatingAwarePolicy;
use crate::gating::controller::{ClockGateController, ControllerConfig, GatingStats};
use crate::gating::policy::{PolicyHook, UncoreCharges};

/// The hybrid gate-then-back-off hook (see the module docs).
#[derive(Debug)]
pub struct HybridHook {
    gate_limit: u32,
    base: Cycle,
    cap: u32,
    /// Per-victim consecutive-abort count since its last commit.
    consecutive: Vec<u32>,
    /// Number of aborts that fell through to the back-off phase.
    fallback_backoffs: u64,
    /// The full gating protocol drives the first `gate_limit` aborts.
    inner: ClockGateController,
}

impl HybridHook {
    /// Create the hook for the given machine: gate the first `gate_limit`
    /// consecutive aborts with Eq. 8 (`w0`), then back off with
    /// `base * 2^n` (exponent capped at `cap`).
    #[must_use]
    pub fn new(cfg: &SimConfig, gate_limit: u32, w0: Cycle, base: Cycle, cap: u32) -> Self {
        Self {
            gate_limit,
            base,
            cap,
            consecutive: vec![0; cfg.num_procs],
            fallback_backoffs: 0,
            inner: ClockGateController::new(
                cfg.num_dirs,
                cfg.num_procs,
                Box::new(GatingAwarePolicy::new(w0)),
                ControllerConfig::from_sim_config(cfg),
            ),
        }
    }

    /// Aborts that were handled by the back-off fallback instead of gating.
    #[must_use]
    pub fn fallback_backoffs(&self) -> u64 {
        self.fallback_backoffs
    }
}

impl GatingHook for HybridHook {
    fn on_abort(
        &mut self,
        dir: DirId,
        victim: ProcId,
        aborter: ProcId,
        aborter_tx: TxId,
        now: Cycle,
        view: &SystemView,
    ) -> AbortAction {
        if view.is_gated(victim) {
            // The victim is already stopped: the substrate discards any
            // Retry for a stopped processor, so route the abort to the
            // gating protocol (which logs it directory-locally, extending
            // the window exactly like the plain controller) without
            // advancing the back-off ladder or inventing a phantom
            // fallback window.
            return self
                .inner
                .on_abort(dir, victim, aborter, aborter_tx, now, view);
        }
        let n = self.consecutive[victim];
        self.consecutive[victim] = n.saturating_add(1);
        if n < self.gate_limit {
            self.inner
                .on_abort(dir, victim, aborter, aborter_tx, now, view)
        } else {
            self.fallback_backoffs += 1;
            let exp = (n - self.gate_limit).min(self.cap).min(63);
            AbortAction::Retry {
                backoff: self.base.saturating_mul(1u64 << exp),
            }
        }
    }

    fn on_tick(&mut self, now: Cycle, view: &SystemView, out: &mut Vec<GateCommand>) {
        self.inner.on_tick(now, view, out);
    }

    fn next_deadline(&self, now: Cycle) -> Option<Cycle> {
        // Only the gating phase acts spontaneously; the back-off spin is a
        // processor-local countdown the engine already tracks.
        self.inner.next_deadline(now)
    }

    fn on_commit(&mut self, proc: ProcId, now: Cycle) {
        self.consecutive[proc] = 0;
        self.inner.on_commit(proc, now);
    }

    fn on_wake(&mut self, proc: ProcId, now: Cycle) {
        self.inner.on_wake(proc, now);
    }

    fn on_proc_activity(&mut self, proc: ProcId, dir: DirId, now: Cycle) {
        self.inner.on_proc_activity(proc, dir, now);
    }

    fn windowed_couplings(&self, out: &mut Vec<(DirId, ProcId)>) -> bool {
        // The ladder is per-victim state touched only by the victim's own
        // abort/commit callbacks; every cross-processor access lives in the
        // gating phase, so the inner controller's couplings are complete.
        self.inner.windowed_couplings(out)
    }

    fn on_tick_scoped(
        &mut self,
        now: Cycle,
        view: &SystemView,
        focus: &[bool],
        out: &mut Vec<(ScopedCmdKey, GateCommand)>,
    ) {
        self.inner.on_tick_scoped(now, view, focus, out);
    }

    fn snapshot(&self, w: &mut CkptWriter) {
        w.put_usize(self.consecutive.len());
        for &n in &self.consecutive {
            w.put_u32(n);
        }
        w.put_u64(self.fallback_backoffs);
        self.inner.snapshot(w);
    }

    fn restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.get_usize()?;
        if n != self.consecutive.len() {
            return Err(CkptError::Corrupt(format!(
                "hybrid ladder for {n} processors restored into a machine with {}",
                self.consecutive.len()
            )));
        }
        for slot in &mut self.consecutive {
            *slot = r.get_u32()?;
        }
        self.fallback_backoffs = r.get_u64()?;
        self.inner.restore(r)
    }
}

impl PolicyHook for HybridHook {
    fn gating_stats(&self) -> Option<GatingStats> {
        Some(self.inner.stats())
    }

    fn uncore_charges(&self) -> UncoreCharges {
        // The gating phase runs the full renewal protocol; the fallback
        // phase needs no hardware beyond the tables already present.
        self.inner.uncore_charges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hook(gate_limit: u32) -> HybridHook {
        HybridHook::new(&SimConfig::table2(4), gate_limit, 8, 16, 6)
    }

    #[test]
    fn gates_first_then_falls_back_to_growing_backoff() {
        let mut h = hook(2);
        let v = SystemView::new(4, 4);
        assert_eq!(h.on_abort(0, 1, 0, 7, 0, &v), AbortAction::Gate);
        h.on_wake(1, 50);
        assert_eq!(h.on_abort(0, 1, 0, 7, 100, &v), AbortAction::Gate);
        h.on_wake(1, 150);
        // Third and fourth consecutive aborts: exponential back-off.
        assert_eq!(
            h.on_abort(0, 1, 0, 7, 200, &v),
            AbortAction::Retry { backoff: 16 }
        );
        assert_eq!(
            h.on_abort(0, 1, 0, 7, 300, &v),
            AbortAction::Retry { backoff: 32 }
        );
        assert_eq!(h.fallback_backoffs(), 2);
        assert_eq!(h.gating_stats().unwrap().gatings, 2);
    }

    #[test]
    fn commit_resets_the_ladder_back_to_gating() {
        let mut h = hook(1);
        let v = SystemView::new(4, 4);
        assert_eq!(h.on_abort(0, 1, 0, 7, 0, &v), AbortAction::Gate);
        h.on_wake(1, 10);
        assert!(matches!(
            h.on_abort(0, 1, 0, 7, 20, &v),
            AbortAction::Retry { .. }
        ));
        h.on_commit(1, 30);
        assert_eq!(h.on_abort(0, 1, 0, 8, 40, &v), AbortAction::Gate);
    }

    #[test]
    fn aborts_of_a_gated_victim_do_not_advance_the_ladder() {
        let mut h = hook(1);
        let mut v = SystemView::new(4, 4);
        assert_eq!(h.on_abort(0, 1, 0, 7, 0, &v), AbortAction::Gate);
        // While the victim is stopped its read set is still live, so more
        // invalidations arrive; the substrate discards any Retry for a
        // stopped victim, and the ladder must not move on their account.
        v.proc_gated[1] = true;
        assert_eq!(h.on_abort(1, 1, 2, 9, 5, &v), AbortAction::Gate);
        assert_eq!(h.on_abort(2, 1, 3, 11, 6, &v), AbortAction::Gate);
        assert_eq!(h.fallback_backoffs(), 0, "no phantom fallback windows");
        v.proc_gated[1] = false;
        h.on_wake(1, 50);
        // The next real abort is exactly the second rung of the ladder.
        assert_eq!(
            h.on_abort(0, 1, 0, 7, 60, &v),
            AbortAction::Retry { backoff: 16 }
        );
    }

    #[test]
    fn ladders_are_per_victim() {
        let mut h = hook(1);
        let v = SystemView::new(4, 4);
        assert_eq!(h.on_abort(0, 1, 0, 7, 0, &v), AbortAction::Gate);
        // Victim 2 still starts on the gating rung.
        assert_eq!(h.on_abort(0, 2, 0, 7, 0, &v), AbortAction::Gate);
    }

    #[test]
    fn zero_gate_limit_degenerates_to_pure_backoff() {
        let mut h = hook(0);
        let v = SystemView::new(4, 4);
        assert_eq!(
            h.on_abort(0, 1, 0, 7, 0, &v),
            AbortAction::Retry { backoff: 16 }
        );
        assert_eq!(h.gating_stats().unwrap().gatings, 0);
        assert_eq!(h.next_deadline(5), None, "no pending gating timers");
    }

    #[test]
    fn backoff_exponent_saturates_at_the_cap() {
        let mut h = hook(0);
        let v = SystemView::new(4, 4);
        let mut last = 0;
        for _ in 0..12 {
            if let AbortAction::Retry { backoff } = h.on_abort(0, 1, 0, 7, 0, &v) {
                last = backoff;
            }
        }
        assert_eq!(last, 16 << 6, "window saturates at base * 2^cap");
    }
}
