//! Island decomposition and the shard-parallel runner.
//!
//! On a sharded topology ([`htm_sim::topology::TopologyConfig::Sharded`])
//! the interconnect is partitioned into independent per-bank channels and the
//! token vendor is a pipelined latency-only link whose TIDs depend only on
//! the requester. A group of processors whose memory operations all home
//! into a set of banks touched by no other processor therefore evolves with
//! **zero interaction** with the rest of the machine: no shared channel, no
//! shared directory, no shared arbitration state. We call such a group an
//! *island*.
//!
//! [`run_shard_parallel`] exploits this: it computes the islands of a
//! workload from its static trace (a union-find over processors and the
//! banks their addresses home into), simulates every island on its own host
//! thread as a full-size machine in which all other processors are idle, and
//! merges the per-island outcomes into a single [`RunOutcome`] that is
//! **bit-identical** to what the serial fast-forward engine produces for the
//! whole machine. The merge is exact because:
//!
//! * per-processor state (`state_cycles`, `proc_stats`) is owned by exactly
//!   one island; finished lanes are padded with run-power cycles exactly as
//!   a serial run accounts processors that are already done,
//! * per-directory and per-bank counters are touched by exactly one island,
//!   so fieldwise sums reproduce the serial tallies,
//! * the interval decomposition is *not* additive (two islands gated in
//!   overlapping windows contribute to a single larger `Xi` bucket in the
//!   serial run), so each lane records a run-length-encoded log of its
//!   per-cycle state counts and the merge zip-sums the logs cycle-by-cycle
//!   and replays them through
//!   [`htm_sim::interval::IntervalTracker::from_segments`].
//!
//! When the topology is the shared bus, or the workload collapses into a
//! single island, [`run_shard_parallel`] returns `Ok(None)` and the caller
//! falls back to the serial engine (which is bit-identical anyway).

use htm_mem::AddressMap;
use htm_sim::bus::BusStats;
use htm_sim::config::SimConfig;
use htm_sim::interval::{IntervalSeg, IntervalTracker};
use htm_sim::topology::TopologyConfig;
use htm_sim::{Cycle, ProcId};
use htm_tcc::dirctrl::DirCtrlStats;
use htm_tcc::stats::{ProcStats, RunOutcome, StateCycles};
use htm_tcc::system::{SimError, TccSystem};
use htm_tcc::txn::{Op, ThreadTrace, WorkloadTrace};

use crate::gating::controller::GatingStats;
use crate::gating::policy::UncoreCharges;
use crate::sim::GatingMode;

/// Result of a successful shard-parallel run: the merged outcome plus the
/// policy-level by-products the serial path reads off the hook.
#[derive(Debug, Clone)]
pub struct IslandRun {
    /// Merged protocol outcome, bit-identical to a serial run.
    pub outcome: RunOutcome,
    /// Merged gating-controller statistics (`None` for retry-style policies).
    pub gating: Option<GatingStats>,
    /// Merged uncore-charge declaration of the per-lane hooks.
    pub charges: UncoreCharges,
    /// Number of islands that were simulated in parallel.
    pub islands: usize,
}

/// Union-find over processors and interconnect banks, with path halving.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins, so island identity does not
            // depend on union order.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Partition the processors of `workload` into conflict-isolated islands on
/// the interconnect of `cfg`.
///
/// Two processors land in the same island iff they (transitively) touch a
/// common interconnect bank — the unit of sharing on a sharded fabric. On
/// the monolithic bus every processor shares the single channel, so the
/// partition is one island. Processors that execute no transactions at all
/// belong to no island (they finish at cycle 0 and are synthesized into the
/// merged outcome directly).
///
/// Islands are returned sorted by their smallest processor id, each with its
/// processors in ascending order, so the decomposition is deterministic.
///
/// ```
/// use clockgate_htm::islands::partition_islands;
/// use htm_sim::config::SimConfig;
/// use htm_sim::topology::TopologyConfig;
/// use htm_tcc::txn::{Op, ThreadTrace, Transaction, WorkloadTrace};
///
/// let cfg = SimConfig::table2_with_topology(4, TopologyConfig::sharded_default());
/// // Threads 0 and 1 share segment 0 (directory 0); threads 2 and 3 share
/// // segment 1 (directory 1). Two islands.
/// let tx = |id, addr| Transaction::new(id, vec![Op::Write(addr)]);
/// let w = WorkloadTrace::new(
///     "two-clusters",
///     vec![
///         ThreadTrace::new(vec![tx(0x10, 0)]),
///         ThreadTrace::new(vec![tx(0x20, 64)]),
///         ThreadTrace::new(vec![tx(0x30, 4096)]),
///         ThreadTrace::new(vec![tx(0x40, 4160)]),
///     ],
/// );
/// assert_eq!(partition_islands(&cfg, &w), vec![vec![0, 1], vec![2, 3]]);
/// ```
#[must_use]
pub fn partition_islands(cfg: &SimConfig, workload: &WorkloadTrace) -> Vec<Vec<ProcId>> {
    let num_procs = cfg.num_procs;
    let map = AddressMap::new(cfg.line_bytes, cfg.directory_segment_bytes, cfg.num_dirs);
    // Nodes 0..num_procs are processors; num_procs.. are interconnect banks.
    let mut dsu = Dsu::new(num_procs + cfg.topology.effective_banks(cfg.num_dirs));
    for (i, thread) in workload.threads.iter().enumerate().take(num_procs) {
        for txn in &thread.transactions {
            for op in &txn.ops {
                let addr = match *op {
                    Op::Read(a) | Op::Write(a) => a,
                    Op::Compute(_) => continue,
                };
                let bank = cfg
                    .topology
                    .bank_of(map.home_of(map.line_of(addr)), cfg.num_dirs);
                dsu.union(i, num_procs + bank);
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<ProcId>> =
        std::collections::BTreeMap::new();
    for (i, thread) in workload.threads.iter().enumerate().take(num_procs) {
        if thread.transactions.is_empty() {
            continue;
        }
        let root = dsu.find(i);
        groups.entry(root).or_default().push(i);
    }
    let mut islands: Vec<Vec<ProcId>> = groups.into_values().collect();
    islands.sort_by_key(|island| island[0]);
    islands
}

/// Restrict `workload` to the processors of one island: a full-size trace in
/// which every processor outside the island has an empty thread (it finishes
/// immediately and accrues run-power cycles, exactly as in the serial run).
fn restrict_workload(workload: &WorkloadTrace, island: &[ProcId]) -> WorkloadTrace {
    let mut threads = vec![ThreadTrace::default(); workload.threads.len()];
    for &p in island {
        threads[p] = workload.threads[p].clone();
    }
    WorkloadTrace::new(workload.name.clone(), threads)
}

/// What one island lane hands back to the merge step. Everything here is
/// `Send`; the boxed policy hook itself never crosses the thread boundary.
struct LaneOutput {
    outcome: RunOutcome,
    gating: Option<GatingStats>,
    charges: UncoreCharges,
    log: Vec<IntervalSeg>,
}

/// Simulate one island to completion on the calling thread.
fn run_lane(
    cfg: &SimConfig,
    workload: &WorkloadTrace,
    island: &[ProcId],
    mode: GatingMode,
    limit: Cycle,
) -> Result<LaneOutput, SimError> {
    let lane_workload = restrict_workload(workload, island);
    let hook = mode.build(cfg);
    let mut sys = TccSystem::new(cfg.clone(), lane_workload, hook)?;
    sys.enable_interval_log();
    sys.advance_until(limit);
    if !sys.is_complete() {
        return Err(SimError::CycleLimitExceeded { limit });
    }
    let (outcome, hook, log) = sys.into_parts_with_log();
    Ok(LaneOutput {
        gating: hook.gating_stats(),
        charges: hook.uncore_charges(),
        outcome,
        log,
    })
}

/// Zip-sum the per-lane run-length-encoded interval logs into the global
/// per-cycle state counts and replay them through the tracker.
///
/// Interval counts are not additive across islands — two islands gated in
/// overlapping windows must land in one larger `Xi` bucket, as the serial
/// tracker would record — but the tracker *is* a pure function of the
/// per-cycle count sequence, and that sequence is the cycle-wise sum of the
/// lane sequences (exhausted lanes contribute zero). The actual summing is
/// [`htm_sim::interval::zip_sum_segments`], the merge primitive shared with
/// the windowed engine; lanes that finish before the slowest island are
/// padded to the global length with a zero-count tail, because a finished
/// island's processors spend those cycles in no tracked state.
fn merge_intervals(
    num_procs: usize,
    total_cycles: Cycle,
    logs: &[Vec<IntervalSeg>],
) -> IntervalTracker {
    let padded: Vec<Vec<IntervalSeg>> = logs
        .iter()
        .map(|log| {
            let covered: Cycle = log.iter().map(|seg| seg.cycles).sum();
            let mut log = log.clone();
            if covered < total_cycles {
                log.push(IntervalSeg {
                    cycles: total_cycles - covered,
                    ..IntervalSeg::default()
                });
            }
            log
        })
        .collect();
    let mut merged: Vec<IntervalSeg> = Vec::new();
    htm_sim::interval::zip_sum_segments(&padded, IntervalSeg::default(), total_cycles, |seg| {
        merged.push(seg);
    });
    IntervalTracker::from_segments(num_procs, &merged)
}

/// Merge the per-island outcomes into the global one the serial engine would
/// have produced.
fn merge_lanes(
    cfg: &SimConfig,
    workload: &WorkloadTrace,
    islands: &[Vec<ProcId>],
    lanes: Vec<LaneOutput>,
) -> IslandRun {
    let num_procs = cfg.num_procs;
    let total_cycles = lanes
        .iter()
        .map(|l| l.outcome.total_cycles)
        .max()
        .unwrap_or(0);
    // Every lane contains at least one processor with at least one
    // transaction (zero-transaction processors are excluded from islands),
    // so each lane's first_tx_start is genuine and the global one is their
    // minimum.
    let first_tx_start = lanes
        .iter()
        .map(|l| l.outcome.first_tx_start)
        .min()
        .unwrap_or(0);
    let last_commit_end = lanes
        .iter()
        .map(|l| l.outcome.last_commit_end)
        .max()
        .unwrap_or(0);

    // Processors outside every island executed no transactions: in a serial
    // run they are done at cycle 0 and accrue run-power cycles for the whole
    // parallel section.
    let mut state_cycles = vec![
        StateCycles {
            run: total_cycles,
            ..Default::default()
        };
        num_procs
    ];
    let mut proc_stats = vec![ProcStats::new(); num_procs];
    let mut bus = BusStats::default();
    let mut shard_bus = vec![BusStats::default(); cfg.topology.effective_banks(cfg.num_dirs)];
    let mut dir_stats = vec![DirCtrlStats::default(); cfg.num_dirs];
    let mut gating: Option<GatingStats> = None;
    let mut charges = UncoreCharges::none();

    for (island, lane) in islands.iter().zip(&lanes) {
        for &p in island {
            let mut sc = lane.outcome.state_cycles[p];
            // A processor that is done keeps accruing run cycles in a serial
            // run; pad the owner lane's accounting out to the global length.
            sc.run += total_cycles - lane.outcome.total_cycles;
            state_cycles[p] = sc;
            proc_stats[p] = lane.outcome.proc_stats[p].clone();
        }
        bus.absorb(&lane.outcome.bus);
        for (merged, b) in shard_bus.iter_mut().zip(&lane.outcome.shard_bus) {
            merged.absorb(b);
        }
        for (merged, d) in dir_stats.iter_mut().zip(&lane.outcome.dir_stats) {
            merged.absorb(d);
        }
        if let Some(g) = &lane.gating {
            gating.get_or_insert_with(GatingStats::default).absorb(g);
        }
        charges.gating_hardware |= lane.charges.gating_hardware;
        charges.renewal_txinfo_roundtrips += lane.charges.renewal_txinfo_roundtrips;
    }

    let intervals = merge_intervals(
        num_procs,
        total_cycles,
        &lanes.iter().map(|l| l.log.clone()).collect::<Vec<_>>(),
    );

    let total_commits = proc_stats.iter().map(|s| s.commits).sum();
    let total_aborts = proc_stats.iter().map(|s| s.aborts).sum();
    let total_gatings = proc_stats.iter().map(|s| s.gatings).sum();

    IslandRun {
        outcome: RunOutcome {
            workload: workload.name.clone(),
            num_procs,
            total_cycles,
            first_tx_start,
            last_commit_end,
            state_cycles,
            proc_stats,
            intervals,
            bus,
            shard_bus,
            dir_stats,
            total_commits,
            total_aborts,
            total_gatings,
        },
        gating,
        charges,
        islands: islands.len(),
    }
}

/// Run `workload` on the machine of `cfg` with the islands simulated on
/// parallel host threads, producing an outcome bit-identical to the serial
/// fast-forward engine.
///
/// Returns `Ok(None)` when the decomposition cannot help — the topology is
/// the shared bus (every processor shares one channel) or the workload
/// collapses into at most one island — in which case the caller should fall
/// back to the serial engine. Returns an error if any lane fails (the lanes
/// are checked in island order, so the reported error is deterministic).
pub fn run_shard_parallel(
    cfg: &SimConfig,
    workload: &WorkloadTrace,
    mode: GatingMode,
    limit: Cycle,
) -> Result<Option<IslandRun>, SimError> {
    if !matches!(cfg.topology, TopologyConfig::Sharded { .. }) {
        return Ok(None);
    }
    cfg.validate().map_err(SimError::BadConfig)?;
    if workload.num_threads() != cfg.num_procs {
        return Err(SimError::BadWorkload(format!(
            "workload has {} threads but the machine has {} processors",
            workload.num_threads(),
            cfg.num_procs
        )));
    }
    let islands = partition_islands(cfg, workload);
    if islands.len() <= 1 {
        return Ok(None);
    }

    // Fan the lanes out over the persistent worker pool instead of spawning
    // a thread per island; each lane writes its own slot, so the results
    // stay in island order regardless of completion order.
    let mut results: Vec<Option<Result<LaneOutput, SimError>>> = Vec::new();
    results.resize_with(islands.len(), || None);
    crate::pool::WorkerPool::global().scope(|scope| {
        for (slot, island) in results.iter_mut().zip(&islands) {
            scope.spawn(move || *slot = Some(run_lane(cfg, workload, island, mode, limit)));
        }
    });
    let mut lanes = Vec::with_capacity(results.len());
    for result in results {
        lanes.push(result.expect("island lane completed")?);
    }
    Ok(Some(merge_lanes(cfg, workload, &islands, lanes)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_tcc::txn::Transaction;

    fn sharded_cfg(procs: usize) -> SimConfig {
        SimConfig::table2_with_topology(procs, TopologyConfig::sharded_default())
    }

    fn tx(id: u64, addrs: &[u64]) -> Transaction {
        Transaction::new(id, addrs.iter().map(|&a| Op::Write(a)).collect::<Vec<_>>())
    }

    fn clustered(procs: usize, cluster: usize) -> WorkloadTrace {
        // `cluster` threads per group, each group confined to its own 4 KiB
        // segment (= its own directory and bank).
        let threads = (0..procs)
            .map(|i| {
                let seg = (i / cluster) as u64 * 4096;
                ThreadTrace::new(vec![tx(0x100 + i as u64, &[seg, seg + 64, seg + 128])])
            })
            .collect();
        WorkloadTrace::new("clustered-test", threads)
    }

    #[test]
    fn bus_topology_is_one_island_and_falls_back() {
        let cfg = SimConfig::table2(8);
        let w = clustered(8, 2);
        assert_eq!(
            partition_islands(&cfg, &w),
            vec![(0..8).collect::<Vec<_>>()],
            "the monolithic bus couples every processor"
        );
        assert!(run_shard_parallel(&cfg, &w, GatingMode::Ungated, 1_000_000)
            .unwrap()
            .is_none());
    }

    #[test]
    fn disjoint_clusters_form_one_island_each() {
        let cfg = sharded_cfg(8);
        let islands = partition_islands(&cfg, &clustered(8, 2));
        assert_eq!(
            islands,
            vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]]
        );
    }

    #[test]
    fn zero_transaction_threads_belong_to_no_island() {
        let cfg = sharded_cfg(4);
        let w = WorkloadTrace::new(
            "sparse",
            vec![
                ThreadTrace::new(vec![tx(1, &[0])]),
                ThreadTrace::default(),
                ThreadTrace::new(vec![tx(2, &[4096])]),
                ThreadTrace::default(),
            ],
        );
        assert_eq!(partition_islands(&cfg, &w), vec![vec![0], vec![2]]);
    }

    #[test]
    fn overlapping_segments_merge_islands() {
        let cfg = sharded_cfg(4);
        let w = WorkloadTrace::new(
            "chained",
            vec![
                ThreadTrace::new(vec![tx(1, &[0])]),
                ThreadTrace::new(vec![tx(2, &[0, 4096])]),
                ThreadTrace::new(vec![tx(3, &[4096])]),
                ThreadTrace::new(vec![tx(4, &[8192])]),
            ],
        );
        assert_eq!(partition_islands(&cfg, &w), vec![vec![0, 1, 2], vec![3]]);
    }

    /// The headline contract: the merged shard-parallel outcome is equal
    /// field-for-field to the serial fast-forward run of the whole machine.
    #[test]
    fn shard_parallel_outcome_is_bit_identical_to_serial() {
        use htm_tcc::system::EngineKind;
        for mode in [
            GatingMode::Ungated,
            GatingMode::ClockGate { w0: 8 },
            GatingMode::Throttle { w0: 8 },
        ] {
            let cfg = sharded_cfg(8);
            let w = clustered(8, 2);
            let parallel = run_shard_parallel(&cfg, &w, mode, 1_000_000)
                .unwrap()
                .expect("4 islands must parallelize");
            assert_eq!(parallel.islands, 4);

            let hook = mode.build(&cfg);
            let (serial, hook) = TccSystem::new(cfg, w, hook)
                .unwrap()
                .run_bounded_parts(1_000_000, EngineKind::FastForward)
                .unwrap();
            assert_eq!(parallel.outcome, serial, "{mode:?}");
            assert_eq!(parallel.gating, hook.gating_stats(), "{mode:?}");
            assert_eq!(
                parallel.charges.renewal_txinfo_roundtrips,
                hook.uncore_charges().renewal_txinfo_roundtrips
            );
            parallel.outcome.check_consistency().unwrap();
        }
    }

    #[test]
    fn cycle_limit_errors_propagate_from_lanes() {
        let cfg = sharded_cfg(8);
        let w = clustered(8, 2);
        let err = run_shard_parallel(&cfg, &w, GatingMode::Ungated, 3).unwrap_err();
        assert!(matches!(err, SimError::CycleLimitExceeded { limit: 3 }));
    }
}
