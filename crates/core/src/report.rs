//! Plain-text and JSON rendering of experiment results.
//!
//! The paper presents its evaluation as bar charts and tables; the
//! reproduction harness prints the same data as aligned text tables (one per
//! figure/table) and can serialize every result structure to JSON for
//! downstream plotting.

use serde::Serialize;

/// Render an aligned plain-text table.
///
/// ```
/// let s = clockgate_htm::report::format_table(
///     &["workload", "speedup"],
///     &[vec!["intruder".to_string(), "1.04".to_string()]],
/// );
/// assert!(s.contains("workload"));
/// assert!(s.contains("intruder"));
/// ```
#[must_use]
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(c).unwrap_or(&empty);
            line.push_str(&format!(" {cell:<w$} |", w = w));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Serialize any experiment result to pretty-printed JSON.
#[must_use]
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

/// Format a floating-point value with a fixed number of decimals.
#[must_use]
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Format a ratio as a multiplicative factor (e.g. `1.23x`).
#[must_use]
pub fn fmt_factor(value: f64) -> String {
    format!("{value:.3}x")
}

/// Format a value as a signed percentage (e.g. `+4.2%`).
#[must_use]
pub fn fmt_percent(value: f64) -> String {
    format!("{value:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = format_table(
            &["a", "long header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyyyyyy".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have the same width.
        let widths: std::collections::HashSet<usize> = lines.iter().map(|l| l.len()).collect();
        assert_eq!(widths.len(), 1, "{s}");
        assert!(lines[0].contains("long header"));
        assert!(lines[3].contains("yyyyyyyy"));
    }

    #[test]
    fn table_handles_empty_rows() {
        let s = format_table(&["only header"], &[]);
        assert!(s.contains("only header"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn json_round_trips_simple_values() {
        #[derive(Serialize)]
        struct T {
            x: u32,
        }
        let s = to_json(&T { x: 7 });
        assert!(s.contains("\"x\": 7"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_factor(1.5), "1.500x");
        assert_eq!(fmt_percent(4.25), "+4.2%");
        assert_eq!(fmt_percent(-3.0), "-3.0%");
    }
}
