//! Plain-text and JSON rendering of experiment results.
//!
//! The paper presents its evaluation as bar charts and tables; the
//! reproduction harness prints the same data as aligned text tables (one per
//! figure/table) and can serialize every result structure to JSON for
//! downstream plotting. The sensitivity-sweep artifacts (per-cell JSONL
//! records, Pareto frontiers and slice summaries) are rendered here as well.

use serde::Serialize;

use crate::sweep::{SliceFrontier, SliceSummary};

/// Render an aligned plain-text table.
///
/// ```
/// let s = clockgate_htm::report::format_table(
///     &["workload", "speedup"],
///     &[vec!["intruder".to_string(), "1.04".to_string()]],
/// );
/// assert!(s.contains("workload"));
/// assert!(s.contains("intruder"));
/// ```
#[must_use]
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(c).unwrap_or(&empty);
            line.push_str(&format!(" {cell:<w$} |", w = w));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Serialize any experiment result to pretty-printed JSON.
#[must_use]
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

/// Serialize any experiment result to a single compact JSON line (no
/// trailing newline) — the encoding of each `sweep.jsonl` record.
#[must_use]
pub fn to_json_compact<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

/// Render the Pareto frontiers of a sweep as one aligned text table per
/// (workload, procs) slice.
#[must_use]
pub fn render_pareto(frontiers: &[SliceFrontier]) -> String {
    let mut out = String::new();
    for f in frontiers {
        let rows: Vec<Vec<String>> = f
            .frontier
            .iter()
            .map(|p| {
                vec![
                    p.mode.clone(),
                    p.cycles.to_string(),
                    fmt_f(p.energy, 0),
                    p.key.clone(),
                ]
            })
            .collect();
        out.push_str(&format!(
            "Pareto frontier — {} @ {} procs ({} of {} points non-dominated)\n{}\n",
            f.workload,
            f.procs,
            f.frontier.len(),
            f.cells,
            format_table(&["mode", "cycles", "energy", "cell"], &rows)
        ));
    }
    out
}

/// Render the per-slice sweep summary as one aligned text table.
#[must_use]
pub fn render_sweep_summary(summaries: &[SliceSummary]) -> String {
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                s.workload.clone(),
                s.procs.to_string(),
                s.cells.to_string(),
                s.frontier_size.to_string(),
                s.best_time.mode.clone(),
                s.best_energy.mode.clone(),
                fmt_factor(s.energy_span),
                fmt_factor(s.cycle_span),
            ]
        })
        .collect();
    format!(
        "Sweep summary (one row per workload x processor-count slice)\n{}",
        format_table(
            &[
                "workload",
                "procs",
                "cells",
                "frontier",
                "fastest mode",
                "frugalest mode",
                "energy span",
                "cycle span"
            ],
            &rows
        )
    )
}

/// Format a floating-point value with a fixed number of decimals.
#[must_use]
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Format a ratio as a multiplicative factor (e.g. `1.23x`).
#[must_use]
pub fn fmt_factor(value: f64) -> String {
    format!("{value:.3}x")
}

/// Format a value as a signed percentage (e.g. `+4.2%`).
#[must_use]
pub fn fmt_percent(value: f64) -> String {
    format!("{value:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = format_table(
            &["a", "long header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyyyyyy".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have the same width.
        let widths: std::collections::HashSet<usize> = lines.iter().map(|l| l.len()).collect();
        assert_eq!(widths.len(), 1, "{s}");
        assert!(lines[0].contains("long header"));
        assert!(lines[3].contains("yyyyyyyy"));
    }

    #[test]
    fn table_handles_empty_rows() {
        let s = format_table(&["only header"], &[]);
        assert!(s.contains("only header"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn json_round_trips_simple_values() {
        #[derive(Serialize)]
        struct T {
            x: u32,
        }
        let s = to_json(&T { x: 7 });
        assert!(s.contains("\"x\": 7"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_factor(1.5), "1.500x");
        assert_eq!(fmt_percent(4.25), "+4.2%");
        assert_eq!(fmt_percent(-3.0), "-3.0%");
    }

    #[test]
    fn compact_json_is_single_line() {
        #[derive(Serialize)]
        struct T {
            x: u32,
            s: String,
        }
        let s = to_json_compact(&T {
            x: 7,
            s: "a".into(),
        });
        assert_eq!(s, r#"{"x":7,"s":"a"}"#);
        assert!(!s.contains('\n'));
    }

    #[test]
    fn pareto_and_summary_render_as_tables() {
        use crate::sweep::ParetoPoint;
        let point = |key: &str, cycles, energy: f64| ParetoPoint {
            key: key.to_string(),
            mode: format!("mode-{key}"),
            cycles,
            energy,
            objective_value: energy,
        };
        let frontier = SliceFrontier {
            workload: "intruder".into(),
            procs: 8,
            cells: 3,
            frontier: vec![point("fast", 50, 30.0), point("frugal", 100, 10.0)],
            dominated: vec!["bad".into()],
        };
        let rendered = render_pareto(&[frontier]);
        assert!(rendered.contains("intruder @ 8 procs"));
        assert!(rendered.contains("2 of 3 points non-dominated"));
        assert!(rendered.contains("mode-fast"));

        let summary = SliceSummary {
            workload: "intruder".into(),
            procs: 8,
            cells: 3,
            frontier_size: 2,
            best_time: point("fast", 50, 30.0),
            best_energy: point("frugal", 100, 10.0),
            energy_span: 4.0,
            cycle_span: 4.0,
        };
        let rendered = render_sweep_summary(&[summary]);
        assert!(rendered.contains("frugalest mode"));
        assert!(rendered.contains("4.000x"));
    }
}
