//! Re-export of the shared worker pool.
//!
//! The pool implementation lives in [`htm_sim::pool`] so that the simulator
//! core (`htm-tcc`) can fan per-window lane advances onto the same pool the
//! matrix/sweep drivers in this crate use — one thread budget for the whole
//! process instead of two competing ones. This module keeps the historical
//! `crate::pool::WorkerPool` paths working.

pub use htm_sim::pool::{Scope, WorkerPool};
