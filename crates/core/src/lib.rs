//! # clockgate-htm — Clock Gate on Abort
//!
//! This crate is the Rust implementation of the contribution of
//! *"Clock Gate on Abort: Towards Energy-Efficient Hardware Transactional
//! Memory"* (Sanyal, Roy, Cristal, Unsal, Valero — IPDPS 2009), together with
//! the experiment harness that regenerates every table and figure of the
//! paper's evaluation on top of the substrate crates (`htm-sim`, `htm-mem`,
//! `htm-tcc`, `htm-power`, `htm-workloads`).
//!
//! ## What the mechanism does
//!
//! In a Scalable-TCC hardware transactional memory, a transaction that is
//! aborted has burnt real energy for nothing. The paper proposes to **stop
//! the clocks of a processor the moment one of its transactions is aborted**
//! and to keep it stopped for a window chosen by a *gating-aware contention
//! manager*, renewing the window while the transaction that caused the abort
//! is still trying to commit the same static transaction in the same
//! directory. The pieces, and where they live here:
//!
//! * the per-directory **gating table** (Fig. 1) — [`gating::table`],
//! * the **gating / ungating protocol** (Section V, Fig. 2) —
//!   [`gating::controller`], implemented as an [`htm_tcc::GatingHook`],
//! * the **gating-aware contention management** staircase back-off (Eq. 8) —
//!   [`gating::contention`],
//! * the **pluggable contention-policy framework** — [`gating::policy`]
//!   (serializable specs resolving through a registry into boxed hooks;
//!   the six paper modes plus the adaptive-`W0` ([`gating::contention`]),
//!   hybrid ([`gating::hybrid`]), DVFS-throttle ([`gating::throttle`]) and
//!   oracle ([`gating::oracle`]) extensions),
//! * the **simulation front end** that wires a workload, a machine
//!   configuration and a gating mode together — [`sim`],
//! * the **experiments** reproducing Tables I–II and Figures 3–7 —
//!   [`experiments`], with text/JSON rendering in [`report`],
//! * the **sensitivity sweeps** exploring the energy/performance trade-off
//!   surface beyond the paper's single operating point — [`sweep`]
//!   (Cartesian grids, a resumable parallel runner, Pareto frontiers per
//!   workload × processor-count slice).
//!
//! ## Quick start
//!
//! ```
//! use clockgate_htm::sim::{GatingMode, SimulationBuilder};
//! use htm_workloads::WorkloadScale;
//!
//! // Run STAMP-like "intruder" on 8 processors, with and without the
//! // paper's clock gating, and compare energy.
//! let ungated = SimulationBuilder::new()
//!     .processors(8)
//!     .workload_by_name("intruder", WorkloadScale::Test, 42)
//!     .unwrap()
//!     .gating(GatingMode::Ungated)
//!     .run()
//!     .unwrap();
//! let gated = SimulationBuilder::new()
//!     .processors(8)
//!     .workload_by_name("intruder", WorkloadScale::Test, 42)
//!     .unwrap()
//!     .gating(GatingMode::ClockGate { w0: 8 })
//!     .run()
//!     .unwrap();
//! let cmp = clockgate_htm::sim::compare_runs(&ungated, &gated);
//! // Gated cycles replace doomed re-execution; the full-scale energy numbers
//! // are reported in docs/REPRODUCING.md.
//! assert!(cmp.gated_cycles_total > 0);
//! assert!(cmp.energy_reduction > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod experiments;
pub mod gating;
pub mod islands;
pub mod pool;
pub mod report;
pub mod sim;
pub mod sweep;

pub use checkpoint::{CheckpointConfig, CheckpointError, CheckpointRunInfo, ReplayReport};
pub use gating::contention::{AdaptiveW0Policy, ContentionPolicy, FixedWindow, GatingAwarePolicy};
pub use gating::controller::{ClockGateController, ControllerConfig, GatingStats};
pub use gating::hybrid::HybridHook;
pub use gating::oracle::OracleHook;
pub use gating::policy::{PolicyHook, PolicyInfo, PolicySpec, UncoreCharges, POLICY_REGISTRY};
pub use gating::table::{GatingEntry, GatingTable};
pub use gating::throttle::ThrottleHook;
pub use islands::{partition_islands, run_shard_parallel, IslandRun};
pub use sim::{GatingMode, SimReport, SimulationBuilder};
pub use sweep::{run_sweep, CellRecord, SweepCell, SweepGrid};
