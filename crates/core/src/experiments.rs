//! Reproduction of every table and figure of the paper's evaluation.
//!
//! | id | paper content | function |
//! |----|---------------|----------|
//! | Table I  | Alpha 21264 power factors | [`table1`] |
//! | Table II | simulation parameters | [`table2`] |
//! | Fig. 3   | TCC data-cache power vs. RW-bit resolution | [`fig3`] |
//! | Fig. 4   | parallel execution time with / without gating | [`render_fig4`] |
//! | Fig. 5   | energy consumption with / without gating | [`render_fig5`] |
//! | Fig. 6   | average power dissipation with / without gating | [`render_fig6`] |
//! | Fig. 7   | speed-up vs. `W0` and processor count | [`fig7`] |
//! | headline | 19 % energy / 4 % speed-up / 13 % power averages | [`summary`] |
//!
//! Figures 4–6 are three views of the same simulation matrix (the paper's
//! three applications × {4, 8, 16} processors × {ungated, gated}); the matrix
//! is computed once by [`run_matrix`] and each figure renders its slice.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use htm_power::cache_power::CachePowerModel;
use htm_power::energy::ComparisonReport;
use htm_power::ledger::EnergyLedgerReport;
use htm_power::model::PowerModel;
use htm_sim::config::SimConfig;
use htm_sim::topology::TopologyConfig;
use htm_sim::Cycle;
use htm_tcc::system::SimError;
use htm_workloads::registry::PAPER_WORKLOADS;
use htm_workloads::WorkloadScale;

use crate::checkpoint::{
    remove_checkpoints, validate_checkpoint_dir, CheckpointConfig, CheckpointError,
};
use crate::report::{fmt_f, fmt_factor, fmt_percent, format_table};
use crate::sim::{
    compare_runs, EngineChoice, EngineKind, GatingMode, RunStats, SimReport, SimulationBuilder,
    WindowedStats,
};
use crate::sweep::TraceWorkload;

pub use htm_workloads::registry::PAPER_WORKLOADS as EVALUATED_WORKLOADS;

/// Parameters shared by the simulation-based experiments (Figs. 4–7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Processor counts to evaluate (the paper uses 4, 8 and 16).
    pub processor_counts: Vec<usize>,
    /// Workloads to evaluate (defaults to the paper's genome / yada /
    /// intruder).
    pub workloads: Vec<String>,
    /// Workload scale (number of transactions per thread).
    pub scale: WorkloadScale,
    /// Base seed for workload generation.
    pub seed: u64,
    /// The `W0` constant used for the gated runs of Figs. 4–6 (the paper uses
    /// 8).
    pub w0: Cycle,
    /// Safety bound on simulated cycles per run.
    pub cycle_limit: Cycle,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            processor_counts: vec![4, 8, 16],
            workloads: PAPER_WORKLOADS.iter().map(|s| (*s).to_string()).collect(),
            scale: WorkloadScale::Full,
            seed: 42,
            w0: 8,
            cycle_limit: crate::sim::DEFAULT_CYCLE_LIMIT,
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for unit tests and Criterion benchmarks
    /// (single processor count, small workloads).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            processor_counts: vec![4],
            scale: WorkloadScale::Test,
            ..Self::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Table I and Table II
// ---------------------------------------------------------------------------

/// Table I: the Alpha 21264 power factors.
#[must_use]
pub fn table1() -> Vec<(&'static str, f64)> {
    PowerModel::alpha_21264_65nm().table1_rows()
}

/// Render Table I as text.
#[must_use]
pub fn render_table1() -> String {
    let rows: Vec<Vec<String>> = table1()
        .into_iter()
        .map(|(op, f)| vec![op.to_string(), fmt_f(f, 2)])
        .collect();
    format!(
        "Table I: Power model of Alpha 21264\n{}",
        format_table(&["Operation", "Power Factor"], &rows)
    )
}

/// Table II: the simulation parameters for `procs` processors.
#[must_use]
pub fn table2(procs: usize) -> Vec<(String, String)> {
    SimConfig::table2(procs).table2_rows()
}

/// Render Table II as text.
#[must_use]
pub fn render_table2(procs: usize) -> String {
    let rows: Vec<Vec<String>> = table2(procs).into_iter().map(|(f, d)| vec![f, d]).collect();
    format!(
        "Table II: Parameters used in the simulation\n{}",
        format_table(&["Feature", "Description"], &rows)
    )
}

// ---------------------------------------------------------------------------
// Fig. 3 — TCC data-cache power vs. RW-bit resolution
// ---------------------------------------------------------------------------

/// One curve of Fig. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Series {
    /// Cache capacity in KiB.
    pub cache_kb: usize,
    /// `(tracking resolution in bytes, normalized power)` points, from line
    /// granularity (64 B) down to byte granularity.
    pub points: Vec<(usize, f64)>,
}

/// Result of the Fig. 3 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// One series per cache size.
    pub series: Vec<Fig3Series>,
    /// Full TCC-cache factor (array + FIFO + controller) for the 64 KB cache
    /// with word-level tracking — the paper's "1.5×" number.
    pub tcc_cache_factor_64kb: f64,
}

/// Compute the Fig. 3 data for the standard cache sizes.
#[must_use]
pub fn fig3() -> Fig3Result {
    let sizes = [16usize, 32, 64, 128];
    let series = sizes
        .iter()
        .map(|&kb| Fig3Series {
            cache_kb: kb,
            points: CachePowerModel::new_kb(kb).fig3_series(),
        })
        .collect();
    Fig3Result {
        series,
        tcc_cache_factor_64kb: CachePowerModel::new_kb(64).tcc_breakdown(2).factor(),
    }
}

/// Render Fig. 3 as text.
#[must_use]
pub fn render_fig3(result: &Fig3Result) -> String {
    let resolutions: Vec<usize> = result
        .series
        .first()
        .map(|s| s.points.iter().map(|(r, _)| *r).collect())
        .unwrap_or_default();
    let mut headers: Vec<String> = vec!["cache size".to_string()];
    headers.extend(resolutions.iter().map(|r| format!("{r}B")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = result
        .series
        .iter()
        .map(|s| {
            let mut row = vec![format!("{}KB", s.cache_kb)];
            row.extend(s.points.iter().map(|(_, p)| fmt_f(*p, 1)));
            row
        })
        .collect();
    format!(
        "Fig. 3: Normalized power of a TCC data cache vs. RW-bit resolution (normal cache = 100)\n{}\nFull TCC data cache (array + store FIFO + commit controller, 64KB @ 2B tracking): {:.2}x a normal data cache\n",
        format_table(&header_refs, &rows),
        result.tcc_cache_factor_64kb
    )
}

// ---------------------------------------------------------------------------
// The Fig. 4/5/6 simulation matrix
// ---------------------------------------------------------------------------

/// One (workload, processor-count) cell of the evaluation matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixCell {
    /// Workload name.
    pub workload: String,
    /// Processor count.
    pub procs: usize,
    /// Gated-vs-ungated comparison (speed-up, energy reduction, …).
    pub comparison: ComparisonReport,
    /// Gatings, renewals and wake reasons observed in the gated run.
    pub gating: Option<crate::gating::controller::GatingStats>,
    /// Aborts per commit in the ungated baseline.
    pub baseline_abort_rate: f64,
}

/// The complete Fig. 4/5/6 evaluation matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationMatrix {
    /// Experiment parameters used.
    pub config: ExperimentConfig,
    /// One cell per (workload, processor count).
    pub cells: Vec<MatrixCell>,
}

/// Wall-clock timing of one matrix cell (both runs of the gated/ungated
/// pair).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellTiming {
    /// Workload name.
    pub workload: String,
    /// Processor count.
    pub procs: usize,
    /// Wall-clock milliseconds the cell took (ungated + gated run).
    pub wall_ms: f64,
    /// Stepping engine the cell's runs resolved to (meaningful under
    /// `--engine auto`, where each cell picks its own engine).
    pub engine: String,
    /// Windowed-engine counters summed over the cell's run pair; present
    /// only when the cell ran on [`EngineKind::Windowed`].
    pub windowed: Option<WindowedCellStats>,
}

/// Windowed-engine diagnostics of one matrix cell, merged over the cell's
/// ungated + gated run pair (counters summed, high-water marks maxed).
/// Lives only in the timing artifact (`BENCH_reproduce.json`) — reports stay
/// engine-independent and byte-comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowedCellStats {
    /// Lookahead windows executed across both runs.
    pub windows: u64,
    /// Windows whose planner produced two or more independent groups.
    pub multi_group_windows: u64,
    /// Largest number of independent groups observed in one window.
    pub max_groups_in_window: usize,
    /// Total group advances (sum of group counts over all windows).
    pub group_advances: u64,
    /// Largest number of bank shards with at least one active processor
    /// observed in one window — the "shards active" scaling signal.
    pub max_banks_active: usize,
    /// Cross-group messages staged at window barriers.
    pub staged_messages: u64,
    /// Histogram of groups-per-window, bucketed as
    /// [`WindowedStats::GROUP_HIST_BUCKETS`] (1, 2, 3, 4, 5-8, 9-16, 17+).
    pub group_count_hist: [u64; 7],
    /// Multi-group windows whose lanes were fanned onto the worker pool
    /// (zero when the pool has a single worker: the sequential fallback).
    pub parallel_windows: u64,
    /// Largest number of lanes that could run concurrently in one parallel
    /// window: `min(groups, pool workers)`, maxed over parallel windows.
    /// Deterministic — depends on the plan and pool size, not the schedule.
    pub max_concurrent_lanes: usize,
    /// Wall-clock nanoseconds lane jobs spent advancing, summed over lanes.
    /// Nondeterministic; compare against [`Self::window_wall_nanos`] to see
    /// how much of the window time was lane work vs barrier replay.
    pub lane_busy_nanos: u64,
    /// Wall-clock nanoseconds parallel windows took end to end (fan-out,
    /// lane advances, reassembly and barrier replay). Nondeterministic.
    pub window_wall_nanos: u64,
}

impl WindowedCellStats {
    /// Merge the two runs of a cell: counters add, high-water marks max.
    fn merged(a: WindowedStats, b: WindowedStats) -> Self {
        let mut group_count_hist = a.group_count_hist;
        for (acc, add) in group_count_hist.iter_mut().zip(b.group_count_hist) {
            *acc += add;
        }
        Self {
            windows: a.windows + b.windows,
            multi_group_windows: a.multi_group_windows + b.multi_group_windows,
            max_groups_in_window: a.max_groups_in_window.max(b.max_groups_in_window),
            group_advances: a.group_advances + b.group_advances,
            max_banks_active: a.max_banks_active.max(b.max_banks_active),
            staged_messages: a.staged_messages + b.staged_messages,
            group_count_hist,
            parallel_windows: a.parallel_windows + b.parallel_windows,
            max_concurrent_lanes: a.max_concurrent_lanes.max(b.max_concurrent_lanes),
            lane_busy_nanos: a.lane_busy_nanos + b.lane_busy_nanos,
            window_wall_nanos: a.window_wall_nanos + b.window_wall_nanos,
        }
    }
}

/// Wall-clock timing of a whole [`run_matrix_timed`] invocation; serialized
/// as the `BENCH_reproduce.json` artifact by the `reproduce --timing` flag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixTiming {
    /// Stepping engine used for every simulation of the matrix.
    pub engine: String,
    /// Interconnect topology every simulation ran on.
    pub topology: String,
    /// Worker threads the matrix was spread over.
    pub threads: usize,
    /// Per-cell wall-clock timings, in the deterministic cell order.
    pub cells: Vec<CellTiming>,
    /// End-to-end wall-clock milliseconds for the whole matrix.
    pub total_wall_ms: f64,
    /// Matrix cells completed per wall-clock second.
    pub cells_per_sec: f64,
}

/// On-disk checkpointing options for the simulation-backed experiment entry
/// points (the `reproduce --checkpoint-every N --checkpoint-dir D` flags).
///
/// Deliberately not part of [`ExperimentConfig`]: the config struct is
/// serialized into the golden `evaluation_matrix.json` artifacts, which must
/// stay byte-identical whether or not a run was checkpointed. The exactness
/// contract (see `DESIGN.md`) makes that a real guarantee, not an
/// approximation: a checkpoint-resumed run produces the same bytes as an
/// uninterrupted one.
#[derive(Debug, Clone)]
pub struct MatrixCheckpoint {
    /// Directory holding the per-run checkpoint files (created if missing).
    pub dir: std::path::PathBuf,
    /// Checkpoint interval in simulated cycles (must be at least 1).
    pub every: Cycle,
}

/// Checkpoint-file key of one experiment run: workload, processor count, a
/// run-kind tag (`ungated`, `gated`, `fig7-w<N>`, ...) and the topology key
/// segment when not on the default bus.
fn run_key(workload: &str, procs: usize, kind: &str, topology: TopologyConfig) -> String {
    match topology.key_segment() {
        None => format!("{workload}-p{procs}-{kind}"),
        Some(segment) => format!("{workload}-p{procs}-{kind}-{segment}"),
    }
}

/// Run one simulation, optionally under on-disk checkpointing. With a
/// [`MatrixCheckpoint`] (paired with the run-kind tag that disambiguates
/// the checkpoint key) the run auto-resumes from the newest valid checkpoint
/// for its key, reports skipped (torn/corrupt) files loudly on stderr, and
/// cleans its checkpoints up once the run completes — the artifact row
/// supersedes them.
///
/// When a recorded [`TraceWorkload`] is supplied and its fingerprinted axis
/// name matches the cell's workload name, the trace drives the run instead of
/// the synthetic generator (the `reproduce --trace` path).
#[allow(clippy::too_many_arguments)]
fn run_one(
    workload: &str,
    procs: usize,
    cfg: &ExperimentConfig,
    mode: GatingMode,
    engine: EngineChoice,
    topology: TopologyConfig,
    ckpt: Option<(&MatrixCheckpoint, &str)>,
    trace: Option<&TraceWorkload>,
) -> Result<(SimReport, RunStats), SimError> {
    let builder = SimulationBuilder::new()
        .processors(procs)
        .topology(topology);
    let builder = match trace {
        Some(t) if t.axis_name == workload => builder.workload(t.workload.clone()),
        _ => builder
            .workload_by_name(workload, cfg.scale, cfg.seed)
            .map_err(SimError::BadWorkload)?,
    };
    let builder = builder
        .gating(mode)
        .cycle_limit(cfg.cycle_limit)
        .engine(engine);
    let Some((spec, kind)) = ckpt else {
        return builder.run_with_stats();
    };
    let key = run_key(workload, procs, kind, topology);
    let cc = CheckpointConfig::new(spec.dir.clone(), spec.every, key.clone());
    let (report, info) = builder.run_checkpointed(&cc).map_err(|err| match err {
        CheckpointError::Sim(sim) => sim,
        other => SimError::Checkpoint(other.to_string()),
    })?;
    for (path, why) in &info.skipped {
        eprintln!(
            "warning: run `{key}`: skipped unusable checkpoint {}: {why}",
            path.display()
        );
    }
    if let Some(cycle) = info.resumed_from {
        eprintln!("run `{key}`: resumed from checkpoint at cycle {cycle}");
    }
    if let Err(err) = remove_checkpoints(&spec.dir, &key) {
        eprintln!("warning: run `{key}`: could not clean up checkpoints: {err}");
    }
    Ok((
        report,
        RunStats {
            engine: info.engine,
            windowed: info.windowed,
        },
    ))
}

#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn run_pair(
    workload: &str,
    procs: usize,
    cfg: &ExperimentConfig,
    mode: GatingMode,
    engine: EngineChoice,
    topology: TopologyConfig,
    ckpt: Option<&MatrixCheckpoint>,
    trace: Option<&TraceWorkload>,
) -> Result<((SimReport, RunStats), (SimReport, RunStats)), SimError> {
    let ungated = run_one(
        workload,
        procs,
        cfg,
        GatingMode::Ungated,
        engine,
        topology,
        ckpt.map(|spec| (spec, "ungated")),
        trace,
    )?;
    let gated = run_one(
        workload,
        procs,
        cfg,
        mode,
        engine,
        topology,
        ckpt.map(|spec| (spec, "gated")),
        trace,
    )?;
    Ok((ungated, gated))
}

/// Component-resolved energy ledgers of one matrix cell (both runs of the
/// ungated/gated pair), written as the `energy_breakdown.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellEnergyBreakdown {
    /// Workload name.
    pub workload: String,
    /// Processor count.
    pub procs: usize,
    /// Ledger of the ungated baseline run.
    pub ungated: EnergyLedgerReport,
    /// Ledger of the clock-gated run.
    pub gated: EnergyLedgerReport,
    /// Energy savings of gating on the core subset only (the paper's
    /// accounting), in percent of the ungated core energy.
    pub core_savings_percent: f64,
    /// Energy savings once the uncore is charged too, in percent of the
    /// ungated ledger total.
    pub total_savings_percent: f64,
}

impl CellEnergyBreakdown {
    fn new(
        workload: &str,
        procs: usize,
        ungated: EnergyLedgerReport,
        gated: EnergyLedgerReport,
    ) -> Self {
        let savings = |ug: f64, g: f64| {
            if ug > 0.0 {
                (1.0 - g / ug) * 100.0
            } else {
                0.0
            }
        };
        Self {
            workload: workload.to_string(),
            procs,
            core_savings_percent: savings(ungated.core_energy, gated.core_energy),
            total_savings_percent: savings(ungated.total_energy, gated.total_energy),
            ungated,
            gated,
        }
    }

    /// How many percentage points the uncore charge moves the
    /// gated-vs-ungated energy gap (negative: the uncore erodes the win).
    #[must_use]
    pub fn uncore_gap_shift_percent(&self) -> f64 {
        self.total_savings_percent - self.core_savings_percent
    }
}

/// The `energy_breakdown.json` artifact: per-component ledgers for every
/// cell of the evaluation matrix. Everything inside is a deterministic
/// function of the engine-exact outcomes, so the artifact is byte-identical
/// across stepping engines (CI compares it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdownReport {
    /// One breakdown per (workload, processor count), in matrix cell order.
    pub cells: Vec<CellEnergyBreakdown>,
}

fn run_cell(
    workload: &str,
    procs: usize,
    cfg: &ExperimentConfig,
    engine: EngineChoice,
    topology: TopologyConfig,
    ckpt: Option<&MatrixCheckpoint>,
    trace: Option<&TraceWorkload>,
) -> Result<
    (
        MatrixCell,
        CellEnergyBreakdown,
        EngineKind,
        Option<WindowedCellStats>,
    ),
    SimError,
> {
    let ((ungated, ustats), (gated, gstats)) = run_pair(
        workload,
        procs,
        cfg,
        GatingMode::ClockGate { w0: cfg.w0 },
        engine,
        topology,
        ckpt,
        trace,
    )?;
    let comparison = compare_runs(&ungated, &gated);
    let breakdown = CellEnergyBreakdown::new(workload, procs, ungated.ledger, gated.ledger.clone());
    // Both runs of a pair share (cfg, workload), so `auto` resolves them to
    // the same engine.
    let resolved = ustats.engine;
    let windowed = (resolved == EngineKind::Windowed)
        .then(|| WindowedCellStats::merged(ustats.windowed, gstats.windowed));
    Ok((
        MatrixCell {
            workload: workload.to_string(),
            procs,
            baseline_abort_rate: ungated.outcome.abort_rate(),
            gating: gated.gating,
            comparison,
        },
        breakdown,
        resolved,
        windowed,
    ))
}

/// Run the full evaluation matrix (every workload × processor count, with and
/// without clock gating) on the default (fast-forward) engine.
pub fn run_matrix(cfg: &ExperimentConfig) -> Result<EvaluationMatrix, SimError> {
    run_matrix_timed(cfg, EngineKind::FastForward).map(|(matrix, _timing, _breakdown)| matrix)
}

/// Run the full evaluation matrix with the chosen engine, spreading the
/// independent (workload × processor-count) cells over the persistent
/// worker pool ([`crate::pool::WorkerPool::global`]) and collecting per-cell
/// wall-clock timings plus the per-component energy breakdown of every cell.
///
/// Every cell is a self-contained deterministic simulation pair, so the
/// schedule cannot influence the results; cells are written back into their
/// pre-assigned slot, which keeps the output ordering (workload-major, then
/// processor count — the paper's figure order) byte-identical to the old
/// serial loop. On error, the first failing cell *in that deterministic
/// order* is reported, regardless of which worker hit an error first.
pub fn run_matrix_timed(
    cfg: &ExperimentConfig,
    engine: EngineKind,
) -> Result<(EvaluationMatrix, MatrixTiming, EnergyBreakdownReport), SimError> {
    run_matrix_timed_on(cfg, engine, TopologyConfig::Bus)
}

/// [`run_matrix_timed`] on an explicit interconnect topology. The default
/// entry points use [`TopologyConfig::Bus`] (the paper's machine); the
/// `reproduce --topology` flag and the scale-smoke CI job run the same
/// matrix on a sharded fabric, where the shard-parallel engine can
/// additionally parallelize *within* each simulation (see [`crate::islands`]).
///
/// The topology is deliberately not part of [`ExperimentConfig`]: the config
/// struct is serialized into the golden `evaluation_matrix.json` artifacts,
/// which must stay byte-identical for bus runs.
pub fn run_matrix_timed_on(
    cfg: &ExperimentConfig,
    engine: EngineKind,
    topology: TopologyConfig,
) -> Result<(EvaluationMatrix, MatrixTiming, EnergyBreakdownReport), SimError> {
    run_matrix_timed_ckpt(cfg, engine, topology, None)
}

/// [`run_matrix_timed_on`] with optional on-disk checkpointing: each of the
/// matrix's simulation runs checkpoints every [`MatrixCheckpoint::every`]
/// cycles and auto-resumes from the newest valid checkpoint after a crash.
/// The checkpoint directory is pre-flighted before any cell runs, so a
/// future-format checkpoint file is a dedicated error up front (mirroring
/// the sweep's schema gate) rather than a mid-matrix surprise.
///
/// Checkpointing does not change a single output byte: the resulting matrix,
/// timing cell list and energy breakdown are identical to an uninterrupted
/// [`run_matrix_timed_on`] run.
pub fn run_matrix_timed_ckpt(
    cfg: &ExperimentConfig,
    engine: impl Into<EngineChoice>,
    topology: TopologyConfig,
    ckpt: Option<&MatrixCheckpoint>,
) -> Result<(EvaluationMatrix, MatrixTiming, EnergyBreakdownReport), SimError> {
    run_matrix_timed_ckpt_traced(cfg, engine, topology, ckpt, None)
}

/// [`run_matrix_timed_ckpt`] with an optional recorded trace: matrix cells
/// whose workload name equals the trace's fingerprinted axis name are driven
/// by the recorded [`TraceWorkload`] instead of the synthetic generators.
/// This is the engine of `reproduce --trace`, which sets the config's
/// workload list to exactly that axis name.
pub fn run_matrix_timed_ckpt_traced(
    cfg: &ExperimentConfig,
    engine: impl Into<EngineChoice>,
    topology: TopologyConfig,
    ckpt: Option<&MatrixCheckpoint>,
    trace: Option<&TraceWorkload>,
) -> Result<(EvaluationMatrix, MatrixTiming, EnergyBreakdownReport), SimError> {
    let engine = engine.into();
    if let Some(spec) = ckpt {
        validate_checkpoint_dir(&spec.dir).map_err(|err| SimError::Checkpoint(err.to_string()))?;
    }
    let params: Vec<(&str, usize)> = cfg
        .workloads
        .iter()
        .flat_map(|w| cfg.processor_counts.iter().map(move |&p| (w.as_str(), p)))
        .collect();
    let pool = crate::pool::WorkerPool::global();
    let threads = pool.workers().min(params.len().max(1));
    let started = Instant::now();

    // One pre-assigned slot per cell; each pool job writes only its own
    // slot, so cell order never depends on the schedule.
    type CellResult = Result<
        (
            MatrixCell,
            CellEnergyBreakdown,
            EngineKind,
            Option<WindowedCellStats>,
        ),
        SimError,
    >;
    let mut slots: Vec<Option<(CellResult, f64)>> = Vec::new();
    slots.resize_with(params.len(), || None);
    pool.scope(|scope| {
        for (slot, &(workload, procs)) in slots.iter_mut().zip(&params) {
            scope.spawn(move || {
                let cell_started = Instant::now();
                let result = run_cell(workload, procs, cfg, engine, topology, ckpt, trace);
                *slot = Some((result, cell_started.elapsed().as_secs_f64() * 1e3));
            });
        }
    });

    let mut cells = Vec::with_capacity(params.len());
    let mut breakdowns = Vec::with_capacity(params.len());
    let mut timings = Vec::with_capacity(params.len());
    for slot in slots {
        let (result, wall_ms) = slot.expect("every cell job ran to completion");
        let (cell, breakdown, resolved, windowed) = result?;
        timings.push(CellTiming {
            workload: cell.workload.clone(),
            procs: cell.procs,
            wall_ms,
            engine: resolved.label().to_string(),
            windowed,
        });
        cells.push(cell);
        breakdowns.push(breakdown);
    }
    let total_wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let timing = MatrixTiming {
        engine: engine.label().to_string(),
        topology: topology.describe(),
        threads,
        cells_per_sec: if total_wall_ms > 0.0 {
            cells.len() as f64 / (total_wall_ms / 1e3)
        } else {
            0.0
        },
        cells: timings,
        total_wall_ms,
    };
    Ok((
        EvaluationMatrix {
            config: cfg.clone(),
            cells,
        },
        timing,
        EnergyBreakdownReport { cells: breakdowns },
    ))
}

/// Render the energy-breakdown report as one aligned text table (component
/// energies of both runs per cell, plus the uncore's effect on the gap).
#[must_use]
pub fn render_energy_breakdown(report: &EnergyBreakdownReport) -> String {
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|c| {
            vec![
                c.workload.clone(),
                c.procs.to_string(),
                fmt_f(c.ungated.core_energy, 0),
                fmt_f(c.gated.core_energy, 0),
                fmt_f(c.ungated.uncore_energy, 0),
                fmt_f(c.gated.uncore_energy, 0),
                fmt_percent(c.core_savings_percent),
                fmt_percent(c.total_savings_percent),
                fmt_percent(c.uncore_gap_shift_percent()),
            ]
        })
        .collect();
    format!(
        "Component-resolved energy: core vs. uncore, without vs. with clock gating\n{}",
        format_table(
            &[
                "workload",
                "procs",
                "core Eug",
                "core Eg",
                "uncore Eug",
                "uncore Eg",
                "core savings",
                "total savings",
                "uncore shift"
            ],
            &rows
        )
    )
}

/// Render Fig. 4 (total parallel execution time) from the matrix.
#[must_use]
pub fn render_fig4(matrix: &EvaluationMatrix) -> String {
    let rows: Vec<Vec<String>> = matrix
        .cells
        .iter()
        .map(|c| {
            vec![
                c.workload.clone(),
                c.procs.to_string(),
                c.comparison.ungated_cycles.to_string(),
                c.comparison.gated_cycles.to_string(),
                fmt_factor(c.comparison.speedup),
            ]
        })
        .collect();
    format!(
        "Fig. 4: Total parallel execution time (cycles), without vs. with clock gating\n{}",
        format_table(
            &[
                "workload",
                "procs",
                "without gating",
                "with gating",
                "speed-up"
            ],
            &rows
        )
    )
}

/// Render Fig. 5 (energy consumption) from the matrix.
#[must_use]
pub fn render_fig5(matrix: &EvaluationMatrix) -> String {
    let rows: Vec<Vec<String>> = matrix
        .cells
        .iter()
        .map(|c| {
            vec![
                c.workload.clone(),
                c.procs.to_string(),
                fmt_f(c.comparison.ungated_energy, 0),
                fmt_f(c.comparison.gated_energy, 0),
                fmt_factor(c.comparison.energy_reduction),
                fmt_percent(c.comparison.energy_savings_percent()),
            ]
        })
        .collect();
    format!(
        "Fig. 5: Energy consumption (run-power x cycles), without vs. with clock gating\n{}",
        format_table(
            &[
                "workload",
                "procs",
                "Eug (ungated)",
                "Eg (gated)",
                "reduction",
                "savings"
            ],
            &rows
        )
    )
}

/// Render Fig. 6 (average power dissipation) from the matrix.
#[must_use]
pub fn render_fig6(matrix: &EvaluationMatrix) -> String {
    let rows: Vec<Vec<String>> = matrix
        .cells
        .iter()
        .map(|c| {
            let p = c.procs as f64;
            let avg_ungated =
                c.comparison.ungated_energy / (c.comparison.ungated_cycles.max(1) as f64 * p);
            let avg_gated =
                c.comparison.gated_energy / (c.comparison.gated_cycles.max(1) as f64 * p);
            vec![
                c.workload.clone(),
                c.procs.to_string(),
                fmt_f(avg_ungated, 3),
                fmt_f(avg_gated, 3),
                fmt_factor(c.comparison.average_power_reduction),
            ]
        })
        .collect();
    format!(
        "Fig. 6: Average power dissipation (fraction of run power per processor), without vs. with clock gating\n{}",
        format_table(
            &["workload", "procs", "without gating", "with gating", "reduction"],
            &rows
        )
    )
}

// ---------------------------------------------------------------------------
// Headline summary (the abstract's 19% / 4% / 13%)
// ---------------------------------------------------------------------------

/// Averages over the whole evaluation matrix, mirroring the numbers quoted in
/// the paper's abstract and Section VIII.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Average speed-up in percent (paper: 4 %).
    pub avg_speedup_percent: f64,
    /// Average reduction in total energy in percent (paper: 19 %).
    pub avg_energy_savings_percent: f64,
    /// Average reduction in average power dissipation in percent (paper: 13 %).
    pub avg_power_savings_percent: f64,
    /// Number of (workload, processor-count) configurations averaged.
    pub configurations: usize,
    /// Number of configurations where gating produced a slowdown (the paper
    /// observes exactly one).
    pub slowdown_configurations: usize,
}

/// Compute the headline averages from a matrix.
#[must_use]
pub fn summary(matrix: &EvaluationMatrix) -> Summary {
    let n = matrix.cells.len().max(1) as f64;
    let avg_speedup_percent = matrix
        .cells
        .iter()
        .map(|c| c.comparison.speedup_percent())
        .sum::<f64>()
        / n;
    let avg_energy_savings_percent = matrix
        .cells
        .iter()
        .map(|c| c.comparison.energy_savings_percent())
        .sum::<f64>()
        / n;
    let avg_power_savings_percent = matrix
        .cells
        .iter()
        .map(|c| c.comparison.average_power_savings_percent())
        .sum::<f64>()
        / n;
    Summary {
        avg_speedup_percent,
        avg_energy_savings_percent,
        avg_power_savings_percent,
        configurations: matrix.cells.len(),
        slowdown_configurations: matrix
            .cells
            .iter()
            .filter(|c| c.comparison.speedup < 1.0)
            .count(),
    }
}

/// Render the summary as text.
#[must_use]
pub fn render_summary(s: &Summary) -> String {
    format!(
        "Headline averages over {} configurations (paper: +4% speed-up, 19% energy, 13% power):\n  average speed-up:            {}\n  average energy savings:      {}\n  average power savings:       {}\n  configurations with slowdown: {}\n",
        s.configurations,
        fmt_percent(s.avg_speedup_percent),
        fmt_percent(s.avg_energy_savings_percent),
        fmt_percent(s.avg_power_savings_percent),
        s.slowdown_configurations
    )
}

// ---------------------------------------------------------------------------
// Fig. 7 — speed-up sensitivity to W0 and Np
// ---------------------------------------------------------------------------

/// One row of Fig. 7: the speed-up of every workload (and their average) for
/// a given `(W0, Np)` point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// The `W0` constant.
    pub w0: Cycle,
    /// Processor count.
    pub procs: usize,
    /// Per-workload speed-ups, in the order of the config's workload list.
    pub speedups: Vec<f64>,
    /// Average speed-up over the workloads.
    pub avg_speedup: f64,
}

/// Result of the Fig. 7 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Workload names (column order of [`Fig7Row::speedups`]).
    pub workloads: Vec<String>,
    /// The sweep rows.
    pub rows: Vec<Fig7Row>,
}

/// Sweep `W0` and the processor count; the ungated baseline per
/// (workload, procs) is computed once and reused across `W0` values.
pub fn fig7(cfg: &ExperimentConfig, w0_values: &[Cycle]) -> Result<Fig7Result, SimError> {
    fig7_with_engine(cfg, w0_values, EngineKind::FastForward)
}

/// [`fig7`] with an explicit stepping engine (the CI divergence check runs
/// the sweep on both engines and compares the artifacts).
pub fn fig7_with_engine(
    cfg: &ExperimentConfig,
    w0_values: &[Cycle],
    engine: EngineKind,
) -> Result<Fig7Result, SimError> {
    fig7_on(cfg, w0_values, engine, TopologyConfig::Bus)
}

/// [`fig7_with_engine`] on an explicit interconnect topology (see
/// [`run_matrix_timed_on`] for why the topology is a parameter rather than
/// an [`ExperimentConfig`] field).
pub fn fig7_on(
    cfg: &ExperimentConfig,
    w0_values: &[Cycle],
    engine: EngineKind,
    topology: TopologyConfig,
) -> Result<Fig7Result, SimError> {
    fig7_ckpt(cfg, w0_values, engine, topology, None)
}

/// [`fig7_on`] with optional on-disk checkpointing (see
/// [`run_matrix_timed_ckpt`]). Checkpoint keys carry a `fig7-` prefix so the
/// sweep can share a checkpoint directory with the evaluation matrix.
pub fn fig7_ckpt(
    cfg: &ExperimentConfig,
    w0_values: &[Cycle],
    engine: impl Into<EngineChoice>,
    topology: TopologyConfig,
    ckpt: Option<&MatrixCheckpoint>,
) -> Result<Fig7Result, SimError> {
    fig7_ckpt_traced(cfg, w0_values, engine, topology, ckpt, None)
}

/// [`fig7_ckpt`] with an optional recorded trace (see
/// [`run_matrix_timed_ckpt_traced`]): sweep runs whose workload name equals
/// the trace's axis name replay the recorded trace.
pub fn fig7_ckpt_traced(
    cfg: &ExperimentConfig,
    w0_values: &[Cycle],
    engine: impl Into<EngineChoice>,
    topology: TopologyConfig,
    ckpt: Option<&MatrixCheckpoint>,
    trace: Option<&TraceWorkload>,
) -> Result<Fig7Result, SimError> {
    let engine = engine.into();
    if let Some(spec) = ckpt {
        validate_checkpoint_dir(&spec.dir).map_err(|err| SimError::Checkpoint(err.to_string()))?;
    }
    let mut rows = Vec::new();
    for &procs in &cfg.processor_counts {
        // Baselines per workload.
        let mut baselines = Vec::new();
        for workload in &cfg.workloads {
            let (ungated, _stats) = run_one(
                workload,
                procs,
                cfg,
                GatingMode::Ungated,
                engine,
                topology,
                ckpt.map(|spec| (spec, "fig7-ungated")),
                trace,
            )?;
            baselines.push(ungated);
        }
        for &w0 in w0_values {
            let mut speedups = Vec::new();
            let kind = format!("fig7-w{w0}");
            for (workload, ungated) in cfg.workloads.iter().zip(&baselines) {
                let (gated, _stats) = run_one(
                    workload,
                    procs,
                    cfg,
                    GatingMode::ClockGate { w0 },
                    engine,
                    topology,
                    ckpt.map(|spec| (spec, kind.as_str())),
                    trace,
                )?;
                speedups.push(compare_runs(ungated, &gated).speedup);
            }
            let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
            rows.push(Fig7Row {
                w0,
                procs,
                speedups,
                avg_speedup: avg,
            });
        }
    }
    Ok(Fig7Result {
        workloads: cfg.workloads.clone(),
        rows,
    })
}

/// Render Fig. 7 as text.
#[must_use]
pub fn render_fig7(result: &Fig7Result) -> String {
    let mut headers: Vec<String> = vec!["W0".to_string(), "procs".to_string()];
    headers.extend(result.workloads.iter().cloned());
    headers.push("average".to_string());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![r.w0.to_string(), r.procs.to_string()];
            row.extend(r.speedups.iter().map(|s| fmt_factor(*s)));
            row.push(fmt_factor(r.avg_speedup));
            row
        })
        .collect();
    format!(
        "Fig. 7: Speed-up as a function of W0 and the number of processors\n{}",
        format_table(&header_refs, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let t = table1();
        assert_eq!(t.len(), 4);
        assert!((t[0].1 - 1.0).abs() < 1e-12);
        assert!((t[1].1 - 0.32).abs() < 1e-12);
        assert!((t[2].1 - 0.44).abs() < 1e-12);
        assert!((t[3].1 - 0.20).abs() < 1e-12);
        let rendered = render_table1();
        assert!(rendered.contains("Clock Gated"));
        assert!(rendered.contains("0.44"));
    }

    #[test]
    fn table2_lists_the_five_features() {
        let t = table2(16);
        assert_eq!(t.len(), 5);
        let rendered = render_table2(16);
        assert!(rendered.contains("16 single issue"));
        assert!(rendered.contains("Full-bit vector"));
    }

    #[test]
    fn fig3_has_four_sizes_and_monotone_curves() {
        let f = fig3();
        assert_eq!(f.series.len(), 4);
        for s in &f.series {
            assert_eq!(s.points.len(), 7);
            for w in s.points.windows(2) {
                assert!(w[1].1 > w[0].1);
            }
        }
        assert!((1.3..=1.7).contains(&f.tcc_cache_factor_64kb));
        let rendered = render_fig3(&f);
        assert!(rendered.contains("64KB"));
        assert!(rendered.contains("1B"));
    }

    #[test]
    fn quick_matrix_runs_and_renders() {
        let cfg = ExperimentConfig::quick();
        let matrix = run_matrix(&cfg).unwrap();
        assert_eq!(
            matrix.cells.len(),
            3,
            "three workloads at one processor count"
        );
        for cell in &matrix.cells {
            assert!(cell.comparison.ungated_cycles > 0);
            assert!(cell.comparison.gated_cycles > 0);
            assert!(cell.comparison.gated_energy > 0.0);
        }
        let f4 = render_fig4(&matrix);
        let f5 = render_fig5(&matrix);
        let f6 = render_fig6(&matrix);
        for (fig, needle) in [(&f4, "speed-up"), (&f5, "Eug"), (&f6, "Average power")] {
            assert!(fig.contains(needle), "{fig}");
        }
        let s = summary(&matrix);
        assert_eq!(s.configurations, 3);
        assert!(render_summary(&s).contains("average energy savings"));
    }

    #[test]
    fn parallel_matrix_keeps_deterministic_cell_order_and_reports_timing() {
        let cfg = ExperimentConfig::quick();
        let (matrix, timing, _) = run_matrix_timed(&cfg, EngineKind::FastForward).unwrap();
        let order: Vec<(String, usize)> = matrix
            .cells
            .iter()
            .map(|c| (c.workload.clone(), c.procs))
            .collect();
        let expected: Vec<(String, usize)> = cfg
            .workloads
            .iter()
            .flat_map(|w| cfg.processor_counts.iter().map(move |&p| (w.clone(), p)))
            .collect();
        assert_eq!(
            order, expected,
            "workload-major cell order must survive parallel execution"
        );
        assert_eq!(timing.cells.len(), matrix.cells.len());
        assert_eq!(timing.engine, "fast-forward");
        assert!(timing.threads >= 1);
        assert!(timing.total_wall_ms >= 0.0);
        assert!(timing.cells_per_sec >= 0.0);
        for (t, c) in timing.cells.iter().zip(&matrix.cells) {
            assert_eq!(
                (t.workload.as_str(), t.procs),
                (c.workload.as_str(), c.procs)
            );
        }
    }

    #[test]
    fn naive_and_fast_matrices_serialize_identically() {
        let cfg = ExperimentConfig::quick();
        let (fast, _, fast_breakdown) = run_matrix_timed(&cfg, EngineKind::FastForward).unwrap();
        let (naive, _, naive_breakdown) = run_matrix_timed(&cfg, EngineKind::Naive).unwrap();
        assert_eq!(
            crate::report::to_json(&fast),
            crate::report::to_json(&naive),
            "the two engines must produce byte-identical matrix artifacts"
        );
        assert_eq!(
            crate::report::to_json(&fast_breakdown),
            crate::report::to_json(&naive_breakdown),
            "the energy-breakdown artifact must be engine-independent"
        );
    }

    #[test]
    fn breakdown_cells_cross_check_against_the_matrix_comparisons() {
        let cfg = ExperimentConfig::quick();
        let (matrix, _, breakdown) = run_matrix_timed(&cfg, EngineKind::FastForward).unwrap();
        assert_eq!(breakdown.cells.len(), matrix.cells.len());
        for (b, m) in breakdown.cells.iter().zip(&matrix.cells) {
            assert_eq!(
                (b.workload.as_str(), b.procs),
                (m.workload.as_str(), m.procs)
            );
            // The ledger's core subset is exactly the accounting the
            // comparison report was computed from.
            assert!(
                (b.ungated.core_energy - m.comparison.ungated_energy).abs()
                    <= 1e-9 * m.comparison.ungated_energy.max(1.0),
                "{}@{}p: {} vs {}",
                b.workload,
                b.procs,
                b.ungated.core_energy,
                m.comparison.ungated_energy
            );
            assert!(
                (b.gated.core_energy - m.comparison.gated_energy).abs()
                    <= 1e-9 * m.comparison.gated_energy.max(1.0)
            );
            assert!(b.ungated.uncore_energy > 0.0);
            // The gated run pays for hardware the ungated run does not have.
            assert!(
                b.gated
                    .component_energy(htm_power::ledger::EnergyComponent::GatingControl)
                    > 0.0
            );
            assert_eq!(
                b.ungated
                    .component_energy(htm_power::ledger::EnergyComponent::GatingControl),
                0.0
            );
            assert!(b.uncore_gap_shift_percent().is_finite());
        }
        let rendered = render_energy_breakdown(&breakdown);
        assert!(rendered.contains("uncore shift"));
        assert!(rendered.contains(&breakdown.cells[0].workload));
    }

    #[test]
    fn quick_matrix_summary_is_well_formed() {
        // The `Test` scale is far too small for the headline energy averages
        // to be meaningful (see docs/REPRODUCING.md for the full-scale
        // numbers);
        // this only checks that the summary is computed consistently.
        let matrix = run_matrix(&ExperimentConfig::quick()).unwrap();
        let s = summary(&matrix);
        assert_eq!(s.configurations, matrix.cells.len());
        assert!(s.avg_energy_savings_percent.is_finite());
        assert!(s.avg_speedup_percent.is_finite());
        assert!(s.slowdown_configurations <= s.configurations);
    }

    #[test]
    fn fig7_quick_sweep_produces_rows_per_w0() {
        let cfg = ExperimentConfig::quick();
        let f = fig7(&cfg, &[2, 8, 32]).unwrap();
        assert_eq!(f.rows.len(), 3);
        assert!(f.rows.iter().all(|r| r.speedups.len() == 3));
        let rendered = render_fig7(&f);
        assert!(rendered.contains("W0"));
        assert!(rendered.contains("average"));
    }

    #[test]
    fn default_config_matches_the_paper_setup() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.processor_counts, vec![4, 8, 16]);
        assert_eq!(cfg.w0, 8);
        assert_eq!(cfg.workloads, vec!["genome", "yada", "intruder"]);
    }
}
