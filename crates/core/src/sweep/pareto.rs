//! Energy-vs-execution-time Pareto analysis of sweep records.
//!
//! Each (workload, processor-count) slice of a sweep is a cloud of points
//! in the (execution cycles, total energy) plane — one point per gating
//! mode / parameter / seed / geometry combination. The Pareto frontier of a
//! slice is the set of operating points for which no other point is at
//! least as good on both axes and strictly better on one; everything else
//! is a dominated configuration nobody should run.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use super::CellRecord;

/// One operating point of a slice: a cell projected onto the
/// (cycles, energy) trade-off plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Cell key (the full parameter identity).
    pub key: String,
    /// Gating-mode label.
    pub mode: String,
    /// Parallel execution time in cycles.
    pub cycles: u64,
    /// Total energy under the Table I model.
    pub energy: f64,
}

impl ParetoPoint {
    fn from_record(r: &CellRecord) -> Self {
        Self {
            key: r.key.clone(),
            mode: r.mode.clone(),
            cycles: r.total_cycles,
            energy: r.total_energy,
        }
    }
}

/// Pareto dominance on the (cycles, energy) plane, both minimized: `a`
/// dominates `b` iff `a` is no worse on both axes and strictly better on at
/// least one. Two coincident points do not dominate each other (both stay
/// on the frontier).
#[must_use]
pub fn dominates(a: &ParetoPoint, b: &ParetoPoint) -> bool {
    a.cycles <= b.cycles && a.energy <= b.energy && (a.cycles < b.cycles || a.energy < b.energy)
}

/// The Pareto frontier of one (workload, procs) slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceFrontier {
    /// Workload name.
    pub workload: String,
    /// Processor count.
    pub procs: usize,
    /// Number of points in the slice (frontier + dominated).
    pub cells: usize,
    /// The non-dominated points, sorted by ascending cycles (and therefore
    /// descending energy, up to coincident points); ties broken by energy,
    /// then key, so the order is fully deterministic.
    pub frontier: Vec<ParetoPoint>,
    /// Keys of the dominated points, sorted.
    pub dominated: Vec<String>,
}

/// Summary statistics of one (workload, procs) slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceSummary {
    /// Workload name.
    pub workload: String,
    /// Processor count.
    pub procs: usize,
    /// Number of points in the slice.
    pub cells: usize,
    /// Number of non-dominated points.
    pub frontier_size: usize,
    /// The fastest point (ties: lowest energy, then key).
    pub best_time: ParetoPoint,
    /// The most energy-frugal point (ties: fewest cycles, then key).
    pub best_energy: ParetoPoint,
    /// Highest / lowest energy in the slice (how much the worst
    /// configuration wastes relative to the best).
    pub energy_span: f64,
    /// Highest / lowest cycle count in the slice.
    pub cycle_span: f64,
}

fn slices(records: &[CellRecord]) -> BTreeMap<(String, usize), Vec<ParetoPoint>> {
    let mut map: BTreeMap<(String, usize), Vec<ParetoPoint>> = BTreeMap::new();
    for r in records {
        map.entry((r.workload.clone(), r.procs))
            .or_default()
            .push(ParetoPoint::from_record(r));
    }
    map
}

fn point_order(a: &ParetoPoint, b: &ParetoPoint) -> std::cmp::Ordering {
    a.cycles
        .cmp(&b.cycles)
        .then(a.energy.total_cmp(&b.energy))
        .then(a.key.cmp(&b.key))
}

/// Compute the Pareto frontier of every (workload, procs) slice, in
/// deterministic slice order (workload name, then processor count).
#[must_use]
pub fn pareto_frontiers(records: &[CellRecord]) -> Vec<SliceFrontier> {
    slices(records)
        .into_iter()
        .map(|((workload, procs), points)| {
            let mut frontier: Vec<ParetoPoint> = points
                .iter()
                .filter(|p| !points.iter().any(|q| dominates(q, p)))
                .cloned()
                .collect();
            frontier.sort_by(point_order);
            let mut dominated: Vec<String> = points
                .iter()
                .filter(|p| points.iter().any(|q| dominates(q, p)))
                .map(|p| p.key.clone())
                .collect();
            dominated.sort();
            SliceFrontier {
                workload,
                procs,
                cells: points.len(),
                frontier,
                dominated,
            }
        })
        .collect()
}

/// Summarize every (workload, procs) slice, in the same deterministic slice
/// order as [`pareto_frontiers`].
#[must_use]
pub fn summarize_slices(records: &[CellRecord]) -> Vec<SliceSummary> {
    slices(records)
        .into_iter()
        .map(|((workload, procs), mut points)| {
            points.sort_by(point_order);
            let frontier_size = points
                .iter()
                .filter(|p| !points.iter().any(|q| dominates(q, p)))
                .count();
            let best_time = points[0].clone();
            let best_energy = points
                .iter()
                .min_by(|a, b| {
                    a.energy
                        .total_cmp(&b.energy)
                        .then(a.cycles.cmp(&b.cycles))
                        .then(a.key.cmp(&b.key))
                })
                .expect("slice is non-empty by construction")
                .clone();
            let min_energy = best_energy.energy;
            let max_energy = points
                .iter()
                .map(|p| p.energy)
                .fold(f64::NEG_INFINITY, f64::max);
            let min_cycles = points[0].cycles;
            let max_cycles = points.iter().map(|p| p.cycles).max().unwrap_or(0);
            SliceSummary {
                workload,
                procs,
                cells: points.len(),
                frontier_size,
                best_time,
                best_energy,
                energy_span: if min_energy > 0.0 {
                    max_energy / min_energy
                } else {
                    1.0
                },
                cycle_span: if min_cycles > 0 {
                    max_cycles as f64 / min_cycles as f64
                } else {
                    1.0
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, procs: usize, key: &str, cycles: u64, energy: f64) -> CellRecord {
        CellRecord {
            key: key.to_string(),
            workload: workload.to_string(),
            procs,
            l1_kb: 64,
            l1_assoc: 2,
            scale: "test".to_string(),
            seed: 1,
            mode: format!("mode-{key}"),
            total_cycles: cycles,
            total_energy: energy,
            average_power: energy / cycles.max(1) as f64,
            commits: 10,
            aborts: 2,
            abort_rate: 0.2,
            gatings: 1,
            gated_cycles: 5,
        }
    }

    #[test]
    fn dominance_definition() {
        let p = |cycles, energy| ParetoPoint {
            key: "k".into(),
            mode: "m".into(),
            cycles,
            energy,
        };
        assert!(dominates(&p(10, 5.0), &p(11, 6.0)), "better on both");
        assert!(
            dominates(&p(10, 5.0), &p(10, 6.0)),
            "equal time, less energy"
        );
        assert!(dominates(&p(9, 5.0), &p(10, 5.0)), "equal energy, faster");
        assert!(!dominates(&p(10, 5.0), &p(10, 5.0)), "coincident points");
        assert!(
            !dominates(&p(9, 6.0), &p(10, 5.0)),
            "trade-off: neither wins"
        );
        assert!(!dominates(&p(11, 6.0), &p(10, 5.0)), "worse on both");
    }

    #[test]
    fn frontier_keeps_only_non_dominated_points_in_cycle_order() {
        let records = vec![
            record("w", 4, "slow-frugal", 100, 10.0),
            record("w", 4, "fast-hungry", 50, 30.0),
            record("w", 4, "dominated", 120, 20.0),
            record("w", 4, "mid", 70, 15.0),
        ];
        let frontiers = pareto_frontiers(&records);
        assert_eq!(frontiers.len(), 1);
        let f = &frontiers[0];
        assert_eq!(f.cells, 4);
        let keys: Vec<&str> = f.frontier.iter().map(|p| p.key.as_str()).collect();
        assert_eq!(
            keys,
            vec!["fast-hungry", "mid", "slow-frugal"],
            "frontier sorted by ascending cycles"
        );
        assert_eq!(f.dominated, vec!["dominated"]);
        // Energy decreases along the frontier as cycles increase.
        for w in f.frontier.windows(2) {
            assert!(w[0].cycles < w[1].cycles && w[0].energy > w[1].energy);
        }
    }

    #[test]
    fn coincident_points_both_stay_on_the_frontier() {
        let records = vec![
            record("w", 4, "a", 100, 10.0),
            record("w", 4, "b", 100, 10.0),
        ];
        let f = &pareto_frontiers(&records)[0];
        assert_eq!(f.frontier.len(), 2);
        assert_eq!(f.frontier[0].key, "a", "ties broken by key");
        assert!(f.dominated.is_empty());
    }

    #[test]
    fn slices_are_grouped_and_ordered_deterministically() {
        let records = vec![
            record("zeta", 4, "z4", 10, 1.0),
            record("alpha", 8, "a8", 10, 1.0),
            record("alpha", 4, "a4", 10, 1.0),
        ];
        let order: Vec<(String, usize)> = pareto_frontiers(&records)
            .iter()
            .map(|f| (f.workload.clone(), f.procs))
            .collect();
        assert_eq!(
            order,
            vec![
                ("alpha".to_string(), 4),
                ("alpha".to_string(), 8),
                ("zeta".to_string(), 4)
            ]
        );
    }

    #[test]
    fn summary_reports_best_points_and_spans() {
        let records = vec![
            record("w", 4, "fast", 50, 30.0),
            record("w", 4, "frugal", 100, 10.0),
            record("w", 4, "bad", 200, 40.0),
        ];
        let s = &summarize_slices(&records)[0];
        assert_eq!(s.cells, 3);
        assert_eq!(s.frontier_size, 2);
        assert_eq!(s.best_time.key, "fast");
        assert_eq!(s.best_energy.key, "frugal");
        assert!((s.energy_span - 4.0).abs() < 1e-12);
        assert!((s.cycle_span - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_records_produce_no_slices() {
        assert!(pareto_frontiers(&[]).is_empty());
        assert!(summarize_slices(&[]).is_empty());
    }
}
