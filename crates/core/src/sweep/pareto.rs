//! Pareto analysis of sweep records under a selectable objective.
//!
//! Each (workload, processor-count) slice of a sweep is a cloud of points
//! in the (execution cycles, objective) plane — one point per gating
//! mode / parameter / seed / geometry combination. The Pareto frontier of a
//! slice is the set of operating points for which no other point is at
//! least as good on both axes and strictly better on one; everything else
//! is a dominated configuration nobody should run.
//!
//! The objective axis is selectable ([`SweepObjective`]): raw energy (the
//! historical default), the energy-delay product or the
//! energy-delay-squared product. All three objectives are evaluated on the
//! *same* energy measure — the Table I (core) energy every record carries —
//! so dominance relations nest: because `EDP = E·N` folds the time axis
//! into the objective, an energy-dominated point is always EDP-dominated
//! but not vice versa, and the EDP frontier is a (usually strict) subset
//! of the energy frontier — exactly the concurrency-cost lens the
//! delay-weighted objectives exist for. (Mixing accountings — e.g. core
//! energy on one objective, the uncore-included ledger total on another —
//! would silently break that subset property; the records still report the
//! ledger-total `edp`/`ed2p` for analysis.)

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use super::CellRecord;

/// The metric minimized on the second axis of the Pareto analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SweepObjective {
    /// Total energy under the Table I model (the paper's accounting; the
    /// historical frontier).
    #[default]
    Energy,
    /// Energy-delay product `E·N` of the same Table I energy.
    Edp,
    /// Energy-delay-squared product `E·N²`.
    Ed2p,
}

impl SweepObjective {
    /// Stable label used in artifacts and the `--objective` flag.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SweepObjective::Energy => "energy",
            SweepObjective::Edp => "edp",
            SweepObjective::Ed2p => "ed2p",
        }
    }

    /// Parse an `--objective` flag value.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "energy" => Some(SweepObjective::Energy),
            "edp" => Some(SweepObjective::Edp),
            "ed2p" => Some(SweepObjective::Ed2p),
            _ => None,
        }
    }

    /// Evaluate the objective on a record. Every objective multiplies the
    /// same Table I energy by a power of the cycle count, so that
    /// energy-dominance implies EDP-dominance implies ED²P-dominance (the
    /// nesting the module docs rely on); the record's ledger-total
    /// `edp`/`ed2p` fields charge the uncore as well and exist for
    /// reporting, not for the frontier.
    #[must_use]
    pub fn metric(self, r: &CellRecord) -> f64 {
        let n = r.total_cycles as f64;
        match self {
            SweepObjective::Energy => r.total_energy,
            SweepObjective::Edp => r.total_energy * n,
            SweepObjective::Ed2p => r.total_energy * n * n,
        }
    }
}

/// One operating point of a slice: a cell projected onto the
/// (cycles, objective) trade-off plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Cell key (the full parameter identity).
    pub key: String,
    /// Gating-mode label.
    pub mode: String,
    /// Parallel execution time in cycles.
    pub cycles: u64,
    /// Total energy under the Table I model (always carried, whatever the
    /// objective).
    pub energy: f64,
    /// Value of the selected objective (equals `energy` for the raw-energy
    /// objective).
    pub objective_value: f64,
}

impl ParetoPoint {
    fn from_record(r: &CellRecord, objective: SweepObjective) -> Self {
        Self {
            key: r.key.clone(),
            mode: r.mode.clone(),
            cycles: r.total_cycles,
            energy: r.total_energy,
            objective_value: objective.metric(r),
        }
    }
}

/// Pareto dominance on the (cycles, objective) plane, both minimized: `a`
/// dominates `b` iff `a` is no worse on both axes and strictly better on at
/// least one. Two coincident points do not dominate each other (both stay
/// on the frontier).
#[must_use]
pub fn dominates(a: &ParetoPoint, b: &ParetoPoint) -> bool {
    a.cycles <= b.cycles
        && a.objective_value <= b.objective_value
        && (a.cycles < b.cycles || a.objective_value < b.objective_value)
}

/// The Pareto frontier of one (workload, procs) slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceFrontier {
    /// Workload name.
    pub workload: String,
    /// Processor count.
    pub procs: usize,
    /// Number of points in the slice (frontier + dominated).
    pub cells: usize,
    /// The non-dominated points, sorted by ascending cycles (and therefore
    /// descending energy, up to coincident points); ties broken by energy,
    /// then key, so the order is fully deterministic.
    pub frontier: Vec<ParetoPoint>,
    /// Keys of the dominated points, sorted.
    pub dominated: Vec<String>,
}

/// Summary statistics of one (workload, procs) slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceSummary {
    /// Workload name.
    pub workload: String,
    /// Processor count.
    pub procs: usize,
    /// Number of points in the slice.
    pub cells: usize,
    /// Number of non-dominated points.
    pub frontier_size: usize,
    /// The fastest point (ties: lowest energy, then key).
    pub best_time: ParetoPoint,
    /// The most energy-frugal point (ties: fewest cycles, then key).
    pub best_energy: ParetoPoint,
    /// Highest / lowest energy in the slice (how much the worst
    /// configuration wastes relative to the best).
    pub energy_span: f64,
    /// Highest / lowest cycle count in the slice.
    pub cycle_span: f64,
}

fn slices(
    records: &[CellRecord],
    objective: SweepObjective,
) -> BTreeMap<(String, usize), Vec<ParetoPoint>> {
    let mut map: BTreeMap<(String, usize), Vec<ParetoPoint>> = BTreeMap::new();
    for r in records {
        map.entry((r.workload.clone(), r.procs))
            .or_default()
            .push(ParetoPoint::from_record(r, objective));
    }
    map
}

fn point_order(a: &ParetoPoint, b: &ParetoPoint) -> std::cmp::Ordering {
    a.cycles
        .cmp(&b.cycles)
        .then(a.objective_value.total_cmp(&b.objective_value))
        .then(a.key.cmp(&b.key))
}

/// Compute the Pareto frontier of every (workload, procs) slice under the
/// raw-energy objective (the historical default).
#[must_use]
pub fn pareto_frontiers(records: &[CellRecord]) -> Vec<SliceFrontier> {
    pareto_frontiers_with(records, SweepObjective::Energy)
}

/// Compute the Pareto frontier of every (workload, procs) slice under the
/// chosen objective, in deterministic slice order (workload name, then
/// processor count).
#[must_use]
pub fn pareto_frontiers_with(
    records: &[CellRecord],
    objective: SweepObjective,
) -> Vec<SliceFrontier> {
    slices(records, objective)
        .into_iter()
        .map(|((workload, procs), points)| {
            // Degenerate-cell guard: a non-finite objective (NaN compares
            // false both ways, ±∞ from overflowing delay products) would
            // neither dominate nor be dominated and therefore sit on the
            // frontier forever. Such cells are excluded from frontier
            // membership and reported as dominated instead.
            let poisoned = |p: &ParetoPoint| !p.objective_value.is_finite();
            // A poisoned point can neither stay on the frontier nor knock a
            // real point off it (a −∞ artifact would otherwise wipe the
            // whole slice).
            let beaten = |p: &ParetoPoint| points.iter().any(|q| !poisoned(q) && dominates(q, p));
            let mut frontier: Vec<ParetoPoint> = points
                .iter()
                .filter(|p| !poisoned(p) && !beaten(p))
                .cloned()
                .collect();
            frontier.sort_by(point_order);
            let mut dominated: Vec<String> = points
                .iter()
                .filter(|p| poisoned(p) || beaten(p))
                .map(|p| p.key.clone())
                .collect();
            dominated.sort();
            SliceFrontier {
                workload,
                procs,
                cells: points.len(),
                frontier,
                dominated,
            }
        })
        .collect()
}

/// Summarize every (workload, procs) slice, in the same deterministic slice
/// order as [`pareto_frontiers`]. The summary always uses the raw-energy
/// axis (it reports spans of the measured quantities, not of an objective).
#[must_use]
pub fn summarize_slices(records: &[CellRecord]) -> Vec<SliceSummary> {
    slices(records, SweepObjective::Energy)
        .into_iter()
        .map(|((workload, procs), mut points)| {
            points.sort_by(point_order);
            let frontier_size = points
                .iter()
                .filter(|p| !points.iter().any(|q| dominates(q, p)))
                .count();
            let best_time = points[0].clone();
            let best_energy = points
                .iter()
                .min_by(|a, b| {
                    a.energy
                        .total_cmp(&b.energy)
                        .then(a.cycles.cmp(&b.cycles))
                        .then(a.key.cmp(&b.key))
                })
                .expect("slice is non-empty by construction")
                .clone();
            let min_energy = best_energy.energy;
            let max_energy = points
                .iter()
                .map(|p| p.energy)
                .fold(f64::NEG_INFINITY, f64::max);
            let min_cycles = points[0].cycles;
            let max_cycles = points.iter().map(|p| p.cycles).max().unwrap_or(0);
            SliceSummary {
                workload,
                procs,
                cells: points.len(),
                frontier_size,
                best_time,
                best_energy,
                energy_span: if min_energy > 0.0 {
                    max_energy / min_energy
                } else {
                    1.0
                },
                cycle_span: if min_cycles > 0 {
                    max_cycles as f64 / min_cycles as f64
                } else {
                    1.0
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, procs: usize, key: &str, cycles: u64, energy: f64) -> CellRecord {
        let n = cycles as f64;
        CellRecord {
            schema: super::super::SCHEMA_VERSION,
            key: key.to_string(),
            workload: workload.to_string(),
            procs,
            l1_kb: 64,
            l1_assoc: 2,
            leakage_percent: 20,
            scale: "test".to_string(),
            seed: 1,
            mode: format!("mode-{key}"),
            total_cycles: cycles,
            total_energy: energy,
            average_power: energy / cycles.max(1) as f64,
            commits: 10,
            aborts: 2,
            abort_rate: 0.2,
            gatings: 1,
            gated_cycles: 5,
            energy_core_pipeline: energy,
            energy_clock_tree: 0.0,
            energy_l1_data_array: 0.0,
            energy_l1_instr_array: 0.0,
            energy_io_interface: 0.0,
            energy_pll: 0.0,
            energy_directory_sram: 0.0,
            energy_interconnect: 0.0,
            energy_gating_control: 0.0,
            uncore_energy: 0.0,
            total_energy_with_uncore: energy,
            edp: energy * n,
            ed2p: energy * n * n,
            energy_per_commit: energy / 10.0,
        }
    }

    #[test]
    fn dominance_definition() {
        let p = |cycles, energy: f64| ParetoPoint {
            key: "k".into(),
            mode: "m".into(),
            cycles,
            energy,
            objective_value: energy,
        };
        assert!(dominates(&p(10, 5.0), &p(11, 6.0)), "better on both");
        assert!(
            dominates(&p(10, 5.0), &p(10, 6.0)),
            "equal time, less energy"
        );
        assert!(dominates(&p(9, 5.0), &p(10, 5.0)), "equal energy, faster");
        assert!(!dominates(&p(10, 5.0), &p(10, 5.0)), "coincident points");
        assert!(
            !dominates(&p(9, 6.0), &p(10, 5.0)),
            "trade-off: neither wins"
        );
        assert!(!dominates(&p(11, 6.0), &p(10, 5.0)), "worse on both");
    }

    #[test]
    fn frontier_keeps_only_non_dominated_points_in_cycle_order() {
        let records = vec![
            record("w", 4, "slow-frugal", 100, 10.0),
            record("w", 4, "fast-hungry", 50, 30.0),
            record("w", 4, "dominated", 120, 20.0),
            record("w", 4, "mid", 70, 15.0),
        ];
        let frontiers = pareto_frontiers(&records);
        assert_eq!(frontiers.len(), 1);
        let f = &frontiers[0];
        assert_eq!(f.cells, 4);
        let keys: Vec<&str> = f.frontier.iter().map(|p| p.key.as_str()).collect();
        assert_eq!(
            keys,
            vec!["fast-hungry", "mid", "slow-frugal"],
            "frontier sorted by ascending cycles"
        );
        assert_eq!(f.dominated, vec!["dominated"]);
        // Energy decreases along the frontier as cycles increase.
        for w in f.frontier.windows(2) {
            assert!(w[0].cycles < w[1].cycles && w[0].energy > w[1].energy);
        }
    }

    #[test]
    fn coincident_points_both_stay_on_the_frontier() {
        let records = vec![
            record("w", 4, "a", 100, 10.0),
            record("w", 4, "b", 100, 10.0),
        ];
        let f = &pareto_frontiers(&records)[0];
        assert_eq!(f.frontier.len(), 2);
        assert_eq!(f.frontier[0].key, "a", "ties broken by key");
        assert!(f.dominated.is_empty());
    }

    #[test]
    fn slices_are_grouped_and_ordered_deterministically() {
        let records = vec![
            record("zeta", 4, "z4", 10, 1.0),
            record("alpha", 8, "a8", 10, 1.0),
            record("alpha", 4, "a4", 10, 1.0),
        ];
        let order: Vec<(String, usize)> = pareto_frontiers(&records)
            .iter()
            .map(|f| (f.workload.clone(), f.procs))
            .collect();
        assert_eq!(
            order,
            vec![
                ("alpha".to_string(), 4),
                ("alpha".to_string(), 8),
                ("zeta".to_string(), 4)
            ]
        );
    }

    #[test]
    fn summary_reports_best_points_and_spans() {
        let records = vec![
            record("w", 4, "fast", 50, 30.0),
            record("w", 4, "frugal", 100, 10.0),
            record("w", 4, "bad", 200, 40.0),
        ];
        let s = &summarize_slices(&records)[0];
        assert_eq!(s.cells, 3);
        assert_eq!(s.frontier_size, 2);
        assert_eq!(s.best_time.key, "fast");
        assert_eq!(s.best_energy.key, "frugal");
        assert!((s.energy_span - 4.0).abs() < 1e-12);
        assert!((s.cycle_span - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_records_produce_no_slices() {
        assert!(pareto_frontiers(&[]).is_empty());
        assert!(summarize_slices(&[]).is_empty());
    }

    #[test]
    fn non_finite_objectives_cannot_poison_the_frontier() {
        // A NaN point neither dominates nor is dominated under total_cmp
        // semantics, so without the guard it would survive on the frontier.
        let mut nan_cell = record("w", 4, "nan-cell", 60, f64::NAN);
        nan_cell.total_energy = f64::NAN;
        let mut inf_cell = record("w", 4, "inf-cell", 55, f64::INFINITY);
        inf_cell.total_energy = f64::INFINITY;
        let records = vec![
            record("w", 4, "good-fast", 50, 30.0),
            record("w", 4, "good-frugal", 100, 10.0),
            nan_cell,
            inf_cell,
        ];
        for objective in [
            SweepObjective::Energy,
            SweepObjective::Edp,
            SweepObjective::Ed2p,
        ] {
            let f = &pareto_frontiers_with(&records, objective)[0];
            assert!(!f.frontier.is_empty(), "{objective:?}");
            assert!(f.frontier.iter().all(|p| p.objective_value.is_finite()));
            for poisoned in ["nan-cell", "inf-cell"] {
                assert!(
                    f.dominated.iter().any(|k| k == poisoned),
                    "{objective:?}: {poisoned} must be reported as dominated"
                );
            }
            assert_eq!(f.cells, 4, "poisoned cells still counted in the slice");
        }
        // Under the raw-energy objective the two honest points trade off.
        let energy = &pareto_frontiers_with(&records, SweepObjective::Energy)[0];
        let keys: Vec<&str> = energy.frontier.iter().map(|p| p.key.as_str()).collect();
        assert_eq!(keys, vec!["good-fast", "good-frugal"]);
        assert_eq!(energy.dominated, vec!["inf-cell", "nan-cell"]);
    }

    #[test]
    fn negative_infinity_artifact_cannot_wipe_the_slice() {
        // A −∞ objective would dominate every real point; the guard must
        // keep it from emptying the frontier.
        let mut rogue = record("w", 4, "rogue", 10, f64::NEG_INFINITY);
        rogue.total_energy = f64::NEG_INFINITY;
        let records = vec![record("w", 4, "honest", 50, 30.0), rogue];
        let f = &pareto_frontiers(&records)[0];
        let keys: Vec<&str> = f.frontier.iter().map(|p| p.key.as_str()).collect();
        assert_eq!(keys, vec!["honest"]);
        assert_eq!(f.dominated, vec!["rogue"]);
    }

    #[test]
    fn objective_labels_parse_and_round_trip() {
        for o in [
            SweepObjective::Energy,
            SweepObjective::Edp,
            SweepObjective::Ed2p,
        ] {
            assert_eq!(SweepObjective::parse(o.label()), Some(o));
        }
        assert_eq!(SweepObjective::parse("nope"), None);
        assert_eq!(SweepObjective::default(), SweepObjective::Energy);
    }

    #[test]
    fn edp_objective_shrinks_the_frontier_to_a_strict_subset() {
        // Classic trade-off: a fast-but-hungry point, a slow-but-frugal
        // point, and a middle point. Under raw energy all three are
        // non-dominated; under EDP the slow-frugal point loses because the
        // fast point's E·N is smaller despite its higher energy.
        //   fast:   N=50,  E=30  -> EDP 1500
        //   mid:    N=70,  E=15  -> EDP 1050
        //   frugal: N=200, E=10  -> EDP 2000 (dominated by both on EDP)
        let records = vec![
            record("w", 4, "fast", 50, 30.0),
            record("w", 4, "mid", 70, 15.0),
            record("w", 4, "frugal", 200, 10.0),
        ];
        let energy = &pareto_frontiers_with(&records, SweepObjective::Energy)[0];
        let edp = &pareto_frontiers_with(&records, SweepObjective::Edp)[0];
        assert_eq!(energy.frontier.len(), 3, "all three trade off on energy");
        let edp_keys: Vec<&str> = edp.frontier.iter().map(|p| p.key.as_str()).collect();
        assert_eq!(edp_keys, vec!["fast", "mid"]);
        assert_eq!(edp.dominated, vec!["frugal"]);
        // Every EDP-frontier point is also on the energy frontier (the
        // subset property the module docs state).
        for p in &edp.frontier {
            assert!(energy.frontier.iter().any(|q| q.key == p.key));
        }
        // The objective value is the EDP, while the energy field still
        // carries the raw energy for reporting.
        let fast = &edp.frontier[0];
        assert!((fast.objective_value - 1500.0).abs() < 1e-9);
        assert!((fast.energy - 30.0).abs() < 1e-12);
    }

    #[test]
    fn ed2p_objective_weights_delay_harder_than_edp() {
        // fast: N=50, E=24 -> EDP 1200, ED2P 60_000;
        // mid:  N=70, E=15 -> EDP 1050, ED2P 73_500.
        // Under EDP `mid` is the better point; under ED²P the extra delay
        // weighting flips the ordering toward the faster point.
        let records = vec![
            record("w", 4, "fast", 50, 24.0),
            record("w", 4, "mid", 70, 15.0),
        ];
        let edp = &pareto_frontiers_with(&records, SweepObjective::Edp)[0];
        let ed2p = &pareto_frontiers_with(&records, SweepObjective::Ed2p)[0];
        // Under EDP the two points trade off (fast has fewer cycles, mid a
        // lower EDP); under ED²P the faster point wins on both axes and the
        // slower one drops off the frontier entirely.
        assert_eq!(edp.frontier.len(), 2);
        assert_eq!(ed2p.frontier.len(), 1);
        assert_eq!(ed2p.frontier[0].key, "fast");
        assert_eq!(ed2p.dominated, vec!["mid"]);
        let r_fast = &records[0];
        let r_mid = &records[1];
        assert!(SweepObjective::Edp.metric(r_fast) > SweepObjective::Edp.metric(r_mid));
        assert!(SweepObjective::Ed2p.metric(r_fast) < SweepObjective::Ed2p.metric(r_mid));
    }
}
