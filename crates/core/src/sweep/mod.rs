//! Sensitivity-sweep subsystem: Cartesian parameter grids, a resumable
//! parallel runner and Pareto-frontier reporting.
//!
//! The paper evaluates clock-gate-on-abort at a single operating point
//! (`W0 = 8`, three applications, three processor counts). This module turns
//! that single point into an explorable surface:
//!
//! * [`grid`] — [`grid::SweepGrid`] describes a Cartesian grid over gating
//!   mode (with `W0` / back-off parameters), processor count, workload,
//!   scale, seed, L1 cache geometry and the power model's leakage-share
//!   (technology-node) axis, and expands it into a deterministic list of
//!   [`grid::SweepCell`]s, each with a stable string key,
//! * [`runner`] — [`runner::run_sweep`] executes the cells across all cores
//!   (same `std::thread::scope` pattern as the evaluation matrix), streams
//!   one compact JSON record per cell to a `sweep.jsonl` artifact in
//!   deterministic cell order, and skips already-recorded cells when resumed
//!   (old-schema files are rejected with
//!   [`runner::SweepError::SchemaMismatch`]),
//! * [`pareto`] — post-processes the records into per-(workload, procs)
//!   Pareto frontiers under a selectable objective
//!   ([`pareto::SweepObjective`]: raw energy, EDP or ED²P) plus summary
//!   tables.
//!
//! Each record carries the component-resolved energy ledger of its cell
//! (core taxonomy + uncore charges + derived EDP/ED²P/energy-per-commit),
//! and the runner additionally writes an `energy_breakdown.json` artifact
//! assembling the per-component energies of every cell.
//!
//! Determinism contract: for a given grid, two sweep runs (on either
//! stepping engine) produce byte-identical `sweep.jsonl`, `pareto.json`,
//! `sweep_summary.json` and `energy_breakdown.json` artifacts. CI enforces
//! this on the smoke grid under both the energy and EDP objectives.
//!
//! ```
//! use clockgate_htm::sweep::{pareto_frontiers, SweepGrid};
//!
//! let grid = SweepGrid::smoke();
//! let cells = grid.expand();
//! assert!(!cells.is_empty());
//! // Keys are unique and stable — they are the resume / dedup identity.
//! let keys: std::collections::BTreeSet<_> = cells.iter().map(|c| c.key()).collect();
//! assert_eq!(keys.len(), cells.len());
//! # let _ = pareto_frontiers(&[]);
//! ```

use serde::{Deserialize, Serialize};

use crate::sim::SimReport;

pub mod grid;
pub mod pareto;
pub mod runner;

pub use grid::{CacheGeometry, GatingAxis, ModeKind, SweepCell, SweepGrid};
pub use pareto::{
    dominates, pareto_frontiers, pareto_frontiers_with, summarize_slices, ParetoPoint,
    SliceFrontier, SliceSummary, SweepObjective,
};
pub use runner::{
    replay_cell_to, run_sweep, run_sweep_ckpt, run_sweep_ckpt_traced, run_sweep_on, run_sweep_with,
    SweepCheckpoint, SweepError, SweepOutcome, TraceWorkload,
};

/// Version of the [`CellRecord`] layout written to `sweep.jsonl`. Version 2
/// added the component-resolved ledger fields (per-component energies,
/// uncore total, EDP/ED²P, energy per commit) and the leakage axis; resumes
/// against files written by other versions are rejected with a clear
/// [`runner::SweepError`] instead of silently diverging.
pub const SCHEMA_VERSION: u32 = 2;

/// One line of the `sweep.jsonl` artifact: the result of simulating a single
/// [`SweepCell`].
///
/// The record deliberately contains no wall-clock timing and no engine
/// label, so that the artifact is byte-identical across machines, runs and
/// stepping engines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Record-layout version ([`SCHEMA_VERSION`]) — the resume gate.
    pub schema: u32,
    /// The cell's stable key ([`SweepCell::key`]) — the resume identity.
    pub key: String,
    /// Workload name.
    pub workload: String,
    /// Processor count.
    pub procs: usize,
    /// L1 capacity in KiB.
    pub l1_kb: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// Leakage share of the power model, in percent (the paper uses 20).
    pub leakage_percent: u32,
    /// Workload scale label (`test` / `small` / `full`).
    pub scale: String,
    /// Workload generation seed.
    pub seed: u64,
    /// Gating-mode label (e.g. `clock-gate(W0=8)`).
    pub mode: String,
    /// Parallel execution time in cycles.
    pub total_cycles: u64,
    /// Total energy under the Table I power model (core subset only — the
    /// paper's accounting).
    pub total_energy: f64,
    /// Average power (fraction of one processor's run power).
    pub average_power: f64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transaction attempts.
    pub aborts: u64,
    /// Aborts per commit.
    pub abort_rate: f64,
    /// "Stop Clock" events observed by the processors.
    pub gatings: u64,
    /// Total processor-cycles spent clock-gated.
    pub gated_cycles: u64,
    /// Ledger: core-pipeline energy.
    pub energy_core_pipeline: f64,
    /// Ledger: clock-tree energy.
    pub energy_clock_tree: f64,
    /// Ledger: TCC-augmented L1 data-array energy.
    pub energy_l1_data_array: f64,
    /// Ledger: L1 instruction-array energy.
    pub energy_l1_instr_array: f64,
    /// Ledger: I/O-interface energy.
    pub energy_io_interface: f64,
    /// Ledger: PLL energy.
    pub energy_pll: f64,
    /// Ledger (uncore): directory SRAM energy.
    pub energy_directory_sram: f64,
    /// Ledger (uncore): interconnect flit energy.
    pub energy_interconnect: f64,
    /// Ledger (uncore): gating tables/timers + `TxInfoReq` energy.
    pub energy_gating_control: f64,
    /// Ledger: uncore total (the three uncore components).
    pub uncore_energy: f64,
    /// Ledger: grand total (core + uncore).
    pub total_energy_with_uncore: f64,
    /// Energy-delay product of the ledger total (`E·N`).
    pub edp: f64,
    /// Energy-delay-squared product (`E·N²`).
    pub ed2p: f64,
    /// Ledger total per committed transaction.
    pub energy_per_commit: f64,
}

impl CellRecord {
    /// Build the record for `cell` from a finished simulation report.
    #[must_use]
    pub fn from_report(cell: &SweepCell, report: &SimReport) -> Self {
        use htm_power::ledger::EnergyComponent as C;
        let ledger = &report.ledger;
        Self {
            schema: SCHEMA_VERSION,
            key: cell.key(),
            workload: cell.workload.clone(),
            procs: cell.procs,
            l1_kb: cell.geometry.l1_kb,
            l1_assoc: cell.geometry.l1_assoc,
            leakage_percent: cell.leakage_percent,
            scale: cell.scale.label().to_string(),
            seed: cell.seed,
            mode: report.mode_label.clone(),
            total_cycles: report.outcome.total_cycles,
            total_energy: report.energy.total_energy,
            average_power: report.energy.average_power,
            commits: report.outcome.total_commits,
            aborts: report.outcome.total_aborts,
            abort_rate: report.outcome.abort_rate(),
            gatings: report.outcome.total_gatings,
            gated_cycles: report.outcome.total_gated_cycles(),
            energy_core_pipeline: ledger.component_energy(C::CorePipeline),
            energy_clock_tree: ledger.component_energy(C::ClockTree),
            energy_l1_data_array: ledger.component_energy(C::L1DataArray),
            energy_l1_instr_array: ledger.component_energy(C::L1InstrArray),
            energy_io_interface: ledger.component_energy(C::IoInterface),
            energy_pll: ledger.component_energy(C::Pll),
            energy_directory_sram: ledger.component_energy(C::DirectorySram),
            energy_interconnect: ledger.component_energy(C::Interconnect),
            energy_gating_control: ledger.component_energy(C::GatingControl),
            uncore_energy: ledger.uncore_energy,
            total_energy_with_uncore: ledger.total_energy,
            edp: ledger.edp,
            ed2p: ledger.ed2p,
            energy_per_commit: ledger.energy_per_commit,
        }
    }

    /// The record's core-component energies in
    /// [`htm_power::ledger::CORE_COMPONENTS`] order.
    #[must_use]
    pub fn core_component_energies(&self) -> [f64; 6] {
        [
            self.energy_core_pipeline,
            self.energy_clock_tree,
            self.energy_l1_data_array,
            self.energy_l1_instr_array,
            self.energy_io_interface,
            self.energy_pll,
        ]
    }

    /// The record's uncore-component energies in
    /// [`htm_power::ledger::UNCORE_COMPONENTS`] order.
    #[must_use]
    pub fn uncore_component_energies(&self) -> [f64; 3] {
        [
            self.energy_directory_sram,
            self.energy_interconnect,
            self.energy_gating_control,
        ]
    }

    /// Rebuild a record from one parsed `sweep.jsonl` line (the resume
    /// path). Returns a description of the first missing/mistyped field.
    /// Callers gate on the `schema` field first (see
    /// [`runner::SweepError::SchemaMismatch`]) so a pre-ledger file fails
    /// with the version story, not a puzzling missing-field message.
    pub fn from_value(v: &serde::Value) -> Result<Self, String> {
        fn str_field(v: &serde::Value, name: &str) -> Result<String, String> {
            v.get(name)
                .and_then(|f| f.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field `{name}`"))
        }
        fn u64_field(v: &serde::Value, name: &str) -> Result<u64, String> {
            v.get(name)
                .and_then(serde::Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer field `{name}`"))
        }
        fn f64_field(v: &serde::Value, name: &str) -> Result<f64, String> {
            v.get(name)
                .and_then(serde::Value::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field `{name}`"))
        }
        Ok(Self {
            schema: u64_field(v, "schema")? as u32,
            key: str_field(v, "key")?,
            workload: str_field(v, "workload")?,
            procs: u64_field(v, "procs")? as usize,
            l1_kb: u64_field(v, "l1_kb")? as usize,
            l1_assoc: u64_field(v, "l1_assoc")? as usize,
            leakage_percent: u64_field(v, "leakage_percent")? as u32,
            scale: str_field(v, "scale")?,
            seed: u64_field(v, "seed")?,
            mode: str_field(v, "mode")?,
            total_cycles: u64_field(v, "total_cycles")?,
            total_energy: f64_field(v, "total_energy")?,
            average_power: f64_field(v, "average_power")?,
            commits: u64_field(v, "commits")?,
            aborts: u64_field(v, "aborts")?,
            abort_rate: f64_field(v, "abort_rate")?,
            gatings: u64_field(v, "gatings")?,
            gated_cycles: u64_field(v, "gated_cycles")?,
            energy_core_pipeline: f64_field(v, "energy_core_pipeline")?,
            energy_clock_tree: f64_field(v, "energy_clock_tree")?,
            energy_l1_data_array: f64_field(v, "energy_l1_data_array")?,
            energy_l1_instr_array: f64_field(v, "energy_l1_instr_array")?,
            energy_io_interface: f64_field(v, "energy_io_interface")?,
            energy_pll: f64_field(v, "energy_pll")?,
            energy_directory_sram: f64_field(v, "energy_directory_sram")?,
            energy_interconnect: f64_field(v, "energy_interconnect")?,
            energy_gating_control: f64_field(v, "energy_gating_control")?,
            uncore_energy: f64_field(v, "uncore_energy")?,
            total_energy_with_uncore: f64_field(v, "total_energy_with_uncore")?,
            edp: f64_field(v, "edp")?,
            ed2p: f64_field(v, "ed2p")?,
            energy_per_commit: f64_field(v, "energy_per_commit")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{EngineKind, GatingMode, SimulationBuilder};
    use htm_workloads::WorkloadScale;

    #[test]
    fn record_round_trips_through_jsonl_encoding() {
        let cell = SweepCell {
            workload: "intruder".into(),
            procs: 4,
            geometry: CacheGeometry::default(),
            leakage_percent: 20,
            scale: WorkloadScale::Test,
            seed: 7,
            mode: GatingMode::ClockGate { w0: 8 },
            cycle_limit: 20_000_000,
        };
        let report = SimulationBuilder::new()
            .processors(4)
            .workload_by_name("intruder", WorkloadScale::Test, 7)
            .unwrap()
            .gating(GatingMode::ClockGate { w0: 8 })
            .run()
            .unwrap();
        let record = CellRecord::from_report(&cell, &report);
        let line = crate::report::to_json_compact(&record);
        let parsed = CellRecord::from_value(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(parsed, record, "JSONL encode/parse must be lossless");
        assert_eq!(record.schema, SCHEMA_VERSION);
    }

    #[test]
    fn record_component_energies_sum_to_the_ledger_totals() {
        let cell = SweepCell {
            workload: "genome".into(),
            procs: 4,
            geometry: CacheGeometry::default(),
            leakage_percent: 20,
            scale: WorkloadScale::Test,
            seed: 3,
            mode: GatingMode::ClockGate { w0: 8 },
            cycle_limit: 20_000_000,
        };
        let record = crate::sweep::runner::run_cell(&cell, EngineKind::FastForward).unwrap();
        let core_sum: f64 = record.core_component_energies().iter().sum();
        let uncore_sum: f64 = record.uncore_component_energies().iter().sum();
        let tol = 1e-9 * record.total_energy.max(1.0);
        assert!(
            (core_sum - record.total_energy).abs() <= tol,
            "core components {core_sum} vs legacy total {}",
            record.total_energy
        );
        assert!((uncore_sum - record.uncore_energy).abs() <= tol);
        assert!(
            (core_sum + uncore_sum - record.total_energy_with_uncore).abs() <= tol,
            "ledger grand total"
        );
        assert!(
            (record.edp - record.total_energy_with_uncore * record.total_cycles as f64).abs()
                <= 1e-6 * record.edp.max(1.0)
        );
    }

    #[test]
    fn from_value_reports_missing_fields() {
        let v = serde_json::from_str(r#"{"schema": 2, "key": "x"}"#).unwrap();
        let err = CellRecord::from_value(&v).unwrap_err();
        assert!(err.contains("workload"), "{err}");
        // A record without the version field reports that first.
        let v = serde_json::from_str(r#"{"key": "x"}"#).unwrap();
        let err = CellRecord::from_value(&v).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }
}
