//! Sensitivity-sweep subsystem: Cartesian parameter grids, a resumable
//! parallel runner and Pareto-frontier reporting.
//!
//! The paper evaluates clock-gate-on-abort at a single operating point
//! (`W0 = 8`, three applications, three processor counts). This module turns
//! that single point into an explorable surface:
//!
//! * [`grid`] — [`grid::SweepGrid`] describes a Cartesian grid over gating
//!   mode (with `W0` / back-off parameters), processor count, workload,
//!   scale, seed and L1 cache geometry, and expands it into a deterministic
//!   list of [`grid::SweepCell`]s, each with a stable string key,
//! * [`runner`] — [`runner::run_sweep`] executes the cells across all cores
//!   (same `std::thread::scope` pattern as the evaluation matrix), streams
//!   one compact JSON record per cell to a `sweep.jsonl` artifact in
//!   deterministic cell order, and skips already-recorded cells when resumed,
//! * [`pareto`] — post-processes the records into per-(workload, procs)
//!   energy-vs-execution-time Pareto frontiers and summary tables.
//!
//! Determinism contract: for a given grid, two sweep runs (on either
//! stepping engine) produce byte-identical `sweep.jsonl`, `pareto.json` and
//! `sweep_summary.json` artifacts. CI enforces this on the smoke grid.
//!
//! ```
//! use clockgate_htm::sweep::{pareto_frontiers, SweepGrid};
//!
//! let grid = SweepGrid::smoke();
//! let cells = grid.expand();
//! assert!(!cells.is_empty());
//! // Keys are unique and stable — they are the resume / dedup identity.
//! let keys: std::collections::BTreeSet<_> = cells.iter().map(|c| c.key()).collect();
//! assert_eq!(keys.len(), cells.len());
//! # let _ = pareto_frontiers(&[]);
//! ```

use serde::{Deserialize, Serialize};

use crate::sim::SimReport;

pub mod grid;
pub mod pareto;
pub mod runner;

pub use grid::{CacheGeometry, GatingAxis, ModeKind, SweepCell, SweepGrid};
pub use pareto::{
    dominates, pareto_frontiers, summarize_slices, ParetoPoint, SliceFrontier, SliceSummary,
};
pub use runner::{run_sweep, SweepError, SweepOutcome};

/// One line of the `sweep.jsonl` artifact: the result of simulating a single
/// [`SweepCell`].
///
/// The record deliberately contains no wall-clock timing and no engine
/// label, so that the artifact is byte-identical across machines, runs and
/// stepping engines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// The cell's stable key ([`SweepCell::key`]) — the resume identity.
    pub key: String,
    /// Workload name.
    pub workload: String,
    /// Processor count.
    pub procs: usize,
    /// L1 capacity in KiB.
    pub l1_kb: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// Workload scale label (`test` / `small` / `full`).
    pub scale: String,
    /// Workload generation seed.
    pub seed: u64,
    /// Gating-mode label (e.g. `clock-gate(W0=8)`).
    pub mode: String,
    /// Parallel execution time in cycles.
    pub total_cycles: u64,
    /// Total energy under the Table I power model.
    pub total_energy: f64,
    /// Average power (fraction of one processor's run power).
    pub average_power: f64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transaction attempts.
    pub aborts: u64,
    /// Aborts per commit.
    pub abort_rate: f64,
    /// "Stop Clock" events observed by the processors.
    pub gatings: u64,
    /// Total processor-cycles spent clock-gated.
    pub gated_cycles: u64,
}

impl CellRecord {
    /// Build the record for `cell` from a finished simulation report.
    #[must_use]
    pub fn from_report(cell: &SweepCell, report: &SimReport) -> Self {
        Self {
            key: cell.key(),
            workload: cell.workload.clone(),
            procs: cell.procs,
            l1_kb: cell.geometry.l1_kb,
            l1_assoc: cell.geometry.l1_assoc,
            scale: cell.scale.label().to_string(),
            seed: cell.seed,
            mode: report.mode_label.clone(),
            total_cycles: report.outcome.total_cycles,
            total_energy: report.energy.total_energy,
            average_power: report.energy.average_power,
            commits: report.outcome.total_commits,
            aborts: report.outcome.total_aborts,
            abort_rate: report.outcome.abort_rate(),
            gatings: report.outcome.total_gatings,
            gated_cycles: report.outcome.total_gated_cycles(),
        }
    }

    /// Rebuild a record from one parsed `sweep.jsonl` line (the resume
    /// path). Returns a description of the first missing/mistyped field.
    pub fn from_value(v: &serde::Value) -> Result<Self, String> {
        fn str_field(v: &serde::Value, name: &str) -> Result<String, String> {
            v.get(name)
                .and_then(|f| f.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field `{name}`"))
        }
        fn u64_field(v: &serde::Value, name: &str) -> Result<u64, String> {
            v.get(name)
                .and_then(serde::Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer field `{name}`"))
        }
        fn f64_field(v: &serde::Value, name: &str) -> Result<f64, String> {
            v.get(name)
                .and_then(serde::Value::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field `{name}`"))
        }
        Ok(Self {
            key: str_field(v, "key")?,
            workload: str_field(v, "workload")?,
            procs: u64_field(v, "procs")? as usize,
            l1_kb: u64_field(v, "l1_kb")? as usize,
            l1_assoc: u64_field(v, "l1_assoc")? as usize,
            scale: str_field(v, "scale")?,
            seed: u64_field(v, "seed")?,
            mode: str_field(v, "mode")?,
            total_cycles: u64_field(v, "total_cycles")?,
            total_energy: f64_field(v, "total_energy")?,
            average_power: f64_field(v, "average_power")?,
            commits: u64_field(v, "commits")?,
            aborts: u64_field(v, "aborts")?,
            abort_rate: f64_field(v, "abort_rate")?,
            gatings: u64_field(v, "gatings")?,
            gated_cycles: u64_field(v, "gated_cycles")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{GatingMode, SimulationBuilder};
    use htm_workloads::WorkloadScale;

    #[test]
    fn record_round_trips_through_jsonl_encoding() {
        let cell = SweepCell {
            workload: "intruder".into(),
            procs: 4,
            geometry: CacheGeometry::default(),
            scale: WorkloadScale::Test,
            seed: 7,
            mode: GatingMode::ClockGate { w0: 8 },
            cycle_limit: 20_000_000,
        };
        let report = SimulationBuilder::new()
            .processors(4)
            .workload_by_name("intruder", WorkloadScale::Test, 7)
            .unwrap()
            .gating(GatingMode::ClockGate { w0: 8 })
            .run()
            .unwrap();
        let record = CellRecord::from_report(&cell, &report);
        let line = crate::report::to_json_compact(&record);
        let parsed = CellRecord::from_value(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(parsed, record, "JSONL encode/parse must be lossless");
    }

    #[test]
    fn from_value_reports_missing_fields() {
        let v = serde_json::from_str(r#"{"key": "x"}"#).unwrap();
        let err = CellRecord::from_value(&v).unwrap_err();
        assert!(err.contains("workload"), "{err}");
    }
}
