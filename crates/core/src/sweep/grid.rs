//! Cartesian sweep grids and their deterministic cell expansion.
//!
//! A [`SweepGrid`] names one axis per swept parameter; [`SweepGrid::expand`]
//! takes the Cartesian product in a fixed nesting order (workload → procs →
//! cache geometry → leakage share → scale → seed → gating mode), so the
//! resulting cell list — and therefore the `sweep.jsonl` record order and
//! every downstream artifact — is a pure function of the grid.

use serde::{Deserialize, Serialize};

use htm_sim::Cycle;
use htm_workloads::registry::{CORPUS_WORKLOADS, PAPER_WORKLOADS};
use htm_workloads::WorkloadScale;

use crate::sim::{GatingMode, DEFAULT_CYCLE_LIMIT};

/// The gating-mode families a sweep can cross with its parameter axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModeKind {
    /// Plain Scalable TCC (no back-off, no gating) — the baseline point.
    Ungated,
    /// Exponential polite back-off at run power (crossed with
    /// [`GatingAxis::backoff_bases`]).
    ExponentialBackoff,
    /// The paper's clock gating with Eq. 8 (crossed with
    /// [`GatingAxis::w0_values`]).
    ClockGate,
    /// Clock gating with a fixed window (crossed with
    /// [`GatingAxis::fixed_windows`]).
    ClockGateFixedWindow,
    /// Clock gating without the renewal check (crossed with
    /// [`GatingAxis::w0_values`]).
    ClockGateNoRenew,
    /// Clock gating with a linear back-off (crossed with
    /// [`GatingAxis::w0_values`]).
    ClockGateLinear,
    /// Extension: Eq. 8 with a per-victim EWMA predictor replacing `W0`
    /// (crossed with [`GatingAxis::w0_values`] as predictor seeds).
    AdaptiveW0,
    /// Extension: gate the first `k` consecutive aborts, then exponential
    /// back-off (crossed with [`GatingAxis::hybrid_gate_limits`]; `W0`,
    /// base and cap come from the first entry of their respective lists).
    Hybrid,
    /// Extension: DVFS-throttle the victim instead of fully gating it
    /// (crossed with [`GatingAxis::w0_values`]).
    Throttle,
    /// Extension: the oracle upper bound — a single parameterless point.
    Oracle,
}

/// The gating axis of a sweep: which mode families to run and which
/// parameter values to cross each family with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatingAxis {
    /// Mode families, in expansion order.
    pub kinds: Vec<ModeKind>,
    /// `W0` values crossed with the Eq. 8 / no-renew / linear families.
    pub w0_values: Vec<Cycle>,
    /// Window lengths crossed with the fixed-window family.
    pub fixed_windows: Vec<Cycle>,
    /// Base windows crossed with the exponential-back-off family.
    pub backoff_bases: Vec<Cycle>,
    /// Exponent cap shared by all exponential-back-off cells.
    pub backoff_cap: u32,
    /// Gate limits (`k`) crossed with the hybrid family. The hybrid cells'
    /// `W0`, back-off base and cap are the first entries of
    /// [`Self::w0_values`] / [`Self::backoff_bases`] / [`Self::backoff_cap`].
    pub hybrid_gate_limits: Vec<u32>,
}

impl Default for GatingAxis {
    /// The paper's operating point: ungated baseline vs. `W0 = 8` gating.
    fn default() -> Self {
        Self {
            kinds: vec![ModeKind::Ungated, ModeKind::ClockGate],
            w0_values: vec![8],
            fixed_windows: vec![64],
            backoff_bases: vec![32],
            backoff_cap: 8,
            hybrid_gate_limits: vec![2],
        }
    }
}

impl GatingAxis {
    /// Expand the axis into concrete gating modes, crossing each family with
    /// its parameter list in order.
    #[must_use]
    pub fn expand(&self) -> Vec<GatingMode> {
        let mut modes = Vec::new();
        for kind in &self.kinds {
            match kind {
                ModeKind::Ungated => modes.push(GatingMode::Ungated),
                ModeKind::ExponentialBackoff => {
                    modes.extend(self.backoff_bases.iter().map(|&base| {
                        GatingMode::ExponentialBackoff {
                            base,
                            cap: self.backoff_cap,
                        }
                    }));
                }
                ModeKind::ClockGate => modes.extend(
                    self.w0_values
                        .iter()
                        .map(|&w0| GatingMode::ClockGate { w0 }),
                ),
                ModeKind::ClockGateFixedWindow => modes.extend(
                    self.fixed_windows
                        .iter()
                        .map(|&window| GatingMode::ClockGateFixedWindow { window }),
                ),
                ModeKind::ClockGateNoRenew => modes.extend(
                    self.w0_values
                        .iter()
                        .map(|&w0| GatingMode::ClockGateNoRenew { w0 }),
                ),
                ModeKind::ClockGateLinear => modes.extend(
                    self.w0_values
                        .iter()
                        .map(|&w0| GatingMode::ClockGateLinear { w0 }),
                ),
                ModeKind::AdaptiveW0 => modes.extend(
                    self.w0_values
                        .iter()
                        .map(|&w0| GatingMode::AdaptiveW0 { w0 }),
                ),
                ModeKind::Hybrid => {
                    let w0 = self.w0_values.first().copied().unwrap_or(8);
                    let base = self.backoff_bases.first().copied().unwrap_or(32);
                    modes.extend(self.hybrid_gate_limits.iter().map(|&gate_limit| {
                        GatingMode::Hybrid {
                            gate_limit,
                            w0,
                            base,
                            cap: self.backoff_cap,
                        }
                    }));
                }
                ModeKind::Throttle => {
                    modes.extend(self.w0_values.iter().map(|&w0| GatingMode::Throttle { w0 }))
                }
                ModeKind::Oracle => modes.push(GatingMode::Oracle),
            }
        }
        modes
    }
}

/// One point of the L1 cache-geometry axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Capacity in KiB.
    pub l1_kb: usize,
    /// Associativity (ways).
    pub l1_assoc: usize,
}

impl Default for CacheGeometry {
    /// The Table II cache: 64 KB, 2-way.
    fn default() -> Self {
        Self {
            l1_kb: 64,
            l1_assoc: 2,
        }
    }
}

impl CacheGeometry {
    /// Short label used in cell keys, e.g. `l64k2w`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("l{}k{}w", self.l1_kb, self.l1_assoc)
    }
}

/// A Cartesian sensitivity grid. Expanded by [`SweepGrid::expand`];
/// executed by [`crate::sweep::runner::run_sweep`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    /// Grid name (`smoke`, `default`, `w0`, `backoff`, `scaling`, `cache`,
    /// or anything for custom grids); recorded in the artifacts.
    pub name: String,
    /// Workload axis.
    pub workloads: Vec<String>,
    /// Processor-count axis.
    pub processor_counts: Vec<usize>,
    /// Workload-scale axis.
    pub scales: Vec<WorkloadScale>,
    /// Seed axis (workload generation seeds).
    pub seeds: Vec<u64>,
    /// L1 cache-geometry axis.
    pub cache_geometries: Vec<CacheGeometry>,
    /// Leakage-share (technology-node) axis of the power model, in percent
    /// of total run power. The paper's 65 nm assumption is 20.
    pub leakage_percents: Vec<u32>,
    /// Gating axis.
    pub gating: GatingAxis,
    /// Safety bound on simulated cycles, shared by every cell.
    pub cycle_limit: Cycle,
}

/// The paper's leakage share in percent (the default point of the axis).
pub const DEFAULT_LEAKAGE_PERCENT: u32 = 20;

/// Names accepted by [`SweepGrid::by_name`] (the `sweep --grid` values).
pub const GRID_NAMES: [&str; 10] = [
    "smoke", "default", "w0", "backoff", "scaling", "cache", "leakage", "policies", "scale",
    "corpus",
];

impl SweepGrid {
    fn base(name: &str) -> Self {
        Self {
            name: name.to_string(),
            workloads: PAPER_WORKLOADS.iter().map(|s| (*s).to_string()).collect(),
            processor_counts: vec![4, 8, 16],
            scales: vec![WorkloadScale::Small],
            seeds: vec![42],
            cache_geometries: vec![CacheGeometry::default()],
            leakage_percents: vec![DEFAULT_LEAKAGE_PERCENT],
            gating: GatingAxis::default(),
            cycle_limit: DEFAULT_CYCLE_LIMIT,
        }
    }

    /// The CI gate: two workloads, one processor count, tiny scale, the
    /// ungated / back-off / `W0 = 8` trio — small enough to run with the
    /// naive reference engine in seconds.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            workloads: vec!["genome".into(), "intruder".into()],
            processor_counts: vec![4],
            scales: vec![WorkloadScale::Test],
            gating: GatingAxis {
                kinds: vec![
                    ModeKind::Ungated,
                    ModeKind::ExponentialBackoff,
                    ModeKind::ClockGate,
                ],
                ..GatingAxis::default()
            },
            ..Self::base("smoke")
        }
    }

    /// All six gating-mode families at the paper's operating points, over
    /// the paper's workloads and processor counts.
    #[must_use]
    pub fn default_grid() -> Self {
        Self {
            gating: GatingAxis {
                kinds: vec![
                    ModeKind::Ungated,
                    ModeKind::ExponentialBackoff,
                    ModeKind::ClockGate,
                    ModeKind::ClockGateFixedWindow,
                    ModeKind::ClockGateNoRenew,
                    ModeKind::ClockGateLinear,
                ],
                ..GatingAxis::default()
            },
            ..Self::base("default")
        }
    }

    /// The `W0` sensitivity surface: Eq. 8 gating across seven `W0` values
    /// (plus the ungated baseline point per slice).
    #[must_use]
    pub fn w0() -> Self {
        Self {
            gating: GatingAxis {
                kinds: vec![ModeKind::Ungated, ModeKind::ClockGate],
                w0_values: vec![1, 2, 4, 8, 16, 32, 64],
                ..GatingAxis::default()
            },
            ..Self::base("w0")
        }
    }

    /// Back-off sensitivity: exponential back-off across five base windows,
    /// against the ungated and `W0 = 8` clock-gated references.
    #[must_use]
    pub fn backoff() -> Self {
        Self {
            processor_counts: vec![8],
            gating: GatingAxis {
                kinds: vec![
                    ModeKind::Ungated,
                    ModeKind::ExponentialBackoff,
                    ModeKind::ClockGate,
                ],
                backoff_bases: vec![8, 16, 32, 64, 128],
                ..GatingAxis::default()
            },
            ..Self::base("backoff")
        }
    }

    /// Processor scaling beyond the paper's 16-core ceiling, with three
    /// seeds per point for run-to-run spread.
    #[must_use]
    pub fn scaling() -> Self {
        Self {
            processor_counts: vec![1, 2, 4, 8, 16, 32],
            seeds: vec![42, 43, 44],
            ..Self::base("scaling")
        }
    }

    /// Cache-geometry sensitivity: four capacities × two associativities at
    /// 8 processors.
    #[must_use]
    pub fn cache() -> Self {
        let mut geometries = Vec::new();
        for l1_kb in [16usize, 32, 64, 128] {
            for l1_assoc in [2usize, 4] {
                geometries.push(CacheGeometry { l1_kb, l1_assoc });
            }
        }
        Self {
            processor_counts: vec![8],
            cache_geometries: geometries,
            ..Self::base("cache")
        }
    }

    /// Leakage-share (technology-node) sensitivity: how much of the gating
    /// win survives as the leakage share moves off the paper's 20 %
    /// assumption. Clock gating only saves dynamic power, so the energy
    /// objective flips as the leaky fraction grows.
    #[must_use]
    pub fn leakage() -> Self {
        Self {
            processor_counts: vec![8],
            leakage_percents: vec![5, 10, 20, 30, 40],
            ..Self::base("leakage")
        }
    }

    /// The policy axis end-to-end: every registered policy family at its
    /// default operating point, over the paper's workloads, so Pareto
    /// reports rank whole policy families per workload. Small enough
    /// (tiny scale, one processor count) for the CI policy-matrix gate to
    /// run it on both engines.
    #[must_use]
    pub fn policies() -> Self {
        Self {
            processor_counts: vec![4],
            scales: vec![WorkloadScale::Test],
            gating: GatingAxis {
                kinds: vec![
                    ModeKind::Ungated,
                    ModeKind::ExponentialBackoff,
                    ModeKind::ClockGate,
                    ModeKind::ClockGateFixedWindow,
                    ModeKind::ClockGateNoRenew,
                    ModeKind::ClockGateLinear,
                    ModeKind::AdaptiveW0,
                    ModeKind::Hybrid,
                    ModeKind::Throttle,
                    ModeKind::Oracle,
                ],
                ..GatingAxis::default()
            },
            ..Self::base("policies")
        }
    }

    /// The large-machine grid behind `docs/SCALING.md`: the
    /// cluster-isolated workload plus two STAMP-like ones at 64, 256, 512
    /// and 1024 processors (the simulator's [`htm_sim::MAX_PROCS`] ceiling),
    /// under the ungated / Eq. 8 / oracle trio. Meant to be run on the
    /// sharded fabric (`sweep --grid scale --topology sharded`), where the
    /// shard-parallel engine fans clustered islands out over host threads
    /// and the windowed engine fans per-bank lane groups out within the
    /// contended cells.
    #[must_use]
    pub fn scale() -> Self {
        Self {
            workloads: vec!["clustered".into(), "genome".into(), "intruder".into()],
            processor_counts: vec![64, 256, 512, 1024],
            scales: vec![WorkloadScale::Test],
            gating: GatingAxis {
                kinds: vec![ModeKind::Ungated, ModeKind::ClockGate, ModeKind::Oracle],
                ..GatingAxis::default()
            },
            ..Self::base("scale")
        }
    }

    /// The scenario corpus: the five remaining STAMP-style kernels plus the
    /// four adversarial microbenchmarks
    /// ([`htm_workloads::registry::CORPUS_WORKLOADS`]) under the ungated /
    /// back-off / `W0 = 8` trio at tiny scale — small enough for the CI
    /// trace-smoke gate to run it on both engines.
    #[must_use]
    pub fn corpus() -> Self {
        Self {
            workloads: CORPUS_WORKLOADS.iter().map(|s| (*s).to_string()).collect(),
            processor_counts: vec![4],
            scales: vec![WorkloadScale::Test],
            gating: GatingAxis {
                kinds: vec![
                    ModeKind::Ungated,
                    ModeKind::ExponentialBackoff,
                    ModeKind::ClockGate,
                ],
                ..GatingAxis::default()
            },
            ..Self::base("corpus")
        }
    }

    /// A single-workload grid for a trace loaded from a file: the workload
    /// axis carries the trace's fingerprinted axis name
    /// (`trace-{name}-{fp8}`), the processor count is the trace's thread
    /// count, and the gating axis is the ungated / back-off / `W0 = 8`
    /// trio. Because the axis name embeds the content fingerprint, a
    /// checkpointed sweep directory keyed by one file can never be silently
    /// resumed with an edited trace (or by a synthetic-workload sweep): the
    /// keys differ and the resume pre-flight rejects them as foreign
    /// records.
    #[must_use]
    pub fn for_trace(axis_name: &str, procs: usize) -> Self {
        Self {
            workloads: vec![axis_name.to_string()],
            processor_counts: vec![procs],
            scales: vec![WorkloadScale::Test],
            seeds: vec![0],
            gating: GatingAxis {
                kinds: vec![
                    ModeKind::Ungated,
                    ModeKind::ExponentialBackoff,
                    ModeKind::ClockGate,
                ],
                ..GatingAxis::default()
            },
            ..Self::base("trace")
        }
    }

    /// Look up a predefined grid by its [`GRID_NAMES`] name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Self::smoke()),
            "default" => Some(Self::default_grid()),
            "w0" => Some(Self::w0()),
            "backoff" => Some(Self::backoff()),
            "scaling" => Some(Self::scaling()),
            "cache" => Some(Self::cache()),
            "leakage" => Some(Self::leakage()),
            "policies" => Some(Self::policies()),
            "scale" => Some(Self::scale()),
            "corpus" => Some(Self::corpus()),
            _ => None,
        }
    }

    /// Expand the grid into its deterministic cell list (workload-major,
    /// then procs, geometry, leakage share, scale, seed and finally gating
    /// mode).
    #[must_use]
    pub fn expand(&self) -> Vec<SweepCell> {
        let modes = self.gating.expand();
        let mut cells = Vec::new();
        for workload in &self.workloads {
            for &procs in &self.processor_counts {
                for &geometry in &self.cache_geometries {
                    for &leakage_percent in &self.leakage_percents {
                        for &scale in &self.scales {
                            for &seed in &self.seeds {
                                for &mode in &modes {
                                    cells.push(SweepCell {
                                        workload: workload.clone(),
                                        procs,
                                        geometry,
                                        leakage_percent,
                                        scale,
                                        seed,
                                        mode,
                                        cycle_limit: self.cycle_limit,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

/// One fully-specified simulation of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Workload name.
    pub workload: String,
    /// Processor count.
    pub procs: usize,
    /// L1 geometry.
    pub geometry: CacheGeometry,
    /// Leakage share of the power model, in percent.
    pub leakage_percent: u32,
    /// Workload scale.
    pub scale: WorkloadScale,
    /// Workload generation seed.
    pub seed: u64,
    /// Gating mode (with its parameters).
    pub mode: GatingMode,
    /// Safety bound on simulated cycles.
    pub cycle_limit: Cycle,
}

impl SweepCell {
    /// The cell's stable key: the identity used for resume deduplication
    /// and in the Pareto artifacts, e.g.
    /// `genome-p8-l64k2w-small-s42-cg-w8` (an `lk<percent>` segment appears
    /// whenever the leakage share deviates from the paper's 20 %). Two
    /// cells collide iff every swept parameter is equal.
    #[must_use]
    pub fn key(&self) -> String {
        let leakage = if self.leakage_percent == DEFAULT_LEAKAGE_PERCENT {
            String::new()
        } else {
            format!("lk{}-", self.leakage_percent)
        };
        format!(
            "{}-p{}-{}-{}-s{}-{}{}",
            self.workload,
            self.procs,
            self.geometry.label(),
            self.scale.label(),
            self.seed,
            leakage,
            mode_slug(&self.mode)
        )
    }

    /// Leakage share as the fraction the power model consumes.
    #[must_use]
    pub fn leakage_share(&self) -> f64 {
        f64::from(self.leakage_percent) / 100.0
    }
}

/// Compact, filesystem-safe slug for a gating mode, used in cell keys
/// (delegates to [`GatingMode::slug`], which keeps every legacy slug
/// byte-identical).
#[must_use]
pub fn mode_slug(mode: &GatingMode) -> String {
    mode.slug()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn gating_axis_crosses_each_family_with_its_params() {
        let axis = GatingAxis {
            kinds: vec![
                ModeKind::Ungated,
                ModeKind::ClockGate,
                ModeKind::ExponentialBackoff,
            ],
            w0_values: vec![4, 8],
            fixed_windows: vec![64],
            backoff_bases: vec![16, 32],
            backoff_cap: 6,
            hybrid_gate_limits: vec![2],
        };
        let modes = axis.expand();
        assert_eq!(
            modes,
            vec![
                GatingMode::Ungated,
                GatingMode::ClockGate { w0: 4 },
                GatingMode::ClockGate { w0: 8 },
                GatingMode::ExponentialBackoff { base: 16, cap: 6 },
                GatingMode::ExponentialBackoff { base: 32, cap: 6 },
            ]
        );
    }

    #[test]
    fn expansion_is_the_full_cartesian_product_in_stable_order() {
        let grid = SweepGrid {
            workloads: vec!["genome".into(), "intruder".into()],
            processor_counts: vec![4, 8],
            seeds: vec![1, 2],
            ..SweepGrid::base("test")
        };
        let cells = grid.expand();
        // 2 workloads x 2 procs x 1 geometry x 1 scale x 2 seeds x 2 modes.
        assert_eq!(cells.len(), 16);
        // Workload-major order, mode innermost.
        assert_eq!(cells[0].key(), "genome-p4-l64k2w-small-s1-ungated");
        assert_eq!(cells[1].key(), "genome-p4-l64k2w-small-s1-cg-w8");
        assert_eq!(cells[2].key(), "genome-p4-l64k2w-small-s2-ungated");
        assert_eq!(cells[8].workload, "intruder");
        // Expansion is deterministic.
        assert_eq!(cells, grid.expand());
    }

    #[test]
    fn all_preset_grids_expand_to_unique_keys() {
        for name in GRID_NAMES {
            let grid = SweepGrid::by_name(name).unwrap();
            assert_eq!(grid.name, name);
            let cells = grid.expand();
            assert!(!cells.is_empty(), "{name} must have cells");
            let keys: BTreeSet<String> = cells.iter().map(SweepCell::key).collect();
            assert_eq!(keys.len(), cells.len(), "{name} keys must be unique");
        }
        assert!(SweepGrid::by_name("nope").is_none());
    }

    #[test]
    fn scale_grid_reaches_the_1024p_ceiling() {
        let cells = SweepGrid::scale().expand();
        // 3 workloads x 4 processor counts x 3 modes.
        assert_eq!(cells.len(), 36);
        let procs: BTreeSet<usize> = cells.iter().map(|c| c.procs).collect();
        assert_eq!(procs, BTreeSet::from([64, 256, 512, 1024]));
        let keys: BTreeSet<String> = cells.iter().map(SweepCell::key).collect();
        assert!(keys.contains("genome-p1024-l64k2w-test-s42-oracle"));
        assert!(keys.contains("intruder-p512-l64k2w-test-s42-cg-w8"));
    }

    #[test]
    fn smoke_grid_is_small_enough_for_ci() {
        let cells = SweepGrid::smoke().expand();
        assert!(
            cells.len() <= 12,
            "smoke grid must stay tiny ({} cells)",
            cells.len()
        );
        assert!(cells
            .iter()
            .all(|c| c.scale == WorkloadScale::Test && c.procs == 4));
    }

    #[test]
    fn mode_slugs_are_distinct_and_key_safe() {
        let slugs: BTreeSet<String> = [
            GatingMode::Ungated,
            GatingMode::ExponentialBackoff { base: 16, cap: 8 },
            GatingMode::ClockGate { w0: 8 },
            GatingMode::ClockGateFixedWindow { window: 8 },
            GatingMode::ClockGateNoRenew { w0: 8 },
            GatingMode::ClockGateLinear { w0: 8 },
            GatingMode::AdaptiveW0 { w0: 8 },
            GatingMode::Hybrid {
                gate_limit: 2,
                w0: 8,
                base: 16,
                cap: 8,
            },
            GatingMode::Throttle { w0: 8 },
            GatingMode::Oracle,
        ]
        .iter()
        .map(mode_slug)
        .collect();
        assert_eq!(slugs.len(), 10);
        for slug in &slugs {
            assert!(
                slug.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
                "{slug} must be filesystem- and JSON-safe"
            );
        }
    }

    #[test]
    fn policy_axis_expands_every_registered_family() {
        let grid = SweepGrid::policies();
        let modes = grid.gating.expand();
        assert_eq!(
            modes.len(),
            crate::gating::policy::POLICY_REGISTRY.len(),
            "one cell per registered family at the default point"
        );
        let families: BTreeSet<&str> = modes.iter().map(GatingMode::family).collect();
        assert_eq!(families.len(), modes.len(), "all families distinct");
        assert!(modes.contains(&GatingMode::Oracle));
        assert!(modes.contains(&GatingMode::Hybrid {
            gate_limit: 2,
            w0: 8,
            base: 32,
            cap: 8,
        }));
        // Keys stay unique across the whole grid.
        let cells = grid.expand();
        let keys: BTreeSet<String> = cells.iter().map(SweepCell::key).collect();
        assert_eq!(keys.len(), cells.len());
        assert!(keys.contains("intruder-p4-l64k2w-test-s42-oracle"));
        assert!(keys.contains("intruder-p4-l64k2w-test-s42-thr-w8"));
    }

    #[test]
    fn corpus_grid_keys_every_new_scenario() {
        let grid = SweepGrid::corpus();
        let cells = grid.expand();
        // 9 workloads x 1 proc count x 3 modes.
        assert_eq!(cells.len(), 27);
        let keys: BTreeSet<String> = cells.iter().map(SweepCell::key).collect();
        assert_eq!(keys.len(), cells.len());
        for scenario in CORPUS_WORKLOADS {
            assert!(
                keys.contains(&format!("{scenario}-p4-l64k2w-test-s42-ungated")),
                "{scenario} must appear in the corpus sweep keys"
            );
        }
        assert!(cells
            .iter()
            .all(|c| c.scale == WorkloadScale::Test && c.procs == 4));
    }

    #[test]
    fn trace_grid_keys_embed_the_fingerprinted_axis_name() {
        let grid = SweepGrid::for_trace("trace-intruder-ab12cd34", 4);
        let cells = grid.expand();
        assert_eq!(cells.len(), 3, "ungated / backoff / cg trio");
        assert_eq!(
            cells[0].key(),
            "trace-intruder-ab12cd34-p4-l64k2w-test-s0-ungated"
        );
        // A different fingerprint (edited file) re-keys every cell.
        let other = SweepGrid::for_trace("trace-intruder-deadbeef", 4).expand();
        let keys: BTreeSet<String> = cells.iter().map(SweepCell::key).collect();
        assert!(other.iter().all(|c| !keys.contains(&c.key())));
    }

    #[test]
    fn hybrid_axis_crosses_gate_limits() {
        let axis = GatingAxis {
            kinds: vec![ModeKind::Hybrid],
            hybrid_gate_limits: vec![1, 2, 4],
            ..GatingAxis::default()
        };
        let modes = axis.expand();
        assert_eq!(modes.len(), 3);
        assert!(modes.iter().all(|m| matches!(
            m,
            GatingMode::Hybrid {
                w0: 8,
                base: 32,
                cap: 8,
                ..
            }
        )));
    }

    #[test]
    fn w0_grid_covers_the_fig7_points() {
        let grid = SweepGrid::w0();
        let modes = grid.gating.expand();
        assert_eq!(modes.len(), 8, "ungated + seven W0 values");
        assert!(modes.contains(&GatingMode::ClockGate { w0: 64 }));
    }

    #[test]
    fn leakage_axis_expands_and_keys_only_non_default_points() {
        let grid = SweepGrid {
            leakage_percents: vec![20, 40],
            workloads: vec!["genome".into()],
            processor_counts: vec![4],
            ..SweepGrid::base("test")
        };
        let cells = grid.expand();
        assert_eq!(cells.len(), 4, "2 leakage points x 2 modes");
        assert_eq!(cells[0].key(), "genome-p4-l64k2w-small-s42-ungated");
        assert_eq!(cells[2].key(), "genome-p4-l64k2w-small-s42-lk40-ungated");
        assert!((cells[2].leakage_share() - 0.40).abs() < 1e-12);
        // The paper's point keeps the pre-ledger key format.
        assert!(!cells[0].key().contains("lk"));
    }

    #[test]
    fn leakage_grid_sweeps_the_tech_node_axis() {
        let grid = SweepGrid::leakage();
        let cells = grid.expand();
        // 3 workloads x 1 proc count x 5 leakage points x 2 modes.
        assert_eq!(cells.len(), 30);
        let leakages: BTreeSet<u32> = cells.iter().map(|c| c.leakage_percent).collect();
        assert_eq!(leakages, BTreeSet::from([5, 10, 20, 30, 40]));
    }

    #[test]
    fn cache_grid_sweeps_geometry() {
        let cells = SweepGrid::cache().expand();
        let geoms: BTreeSet<String> = cells.iter().map(|c| c.geometry.label()).collect();
        assert_eq!(geoms.len(), 8, "4 capacities x 2 associativities");
        assert!(geoms.contains("l16k2w") && geoms.contains("l128k4w"));
    }
}
